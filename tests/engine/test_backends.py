"""Tests for the execution backends and the engine's dispatch logic."""

import numpy as np
import pytest

from repro.core import Pipeline, PipelineEvaluator
from repro.core.search_space import SearchSpace
from repro.datasets.synthetic import distort_features, make_classification
from repro.engine import (
    BACKEND_NAMES,
    EvalTask,
    ExecutionEngine,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
    resolve_engine,
)
from repro.exceptions import UnknownComponentError, ValidationError
from repro.models.linear import LogisticRegression


def _double(x):
    return 2 * x


@pytest.fixture(scope="module")
def evaluator():
    X, y = make_classification(n_samples=120, n_features=6, class_sep=2.0,
                               random_state=3)
    X = distort_features(X, random_state=3)
    return PipelineEvaluator.from_dataset(X, y, LogisticRegression(max_iter=40),
                                          random_state=0)


@pytest.fixture(scope="module")
def space():
    return SearchSpace(max_length=3)


class TestBackendRegistry:
    def test_all_backends_registered(self):
        assert set(BACKEND_NAMES) == {"serial", "thread", "process", "remote"}

    def test_make_backend_by_name(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("thread", n_workers=2), ThreadBackend)
        assert isinstance(make_backend("process", n_workers=2), ProcessBackend)

    def test_make_backend_passes_instances_through(self):
        backend = ThreadBackend(n_workers=3)
        assert make_backend(backend) is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(UnknownComponentError):
            make_backend("gpu")

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValidationError):
            ThreadBackend(n_workers=0)

    def test_minus_one_means_all_cores(self):
        assert ThreadBackend(n_workers=-1).n_workers >= 1


class TestBackendMap:
    # map() needs no workers even on "remote" (generic fan-out stays
    # inline there), but the coordinator's listener must be reaped, so
    # every backend is closed explicitly.
    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_map_preserves_input_order(self, name):
        # serial refuses an explicit parallel worker count (see
        # TestSerialWorkerValidation); the parallel backends get two.
        backend = make_backend(name, n_workers=None if name == "serial" else 2)
        try:
            assert backend.map(_double, list(range(7))) == \
                [2 * i for i in range(7)]
        finally:
            backend.close()

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_map_empty_input(self, name):
        backend = make_backend(name, n_workers=None if name == "serial" else 2)
        try:
            assert backend.map(_double, []) == []
        finally:
            backend.close()


class TestEvalTask:
    def test_invalid_fidelity_rejected(self):
        with pytest.raises(ValidationError):
            EvalTask(Pipeline(), fidelity=0.0)
        with pytest.raises(ValidationError):
            EvalTask(Pipeline(), fidelity=1.5)

    def test_metadata_carried_into_record(self, evaluator):
        engine = ExecutionEngine("serial")
        task = EvalTask(Pipeline.from_names(["standard_scaler"]),
                        pick_time=0.125, iteration=7)
        [record] = engine.run(evaluator, [task])
        assert record.pick_time == 0.125
        assert record.iteration == 7
        assert record.fidelity == 1.0


class TestEngineDispatch:
    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_batch_matches_serial_evaluate(self, name, space, live_engine):
        X, y = make_classification(n_samples=100, n_features=5, class_sep=2.0,
                                   random_state=1)
        pipelines = space.sample_pipelines(5, np.random.default_rng(0))

        reference = PipelineEvaluator.from_dataset(
            X, y, LogisticRegression(max_iter=40), random_state=0)
        expected = [reference.evaluate(p) for p in pipelines]

        parallel = PipelineEvaluator.from_dataset(
            X, y, LogisticRegression(max_iter=40), random_state=0,
            engine=live_engine(name))
        records = parallel.evaluate_many(pipelines)

        assert [r.accuracy for r in records] == [r.accuracy for r in expected]
        assert [r.pipeline.spec() for r in records] == \
            [r.pipeline.spec() for r in expected]

    def test_duplicates_evaluated_once(self, space):
        X, y = make_classification(n_samples=100, n_features=5, class_sep=2.0,
                                   random_state=1)
        evaluator = PipelineEvaluator.from_dataset(
            X, y, LogisticRegression(max_iter=40), random_state=0)
        pipeline = Pipeline.from_names(["standard_scaler"])
        engine = ExecutionEngine("thread", n_workers=2)
        records = engine.run(evaluator, [EvalTask(pipeline)] * 4)
        assert evaluator.n_evaluations == 1
        assert len({r.accuracy for r in records}) == 1
        # Counter parity with the serial path: 1 miss, 3 in-batch hits.
        assert evaluator.cache_info()["misses"] == 1
        assert evaluator.cache_info()["hits"] == 3

    def test_cached_tasks_skip_the_backend(self, space):
        X, y = make_classification(n_samples=100, n_features=5, class_sep=2.0,
                                   random_state=1)
        evaluator = PipelineEvaluator.from_dataset(
            X, y, LogisticRegression(max_iter=40), random_state=0)
        pipeline = Pipeline.from_names(["minmax_scaler"])
        first = evaluator.evaluate(pipeline)

        class ExplodingBackend(SerialBackend):
            def run_evaluations(self, evaluator, work):
                raise AssertionError("cached task reached the backend")

        engine = ExecutionEngine(ExplodingBackend())
        [record] = engine.run(evaluator, [EvalTask(pipeline)])
        assert record.accuracy == first.accuracy

    def test_cache_disabled_runs_every_task(self):
        X, y = make_classification(n_samples=100, n_features=5, class_sep=2.0,
                                   random_state=1)
        evaluator = PipelineEvaluator.from_dataset(
            X, y, LogisticRegression(max_iter=40), random_state=0, cache=False)
        pipeline = Pipeline.from_names(["standard_scaler"])
        engine = ExecutionEngine("serial")
        engine.run(evaluator, [EvalTask(pipeline)] * 3)
        assert evaluator.n_evaluations == 3


class TestLongestFirstDispatch:
    """Parallel batches dispatch longest-pipeline-first (LPT scheduling)."""

    class RecordingBackend(ThreadBackend):
        """Thread backend that records the dispatched work order."""

        def __init__(self, n_workers):
            super().__init__(n_workers=n_workers)
            self.dispatched: list[tuple] = []

        def run_evaluations(self, evaluator, work):
            self.dispatched.extend(pipeline.names() for pipeline, _ in work)
            return super().run_evaluations(evaluator, work)

    @staticmethod
    def _pipelines():
        return [
            Pipeline.from_names(["standard_scaler"]),
            Pipeline.from_names(["minmax_scaler", "normalizer", "binarizer"]),
            Pipeline.from_names(["maxabs_scaler", "binarizer"]),
            Pipeline.from_names(["normalizer", "binarizer"]),
        ]

    def test_parallel_dispatch_sorted_longest_first_stable(self, evaluator):
        backend = self.RecordingBackend(n_workers=2)
        engine = ExecutionEngine(backend)
        pipelines = self._pipelines()
        records = engine.run(evaluator,
                             [EvalTask(p, fidelity=0.9375) for p in pipelines])
        engine.close()
        # Longest first; the two length-2 pipelines keep submission order.
        assert backend.dispatched == [
            ("minmax_scaler", "normalizer", "binarizer"),
            ("maxabs_scaler", "binarizer"),
            ("normalizer", "binarizer"),
            ("standard_scaler",),
        ]
        # Records still come back in task order with serial-identical values.
        assert [r.pipeline.names() for r in records] == \
            [p.names() for p in pipelines]
        expected = [evaluator.evaluate(p, fidelity=0.9375).accuracy
                    for p in pipelines]
        assert [r.accuracy for r in records] == expected

    def test_single_worker_keeps_submission_order(self, evaluator):
        backend = self.RecordingBackend(n_workers=1)
        engine = ExecutionEngine(backend)
        pipelines = self._pipelines()
        engine.run(evaluator, [EvalTask(p, fidelity=0.875) for p in pipelines])
        engine.close()
        # One worker cannot be tail-blocked: the deterministic reference
        # order (submission order) is preserved untouched.
        assert backend.dispatched == [p.names() for p in pipelines]


class TestResolveEngine:
    def test_serial_defaults_resolve_to_none(self):
        assert resolve_engine() is None
        assert resolve_engine(1, None) is None

    def test_n_jobs_implies_process_backend(self):
        engine = resolve_engine(2)
        assert engine.backend.name == "process"
        assert engine.n_workers == 2

    def test_explicit_backend_respected(self):
        engine = resolve_engine(3, "thread")
        assert engine.backend.name == "thread"
        assert engine.n_workers == 3

    def test_explicit_serial_is_not_upgraded(self):
        from repro.engine import resolve_backend_name

        assert resolve_backend_name(4, "serial") == "serial"
        assert resolve_backend_name(4, None) == "process"
        assert resolve_engine(4, "serial") is None  # serial = no engine

    def test_engine_context_manager_closes_backend(self):
        closed = []

        class Recording(SerialBackend):
            def close(self):
                closed.append(True)

        with ExecutionEngine(Recording()) as engine:
            assert engine.map(_double, [1]) == [2]
        assert closed == [True]

    def test_evaluator_pickles_without_engine_or_cache(self, evaluator):
        import pickle

        evaluator.set_engine(ExecutionEngine("thread", n_workers=2))
        evaluator.evaluate(Pipeline.from_names(["standard_scaler"]))
        clone = pickle.loads(pickle.dumps(evaluator))
        assert clone.engine is None
        assert clone.cache_info()["size"] == 0
        evaluator.set_engine(None)


class TestSerialWorkerValidation:
    """An explicit parallel worker count on the serial backend fails loudly.

    Regression: ``SerialBackend.__init__`` used to drop ``n_workers`` on
    the floor, so a misconfigured serial+parallel context silently ran
    everything on one worker.
    """

    def test_parallel_worker_count_rejected(self):
        with pytest.raises(ValidationError, match="serial backend"):
            SerialBackend(n_workers=2)
        with pytest.raises(ValidationError, match="serial backend"):
            make_backend("serial", n_workers=4)

    def test_one_worker_and_default_still_accepted(self):
        assert SerialBackend().n_workers == 1
        assert SerialBackend(n_workers=1).n_workers == 1
        assert SerialBackend(n_workers=None).n_workers == 1


class _FakePool:
    """Stands in for a ProcessPoolExecutor in LRU bookkeeping tests."""

    def __init__(self, *args, **kwargs):
        self.initargs = kwargs.get("initargs")
        self.shut_down = False

    def shutdown(self, wait=True, cancel_futures=False):
        self.shut_down = True


class _FakeEvaluator:
    def __init__(self, fingerprint):
        self._fingerprint = fingerprint

    def fingerprint(self):
        return self._fingerprint


class TestEvaluationPoolLRU:
    """ProcessBackend keys evaluation pools per evaluator fingerprint.

    Regression: the backend used to keep a single pool owned by the
    last-seen evaluator, so two searches alternating on one shared
    backend tore each other's warm pool down every batch.  Pool creation
    is faked out — these tests exercise only the LRU bookkeeping, without
    forking real worker processes.
    """

    @pytest.fixture
    def backend(self, monkeypatch):
        import repro.engine.backends as backends_module

        monkeypatch.setattr(backends_module, "ProcessPoolExecutor", _FakePool)
        backend = ProcessBackend(n_workers=2, max_eval_pools=2)
        yield backend
        backend.close()

    def test_same_fingerprint_reuses_the_pool(self, backend):
        evaluator = _FakeEvaluator("fp-a")
        first = backend._evaluation_pool(evaluator)
        second = backend._evaluation_pool(_FakeEvaluator("fp-a"))
        assert first is second
        assert not first.shut_down

    def test_distinct_fingerprints_get_distinct_pools(self, backend):
        pool_a = backend._evaluation_pool(_FakeEvaluator("fp-a"))
        pool_b = backend._evaluation_pool(_FakeEvaluator("fp-b"))
        assert pool_a is not pool_b
        # Alternating sessions keep both pools warm — the regression case.
        assert backend._evaluation_pool(_FakeEvaluator("fp-a")) is pool_a
        assert backend._evaluation_pool(_FakeEvaluator("fp-b")) is pool_b
        assert not pool_a.shut_down and not pool_b.shut_down

    def test_least_recently_used_pool_evicted_beyond_cap(self, backend):
        pool_a = backend._evaluation_pool(_FakeEvaluator("fp-a"))
        pool_b = backend._evaluation_pool(_FakeEvaluator("fp-b"))
        backend._evaluation_pool(_FakeEvaluator("fp-a"))  # refresh a
        pool_c = backend._evaluation_pool(_FakeEvaluator("fp-c"))
        # b was least recently used: evicted and shut down; a and c live.
        assert pool_b.shut_down
        assert not pool_a.shut_down and not pool_c.shut_down
        assert set(backend._eval_pools) == {"fp-a", "fp-c"}

    def test_close_shuts_every_pool_down(self, backend):
        pools = [backend._evaluation_pool(_FakeEvaluator(fp))
                 for fp in ("fp-a", "fp-b")]
        backend.close()
        assert all(pool.shut_down for pool in pools)
        assert not backend._eval_pools

    def test_pool_cap_validated(self):
        with pytest.raises(ValidationError):
            ProcessBackend(n_workers=2, max_eval_pools=0)


class TestSharedProcessBackendResults:
    """Two evaluators sharing one process backend stay bit-for-bit serial."""

    @pytest.mark.slow
    def test_alternating_evaluators_match_serial(self, space):
        datasets = [
            make_classification(n_samples=100, n_features=5, class_sep=2.0,
                                random_state=seed)
            for seed in (1, 2)
        ]
        pipelines = space.sample_pipelines(3, np.random.default_rng(0))
        expected = []
        for X, y in datasets:
            reference = PipelineEvaluator.from_dataset(
                X, y, LogisticRegression(max_iter=40), random_state=0)
            expected.append([reference.evaluate(p).accuracy
                             for p in pipelines])

        engine = ExecutionEngine("process", n_workers=2)
        evaluators = [
            PipelineEvaluator.from_dataset(
                X, y, LogisticRegression(max_iter=40), random_state=0,
                engine=engine)
            for X, y in datasets
        ]
        try:
            # Alternate batches between the two evaluators: each must hit
            # its own warm pool and reproduce its serial accuracies.
            for _ in range(2):
                for evaluator, accuracies in zip(evaluators, expected):
                    records = evaluator.evaluate_many(pipelines)
                    assert [r.accuracy for r in records] == accuracies
            assert len(engine.backend._eval_pools) == 2
        finally:
            engine.close()
