"""Chaos suite for the fault-tolerance layer (PR-9 acceptance).

Covers the failure taxonomy and :class:`RetryPolicy` (bounded, seeded,
deterministic), the :class:`FaultPlan` spec grammar, the inline recovery
envelope on the serial/thread backends, the real crash-recovery and
timeout-watchdog paths on the process backend, and the acceptance
matrix: a fault plan with a worker kill and a hang fed into a
process-backend search completes with surviving records bit-for-bit
identical to a no-fault run, budgets never overshooting, and the
``engine.*`` failure counters matching the plan.

Tests that genuinely kill pool workers are marked ``slow`` (the CI chaos
smoke step opts into them); one compact process crash-recovery test
stays in the tier-1 default selection.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import PipelineEvaluator
from repro.core.context import ExecutionContext
from repro.core.problem import AutoFPProblem
from repro.core.search_space import SearchSpace
from repro.datasets.synthetic import distort_features, make_classification
from repro.engine import (
    ChaosBackend,
    EvalTask,
    EvaluationTimeoutError,
    ExecutionEngine,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    SerialFuture,
    TransientEvaluationError,
    WorkerCrashError,
    classify_failure,
    is_transient,
)
from repro.engine.backends import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
)
from repro.engine.faults import (
    FAILURE_KIND_CRASH,
    FAILURE_KIND_TIMEOUT,
    FaultInjection,
    failure_entry,
    strip_fault,
    unwrap_work_item,
)
from repro.exceptions import ValidationError
from repro.models.linear import LogisticRegression
from repro.search import make_search_algorithm
from repro.telemetry.metrics import get_registry

#: zero-sleep policy so recovery paths run at full speed under test
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


@pytest.fixture(autouse=True)
def _reset_registry():
    get_registry().reset()
    yield
    get_registry().reset()


def _counter(name):
    return get_registry().counter(name).value


def _make_evaluator():
    X, y = make_classification(n_samples=110, n_features=6, class_sep=2.0,
                               random_state=7)
    X = distort_features(X, random_state=7)
    return PipelineEvaluator.from_dataset(
        X, y, LogisticRegression(max_iter=40), random_state=0
    )


def _sample_tasks(n=5):
    # Distinct specs only: a duplicate task aliases its twin's dispatch
    # group, which would fan one injected fault out to several records
    # and make index-targeted assertions ambiguous.
    space = SearchSpace(max_length=3)
    rng = np.random.default_rng(0)
    pipelines: list = []
    seen: set = set()
    while len(pipelines) < n:
        for pipeline in space.sample_pipelines(n, rng):
            if pipeline.spec() not in seen and len(pipelines) < n:
                seen.add(pipeline.spec())
                pipelines.append(pipeline)
    return [EvalTask(pipeline) for pipeline in pipelines]


def _rows(records):
    return [(r.pipeline.spec(), round(r.fidelity, 6), r.accuracy,
             r.iteration, r.failure_kind) for r in records]


def _reference_rows(n=5):
    """Rows of a clean engineless run over the same tasks."""
    engine = ExecutionEngine("serial")
    try:
        return _rows(engine.run(_make_evaluator(), _sample_tasks(n)))
    finally:
        engine.close()


def _chaos_engine(inner, plan):
    return ExecutionEngine(ChaosBackend(inner, plan))


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValidationError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValidationError, match="base_delay"):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValidationError, match="jitter"):
            RetryPolicy(jitter=-0.5)
        with pytest.raises(ValidationError, match="attempt"):
            RetryPolicy().delay(0)

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(base_delay=0.5, max_delay=1.0, jitter=0.0)
        assert policy.delay(1) == 0.5
        assert policy.delay(2) == 1.0  # 0.5 * 2 hits the cap
        assert policy.delay(3) == 1.0

    def test_jitter_is_seeded_and_bounded(self):
        first = RetryPolicy(base_delay=0.2, jitter=0.1, seed=9)
        second = RetryPolicy(base_delay=0.2, jitter=0.1, seed=9)
        other = RetryPolicy(base_delay=0.2, jitter=0.1, seed=10)
        delays = [first.delay(n) for n in (1, 2, 3)]
        assert delays == [second.delay(n) for n in (1, 2, 3)]
        assert delays != [other.delay(n) for n in (1, 2, 3)]
        for attempt, delay in enumerate(delays, start=1):
            base = 0.2 * 2 ** (attempt - 1)
            assert base <= delay <= base * 1.1

    def test_should_retry_respects_attempts_and_taxonomy(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.should_retry(1)
        assert not policy.should_retry(2)
        assert policy.should_retry(1, WorkerCrashError("boom"))
        assert policy.should_retry(1, TransientEvaluationError("flaky"))
        assert not policy.should_retry(1, EvaluationTimeoutError("late"))
        assert not policy.should_retry(1, ValueError("bug"))

    def test_taxonomy_helpers(self):
        assert is_transient(WorkerCrashError("boom"))
        assert not is_transient(EvaluationTimeoutError("late"))
        assert classify_failure(OSError("pipe")) == "transient"
        assert classify_failure(KeyError("bug")) == "permanent"

    def test_failure_entry_shape(self):
        entry = failure_entry(FAILURE_KIND_CRASH)
        assert entry == {"accuracy": 0.0, "prep_time": 0.0, "train_time": 0.0,
                         "failed": True, "failure_kind": FAILURE_KIND_CRASH}
        with pytest.raises(ValidationError, match="failure kind"):
            failure_entry("oom")


class TestFaultPlan:
    def test_spec_round_trips(self):
        spec = "crash@1,error@4,delay@6:30,crash@8!"
        plan = FaultPlan.from_spec(spec)
        assert plan.to_spec() == spec
        assert len(plan) == 4
        assert plan.counts() == {"crash": 2, "error": 1, "delay": 1}
        assert plan.fault_at(6) == InjectedFault("delay", delay=30.0)
        assert plan.fault_at(8).sticky
        assert plan.fault_at(0) is None

    @pytest.mark.parametrize("spec", [
        "crash",              # no @index
        "crash@x",            # non-integer index
        "oom@2",              # unknown kind
        "delay@3",            # delay without a duration
        "crash@3:5",          # duration on a non-delay fault
        "delay@2:soon",       # non-numeric duration
        "crash@1,error@1",    # duplicate index
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValidationError):
            FaultPlan.from_spec(spec)

    def test_constructor_validation(self):
        with pytest.raises(ValidationError, match=">= 0"):
            FaultPlan({-1: InjectedFault("crash")})
        with pytest.raises(ValidationError, match="InjectedFault"):
            FaultPlan({0: "crash"})

    def test_random_plans_are_seeded(self):
        kwargs = dict(crash_rate=0.2, error_rate=0.2, delay_rate=0.1,
                      delay=5.0)
        plan = FaultPlan.random(7, 50, **kwargs)
        assert plan.to_spec() == FaultPlan.random(7, 50, **kwargs).to_spec()
        assert len(plan) > 0
        with pytest.raises(ValidationError, match="at most 1.0"):
            FaultPlan.random(0, 10, crash_rate=0.8, error_rate=0.4)

    def test_injection_primitives(self):
        pair = ("pipeline", 1.0)
        wrapped = FaultInjection(pair, InjectedFault("error"))
        assert unwrap_work_item(wrapped) == (pair, wrapped.fault)
        assert unwrap_work_item(pair) == (pair, None)
        assert strip_fault(wrapped) == pair  # non-sticky faults fire once
        sticky = FaultInjection(pair, InjectedFault("crash", sticky=True))
        assert strip_fault(sticky) is sticky


class TestChaosBackendWiring:
    def test_refuses_nesting_and_non_backends(self):
        inner = ChaosBackend(SerialBackend(), FaultPlan())
        with pytest.raises(ValidationError, match="nest"):
            ChaosBackend(inner, FaultPlan())
        with pytest.raises(ValidationError, match="ExecutionBackend"):
            ChaosBackend("serial", FaultPlan())

    def test_settings_delegate_to_the_wrapped_backend(self):
        inner = SerialBackend()
        chaos = ChaosBackend(inner, "error@0")
        chaos.eval_timeout = 1.5
        chaos.retry_policy = FAST_RETRY
        assert inner.eval_timeout == 1.5
        assert inner.retry_policy is FAST_RETRY
        assert chaos.n_workers == 1
        assert chaos.last_crash is None

    def test_make_backend_applies_options_to_instances(self):
        backend = make_backend(SerialBackend(), eval_timeout=2.0,
                               retry_policy=FAST_RETRY)
        assert backend.eval_timeout == 2.0
        assert backend.retry_policy is FAST_RETRY
        with pytest.raises(ValidationError, match="eval_timeout"):
            make_backend("serial", eval_timeout=-1.0)


class TestContextWiring:
    def test_chaos_spec_normalized_and_validated(self):
        context = ExecutionContext(chaos=" delay@3:30 , crash@1! ")
        assert context.chaos == "crash@1!,delay@3:30"
        assert "chaos=" in context.describe()
        with pytest.raises(ValidationError):
            ExecutionContext(chaos="oom@1")
        with pytest.raises(ValidationError, match="eval_timeout"):
            ExecutionContext(eval_timeout=0.0)

    def test_build_engine_wraps_in_chaos(self):
        context = ExecutionContext(chaos="error@1", eval_timeout=2.5)
        engine = context.build_engine()
        try:
            assert isinstance(engine.backend, ChaosBackend)
            assert isinstance(engine.backend.inner, SerialBackend)
            assert engine.backend.eval_timeout == 2.5
            assert engine.backend.plan.to_spec() == "error@1"
        finally:
            engine.close()

    def test_from_env_reads_timeout_and_chaos(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_TIMEOUT", "1.5")
        monkeypatch.setenv("REPRO_CHAOS", "error@0")
        context = ExecutionContext.from_env()
        assert context.eval_timeout == 1.5
        assert context.chaos == "error@0"
        monkeypatch.setenv("REPRO_EVAL_TIMEOUT", "soon")
        with pytest.raises(ValidationError, match="REPRO_EVAL_TIMEOUT"):
            ExecutionContext.from_env()


class TestSerialFutureTimeout:
    def test_timeout_argument_rejected(self):
        future = SerialFuture(lambda item: item, 1)
        with pytest.raises(ValidationError, match="cannot honor a timeout"):
            future.result(timeout=0.1)
        assert future.result() == 1
        assert future.result(timeout=None) == 1


class TestThreadBackendSubmitRace:
    def test_concurrent_submits_build_exactly_one_pool(self, monkeypatch):
        import repro.engine.backends as backends_module

        created = []
        real_pool = backends_module.ThreadPoolExecutor

        class CountingPool(real_pool):
            def __init__(self, *args, **kwargs):
                created.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(backends_module, "ThreadPoolExecutor",
                            CountingPool)
        backend = ThreadBackend(n_workers=2)
        barrier = threading.Barrier(8)
        futures = []

        def submit():
            barrier.wait()
            futures.append(backend.submit(lambda item: item, 1))

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        try:
            assert len(created) == 1
            assert [future.result() for future in futures] == [1] * 8
        finally:
            backend.close()


class TestInlineChaosRecovery:
    """Serial/thread backends: the guarded envelope retries in-process."""

    @pytest.mark.parametrize("make_inner", [
        lambda: SerialBackend(retry_policy=FAST_RETRY),
        lambda: ThreadBackend(n_workers=2, retry_policy=FAST_RETRY),
    ], ids=["serial", "thread"])
    def test_transient_faults_converge_to_the_clean_run(self, make_inner):
        engine = _chaos_engine(make_inner(), "error@0,crash@3")
        try:
            records = engine.run(_make_evaluator(), _sample_tasks())
        finally:
            engine.close()
        assert _rows(records) == _reference_rows()
        assert _counter("engine.retries") == 2
        assert _counter("engine.worker_crashes") == 1
        assert _counter("engine.quarantined_tasks") == 0

    def test_sticky_crash_quarantines_after_max_attempts(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        engine = _chaos_engine(SerialBackend(retry_policy=policy),
                               "crash@1!")
        try:
            records = engine.run(_make_evaluator(), _sample_tasks())
        finally:
            engine.close()
        reference = _reference_rows()
        rows = _rows(records)
        # Serial dispatch order is submission order: index 1 is tasks[1].
        assert rows[1][2] == 0.0
        assert rows[1][4] == FAILURE_KIND_CRASH
        assert [r for i, r in enumerate(rows) if i != 1] \
            == [r for i, r in enumerate(reference) if i != 1]
        assert _counter("engine.worker_crashes") == policy.max_attempts
        assert _counter("engine.retries") == policy.max_attempts - 1
        assert _counter("engine.quarantined_tasks") == 1

    def test_soft_deadline_marks_slow_evaluations(self):
        inner = SerialBackend(eval_timeout=1.0, retry_policy=FAST_RETRY)
        engine = _chaos_engine(inner, "delay@1:1.3")
        try:
            records = engine.run(_make_evaluator(), _sample_tasks(3))
        finally:
            engine.close()
        rows = _rows(records)
        assert rows[1][2] == 0.0
        assert rows[1][4] == FAILURE_KIND_TIMEOUT
        assert [row[4] for i, row in enumerate(rows) if i != 1] == [None, None]
        assert _counter("engine.eval_timeouts") == 1
        assert _counter("engine.retries") == 0

    def test_failure_records_are_never_cached(self):
        evaluator = _make_evaluator()
        engine = _chaos_engine(
            SerialBackend(retry_policy=RetryPolicy(max_attempts=1)),
            "crash@0!",
        )
        try:
            first = engine.run(evaluator, _sample_tasks(1))
            assert first[0].failure_kind == FAILURE_KIND_CRASH
            # The chaos plan is spent (index 0 fired); a rerun on the same
            # evaluator must re-evaluate for real, not replay the failure.
            second = engine.run(evaluator, _sample_tasks(1))
        finally:
            engine.close()
        assert second[0].failure_kind is None
        assert second[0].accuracy > 0.0

    def test_same_plan_twice_is_bit_for_bit_identical(self):
        def run_once():
            engine = _chaos_engine(SerialBackend(retry_policy=FAST_RETRY),
                                   "crash@1!,error@3")
            try:
                return _rows(engine.run(_make_evaluator(), _sample_tasks()))
            finally:
                engine.close()

        assert run_once() == run_once()


def _make_problem():
    X, y = make_classification(n_samples=120, n_features=6, class_sep=2.0,
                               random_state=3)
    X = distort_features(X, random_state=3)
    return AutoFPProblem.from_arrays(
        X, y, LogisticRegression(max_iter=40), space=SearchSpace(max_length=3),
        random_state=0, name="faults/lr",
    )


def _search_rows(result):
    return [(t.pipeline.spec(), round(t.fidelity, 6), t.accuracy,
             t.iteration, t.failure_kind) for t in result.trials]


class TestBudgetsUnderFaults:
    def _search(self, engine, max_trials=8):
        problem = _make_problem()
        problem.evaluator.set_engine(engine)
        searcher = make_search_algorithm("rs", random_state=0, batch_size=4)
        try:
            return searcher.search(problem, max_trials=max_trials)
        finally:
            if engine is not None:
                engine.close()

    def test_recovered_search_matches_the_clean_run_exactly(self):
        reference = self._search(None)
        chaotic = self._search(
            _chaos_engine(SerialBackend(retry_policy=FAST_RETRY),
                          "crash@2,error@5")
        )
        assert len(chaotic) == 8  # the trial budget never overshoots
        assert _search_rows(chaotic) == _search_rows(reference)
        assert chaotic.best_accuracy == reference.best_accuracy

    def test_quarantined_trials_consume_budget_without_overshoot(self):
        reference = self._search(None)
        chaotic = self._search(
            _chaos_engine(SerialBackend(retry_policy=FAST_RETRY), "crash@2!")
        )
        rows = _search_rows(chaotic)
        assert len(rows) == 8
        failed = [row for row in rows if row[4] is not None]
        assert [row[4] for row in failed] == [FAILURE_KIND_CRASH]
        assert [row for row in rows if row[4] is None] \
            == [row for i, row in enumerate(_search_rows(reference))
                if rows[i][4] is None]
        assert _counter("engine.quarantined_tasks") == 1


class TestProcessRecovery:
    """Real pool workers, really killed; the compact case stays tier-1."""

    def test_crash_recovery_reproduces_the_clean_batch(self):
        engine = _chaos_engine(
            ProcessBackend(n_workers=2, retry_policy=FAST_RETRY), "crash@1"
        )
        try:
            records = engine.run(_make_evaluator(), _sample_tasks())
        finally:
            engine.close()
        assert _rows(records) == _reference_rows()
        assert _counter("engine.worker_crashes") == 1
        assert _counter("engine.retries") >= 1
        assert _counter("engine.quarantined_tasks") == 0

    @pytest.mark.slow
    def test_async_futures_survive_a_worker_kill(self):
        engine = _chaos_engine(
            ProcessBackend(n_workers=2, retry_policy=FAST_RETRY), "crash@0"
        )
        evaluator = _make_evaluator()
        try:
            pending = engine.submit_tasks(evaluator, _sample_tasks())
            records = [record for _, record
                       in engine.as_completed(evaluator, pending)]
        finally:
            engine.close()
        assert sorted(_rows(records)) == sorted(_reference_rows())
        assert _counter("engine.worker_crashes") == 1

    @pytest.mark.slow
    def test_sticky_crash_quarantines_for_real(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        engine = _chaos_engine(
            ProcessBackend(n_workers=2, retry_policy=policy), "crash@1!"
        )
        try:
            records = engine.run(_make_evaluator(), _sample_tasks())
        finally:
            engine.close()
        rows = _rows(records)
        failed = [row for row in rows if row[4] is not None]
        assert [(row[2], row[4]) for row in failed] \
            == [(0.0, FAILURE_KIND_CRASH)]
        surviving = {row for row in rows if row[4] is None}
        assert surviving == {row for row in _reference_rows()
                             if row[0] != failed[0][0]}
        assert _counter("engine.quarantined_tasks") == 1

    @pytest.mark.slow
    def test_watchdog_kills_hung_evaluations(self):
        engine = _chaos_engine(
            ProcessBackend(n_workers=2, eval_timeout=1.0,
                           retry_policy=FAST_RETRY),
            "delay@1:30",
        )
        start = time.monotonic()
        try:
            records = engine.run(_make_evaluator(), _sample_tasks(4))
        finally:
            engine.close()
        assert time.monotonic() - start < 20.0  # nowhere near the 30s hang
        rows = _rows(records)
        failed = [row for row in rows if row[4] is not None]
        assert [(row[2], row[4]) for row in failed] \
            == [(0.0, FAILURE_KIND_TIMEOUT)]
        surviving = {row for row in rows if row[4] is None}
        assert surviving == {row for row in _reference_rows(4)
                             if row[0] != failed[0][0]}
        assert _counter("engine.eval_timeouts") == 1

    @pytest.mark.slow
    def test_acceptance_matrix_kill_plus_hang_search(self):
        """ISSUE acceptance: >=1 kill + >=1 hang through a process search.

        The run completes, surviving records are bit-for-bit identical to
        the no-fault run, the hung trial carries ``failure_kind``, the
        trial budget never overshoots, and the failure counters match the
        plan (one kill, one hang).
        """
        def search(engine, max_trials=8):
            problem = _make_problem()
            problem.evaluator.set_engine(engine)
            searcher = make_search_algorithm("rs", random_state=0,
                                             batch_size=4)
            try:
                return searcher.search(problem, max_trials=max_trials)
            finally:
                if engine is not None:
                    engine.close()

        reference = _search_rows(search(None))
        plan = "crash@1,delay@3:30!"
        results = []
        for _ in range(2):  # same plan twice -> identical records
            get_registry().reset()
            engine = _chaos_engine(
                ProcessBackend(n_workers=2, eval_timeout=1.5,
                               retry_policy=FAST_RETRY),
                plan,
            )
            results.append(_search_rows(search(engine)))
            assert _counter("engine.worker_crashes") == 1
            assert _counter("engine.eval_timeouts") == 1
        first, second = results
        assert first == second
        assert len(first) == 8  # budget: exactly max_trials, no overshoot
        failed = [row for row in first if row[4] is not None]
        assert [(row[2], row[4]) for row in failed] \
            == [(0.0, FAILURE_KIND_TIMEOUT)]
        surviving = {row for row in first if row[4] is None}
        assert surviving == {row for row in reference
                             if row[0] != failed[0][0]}
