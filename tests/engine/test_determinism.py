"""Engine determinism: every backend produces identical search results.

This is the core guarantee of the execution engine (and of the
order-independent subsample seeding in the evaluator): running the same
searcher on the same problem must yield the same ``best_accuracy`` and the
same trial set whether the evaluation batches run serially, on a thread
pool or on a process pool.
"""

import pytest

from repro.core.problem import AutoFPProblem
from repro.core.search_space import SearchSpace
from repro.datasets.synthetic import distort_features, make_classification
from repro.engine import ExecutionEngine
from repro.models.linear import LogisticRegression
from repro.search import make_search_algorithm

#: (algorithm name, constructor kwargs) — one batched searcher per category
SEARCHERS = [
    ("rs", {"batch_size": 4}),
    ("pbt", {}),
    ("hyperband", {}),
]


def _make_problem(engine=None):
    X, y = make_classification(n_samples=140, n_features=8, n_classes=2,
                               class_sep=2.0, random_state=2)
    X = distort_features(X, random_state=2)
    problem = AutoFPProblem.from_arrays(
        X, y, LogisticRegression(max_iter=60), space=SearchSpace(max_length=3),
        random_state=0, name="determinism/lr",
    )
    problem.evaluator.set_engine(engine)
    return problem


def _trial_set(result):
    return [(t.pipeline.spec(), round(t.fidelity, 6), t.accuracy, t.iteration)
            for t in result.trials]


def _run(algorithm, kwargs, engine):
    searcher = make_search_algorithm(algorithm, random_state=0, **kwargs)
    result = searcher.search(_make_problem(engine), max_trials=14)
    if engine is not None:
        engine.close()  # release pooled workers eagerly between runs
    return result


class TestBackendDeterminism:
    @pytest.mark.parametrize("algorithm,kwargs", SEARCHERS)
    def test_thread_backend_matches_serial(self, algorithm, kwargs):
        serial = _run(algorithm, kwargs, None)
        threaded = _run(algorithm, kwargs, ExecutionEngine("thread", n_workers=2))
        assert threaded.best_accuracy == serial.best_accuracy
        assert _trial_set(threaded) == _trial_set(serial)

    @pytest.mark.parametrize("algorithm,kwargs", SEARCHERS)
    def test_process_backend_matches_serial(self, algorithm, kwargs):
        serial = _run(algorithm, kwargs, None)
        processed = _run(algorithm, kwargs, ExecutionEngine("process", n_workers=2))
        assert processed.best_accuracy == serial.best_accuracy
        assert _trial_set(processed) == _trial_set(serial)

    def test_serial_engine_matches_no_engine(self):
        # The explicit serial backend must be indistinguishable from the
        # evaluator's plain serial path.
        for algorithm, kwargs in SEARCHERS:
            bare = _run(algorithm, kwargs, None)
            engined = _run(algorithm, kwargs, ExecutionEngine("serial"))
            assert _trial_set(engined) == _trial_set(bare)


class TestSerialTimeBudgetSemantics:
    def test_time_budget_stops_mid_batch_without_engine(self):
        """The no-engine path checks wall-clock budgets between evaluations."""
        from repro.core.budget import TimeBudget

        problem = _make_problem(None)
        now = [0.0]
        original_evaluate = problem.evaluator.evaluate

        def ticking_evaluate(*args, **kwargs):
            now[0] += 1.0  # each evaluation "takes" one fake second
            return original_evaluate(*args, **kwargs)

        problem.evaluator.evaluate = ticking_evaluate
        searcher = make_search_algorithm("pbt", random_state=0)  # n_init = 8
        result = searcher.search(problem, budget=TimeBudget(3.5,
                                                            clock=lambda: now[0]))
        # The budget expires inside PBT's initial population batch: only
        # the evaluations that fit ran, not the whole batch of 8.
        assert len(result) == 4


class TestBatchedRandomSearchEquivalence:
    def test_batched_rs_samples_the_same_pipelines(self):
        """batch_size=k consumes the RNG exactly like k single iterations."""
        single = _run("rs", {"batch_size": 1}, None)
        batched = _run("rs", {"batch_size": 7}, None)
        assert [t.pipeline.spec() for t in single.trials] == \
            [t.pipeline.spec() for t in batched.trials]
        assert batched.best_accuracy == single.best_accuracy
