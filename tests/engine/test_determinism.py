"""Engine determinism: every backend produces identical search results.

This is the core guarantee of the execution engine (and of the
order-independent subsample seeding in the evaluator): running the same
searcher on the same problem must yield the same ``best_accuracy`` and the
same trial set whether the evaluation batches run serially, on a thread
pool, on a process pool or on registered remote workers — even when one
of those workers dies mid-search.

The cross-backend determinism *matrix* extends the guarantee to the
completion-driven driver: for **every** registry algorithm (the paper's 15
plus the extensions, including ASHA) the serial async run is bit-for-bit
identical to the serial sync run, and thread/process async runs are
seed-reproducible given a fixed completion order (one worker) with trial
values identical to what the serial evaluator computes for the same
``(pipeline, fidelity)``.
"""

import pytest

from repro.core.problem import AutoFPProblem
from repro.core.search_space import SearchSpace
from repro.datasets.synthetic import distort_features, make_classification
from repro.engine import ExecutionEngine
from repro.models.linear import LogisticRegression
from repro.search import make_search_algorithm
from repro.search.registry import (
    ALL_ALGORITHM_NAMES,
    EXTENSION_ALGORITHM_CLASSES,
)

#: (algorithm name, constructor kwargs) — one batched searcher per category
SEARCHERS = [
    ("rs", {"batch_size": 4}),
    ("pbt", {}),
    ("hyperband", {}),
]

#: every resolvable algorithm: the paper's 15 plus the extensions (ASHA...)
MATRIX_ALGORITHMS = ALL_ALGORITHM_NAMES + tuple(sorted(EXTENSION_ALGORITHM_CLASSES))


def _make_problem(engine=None, prefix_cache_bytes=None,
                  telemetry_mode="off", telemetry_dir=None):
    from repro.core.context import ExecutionContext

    X, y = make_classification(n_samples=140, n_features=8, n_classes=2,
                               class_sep=2.0, random_state=2)
    X = distort_features(X, random_state=2)
    problem = AutoFPProblem.from_arrays(
        X, y, LogisticRegression(max_iter=60), space=SearchSpace(max_length=3),
        random_state=0, name="determinism/lr",
        context=ExecutionContext(prefix_cache_bytes=prefix_cache_bytes,
                                 telemetry_mode=telemetry_mode,
                                 telemetry_dir=telemetry_dir),
    )
    problem.evaluator.set_engine(engine)
    return problem


def _trial_set(result):
    return [(t.pipeline.spec(), round(t.fidelity, 6), t.accuracy, t.iteration)
            for t in result.trials]


def _run(algorithm, kwargs, engine):
    searcher = make_search_algorithm(algorithm, random_state=0, **kwargs)
    result = searcher.search(_make_problem(engine), max_trials=14)
    if engine is not None:
        engine.close()  # release pooled workers eagerly between runs
    return result


class TestBackendDeterminism:
    @pytest.mark.parametrize("algorithm,kwargs", SEARCHERS)
    def test_thread_backend_matches_serial(self, algorithm, kwargs):
        serial = _run(algorithm, kwargs, None)
        threaded = _run(algorithm, kwargs, ExecutionEngine("thread", n_workers=2))
        assert threaded.best_accuracy == serial.best_accuracy
        assert _trial_set(threaded) == _trial_set(serial)

    @pytest.mark.parametrize("algorithm,kwargs", SEARCHERS)
    def test_process_backend_matches_serial(self, algorithm, kwargs):
        serial = _run(algorithm, kwargs, None)
        processed = _run(algorithm, kwargs, ExecutionEngine("process", n_workers=2))
        assert processed.best_accuracy == serial.best_accuracy
        assert _trial_set(processed) == _trial_set(serial)

    def test_serial_engine_matches_no_engine(self):
        # The explicit serial backend must be indistinguishable from the
        # evaluator's plain serial path.
        for algorithm, kwargs in SEARCHERS:
            bare = _run(algorithm, kwargs, None)
            engined = _run(algorithm, kwargs, ExecutionEngine("serial"))
            assert _trial_set(engined) == _trial_set(bare)


@pytest.fixture(scope="module")
def matrix_problem():
    """One shared problem for the whole matrix.

    Sync and async runs of the same algorithm then answer repeated
    pipelines from the same memoized values, which keeps the 2x-per-
    algorithm sweep cheap without affecting the compared trial sets
    (evaluation values are order-independent by construction).
    """
    return _make_problem(None)


class TestCrossBackendDeterminismMatrix:
    @pytest.mark.parametrize("algorithm", MATRIX_ALGORITHMS)
    def test_serial_async_bit_for_bit_identical_to_sync(self, algorithm,
                                                        matrix_problem):
        sync = make_search_algorithm(algorithm, random_state=0).search(
            matrix_problem, max_trials=8
        )
        asynchronous = make_search_algorithm(algorithm, random_state=0).search(
            matrix_problem, max_trials=8, driver="async"
        )
        assert asynchronous.algorithm == sync.algorithm
        assert _trial_set(asynchronous) == _trial_set(sync)
        assert asynchronous.best_accuracy == sync.best_accuracy

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_async_seed_reproducible_with_fixed_completion_order(
            self, backend):
        """One worker fixes the completion order; two runs must be identical."""
        runs = []
        for _ in range(2):
            engine = ExecutionEngine(backend, n_workers=1)
            searcher = make_search_algorithm("asha", random_state=0)
            result = searcher.search(_make_problem(engine), max_trials=10,
                                     driver="async")
            engine.close()
            runs.append(_trial_set(result))
        assert runs[0] == runs[1]

    def test_parallel_async_trial_values_match_serial_evaluator(self):
        """Scheduling may reorder trials but can never change their values."""
        engine = ExecutionEngine("thread", n_workers=3)
        result = make_search_algorithm("rs", random_state=0, batch_size=4).search(
            _make_problem(engine), max_trials=12, driver="async"
        )
        engine.close()
        reference = _make_problem(None).evaluator
        assert len(result) == 12
        for trial in result.trials:
            expected = reference.evaluate(trial.pipeline,
                                          fidelity=trial.fidelity)
            assert trial.accuracy == expected.accuracy


#: (algorithm, kwargs) cells of the remote-backend column: evolution and
#: TPE cover batch dispatch and surrogate-driven sequential proposal.
REMOTE_SEARCHERS = [
    ("tevo_h", {}),
    ("tpe", {}),
]


class TestRemoteBackendDeterminism:
    """The distributed backend is bit-for-bit identical to serial.

    Two loopback workers on an ephemeral port lease every evaluation over
    the wire (pickled tasks, JSON-line protocol) — and the trial set must
    still equal the serial run's, under both drivers.  Async cells drive
    the completion loop with in-flight depth 1: that fixes the completion
    order (the same configuration the async matrix above declares
    reproducible) while every evaluation still round-trips through the
    worker fleet.  The chaos cell kills a live worker mid-search
    (``drop_worker``): membership shrinks, its leases (if any) retry on
    the survivor, and the surviving records still converge to the
    no-fault run.
    """

    def _search(self, algorithm, kwargs, problem, driver):
        searcher = make_search_algorithm(algorithm, random_state=0, **kwargs)
        if driver == "async":
            from repro.search.async_driver import AsyncSearchDriver

            return AsyncSearchDriver(searcher, n_workers=1).search(
                problem, max_trials=14)
        return searcher.search(problem, max_trials=14)

    def _run_remote(self, algorithm, kwargs, driver, chaos=None):
        from repro.engine.chaos import ChaosBackend
        from repro.engine.faults import RetryPolicy
        from repro.engine.remote import start_loopback

        backend, workers = start_loopback(
            2, retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0,
                                        jitter=0.0),
        )
        if chaos is not None:
            backend = ChaosBackend(backend, chaos)
        engine = ExecutionEngine(backend)
        try:
            result = self._search(algorithm, kwargs, _make_problem(engine),
                                  driver)
        finally:
            engine.close()
            for worker in workers:
                worker.stop()
        return result

    @pytest.mark.parametrize("algorithm,kwargs", REMOTE_SEARCHERS)
    @pytest.mark.parametrize("driver", ["sync", "async"])
    def test_remote_bit_for_bit_identical_to_serial(self, algorithm, kwargs,
                                                    driver):
        serial = self._search(algorithm, kwargs, _make_problem(None), driver)
        remote = self._run_remote(algorithm, kwargs, driver)
        assert _trial_set(remote) == _trial_set(serial)
        assert remote.best_accuracy == serial.best_accuracy

    @pytest.mark.parametrize("driver", ["sync", "async"])
    def test_drop_worker_mid_search_converges_identically(self, driver):
        from repro.telemetry.metrics import get_registry

        serial = self._search("tevo_h", {}, _make_problem(None), driver)
        misses_before = get_registry().counter(
            "engine.worker_heartbeat_misses").value
        chaotic = self._run_remote("tevo_h", {}, driver,
                                   chaos="drop_worker@3")
        assert _trial_set(chaotic) == _trial_set(serial)
        assert chaotic.best_accuracy == serial.best_accuracy
        # The fault really fired: the coordinator recorded the death.
        assert get_registry().counter(
            "engine.worker_heartbeat_misses").value > misses_before


#: (backend, n_workers, driver) cells of the prefix-cache matrix.  Sync
#: cells use two workers (batch merge-back is order-stable); async
#: thread/process cells use one worker, which fixes the completion order —
#: the same configuration the async matrix above declares reproducible.
PREFIX_CACHE_CELLS = [
    (None, 1, "sync"),
    ("serial", 1, "sync"),
    ("thread", 2, "sync"),
    ("process", 2, "sync"),
    (None, 1, "async"),
    ("thread", 1, "async"),
    ("process", 1, "async"),
]


class TestPrefixCacheDeterminism:
    """Prefix-transform reuse never changes results, only Prep time.

    The non-negotiable contract of ``prefix_cache_bytes``: because a cached
    prefix stores the exact arrays the cold path would recompute, every
    backend/driver combination with the cache on is bit-for-bit identical
    to the same combination with the cache off.
    """

    def _run_pair(self, algorithm, kwargs, backend, n_workers, driver):
        results = []
        for prefix_cache_bytes in (None, 1 << 26):
            engine = None if backend is None else \
                ExecutionEngine(backend, n_workers=n_workers)
            searcher = make_search_algorithm(algorithm, random_state=0, **kwargs)
            result = searcher.search(
                _make_problem(engine, prefix_cache_bytes=prefix_cache_bytes),
                max_trials=12, driver=driver,
            )
            if engine is not None:
                engine.close()
            results.append(result)
        return results

    @pytest.mark.parametrize("backend,n_workers,driver", PREFIX_CACHE_CELLS)
    def test_cache_on_bit_for_bit_identical_to_cache_off(self, backend,
                                                         n_workers, driver):
        off, on = self._run_pair("pbt", {}, backend, n_workers, driver)
        assert _trial_set(on) == _trial_set(off)
        assert on.best_accuracy == off.best_accuracy

    def test_progressive_growth_reuses_prefixes_without_changing_results(self):
        """PNAS extends its beam step by step — the prefix cache's best case
        must still be invisible in the results."""
        off, on = self._run_pair("pmne", {"beam_width": 3}, None, 1, "sync")
        assert _trial_set(on) == _trial_set(off)


#: (algorithm, kwargs) cells of the checkpoint/resume matrix: one per
#: paper category with non-trivial internal state — evolution (TEVO_H),
#: progressive NAS (PMNE, surrogate + beam), TPE (density estimators) and
#: ASHA (rungs + promotion sets, fractional fidelities)
CHECKPOINT_ALGORITHMS = [
    ("tevo_h", {}),
    ("pmne", {"beam_width": 3}),
    ("tpe", {}),
    ("asha", {}),
    # Anneal aliases the session RNG in _setup (acceptance draws and
    # propose draws interleave on one stream): the regression case for
    # checkpointing the generator together with the algorithm state.
    ("anneal", {}),
]


class TestCheckpointResumeDeterminism:
    """An interrupted+resumed session finishes bit-for-bit identical.

    The SearchSession acceptance contract: checkpoint after any completed
    trial, kill the session, resume from the document (fresh problem
    object, fresh evaluator caches, fresh process for all the state
    carried) — the final trial set must equal an uninterrupted run's,
    under both the synchronous and the completion-driven driver.
    """

    def _interrupt_and_resume(self, algorithm, kwargs, driver, tmp_path,
                              stop_at):
        from repro.search import SearchSession

        path = tmp_path / f"{algorithm}-{driver}-{stop_at}.checkpoint"

        def interrupt(session, record):
            if len(session.result) == stop_at:
                session.checkpoint(path)
                session.stop()

        session = SearchSession(
            _make_problem(None),
            make_search_algorithm(algorithm, random_state=0, **kwargs),
            on_trial=interrupt,
        )
        partial = session.run(max_trials=12, driver=driver)
        assert len(partial) == stop_at
        # Resume against a *fresh* problem (cold caches), as a new process
        # would after loading the document.
        resumed = SearchSession.resume(path, problem=_make_problem(None))
        return resumed.run()

    @pytest.mark.parametrize("algorithm,kwargs", CHECKPOINT_ALGORITHMS)
    @pytest.mark.parametrize("driver", ["sync", "async"])
    def test_interrupted_run_finishes_bit_for_bit_identical(
            self, algorithm, kwargs, driver, tmp_path):
        resumed = self._interrupt_and_resume(algorithm, kwargs, driver,
                                             tmp_path, stop_at=5)
        reference = make_search_algorithm(
            algorithm, random_state=0, **kwargs
        ).search(_make_problem(None), max_trials=12, driver=driver)
        assert _trial_set(resumed) == _trial_set(reference)
        assert resumed.best_accuracy == reference.best_accuracy

    def test_double_interruption_still_bit_for_bit(self, tmp_path):
        """Checkpoint → kill → resume → checkpoint → kill → resume."""
        from repro.search import SearchSession

        path = tmp_path / "twice.checkpoint"

        def interrupt_at(n):
            def hook(session, record):
                if len(session.result) == n:
                    session.checkpoint(path)
                    session.stop()
            return hook

        session = SearchSession(
            _make_problem(None), make_search_algorithm("tevo_h", random_state=0),
            on_trial=interrupt_at(3),
        )
        session.run(max_trials=12)
        second = SearchSession.resume(path, problem=_make_problem(None),
                                      on_trial=interrupt_at(8))
        second.run()
        third = SearchSession.resume(path, problem=_make_problem(None))
        final = third.run()
        reference = make_search_algorithm("tevo_h", random_state=0).search(
            _make_problem(None), max_trials=12)
        assert _trial_set(final) == _trial_set(reference)

    def test_mid_batch_checkpoint_resumes_bit_for_bit(self, tmp_path):
        """PBT observes its 8-wide initial batch one record at a time; a
        checkpoint taken two observations in carries the evaluated-but-
        unobserved remainder and must still resume exactly."""
        from repro.search import SearchSession

        path = tmp_path / "midbatch.checkpoint"

        def interrupt(session, record):
            if len(session.result) == 2:
                session.checkpoint(path)
                session.stop()

        session = SearchSession(_make_problem(None),
                                make_search_algorithm("pbt", random_state=0),
                                on_trial=interrupt)
        session.run(max_trials=12)
        resumed = SearchSession.resume(path, problem=_make_problem(None))
        final = resumed.run()
        reference = make_search_algorithm("pbt", random_state=0).search(
            _make_problem(None), max_trials=12)
        assert _trial_set(final) == _trial_set(reference)


class TestSerialTimeBudgetSemantics:
    def test_time_budget_stops_mid_batch_without_engine(self):
        """The no-engine path checks wall-clock budgets between evaluations."""
        from repro.core.budget import TimeBudget

        problem = _make_problem(None)
        now = [0.0]
        original_evaluate = problem.evaluator.evaluate

        def ticking_evaluate(*args, **kwargs):
            now[0] += 1.0  # each evaluation "takes" one fake second
            return original_evaluate(*args, **kwargs)

        problem.evaluator.evaluate = ticking_evaluate
        searcher = make_search_algorithm("pbt", random_state=0)  # n_init = 8
        result = searcher.search(problem, budget=TimeBudget(3.5,
                                                            clock=lambda: now[0]))
        # The budget expires inside PBT's initial population batch: only
        # the evaluations that fit ran, not the whole batch of 8.
        assert len(result) == 4


class TestBatchedRandomSearchEquivalence:
    def test_batched_rs_samples_the_same_pipelines(self):
        """batch_size=k consumes the RNG exactly like k single iterations."""
        single = _run("rs", {"batch_size": 1}, None)
        batched = _run("rs", {"batch_size": 7}, None)
        assert [t.pipeline.spec() for t in single.trials] == \
            [t.pipeline.spec() for t in batched.trials]
        assert batched.best_accuracy == single.best_accuracy


#: (backend, n_workers, driver) cells of the telemetry matrix — the same
#: configurations the prefix-cache matrix declares deterministic.
TELEMETRY_CELLS = PREFIX_CACHE_CELLS


class TestTelemetryDeterminism:
    """Observability never observes itself into the results.

    The telemetry tentpole's acceptance contract: a run with
    ``telemetry_mode="trace"`` (full span sink + per-trial metrics) is
    bit-for-bit identical to the same run with telemetry off, on every
    backend and driver.  Spans time the phases, counters tally the
    caches — nothing feeds back into proposal order, RNG consumption or
    evaluation values.
    """

    def _run_pair(self, tmp_path, backend, n_workers, driver):
        results = []
        for mode, directory in (("off", None), ("trace", tmp_path)):
            engine = None if backend is None else \
                ExecutionEngine(backend, n_workers=n_workers)
            searcher = make_search_algorithm("pbt", random_state=0)
            result = searcher.search(
                _make_problem(engine, telemetry_mode=mode,
                              telemetry_dir=directory),
                max_trials=12, driver=driver,
            )
            if engine is not None:
                engine.close()
            results.append(result)
        return results

    @pytest.mark.parametrize("backend,n_workers,driver", TELEMETRY_CELLS)
    def test_trace_mode_bit_for_bit_identical_to_off(self, tmp_path, backend,
                                                     n_workers, driver):
        off, traced = self._run_pair(tmp_path, backend, n_workers, driver)
        assert _trial_set(traced) == _trial_set(off)
        assert traced.best_accuracy == off.best_accuracy
        # The traced run really did trace: the sink holds a span per trial.
        from repro.telemetry.tracing import read_trace

        events = read_trace(tmp_path / "trace.jsonl")
        assert sum(e["name"] == "trial" for e in events) == len(traced.trials)

    def test_counters_mode_matches_off_serially(self):
        off = make_search_algorithm("pbt", random_state=0).search(
            _make_problem(None), max_trials=12
        )
        counted = make_search_algorithm("pbt", random_state=0).search(
            _make_problem(None, telemetry_mode="counters"), max_trials=12
        )
        assert _trial_set(counted) == _trial_set(off)
