"""Unit suite for the distributed ``"remote"`` backend (PR-10 tentpole).

Exercises the wire protocol (address specs, blob/message framing), fleet
lifecycle (registration, elastic capacity, graceful vs ungraceful
death), batch equality against the serial backend, the recovery paths
(in-flight loss to a dropped worker, sticky-fault quarantine, blown
deadlines, heartbeat-miss detection), and the shared persistent-cache
result substrate.  The bit-for-bit search-level matrix lives in
``tests/engine/test_determinism.py``; this file pins the mechanisms that
matrix relies on.

All fleets here are in-process loopback workers
(:func:`repro.engine.remote.start_loopback`) talking over real TCP
sockets on ephemeral ports, so every test crosses the actual wire.
"""

import socket
import time

import numpy as np
import pytest

from repro.core import PipelineEvaluator
from repro.core.search_space import SearchSpace
from repro.datasets.synthetic import distort_features, make_classification
from repro.engine import ChaosBackend, EvalTask, ExecutionEngine, RetryPolicy
from repro.engine.backends import make_backend
from repro.engine.remote import (
    RemoteBackend,
    RemoteProtocolError,
    RemoteWorker,
    format_address,
    parse_address,
    start_loopback,
)
from repro.engine.remote.protocol import (
    PROTOCOL_VERSION,
    dump_blob,
    load_blob,
    read_message,
    send_message,
)
from repro.exceptions import ValidationError
from repro.io.evalcache import open_eval_cache
from repro.models.linear import LogisticRegression
from repro.telemetry.metrics import get_registry

#: zero-sleep policy so recovery paths run at full speed under test
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


@pytest.fixture(autouse=True)
def _reset_registry():
    get_registry().reset()
    yield
    get_registry().reset()


def _counter(name):
    return get_registry().counter(name).value


def _gauge(name):
    return get_registry().gauge(name).value


def _make_evaluator(cache_dir=None):
    X, y = make_classification(n_samples=110, n_features=6, class_sep=2.0,
                               random_state=7)
    X = distort_features(X, random_state=7)
    return PipelineEvaluator.from_dataset(
        X, y, LogisticRegression(max_iter=40), random_state=0,
        cache_dir=cache_dir,
    )


def _sample_tasks(n=5):
    # Distinct specs only, same rationale as tests/engine/test_faults.py:
    # duplicate tasks alias dispatch groups and blur index targeting.
    space = SearchSpace(max_length=3)
    rng = np.random.default_rng(0)
    pipelines: list = []
    seen: set = set()
    while len(pipelines) < n:
        for pipeline in space.sample_pipelines(n, rng):
            if pipeline.spec() not in seen and len(pipelines) < n:
                seen.add(pipeline.spec())
                pipelines.append(pipeline)
    return [EvalTask(pipeline) for pipeline in pipelines]


def _rows(records):
    return [(r.pipeline.spec(), round(r.fidelity, 6), r.accuracy,
             r.iteration, r.failure_kind) for r in records]


def _reference_rows(n=5):
    engine = ExecutionEngine("serial")
    try:
        return _rows(engine.run(_make_evaluator(), _sample_tasks(n)))
    finally:
        engine.close()


def _wait_until(predicate, timeout=5.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class _Fleet:
    """Context manager around :func:`start_loopback` with full teardown."""

    def __init__(self, size=2, **backend_options):
        # ``size`` is the fleet headcount; ``n_workers`` stays free for
        # the backend's capacity-cap option of the same name
        self.size = size
        self.backend_options = backend_options
        self.backend = None
        self.workers = []

    def __enter__(self):
        self.backend, self.workers = start_loopback(
            self.size, **self.backend_options)
        return self.backend

    def __exit__(self, *exc):
        self.backend.close()
        for worker in self.workers:
            worker.stop()


# --------------------------------------------------------------- protocol
class TestProtocol:
    def test_parse_address_variants(self):
        assert parse_address(("10.0.0.9", 80)) == ("10.0.0.9", 80)
        assert parse_address("box.example:1234") == ("box.example", 1234)
        assert parse_address(":8080") == ("127.0.0.1", 8080)
        assert parse_address("9000") == ("127.0.0.1", 9000)
        assert parse_address("0.0.0.0:0") == ("0.0.0.0", 0)

    def test_parse_address_rejects_garbage(self):
        with pytest.raises(ValidationError):
            parse_address("box:not-a-port")
        with pytest.raises(ValidationError):
            parse_address("box:70000")
        with pytest.raises(ValidationError):
            parse_address(("box", -1))

    def test_format_address_round_trips(self):
        assert format_address(("127.0.0.1", 9000)) == "127.0.0.1:9000"
        assert parse_address(format_address(("h", 5))) == ("h", 5)

    def test_blob_round_trip(self):
        payload = {"accuracy": 0.5, "spec": (("scaler", "standard"),)}
        blob = dump_blob(payload)
        assert isinstance(blob, str)
        assert load_blob(blob) == payload

    def test_message_round_trip_and_eof(self):
        left, right = socket.socketpair()
        rfile = right.makefile("rb")
        try:
            send_message(left, {"type": "heartbeat", "seq": 3})
            assert read_message(rfile) == {"type": "heartbeat", "seq": 3}
            left.close()
            assert read_message(rfile) is None  # EOF, not an exception
        finally:
            rfile.close()
            right.close()

    @pytest.mark.parametrize("line", [
        b"not json at all\n",       # unparseable
        b"[1, 2, 3]\n",             # parseable, not an object
        b'{"untyped": true}\n',     # object without a "type"
    ])
    def test_malformed_messages_raise(self, line):
        left, right = socket.socketpair()
        rfile = right.makefile("rb")
        try:
            left.sendall(line)
            with pytest.raises(RemoteProtocolError):
                read_message(rfile)
        finally:
            rfile.close()
            right.close()
            left.close()


# -------------------------------------------------------------- lifecycle
class TestFleetLifecycle:
    def test_loopback_fleet_registers_and_closes_gracefully(self):
        with _Fleet(2) as backend:
            assert backend.worker_count == 2
            assert backend.n_workers == 2
            host, port = parse_address(backend.coordinator_address)
            assert host == "127.0.0.1" and port > 0
            assert _gauge("engine.remote_workers") == 2
        # shutdown was graceful on both sides: no death counters
        assert _counter("engine.worker_crashes") == 0
        assert _counter("engine.worker_heartbeat_misses") == 0

    def test_capacity_is_elastic_and_capped(self):
        with _Fleet(2, cores_each=2, n_workers=3) as backend:
            assert backend.worker_count == 2
            # fleet advertises 4 cores; the cap bounds what the engine sees
            assert backend.n_workers == 3

    def test_empty_fleet_queues_rather_than_fails(self):
        backend = RemoteBackend()
        try:
            assert backend.worker_count == 0
            assert backend.n_workers == 1  # dispatch-heuristic floor
            assert not backend.wait_for_workers(1, timeout=0.1)
            assert backend.drop_worker() is None  # nothing to drop
        finally:
            backend.close()

    def test_n_workers_cap_validation(self):
        with pytest.raises(ValidationError, match="n_workers"):
            RemoteBackend(n_workers=0)

    def test_make_backend_resolves_remote(self):
        backend = make_backend("remote", worker_timeout=5.0)
        try:
            assert isinstance(backend, RemoteBackend)
        finally:
            backend.close()

    def test_remote_options_rejected_for_local_backends(self):
        with pytest.raises(ValidationError, match="remote"):
            make_backend("serial", remote_coordinator="127.0.0.1:0")

    def test_worker_rejects_bad_crash_mode(self):
        with pytest.raises(ValueError, match="crash_mode"):
            RemoteWorker("127.0.0.1:0", crash_mode="explode")

    def test_worker_gives_up_on_unreachable_coordinator(self):
        # a bound-then-closed socket yields a port nothing listens on
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        worker = RemoteWorker(("127.0.0.1", port), connect_timeout=0.3)
        assert worker.run() == 1


# --------------------------------------------------------- batch equality
class TestBatchEquality:
    def test_remote_batch_matches_serial(self):
        reference = _reference_rows(5)
        with _Fleet(2) as backend:
            engine = ExecutionEngine(backend)
            rows = _rows(engine.run(_make_evaluator(), _sample_tasks(5)))
        assert rows == reference


# ---------------------------------------------------------------- recovery
class TestRecovery:
    def test_in_flight_loss_retries_on_survivor(self):
        # Task 0 carries a 1s delay fault and leases to worker 0 (lowest
        # id, least loaded).  Task 1's dispatch index fires drop_worker,
        # which disconnects worker 0 *while task 0 is in flight*: its
        # future fails with WorkerCrashError, the non-sticky delay is
        # stripped, and the retry lands on the survivor.
        with _Fleet(2, retry_policy=FAST_RETRY) as backend:
            chaos = ChaosBackend(backend, "delay@0:1.0,drop_worker@1")
            evaluator = _make_evaluator()
            tasks = _sample_tasks(2)
            slow = chaos.submit_evaluation(
                evaluator, (tasks[0].pipeline, tasks[0].fidelity))
            assert _wait_until(lambda: slow.running(), timeout=5.0)
            clean = chaos.submit_evaluation(
                evaluator, (tasks[1].pipeline, tasks[1].fidelity))
            assert clean.result().get("failure_kind") is None
            recovered = slow.result()
            assert recovered.get("failure_kind") is None
            assert recovered["accuracy"] is not None
            assert backend.worker_count == 1
        assert _counter("engine.retries") >= 1
        assert _counter("engine.worker_crashes") == 1
        assert _counter("engine.worker_heartbeat_misses") == 1

    def test_sticky_fault_quarantines_poison_task(self):
        reference = _reference_rows(3)
        with _Fleet(2, retry_policy=FAST_RETRY) as backend:
            engine = ExecutionEngine(ChaosBackend(backend, "error@1!"))
            rows = _rows(engine.run(_make_evaluator(), _sample_tasks(3)))
        assert rows[0] == reference[0]
        assert rows[2] == reference[2]
        spec, fidelity, accuracy, _, failure_kind = rows[1]
        assert failure_kind == "worker_crash"
        assert accuracy == 0.0  # failure entries score zero
        # exhausted FAST_RETRY: 2 resubmissions, then quarantine
        assert _counter("engine.retries") == 2
        assert _counter("engine.quarantined_tasks") == 1

    def test_blown_deadline_scores_as_timeout(self):
        # 3 workers so the clean tasks never queue behind the hang: the
        # deadline covers queue time, so a 2-worker fleet could blow it
        # on an innocent task that waited for a busy slot.  The margin
        # between the deadline and a clean evaluation is deliberately
        # wide — a loaded CI box must never time an innocent task out.
        reference = _reference_rows(3)
        with _Fleet(3, eval_timeout=2.0,
                    retry_policy=FAST_RETRY) as backend:
            engine = ExecutionEngine(ChaosBackend(backend, "delay@1:6.0"))
            rows = _rows(engine.run(_make_evaluator(), _sample_tasks(3)))
        assert rows[0] == reference[0]
        assert rows[2] == reference[2]
        assert rows[1][4] == "timeout"
        assert _counter("engine.eval_timeouts") >= 1
        assert _counter("engine.quarantined_tasks") == 0

    def test_abrupt_worker_death_is_counted_and_survivable(self):
        reference = _reference_rows(4)
        backend, workers = start_loopback(2, retry_policy=FAST_RETRY)
        try:
            # stop() slams the socket shut without a goodbye — the
            # coordinator must observe an ungraceful death
            workers[0].stop()
            assert _wait_until(lambda: backend.worker_count == 1)
            assert _counter("engine.worker_crashes") == 1
            engine = ExecutionEngine(backend)
            rows = _rows(engine.run(_make_evaluator(), _sample_tasks(4)))
        finally:
            backend.close()
            for worker in workers:
                worker.stop()
        assert rows == reference

    def test_heartbeat_silence_kills_registration(self):
        backend = RemoteBackend(worker_timeout=0.3)
        sock = None
        try:
            sock = socket.create_connection(
                parse_address(backend.coordinator_address), timeout=5.0)
            send_message(sock, {"type": "register", "cores": 1, "pid": 0,
                                "version": PROTOCOL_VERSION})
            rfile = sock.makefile("rb")
            reply = read_message(rfile)
            assert reply["type"] == "registered"
            assert backend.wait_for_workers(1, timeout=5.0)
            # never heartbeat: the monitor must declare this worker dead
            assert _wait_until(lambda: backend.worker_count == 0)
            assert _counter("engine.worker_heartbeat_misses") == 1
            assert _counter("engine.worker_crashes") == 1
            rfile.close()
        finally:
            if sock is not None:
                sock.close()
            backend.close()


# --------------------------------------------------- shared result substrate
class TestSharedCacheSubstrate:
    def test_workers_publish_to_shared_cache(self, tmp_path):
        tasks = _sample_tasks(3)
        backend, workers = start_loopback(2)
        engine = ExecutionEngine(backend)
        try:
            first = _rows(engine.run(_make_evaluator(cache_dir=tmp_path),
                                     tasks))
        finally:
            engine.close()
            for worker in workers:
                worker.stop()
        # every successful result landed in the persistent substrate,
        # keyed by the evaluator fingerprint all fleet members share
        evaluator = _make_evaluator(cache_dir=tmp_path)
        disk = open_eval_cache(tmp_path, evaluator.fingerprint(),
                               max_index_entries=evaluator.cache_size)
        for task in tasks:
            key = evaluator.cache_key(task.pipeline, task.fidelity)
            assert disk.get(key) is not None
        # a second fleet mounting the same root reproduces the rows
        backend, workers = start_loopback(2)
        engine = ExecutionEngine(backend)
        try:
            second = _rows(engine.run(evaluator, tasks))
        finally:
            engine.close()
            for worker in workers:
                worker.stop()
        assert second == first
