"""The engine's futures layer and the completion-driven search driver.

Covers the PR-3 acceptance criteria: ``as_completed`` on the serial
backend is identical (order and values) to ``run()``, ``close()`` cancels
in-flight work without orphaning workers, async ``TimeBudget``
interruption refunds never-dispatched tasks and stops within one
completion, and the ``bench_async_overlap`` smoke mode passes.
"""

import importlib.util
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import Pipeline, PipelineEvaluator
from repro.core.budget import CompositeBudget, TimeBudget, TrialBudget
from repro.core.problem import AutoFPProblem
from repro.core.search_space import SearchSpace
from repro.datasets.synthetic import distort_features, make_classification
from repro.engine import BACKEND_NAMES, EvalTask, ExecutionEngine, SerialFuture
from repro.models.linear import LogisticRegression
from repro.search import AsyncSearchDriver, make_search_algorithm

BENCH_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "bench_async_overlap.py"
)


def _make_evaluator(**kwargs):
    X, y = make_classification(n_samples=110, n_features=6, class_sep=2.0,
                               random_state=7)
    return PipelineEvaluator.from_dataset(
        X, y, LogisticRegression(max_iter=40), random_state=0, **kwargs
    )


def _sample_tasks(n=5, with_duplicate=True):
    space = SearchSpace(max_length=3)
    pipelines = space.sample_pipelines(n, np.random.default_rng(0))
    tasks = [EvalTask(pipeline) for pipeline in pipelines]
    if with_duplicate:
        tasks.append(EvalTask(pipelines[0]))
    return tasks


class TestSerialFuture:
    def test_lazy_until_result(self):
        calls = []
        future = SerialFuture(lambda item: calls.append(item) or item * 2, 21)
        assert not future.done()
        assert calls == []
        assert future.result() == 42
        assert calls == [21]
        assert future.done()

    def test_cancel_before_run_prevents_work(self):
        from concurrent.futures import CancelledError

        calls = []
        future = SerialFuture(calls.append, 1)
        assert future.cancel()
        assert future.cancelled()
        future.run()  # no-op after cancellation
        assert calls == []
        with pytest.raises(CancelledError):
            future.result()

    def test_cancel_after_run_fails(self):
        future = SerialFuture(lambda item: item, 1)
        future.run()
        assert not future.cancel()

    def test_exception_re_raised_from_result(self):
        def boom(item):
            raise RuntimeError("nope")

        future = SerialFuture(boom, 1)
        future.run()
        assert future.done()
        with pytest.raises(RuntimeError):
            future.result()


class TestAsCompleted:
    def test_serial_as_completed_identical_to_run(self):
        """Acceptance: serial as_completed == run(), order and values."""
        tasks = _sample_tasks()
        reference = ExecutionEngine("serial").run(_make_evaluator(), tasks)

        evaluator = _make_evaluator()
        engine = ExecutionEngine("serial")
        pending = engine.submit_tasks(evaluator, tasks)
        streamed = list(engine.as_completed(evaluator, pending))
        assert [index for index, _ in streamed] == list(range(len(tasks)))
        assert [record.accuracy for _, record in streamed] == \
            [record.accuracy for record in reference]
        assert [record.pipeline.spec() for _, record in streamed] == \
            [record.pipeline.spec() for record in reference]

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_every_backend_matches_run_values(self, name, live_engine):
        tasks = _sample_tasks()
        reference = ExecutionEngine("serial").run(_make_evaluator(), tasks)

        evaluator = _make_evaluator()
        engine = live_engine(name)
        records = [None] * len(tasks)
        for index, record in engine.as_completed(
                evaluator, engine.submit_tasks(evaluator, tasks)):
            records[index] = record
        engine.close()
        assert [record.accuracy for record in records] == \
            [record.accuracy for record in reference]

    def test_per_completion_cache_merge_back(self):
        """Each completion lands in the cache immediately, not at batch end."""
        tasks = _sample_tasks(with_duplicate=False)
        evaluator = _make_evaluator()
        engine = ExecutionEngine("serial")
        pending = engine.submit_tasks(evaluator, tasks)
        stream = engine.as_completed(evaluator, pending)
        index, record = next(stream)
        key = evaluator.cache_key(tasks[index].pipeline, tasks[index].fidelity)
        assert evaluator.cache_lookup(key) is not None
        list(stream)  # drain

    def test_duplicate_submission_aliases_inflight_work(self):
        evaluator = _make_evaluator()
        engine = ExecutionEngine("serial")
        pipeline = Pipeline.from_names(["standard_scaler"])
        first = engine.submit_task(evaluator, EvalTask(pipeline))
        second = engine.submit_task(evaluator, EvalTask(pipeline))
        records = [engine.resolve_task(evaluator, item)
                   for item in (first, second)]
        assert evaluator.n_evaluations == 1
        assert records[0].accuracy == records[1].accuracy
        # Counter parity with run(): the duplicate is one hit, one miss —
        # aliasing must not additionally record a lookup miss at submit.
        assert evaluator.cache_info()["misses"] == 1
        assert evaluator.cache_info()["hits"] == 1

    def test_cached_submission_resolves_without_backend(self):
        evaluator = _make_evaluator()
        pipeline = Pipeline.from_names(["minmax_scaler"])
        expected = evaluator.evaluate(pipeline)

        class ExplodingBackend(ExecutionEngine("serial").backend.__class__):
            def submit_evaluation(self, evaluator, pair):
                raise AssertionError("cached task reached the backend")

        engine = ExecutionEngine(ExplodingBackend())
        pending = engine.submit_task(evaluator, EvalTask(pipeline))
        assert pending.ready()
        record = engine.resolve_task(evaluator, pending)
        assert record.accuracy == expected.accuracy

    def test_stale_inflight_entry_from_dead_evaluator_is_purged(self):
        """An abandoned submission whose evaluator died (id possibly
        re-used) must never alias a new evaluator's work."""
        import weakref

        evaluator = _make_evaluator()
        engine = ExecutionEngine("serial")
        pipeline = Pipeline.from_names(["standard_scaler"])
        key = evaluator.cache_key(EvalTask(pipeline).pipeline, 1.0)

        class Ghost:
            pass

        ghost = Ghost()
        dead_ref = weakref.ref(ghost)
        stale = engine.submit_task(_make_evaluator(), EvalTask(pipeline))
        engine._inflight[(id(evaluator), key)] = (dead_ref, stale)
        del ghost  # the stale entry's owner is now gone

        assert engine._inflight_primary(evaluator, key) is None
        assert (id(evaluator), key) not in engine._inflight
        pending = engine.submit_task(evaluator, EvalTask(pipeline))
        assert pending._primary is None  # fresh dispatch, no aliasing
        record = engine.resolve_task(evaluator, pending)
        assert record.accuracy == evaluator.evaluate(pipeline).accuracy

    def test_disk_cache_merged_per_completion(self, tmp_path):
        evaluator = _make_evaluator(cache_dir=tmp_path)
        engine = ExecutionEngine("serial")
        pending = engine.submit_task(
            evaluator, EvalTask(Pipeline.from_names(["standard_scaler"]))
        )
        engine.resolve_task(evaluator, pending)
        assert evaluator.cache_info()["disk_writes"] == 1


class TestCloseCancelsInflight:
    def test_serial_close_cancels_unconsumed_futures(self):
        evaluator = _make_evaluator()
        engine = ExecutionEngine("serial")
        pending = engine.submit_tasks(evaluator, _sample_tasks())
        engine.close()
        assert all(item.future.cancelled() for item in pending
                   if item.future is not None)
        assert evaluator.n_evaluations == 0  # nothing ever ran

    def test_thread_close_cancels_queued_work(self):
        evaluator = _make_evaluator()
        started = []

        def slow_evaluate(pipeline, fidelity,
                          _original=evaluator._evaluate_uncached):
            started.append(1)
            time.sleep(0.05)
            return _original(pipeline, fidelity)

        evaluator._evaluate_uncached = slow_evaluate
        engine = ExecutionEngine("thread", n_workers=1)
        pending = engine.submit_tasks(evaluator, _sample_tasks(8,
                                                               with_duplicate=False))
        time.sleep(0.02)  # let the single worker start the first task
        engine.close()
        # The backlog was cancelled: far fewer evaluations started than were
        # submitted, and close() returned with the pool fully shut down.
        assert len(started) < 8
        assert engine.backend._submit_pool is None

    def test_process_close_mid_flight_leaves_no_pool(self):
        evaluator = _make_evaluator()
        engine = ExecutionEngine("process", n_workers=2)
        pending = engine.submit_tasks(evaluator, _sample_tasks(6,
                                                               with_duplicate=False))
        engine.close()  # must cancel + join workers, not hang or orphan
        assert len(engine.backend._eval_pools) == 0
        for item in pending:
            assert item.future.done() or item.future.cancelled()

    def test_close_is_idempotent_and_reusable_check(self):
        engine = ExecutionEngine("thread", n_workers=2)
        engine.close()
        engine.close()


def _ticking_problem():
    """Problem whose evaluations advance a fake clock by 1s each."""
    X, y = make_classification(n_samples=140, n_features=8, n_classes=2,
                               class_sep=2.0, random_state=2)
    X = distort_features(X, random_state=2)
    problem = AutoFPProblem.from_arrays(
        X, y, LogisticRegression(max_iter=60), space=SearchSpace(max_length=3),
        random_state=0, name="async-budget/lr",
    )
    now = [0.0]
    original = problem.evaluator._evaluate_uncached

    def ticking(pipeline, fidelity):
        now[0] += 1.0
        return original(pipeline, fidelity)

    problem.evaluator._evaluate_uncached = ticking
    return problem, now


class TestAsyncTimeBudget:
    def test_interruption_stops_within_one_completion_and_refunds(self):
        """Acceptance: no whole-batch overshoot, undispatched tasks refunded."""
        problem, now = _ticking_problem()
        time_budget = TimeBudget(3.5, clock=lambda: now[0])
        trial_budget = TrialBudget(50)
        budget = CompositeBudget(time_budget, trial_budget)
        # PBT admits its whole initial population (8) up front; the fake
        # clock expires after ~4 evaluations.
        result = make_search_algorithm("pbt", random_state=0).search(
            problem, budget=budget, driver="async"
        )
        assert 0 < len(result) < 8  # stopped mid-batch, not after it
        # Refund exactness: the trial budget charged only what actually ran
        # (cache hits tick nothing but are real observed trials).
        assert trial_budget.used == len(result)
        # Within one completion of expiry: the clock advanced at most one
        # evaluation past the limit.
        assert now[0] <= 3.5 + 1.0

    def test_async_driver_explicit_n_workers_override(self):
        problem, _ = _ticking_problem()
        driver = AsyncSearchDriver(
            make_search_algorithm("rs", random_state=0, batch_size=4),
            n_workers=2,
        )
        result = driver.search(problem, max_trials=8)
        assert len(result) == 8

    def test_fractional_crumb_spent_after_inflight_drains(self):
        """Proposals hitting a fractional budget remainder while work is in
        flight are deferred, not dropped: the crumb is spent once the
        in-flight work drains, exactly once."""
        X, y = make_classification(n_samples=110, n_features=6, class_sep=2.0,
                                   random_state=7)
        engine = ExecutionEngine("thread", n_workers=2)
        problem = AutoFPProblem.from_arrays(X, y, "lr", random_state=0)
        problem.evaluator.set_engine(engine)
        budget = TrialBudget(4)
        budget.consume(0.5)  # leave a fractional remainder: 3.5 trials
        result = make_search_algorithm("rs", random_state=0, batch_size=2).search(
            problem, budget=budget, driver="async"
        )
        engine.close()
        # 3 whole trials plus one fractional-crumb trial, never more.
        assert len(result) == 4
        assert budget.used == pytest.approx(4.0)


class TestAsyncModePlumbing:
    def test_problem_async_mode_selects_async_driver(self, monkeypatch):
        from repro.core.context import ExecutionContext

        X, y = make_classification(n_samples=110, n_features=6, class_sep=2.0,
                                   random_state=7)
        problem = AutoFPProblem.from_arrays(
            X, y, "lr", random_state=0,
            context=ExecutionContext(async_mode=True),
        )
        calls = []
        original = AsyncSearchDriver.drive

        def spying(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        # `drive` is the completion-driven loop shared by AsyncSearchDriver
        # and SearchSession; a search on an async_mode problem must route
        # through it.
        monkeypatch.setattr(AsyncSearchDriver, "drive", spying)
        make_search_algorithm("rs", random_state=0).search(problem, max_trials=4)
        assert calls == [1]

    def test_legacy_async_mode_kwarg_warns_and_still_works(self):
        from repro.exceptions import ReproDeprecationWarning

        X, y = make_classification(n_samples=110, n_features=6, class_sep=2.0,
                                   random_state=7)
        with pytest.warns(ReproDeprecationWarning):
            problem = AutoFPProblem.from_arrays(
                X, y, "lr", random_state=0, async_mode=True,
            )
        assert problem.async_mode is True
        assert problem.context.async_mode is True

    def test_invalid_driver_rejected(self):
        from repro.exceptions import ValidationError

        X, y = make_classification(n_samples=110, n_features=6, class_sep=2.0,
                                   random_state=7)
        problem = AutoFPProblem.from_arrays(X, y, "lr", random_state=0)
        with pytest.raises(ValidationError):
            make_search_algorithm("rs").search(problem, max_trials=4,
                                               driver="turbo")


class TestBenchmarkSmokeMode:
    def test_bench_async_overlap_smoke(self):
        """The benchmark's fast smoke mode runs under tier-1 pytest."""
        spec = importlib.util.spec_from_file_location(
            "bench_async_overlap", BENCH_PATH
        )
        bench = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(bench)
        sync_serial, async_serial, async_threaded = bench.smoke_check()
        assert bench.trial_values(sync_serial) == bench.trial_values(async_serial)
        assert len(async_threaded) > 0
