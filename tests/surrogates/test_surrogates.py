"""Tests for the surrogate models (RF regressor lives in tests/models)."""

import numpy as np
import pytest

from repro.core import SearchSpace
from repro.core.result import TrialRecord
from repro.surrogates import (
    CategoricalParzenEstimator,
    EnsembleRegressor,
    LSTMRegressor,
    MLPRegressor,
    TwoDensityModel,
)


def _linear_target(X, rng):
    weights = rng.normal(size=X.shape[1])
    return X @ weights * 0.1


class TestMLPRegressor:
    def test_learns_linear_function(self, rng):
        X = rng.normal(size=(120, 8))
        y = _linear_target(X, rng)
        model = MLPRegressor(hidden_size=32, epochs=200, random_state=0).fit(X, y)
        predictions = model.predict(X)
        residual = np.mean((predictions - y) ** 2)
        assert residual < np.var(y) * 0.5

    def test_prediction_shape(self, rng):
        X = rng.normal(size=(30, 5))
        y = rng.normal(size=30)
        model = MLPRegressor(epochs=10).fit(X, y)
        assert model.predict(X).shape == (30,)

    def test_deterministic_given_seed(self, rng):
        X = rng.normal(size=(40, 4))
        y = rng.normal(size=40)
        a = MLPRegressor(epochs=20, random_state=1).fit(X, y).predict(X)
        b = MLPRegressor(epochs=20, random_state=1).fit(X, y).predict(X)
        np.testing.assert_allclose(a, b)

    def test_ranks_candidates_sensibly(self, rng):
        """The surrogate should rank clearly-better points above clearly-worse ones."""
        X = rng.normal(size=(100, 3))
        y = X[:, 0]  # accuracy equals the first coordinate
        model = MLPRegressor(hidden_size=16, epochs=150, random_state=0).fit(X, y)
        low = model.predict(np.array([[-2.0, 0.0, 0.0]]))
        high = model.predict(np.array([[2.0, 0.0, 0.0]]))
        assert high[0] > low[0]


class TestLSTMRegressor:
    def _encoded_data(self, n, space, rng):
        pipelines = space.sample_pipelines(n, random_state=rng)
        X = space.encode_many(pipelines)
        # Target: longer pipelines score higher (an easily learnable signal).
        y = np.asarray([len(p) / space.max_length for p in pipelines])
        return X, y, pipelines

    def test_fit_and_predict_on_pipeline_encodings(self, rng):
        space = SearchSpace(max_length=3)
        X, y, _ = self._encoded_data(40, space, rng)
        model = LSTMRegressor(hidden_size=8, epochs=30, random_state=0)
        model.set_encoding_block(space.n_candidates + 1)
        model.fit(X, y)
        predictions = model.predict(X)
        assert predictions.shape == (40,)
        assert np.all(np.isfinite(predictions))

    def test_learns_length_signal(self, rng):
        space = SearchSpace(max_length=4)
        X, y, pipelines = self._encoded_data(60, space, rng)
        model = LSTMRegressor(hidden_size=12, epochs=60, random_state=0)
        model.set_encoding_block(space.n_candidates + 1)
        model.fit(X, y)
        predictions = model.predict(X)
        correlation = np.corrcoef(predictions, y)[0, 1]
        assert correlation > 0.3

    def test_block_inference_fallback(self, rng):
        space = SearchSpace(max_length=2)
        X, y, _ = self._encoded_data(10, space, rng)
        model = LSTMRegressor(hidden_size=4, epochs=5, random_state=0)
        model.fit(X, y)  # no explicit block size
        assert model.predict(X).shape == (10,)


class TestEnsembleRegressor:
    def test_mean_and_std_shapes(self, rng):
        X = rng.normal(size=(50, 4))
        y = rng.normal(size=50)
        ensemble = EnsembleRegressor(
            lambda k: MLPRegressor(epochs=10, random_state=k), n_members=3
        ).fit(X, y)
        mean, std = ensemble.predict_with_std(X)
        assert mean.shape == (50,)
        assert std.shape == (50,)
        assert np.all(std >= 0)

    def test_ensemble_has_requested_members(self, rng):
        X = rng.normal(size=(20, 2))
        y = rng.normal(size=20)
        ensemble = EnsembleRegressor(
            lambda k: MLPRegressor(epochs=5, random_state=k), n_members=4
        ).fit(X, y)
        assert len(ensemble.members_) == 4


class TestParzenEstimators:
    def test_update_shifts_probability_mass(self):
        space = SearchSpace(max_length=3)
        estimator = CategoricalParzenEstimator(space, prior_weight=0.5)
        favourite = space.single_step_pipelines()[0]
        before = estimator.log_probability(favourite)
        for _ in range(20):
            estimator.update(favourite)
        after = estimator.log_probability(favourite)
        assert after > before

    def test_sample_respects_space_bounds(self):
        space = SearchSpace(max_length=3)
        estimator = CategoricalParzenEstimator(space)
        rng = np.random.default_rng(0)
        for _ in range(30):
            pipeline = estimator.sample(rng)
            assert 1 <= len(pipeline) <= 3

    def test_two_density_model_needs_min_trials(self):
        space = SearchSpace(max_length=2)
        model = TwoDensityModel(space, min_trials=5)
        trials = [
            TrialRecord(space.sample_pipeline(random_state=i), accuracy=0.5)
            for i in range(3)
        ]
        model.refit(trials)
        assert not model.ready_

    def test_two_density_model_prefers_good_pipelines(self):
        """Candidates similar to high-accuracy trials score higher than bad ones."""
        space = SearchSpace(max_length=2)
        good = space.single_step_pipelines()[0]
        bad = space.single_step_pipelines()[1]
        trials = []
        for i in range(15):
            trials.append(TrialRecord(good, accuracy=0.9))
            trials.append(TrialRecord(bad, accuracy=0.1))
        model = TwoDensityModel(space, gamma=0.5, min_trials=5).refit(trials)
        assert model.ready_
        assert model.score(good) > model.score(bad)

    def test_suggest_returns_pipeline_in_space(self):
        space = SearchSpace(max_length=3)
        trials = [
            TrialRecord(space.sample_pipeline(random_state=i), accuracy=i / 20)
            for i in range(20)
        ]
        model = TwoDensityModel(space, min_trials=8).refit(trials)
        suggestion = model.suggest(n_candidates=10, random_state=0)
        assert 1 <= len(suggestion) <= 3
