"""End-to-end integration tests across the whole library.

These tests exercise the same code paths the benchmark harnesses use, at a
much smaller scale, and assert the qualitative *shape* of the paper's
findings that is stable even on tiny synthetic data.
"""

import numpy as np
import pytest

from repro import AutoFPProblem, Pipeline, SearchSpace, make_search_algorithm
from repro.analysis import average_rankings, mine_pipeline_patterns
from repro.automl import compare_automl_context
from repro.datasets import load_dataset
from repro.experiments import quick_config, run_experiment
from repro.extensions import low_cardinality_space, OneStepSearch
from repro.metafeatures import metafeature_vector
from repro.models import DecisionTreeClassifier, cross_val_score
from repro.search import PBT, RandomSearch


class TestQuickstartFlow:
    """The README quickstart, as a test."""

    def test_quickstart(self):
        X, y = load_dataset("heart")
        problem = AutoFPProblem.from_arrays(X, y, model="lr")
        result = make_search_algorithm("pbt", random_state=0).search(problem, max_trials=20)
        assert result.best_accuracy >= problem.baseline_accuracy()
        assert 1 <= len(result.best_pipeline) <= 7
        # The pipeline can be re-applied to fresh data.
        fitted = result.best_pipeline.fit(problem.evaluator.X_train)
        transformed = fitted.transform(problem.evaluator.X_valid)
        assert transformed.shape == problem.evaluator.X_valid.shape


class TestFpMatters:
    """Figure 2 in miniature: different pipelines give very different accuracy."""

    def test_pipeline_accuracy_spread(self):
        X, y = load_dataset("heart")
        problem = AutoFPProblem.from_arrays(
            X, y, model="lr", space=SearchSpace(max_length=2)
        )
        accuracies = [
            problem.evaluator.evaluate(p).accuracy
            for p in problem.space.sample_pipelines(25, random_state=0)
        ]
        assert max(accuracies) - min(accuracies) > 0.05

    def test_best_pipeline_beats_no_fp(self):
        X, y = load_dataset("pd")
        problem = AutoFPProblem.from_arrays(X, y, model="lr")
        baseline = problem.baseline_accuracy()
        best = max(
            problem.evaluator.evaluate(p).accuracy
            for p in problem.space.sample_pipelines(30, random_state=1)
        )
        assert best >= baseline


class TestRankingShape:
    """A miniature Table 4: the ranking machinery runs over a real grid."""

    def test_small_grid_ranking(self):
        config = quick_config(
            datasets=("heart", "blood", "wine"),
            algorithms=("rs", "pbt", "tevo_h", "anneal"),
            max_trials=12,
        )
        outcome = run_experiment(config)
        rankings = outcome.rankings(min_improvement=-100.0)
        order = sorted(rankings["overall"], key=rankings["overall"].get)
        assert len(order) == 4
        # All ranks are within the valid range.
        assert all(1.0 <= rankings["overall"][name] <= 4.0 for name in order)


class TestMetafeatureRuleAnalysis:
    """Table 1 in miniature: meta-features do not perfectly predict FP benefit."""

    def test_decision_tree_on_metafeatures_runs(self):
        datasets = ["heart", "blood", "vehicle", "wine", "australian", "ionosphere"]
        features = []
        labels = []
        for i, name in enumerate(datasets):
            X, y = load_dataset(name, scale=0.5)
            features.append(metafeature_vector(X, y, include_landmarks=False))
            problem = AutoFPProblem.from_arrays(X, y, model="lr")
            baseline = problem.baseline_accuracy()
            best = max(
                problem.evaluator.evaluate(p).accuracy
                for p in problem.space.sample_pipelines(8, random_state=i)
            )
            labels.append(int((best - baseline) > 0.015))
        features = np.asarray(features)
        labels = np.asarray(labels)
        if len(set(labels.tolist())) < 2:
            pytest.skip("labels degenerate on this tiny subset")
        scores = cross_val_score(
            DecisionTreeClassifier(max_depth=2), features, labels, cv=2, random_state=0
        )
        assert np.all((scores >= 0.0) & (scores <= 1.0))


class TestExtendedAndAutoML:
    def test_one_step_on_low_cardinality_space(self):
        X, y = load_dataset("australian")
        problem = AutoFPProblem.from_arrays(X, y, model="lr")
        outcome = OneStepSearch(PBT(random_state=0), low_cardinality_space()).search(
            problem, max_trials=15
        )
        assert outcome.best_accuracy >= 0.0
        assert outcome.result.baseline_accuracy is not None

    def test_automl_context_comparison(self):
        X, y = load_dataset("blood")
        comparison = compare_automl_context(X, y, "lr", dataset_name="blood",
                                            max_trials=10, random_state=0)
        assert comparison.auto_fp_accuracy >= comparison.baseline_accuracy - 1e-9

    def test_frequent_patterns_over_best_pipelines(self):
        pipelines = []
        for i, name in enumerate(("heart", "blood", "wine")):
            X, y = load_dataset(name, scale=0.5)
            problem = AutoFPProblem.from_arrays(X, y, model="lr")
            result = RandomSearch(random_state=i).search(problem, max_trials=8)
            pipelines.append(result.best_pipeline)
        patterns = mine_pipeline_patterns(pipelines, min_support=0.5)
        for support in patterns.values():
            assert 0.0 < support <= 1.0


class TestDownstreamModelContrast:
    """Tree ensembles benefit less from FP than scale-sensitive models."""

    def test_xgb_baseline_already_strong_on_distorted_data(self, distorted_data):
        X, y = distorted_data
        lr_problem = AutoFPProblem.from_arrays(X, y, model="lr", random_state=0)
        xgb_problem = AutoFPProblem.from_arrays(X, y, model="xgb", random_state=0)
        lr_baseline = lr_problem.baseline_accuracy()
        xgb_baseline = xgb_problem.baseline_accuracy()
        # Trees handle unscaled features much better than LR out of the box.
        assert xgb_baseline >= lr_baseline
