"""Tests for the data-reduction samplers and the reduced evaluator (Section 8)."""

import numpy as np
import pytest

from repro.core import Pipeline
from repro.core.problem import AutoFPProblem
from repro.datasets import make_classification
from repro.exceptions import UnknownComponentError, ValidationError
from repro.preprocessing import StandardScaler
from repro.reduction import (
    KMeansSampler,
    RandomSampler,
    ReducedEvaluator,
    SAMPLER_CLASSES,
    StratifiedSampler,
    make_sampler,
    reduced_problem,
)
from repro.search import RandomSearch


@pytest.fixture(scope="module")
def imbalanced_data():
    X, y = make_classification(n_samples=300, n_features=5, n_classes=3,
                               weights=(0.7, 0.2, 0.1), class_sep=2.0,
                               random_state=0)
    return X, y


class TestSamplers:
    @pytest.mark.parametrize("sampler_class", [RandomSampler, StratifiedSampler,
                                               KMeansSampler])
    def test_selects_requested_number_of_unique_rows(self, sampler_class,
                                                     imbalanced_data):
        X, y = imbalanced_data
        indices = sampler_class().select(X, y, 60, random_state=0)
        assert len(indices) == 60
        assert len(np.unique(indices)) == 60
        assert indices.min() >= 0 and indices.max() < X.shape[0]

    def test_stratified_sampler_keeps_every_class(self, imbalanced_data):
        X, y = imbalanced_data
        indices = StratifiedSampler().select(X, y, 30, random_state=0)
        assert set(np.unique(y[indices])) == set(np.unique(y))

    def test_stratified_sampler_roughly_preserves_proportions(self, imbalanced_data):
        X, y = imbalanced_data
        indices = StratifiedSampler().select(X, y, 100, random_state=0)
        selected_fraction = np.mean(y[indices] == 0)
        full_fraction = np.mean(y == 0)
        assert abs(selected_fraction - full_fraction) < 0.1

    def test_kmeans_sampler_keeps_every_class(self, imbalanced_data):
        X, y = imbalanced_data
        indices = KMeansSampler().select(X, y, 45, random_state=0)
        assert set(np.unique(y[indices])) == set(np.unique(y))

    def test_target_larger_than_dataset_returns_all_rows(self, imbalanced_data):
        X, y = imbalanced_data
        indices = RandomSampler().select(X, y, 10_000, random_state=0)
        assert len(indices) == X.shape[0]

    def test_invalid_target_rejected(self, imbalanced_data):
        X, y = imbalanced_data
        with pytest.raises(ValidationError):
            RandomSampler().select(X, y, 0, random_state=0)

    def test_make_sampler_resolves_registry_names(self):
        for name in SAMPLER_CLASSES:
            assert make_sampler(name).name == name
        with pytest.raises(UnknownComponentError):
            make_sampler("coreset")


class TestReducedEvaluator:
    @pytest.fixture(scope="class")
    def full_problem(self, imbalanced_data):
        X, y = imbalanced_data
        return AutoFPProblem.from_arrays(X, y, model="lr", random_state=0,
                                         name="reduction-test/lr")

    def test_training_rows_are_reduced_but_validation_kept(self, full_problem):
        full = full_problem.evaluator
        reduced = ReducedEvaluator(full, reduction=0.25, random_state=0)
        assert reduced.X_train.shape[0] < full.X_train.shape[0]
        assert reduced.X_valid.shape[0] == full.X_valid.shape[0]

    def test_invalid_reduction_rejected(self, full_problem):
        with pytest.raises(ValidationError):
            ReducedEvaluator(full_problem.evaluator, reduction=0.0)
        with pytest.raises(ValidationError):
            ReducedEvaluator(full_problem.evaluator, reduction=1.5)

    def test_rescore_uses_full_training_data(self, full_problem):
        reduced = ReducedEvaluator(full_problem.evaluator, reduction=0.3,
                                   random_state=0)
        pipeline = Pipeline([StandardScaler()])
        [record] = reduced.rescore([pipeline])
        full_record = full_problem.evaluator.evaluate(pipeline)
        assert record.accuracy == pytest.approx(full_record.accuracy)

    def test_rescore_result_returns_best_of_top_k(self, full_problem):
        reduced = ReducedEvaluator(full_problem.evaluator, reduction=0.3,
                                   random_state=0)
        reduced_prob = AutoFPProblem(evaluator=reduced, space=full_problem.space,
                                     name="reduced")
        result = RandomSearch(random_state=0).search(reduced_prob, max_trials=10)
        best = reduced.rescore_result(result, top_k=3)
        assert 0.0 <= best.accuracy <= 1.0

    def test_reduced_problem_helper_wraps_evaluator_and_renames(self, full_problem):
        problem = reduced_problem(full_problem, reduction=0.4, random_state=0)
        assert isinstance(problem.evaluator, ReducedEvaluator)
        assert "reduced" in problem.name
        assert problem.space is full_problem.space
