"""Tests for the 40 auto-sklearn-style meta-features."""

import numpy as np
import pytest

from repro.metafeatures import (
    METAFEATURE_NAMES,
    compute_metafeatures,
    landmarking_metafeatures,
    metafeature_matrix,
    metafeature_vector,
    simple_metafeatures,
    statistical_metafeatures,
)


class TestSimpleMetafeatures:
    def test_counts(self, small_multiclass_data):
        X, y = small_multiclass_data
        features = simple_metafeatures(X, y)
        assert features["NumberOfFeatures"] == X.shape[1]
        assert features["NumberOfClasses"] == 3
        assert features["NumberOfMissingValues"] == 0.0
        assert features["DatasetRatio"] == pytest.approx(X.shape[1] / X.shape[0])

    def test_log_features_consistent(self, small_binary_data):
        X, y = small_binary_data
        features = simple_metafeatures(X, y)
        assert features["LogNumberOfFeatures"] == pytest.approx(
            np.log(features["NumberOfFeatures"])
        )
        assert features["InverseDatasetRatio"] == pytest.approx(
            1.0 / features["DatasetRatio"]
        )

    def test_missing_values_detected(self):
        X = np.array([[1.0, np.nan], [2.0, 3.0], [np.nan, 1.0]])
        y = np.array([0, 1, 0])
        features = simple_metafeatures(X, y)
        assert features["NumberOfMissingValues"] == 2
        assert features["NumberOfFeaturesWithMissingValues"] == 2
        assert features["NumberOfInstancesWithMissingValues"] == 2


class TestStatisticalMetafeatures:
    def test_skewness_of_symmetric_data_near_zero(self, rng):
        X = rng.normal(size=(500, 3))
        y = rng.integers(0, 2, size=500)
        features = statistical_metafeatures(X, y)
        assert abs(features["SkewnessMean"]) < 0.3

    def test_skewness_detects_exponential_features(self, rng):
        X = rng.exponential(size=(500, 3))
        y = rng.integers(0, 2, size=500)
        features = statistical_metafeatures(X, y)
        assert features["SkewnessMean"] > 1.0

    def test_class_entropy_balanced_binary(self):
        X = np.random.default_rng(0).normal(size=(100, 2))
        y = np.array([0, 1] * 50)
        features = statistical_metafeatures(X, y)
        assert features["ClassEntropy"] == pytest.approx(1.0)  # log2(2)
        assert features["ClassProbabilityMax"] == pytest.approx(0.5)

    def test_pca_fraction_in_unit_interval(self, small_binary_data):
        X, y = small_binary_data
        features = statistical_metafeatures(X, y)
        assert 0.0 < features["PCAFractionOfComponentsFor95PercentVariance"] <= 1.0


class TestLandmarking:
    def test_landmarks_are_valid_accuracies(self, small_binary_data):
        X, y = small_binary_data
        landmarks = landmarking_metafeatures(X, y, random_state=0)
        assert len(landmarks) == 6
        for value in landmarks.values():
            assert 0.0 <= value <= 1.0

    def test_full_tree_beats_stump_on_structured_data(self, small_multiclass_data):
        X, y = small_multiclass_data
        landmarks = landmarking_metafeatures(X, y, random_state=0)
        assert landmarks["LandmarkDecisionTree"] >= landmarks["LandmarkRandomNodeLearner"]


class TestExtractor:
    def test_exactly_40_metafeatures(self, small_binary_data):
        """Table 10 lists 40 meta-features."""
        X, y = small_binary_data
        assert len(METAFEATURE_NAMES) == 40
        features = compute_metafeatures(X, y)
        assert set(features) == set(METAFEATURE_NAMES)

    def test_vector_order_matches_names(self, small_binary_data):
        X, y = small_binary_data
        features = compute_metafeatures(X, y, random_state=0)
        vector = metafeature_vector(X, y, random_state=0)
        assert vector.shape == (40,)
        assert vector[METAFEATURE_NAMES.index("NumberOfFeatures")] == features["NumberOfFeatures"]

    def test_landmarks_can_be_skipped(self, small_binary_data):
        X, y = small_binary_data
        vector = metafeature_vector(X, y, include_landmarks=False)
        assert np.all(vector[-6:] == 0.0)

    def test_matrix_shape(self, small_binary_data, small_multiclass_data):
        matrix = metafeature_matrix(
            [small_binary_data, small_multiclass_data], include_landmarks=False
        )
        assert matrix.shape == (2, 40)

    def test_all_values_finite(self, distorted_data):
        X, y = distorted_data
        vector = metafeature_vector(X, y, random_state=0)
        assert np.all(np.isfinite(vector))
