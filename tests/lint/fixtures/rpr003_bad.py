# Intentionally violating fixture for RPR003 (no private counter dicts).


class CacheWithPrivateCounters:
    def __init__(self) -> None:
        self._counters = {"hits": 0, "misses": 0}  # ad-hoc counter store
        self.op_counter: dict = dict()  # same smell, dict() spelling
