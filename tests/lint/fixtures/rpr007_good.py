# Compliant counterpart for RPR007: binary mode, or explicit UTF-8.
import os
from pathlib import Path


def explicit_keyword(path):
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def explicit_positional(path: Path):
    # Path.read_text's first positional parameter *is* encoding.
    return path.read_text("utf-8")


def explicit_write(path: Path, text):
    path.write_text(text, encoding="utf-8")


def binary_mode_needs_no_encoding(path):
    with open(path, "rb") as handle:
        return handle.read()


def fd_wrap(descriptor):
    return os.fdopen(descriptor, "w", encoding="utf-8")
