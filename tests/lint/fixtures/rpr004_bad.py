# Intentionally violating fixture for RPR004 (no bare/silent excepts).


def bare_except(load):
    try:
        return load()
    except:  # catches KeyboardInterrupt/SystemExit too
        return None


def silent_broad_except(load):
    try:
        return load()
    except Exception:
        pass


def silent_broad_continue(items, load):
    results = []
    for item in items:
        try:
            results.append(load(item))
        except Exception:
            continue
    return results
