# Compliant counterpart for RPR002: operate on copies, bind return values.
import numpy as np


def copy_then_mutate(X):
    out = X.astype(np.float64, copy=True)
    out -= out.mean(axis=0)  # the copy is ours to mutate
    return out


def rebound_parameter(X):
    X = X.copy()
    X[:, 0] = 0.0  # rebinding makes X a local copy
    return X


def copying_variants(X, lo, hi):
    clipped = np.clip(X, lo, hi)  # no out=: allocates a result
    ordered = np.sort(X, axis=0)  # np.sort copies; X.sort() would not
    return clipped, ordered


def local_sort():
    scores = [3, 1, 2]
    scores.sort()  # a local list, not a parameter
    return scores
