# Compliant counterpart for RPR001: randomness threaded as seeded
# numpy Generators, the project convention.
import random

import numpy as np
from numpy.random import default_rng


def seeded_generator(seed: int):
    return np.random.default_rng(seed)


def seeded_imported(seed: int):
    return default_rng(seed)


def seeded_stdlib_class(seed: int):
    # A *seeded* stdlib Random is deterministic (still unidiomatic here,
    # but not a determinism violation).
    return random.Random(seed)


def generator_methods(rng: np.random.Generator):
    # Methods on a threaded Generator instance are the convention.
    return rng.integers(0, 10) + rng.random()


def spawned(rng: np.random.Generator):
    seeds = rng.integers(0, 2**32 - 1, size=4)
    return [np.random.default_rng(int(seed)) for seed in seeds]
