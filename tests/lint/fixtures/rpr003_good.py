# Compliant counterpart for RPR003: counters live on a MetricSet.
from repro.telemetry.metrics import MetricSet, metric_property


class CacheWithMetricSet:
    COUNTER_NAMES = ("hits", "misses")

    def __init__(self) -> None:
        self.metrics = MetricSet(self.COUNTER_NAMES)
        # Unrelated dict state is fine; only counter-named dicts are flagged.
        self._entries: dict = {}

    hits = metric_property("hits")
    misses = metric_property("misses")
