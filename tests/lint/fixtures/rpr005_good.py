# Compliant counterpart for RPR005: every shared mutation holds the lock.
import threading


class LockedCache:
    def __init__(self) -> None:
        # __init__ runs before the object is shared: exempt.
        self._lock = threading.Lock()
        self._entries: dict = {}
        self.hits = 0

    def get(self, key):
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self.hits += 1
            return value

    def put(self, key, value) -> None:
        with self._lock:
            self._entries[key] = value

    def __setstate__(self, state) -> None:
        # Unpickling constructs a fresh, unshared object: exempt.
        self._lock = threading.Lock()
        self._entries = dict(state)
        self.hits = 0

    def snapshot(self) -> dict:
        with self._lock:
            return dict(self._entries)
