# Intentionally violating fixture for RPR001 (determinism).
# This directory is skipped by the shipped lint profiles; tests feed these
# files through lint_source under library-like fake paths.
import random

import numpy as np
from numpy.random import default_rng


def stdlib_module_function():
    return random.random()  # global stdlib RNG


def stdlib_shuffle(items):
    random.shuffle(items)  # global stdlib RNG


def argless_stdlib_random_class():
    return random.Random()  # unseeded


def numpy_global_state():
    np.random.seed(0)  # hidden module-global state
    return np.random.rand(3)  # hidden module-global state


def argless_default_rng():
    return np.random.default_rng()  # unseeded


def argless_imported_default_rng():
    return default_rng()  # unseeded
