# Intentionally violating fixture for RPR006 (atomic writes).
import json
from pathlib import Path


def raw_write(path, text):
    with open(path, "w", encoding="utf-8") as handle:  # torn on crash
        handle.write(text)


def raw_path_open(path: Path, rows):
    with path.open("w", encoding="utf-8") as handle:
        handle.writelines(rows)


def raw_write_text(path: Path, payload):
    path.write_text(json.dumps(payload), encoding="utf-8")


def exclusive_create(path):
    with open(path, "x", encoding="utf-8") as handle:
        handle.write("claimed")
