# Compliant counterpart for RPR006: atomic replace or O_APPEND sinks.
import json
import os
from pathlib import Path

from repro.io.serialization import atomic_write_text


def atomic_document(path, payload):
    # Temp file + os.replace: readers see old or new, never torn.
    atomic_write_text(path, json.dumps(payload, indent=2))


def append_only_log(path: Path, line: str):
    # Appends of one short line are the torn-line-tolerant log contract.
    with path.open("a", encoding="utf-8") as handle:
        handle.write(line + "\n")


def fd_append_sink(path):
    # O_APPEND file descriptors are the other sanctioned sink shape.
    return os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)


def reading_is_unrestricted(path: Path):
    with open(path, encoding="utf-8") as handle:
        return handle.read()
