"""Intentionally violating fixture for RPR008 (bounded retries)."""

import time
from time import sleep as snooze


def poll_forever(server):
    # 1: `while True` sleep loop with no break/return/raise
    while True:
        if server.ready():
            server.touch()
        time.sleep(0.5)


def poll_aliased(server):
    # 2: `while 1:` with an aliased from-import sleep, still no exit
    while 1:
        snooze(0.1)
        server.refresh()


def ad_hoc_backoff(fetch):
    # 3: time.sleep in an except handler — ad-hoc retry backoff
    for attempt in range(3):
        try:
            return fetch()
        except OSError:
            time.sleep(2 ** attempt)
    return None
