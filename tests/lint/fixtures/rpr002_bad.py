# Intentionally violating fixture for RPR002 (copy-on-write discipline).
# Linted under a fake repro/preprocessing/ path so the rule applies.
import numpy as np


def augmented_assignment(X):
    X -= X.mean(axis=0)  # mutates the caller's (possibly cached) array
    return X


def subscript_store(X, fill):
    X[:, 0] = fill  # mutates in place
    return X


def mutating_method(X):
    X.sort()  # ndarray.sort is in-place
    return X


def fill_method(X):
    X.fill(0.0)  # in-place
    return X


def out_kwarg(X, lo, hi):
    np.clip(X, lo, hi, out=X)  # writes the result into the parameter
    return X
