# Compliant counterpart for RPR004: narrow types, observable handlers.


def narrow_silent_filter(items, parse):
    # Narrow exception + skip is a deliberate, reviewable filter.
    results = []
    for item in items:
        try:
            results.append(parse(item))
        except ValueError:
            continue
    return results


def broad_but_observable(load, fallback, log):
    try:
        return load()
    except Exception as error:
        # Broad is acceptable when the handler *does* something.
        log.warning("load failed, using fallback: %s", error)
        return fallback()


def broad_reraise(load):
    try:
        return load()
    except Exception as error:
        raise RuntimeError("load failed") from error
