# Intentionally violating fixture for RPR005 (lock discipline).
import threading


class RacyCache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict = {}
        self.hits = 0

    def get(self, key):
        with self._lock:
            value = self._entries.get(key)
        if value is not None:
            self.hits += 1  # mutation outside the lock: torn counter
        return value

    def put(self, key, value) -> None:
        self._entries[key] = value  # mutation outside the lock entirely

    def reset(self) -> None:
        try:
            self.hits = 0  # still unlocked, even nested in try/if blocks
        finally:
            pass
