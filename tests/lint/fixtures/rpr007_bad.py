# Intentionally violating fixture for RPR007 (explicit encodings).
import os
from pathlib import Path


def builtin_open_read(path):
    with open(path) as handle:  # locale-dependent decode
        return handle.read()


def path_open_append(path: Path):
    with path.open("a") as handle:
        handle.write("x\n")


def path_read_text(path: Path):
    return path.read_text()


def path_write_text(path: Path, text):
    path.write_text(text)


def fd_wrap(descriptor):
    return os.fdopen(descriptor, "r")
