"""Clean counterpart fixture for RPR008 (bounded retries)."""

import time

from repro.engine.faults import RetryPolicy


def poll_with_deadline(server, deadline):
    # A sleep loop is fine when it can exit: this one breaks on a deadline.
    while True:
        if server.ready() or time.monotonic() > deadline:
            break
        time.sleep(0.5)


def drain_until_empty(queue):
    # A real loop condition is itself the bound; sleeping inside is fine.
    while queue.pending():
        time.sleep(0.1)


def bounded_retry(fetch):
    # Backoff routed through RetryPolicy: bounded, capped and seeded.
    policy = RetryPolicy(max_attempts=3)
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fetch()
        except OSError:
            policy.sleep(attempt)
    return None
