"""Reporter contracts: the ``--json`` document schema and the text shape."""

import io
import json

from repro.lint import (
    JSON_SCHEMA_VERSION,
    lint_paths,
    render_json,
    render_text,
)

DIRTY = (
    "def load(fn):\n"
    "    try:\n"
    "        return fn()\n"
    "    except:\n"
    "        return None\n"
)


def make_report(tmp_path, *, dirty: bool):
    target = tmp_path / ("dirty.py" if dirty else "clean.py")
    target.write_text(DIRTY if dirty else "x = 1\n", encoding="utf-8")
    return lint_paths([tmp_path])


class TestJsonReporter:
    def test_document_schema(self, tmp_path):
        report = make_report(tmp_path, dirty=True)
        document = json.loads(render_json(report))
        assert document["version"] == JSON_SCHEMA_VERSION
        assert document["tool"] == "repro-lint"
        assert document["files_checked"] == 1
        assert document["clean"] is False
        assert document["counts"] == {"RPR004": 1}
        assert isinstance(document["findings"], list)
        (finding,) = document["findings"]
        assert set(finding) == {"rule", "path", "line", "col",
                                "message", "snippet"}
        assert finding["rule"] == "RPR004"
        assert finding["path"].endswith("dirty.py")
        assert finding["line"] == 4
        assert isinstance(finding["col"], int)
        assert finding["snippet"] == "except:"

    def test_clean_document(self, tmp_path):
        report = make_report(tmp_path, dirty=False)
        document = json.loads(render_json(report))
        assert document["clean"] is True
        assert document["counts"] == {}
        assert document["findings"] == []

    def test_findings_are_sorted_by_location(self, tmp_path):
        (tmp_path / "b.py").write_text(DIRTY, encoding="utf-8")
        (tmp_path / "a.py").write_text(DIRTY, encoding="utf-8")
        document = json.loads(render_json(lint_paths([tmp_path])))
        paths = [finding["path"] for finding in document["findings"]]
        assert paths == sorted(paths)


class TestTextReporter:
    def test_dirty_output_lists_location_rule_and_tally(self, tmp_path):
        report = make_report(tmp_path, dirty=True)
        buffer = io.StringIO()
        render_text(report, buffer)
        text = buffer.getvalue()
        assert ":4:" in text and "RPR004" in text
        assert "1 finding(s)" in text and "RPR004 x1" in text

    def test_clean_output_is_one_line(self, tmp_path):
        report = make_report(tmp_path, dirty=False)
        buffer = io.StringIO()
        render_text(report, buffer)
        assert buffer.getvalue() == "clean: 1 file(s), 0 findings\n"
