"""Per-rule coverage: every RPR rule fires on its bad fixture and stays
quiet on the good one.

Fixture files under ``fixtures/`` are intentionally violating code; the
shipped profiles *skip* that directory, so these tests feed the files
through :func:`repro.lint.lint_source` under fake library-like paths
(which also exercises the per-path rule gating, e.g. RPR002 only applies
inside preprocessing/core transform paths).
"""

from pathlib import Path

import pytest

from repro.lint import all_rule_ids, lint_source

FIXTURES = Path(__file__).parent / "fixtures"

#: fake path each rule is exercised under (RPR002 is path-gated)
LIBRARY_PATH = "src/repro/module_under_test.py"
TRANSFORM_PATH = "src/repro/preprocessing/module_under_test.py"

#: rule id -> (lint path, findings expected from the bad fixture)
RULE_CASES = {
    "RPR001": (LIBRARY_PATH, 7),
    "RPR002": (TRANSFORM_PATH, 5),
    "RPR003": (LIBRARY_PATH, 2),
    "RPR004": (LIBRARY_PATH, 3),
    "RPR005": (LIBRARY_PATH, 3),
    "RPR006": (LIBRARY_PATH, 4),
    "RPR007": (LIBRARY_PATH, 5),
    "RPR008": (LIBRARY_PATH, 3),
}


def run_rule(rule_id: str, fixture: str, path: str):
    source = (FIXTURES / fixture).read_text(encoding="utf-8")
    return lint_source(source, path=path, rules=[rule_id])


class TestEveryRuleHasFixtureCoverage:
    def test_case_table_covers_every_registered_rule(self):
        assert set(RULE_CASES) == set(all_rule_ids())

    @pytest.mark.parametrize("rule_id", sorted(RULE_CASES))
    def test_bad_fixture_fires(self, rule_id):
        path, expected = RULE_CASES[rule_id]
        findings = run_rule(rule_id, f"{rule_id.lower()}_bad.py", path)
        assert len(findings) == expected, [f.message for f in findings]
        assert {f.rule for f in findings} == {rule_id}
        for finding in findings:
            assert finding.path == path
            assert finding.line > 0
            assert finding.message
            assert finding.snippet

    @pytest.mark.parametrize("rule_id", sorted(RULE_CASES))
    def test_good_fixture_is_clean(self, rule_id):
        path, _ = RULE_CASES[rule_id]
        findings = run_rule(rule_id, f"{rule_id.lower()}_good.py", path)
        assert findings == [], [f.message for f in findings]


class TestDeterminismRule:
    def test_flags_aliased_numpy_import(self):
        findings = lint_source(
            "import numpy.random as npr\nvalue = npr.rand(3)\n",
            path=LIBRARY_PATH, rules=["RPR001"],
        )
        assert [f.rule for f in findings] == ["RPR001"]

    def test_generator_instances_are_not_flagged(self):
        findings = lint_source(
            "def draw(rng):\n    return rng.random() + rng.integers(0, 9)\n",
            path=LIBRARY_PATH, rules=["RPR001"],
        )
        assert findings == []


class TestCowRuleIsPathGated:
    def test_same_code_outside_transform_paths_is_silent(self):
        source = (FIXTURES / "rpr002_bad.py").read_text(encoding="utf-8")
        findings = lint_source(source, path="src/repro/search/module.py",
                               rules=["RPR002"])
        assert findings == []

    def test_core_paths_are_covered_too(self):
        findings = lint_source(
            "def scale(X):\n    X *= 2.0\n    return X\n",
            path="src/repro/core/module.py", rules=["RPR002"],
        )
        assert [f.rule for f in findings] == ["RPR002"]


class TestLockRule:
    def test_class_without_lock_is_exempt(self):
        findings = lint_source(
            "class Plain:\n"
            "    def bump(self):\n"
            "        self.count = 1\n",
            path=LIBRARY_PATH, rules=["RPR005"],
        )
        assert findings == []
