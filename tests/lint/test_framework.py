"""Framework behavior: suppression pragmas, per-path profiles, parse
errors, file discovery and report composition."""

from pathlib import Path

import pytest

from repro.lint import (
    DEFAULT_PROFILES,
    PARSE_ERROR_RULE,
    RuleProfile,
    iter_python_files,
    lint_paths,
    lint_source,
    make_rules,
)
from repro.exceptions import ValidationError

LIBRARY_PATH = "src/repro/module_under_test.py"

#: one RPR004 violation (bare except), used throughout
BARE_EXCEPT = (
    "def load(fn):\n"
    "    try:\n"
    "        return fn()\n"
    "    except:\n"
    "        return None\n"
)


class TestSuppressionPragmas:
    def test_trailing_pragma_suppresses_its_own_line(self):
        source = BARE_EXCEPT.replace(
            "    except:", "    except:  # repro: lint-ignore[RPR004]")
        assert lint_source(source, path=LIBRARY_PATH) == []

    def test_standalone_pragma_suppresses_the_line_below(self):
        source = BARE_EXCEPT.replace(
            "    except:",
            "    # repro: lint-ignore[RPR004] justified: fixture\n"
            "    except:")
        assert lint_source(source, path=LIBRARY_PATH) == []

    def test_pragma_for_another_rule_does_not_suppress(self):
        source = BARE_EXCEPT.replace(
            "    except:", "    except:  # repro: lint-ignore[RPR001]")
        findings = lint_source(source, path=LIBRARY_PATH)
        assert [f.rule for f in findings] == ["RPR004"]

    def test_blanket_pragma_suppresses_every_rule(self):
        source = BARE_EXCEPT.replace(
            "    except:", "    except:  # repro: lint-ignore")
        assert lint_source(source, path=LIBRARY_PATH) == []

    def test_multi_rule_pragma(self):
        source = ("with open(p, \"w\") as h:"
                  "  # repro: lint-ignore[RPR006, RPR007]\n"
                  "    h.write(x)\n")
        assert lint_source(source, path=LIBRARY_PATH) == []

    def test_file_level_pragma(self):
        source = "# repro: lint-ignore-file[RPR004]\n" + BARE_EXCEPT
        assert lint_source(source, path=LIBRARY_PATH) == []

    def test_file_level_pragma_is_rule_scoped(self):
        source = "# repro: lint-ignore-file[RPR001]\n" + BARE_EXCEPT
        findings = lint_source(source, path=LIBRARY_PATH)
        assert [f.rule for f in findings] == ["RPR004"]


class TestProfiles:
    def test_tests_profile_relaxes_write_and_mutation_rules(self):
        source = "def dump(p, x):\n    open(p, \"w\").write(x)\n"
        in_tests = lint_source(source, path="tests/io/test_something.py")
        in_library = lint_source(source, path="src/repro/io/module.py")
        assert {f.rule for f in in_tests} == {"RPR007"}  # encoding still on
        assert {f.rule for f in in_library} == {"RPR006", "RPR007"}

    def test_telemetry_package_may_implement_counters(self):
        source = ("class MetricSet:\n"
                  "    def __init__(self):\n"
                  "        self._counters = {}\n")
        allowed = lint_source(source, path="src/repro/telemetry/metrics.py")
        elsewhere = lint_source(source, path="src/repro/core/module.py")
        assert allowed == []
        assert [f.rule for f in elsewhere] == ["RPR003"]

    def test_fixture_directory_is_skipped_entirely(self):
        fixtures = Path(__file__).parent / "fixtures"
        report = lint_paths([fixtures])
        assert report.clean
        assert report.files_checked == 0

    def test_custom_profile_composition(self):
        profiles = DEFAULT_PROFILES + (
            RuleProfile("local", "src/repro/io/", disable=frozenset({"RPR007"})),
        )
        source = "def read(p):\n    return open(p).read()\n"
        assert lint_source(source, path="src/repro/io/module.py",
                           profiles=profiles) == []
        assert lint_source(source, path="src/repro/core/module.py",
                           profiles=profiles) != []


class TestParseErrors:
    def test_syntax_error_reports_rpr000(self):
        findings = lint_source("def broken(:\n", path=LIBRARY_PATH)
        assert [f.rule for f in findings] == [PARSE_ERROR_RULE]
        assert "does not parse" in findings[0].message


class TestRunner:
    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValidationError, match="unknown lint rule"):
            make_rules(["RPR999"])

    def test_iter_python_files_deduplicates_and_sorts(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n", encoding="utf-8")
        (tmp_path / "a.py").write_text("y = 2\n", encoding="utf-8")
        (tmp_path / "note.txt").write_text("not python\n", encoding="utf-8")
        files = iter_python_files([tmp_path, tmp_path / "a.py"])
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_iter_python_files_rejects_non_python_targets(self, tmp_path):
        target = tmp_path / "note.txt"
        target.write_text("nope\n", encoding="utf-8")
        with pytest.raises(ValidationError):
            iter_python_files([target])

    def test_lint_paths_reports_counts_and_sorted_findings(self, tmp_path):
        (tmp_path / "dirty.py").write_text(BARE_EXCEPT, encoding="utf-8")
        (tmp_path / "clean.py").write_text("x = 1\n", encoding="utf-8")
        report = lint_paths([tmp_path])
        assert report.files_checked == 2
        assert not report.clean
        assert report.counts() == {"RPR004": 1}
        assert report.findings == sorted(report.findings,
                                         key=lambda f: f.sort_key())
