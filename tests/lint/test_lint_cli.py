"""CLI contract for ``repro lint``: exit codes, --json, --rules, --output."""

import io
import json

from repro.cli import main

DIRTY = (
    "def dump(p, x):\n"
    "    with open(p, \"w\") as h:\n"
    "        h.write(x)\n"
)


def run_cli(*argv: str) -> tuple[int, str]:
    buffer = io.StringIO()
    code = main(list(argv), out=buffer)
    return code, buffer.getvalue()


def make_tree(tmp_path, *, dirty: bool):
    tmp_path.mkdir(parents=True, exist_ok=True)
    target = tmp_path / ("dirty.py" if dirty else "clean.py")
    target.write_text(DIRTY if dirty else "x = 1\n", encoding="utf-8")
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path):
        code, output = run_cli("lint", str(make_tree(tmp_path, dirty=False)))
        assert code == 0
        assert "clean" in output

    def test_findings_exit_one(self, tmp_path):
        code, output = run_cli("lint", str(make_tree(tmp_path, dirty=True)))
        assert code == 1
        assert "RPR006" in output and "RPR007" in output

    def test_missing_path_exits_two(self, tmp_path):
        code, output = run_cli("lint", str(tmp_path / "no-such-dir"))
        assert code == 2
        assert "no such lint target" in output

    def test_unknown_rule_exits_two(self, tmp_path):
        code, output = run_cli("lint", "--rules", "RPR999",
                               str(make_tree(tmp_path, dirty=False)))
        assert code == 2
        assert "unknown lint rule" in output


class TestOptions:
    def test_json_document_on_stdout(self, tmp_path):
        code, output = run_cli(
            "lint", "--json", str(make_tree(tmp_path, dirty=True)))
        assert code == 1
        document = json.loads(output)
        assert document["tool"] == "repro-lint"
        assert set(document["counts"]) == {"RPR006", "RPR007"}

    def test_json_output_file_is_written(self, tmp_path):
        tree = make_tree(tmp_path / "tree", dirty=True)
        report_path = tmp_path / "lint-report.json"
        code, output = run_cli("lint", "--json",
                               "--output", str(report_path), str(tree))
        assert code == 1
        assert str(report_path) in output
        document = json.loads(report_path.read_text(encoding="utf-8"))
        assert document["clean"] is False

    def test_rules_filter_limits_the_sweep(self, tmp_path):
        code, output = run_cli("lint", "--rules", "RPR007", "--json",
                               str(make_tree(tmp_path, dirty=True)))
        assert code == 1
        document = json.loads(output)
        assert set(document["counts"]) == {"RPR007"}

    def test_list_rules_prints_the_catalogue(self):
        code, output = run_cli("lint", "--list-rules")
        assert code == 0
        for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004",
                        "RPR005", "RPR006", "RPR007", "RPR008"):
            assert rule_id in output
