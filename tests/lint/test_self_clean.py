"""Tier-1 gate: the repository's own tree must pass ``repro lint``.

This is the point of the exercise — the invariants the lint rules encode
(seeded randomness, copy-on-write transforms, telemetry-backed counters,
observable error handling, lock discipline, atomic writes, explicit
encodings) are contracts the rest of the test suite relies on.  Any new
violation fails here with the same message ``repro lint`` would print,
so CI and the local pre-commit habit agree.
"""

import io
from pathlib import Path

import pytest

from repro.lint import lint_paths, render_text

REPO_ROOT = Path(__file__).resolve().parents[2]

#: every tree the CI lint step sweeps
LINTED_TREES = ("src/repro", "tests", "benchmarks", "examples")


@pytest.mark.parametrize("tree", LINTED_TREES)
def test_tree_is_lint_clean(tree):
    root = REPO_ROOT / tree
    if not root.exists():
        pytest.skip(f"{tree} not present in this checkout")
    report = lint_paths([root])
    if not report.clean:
        buffer = io.StringIO()
        render_text(report, buffer)
        pytest.fail(f"repro lint {tree} found violations:\n"
                    + buffer.getvalue())
    assert report.files_checked > 0
