"""Tests for the tokenisation helpers."""

import pytest

from repro.exceptions import ValidationError
from repro.text import DEFAULT_STOP_WORDS, analyze, ngrams, tokenize


class TestTokenize:
    def test_lowercases_and_splits_on_non_word_characters(self):
        assert tokenize("Hello, WORLD! 42 times.") == ["hello", "world", "42", "times"]

    def test_keeps_apostrophes_inside_words(self):
        assert tokenize("it's Bob's idea") == ["it's", "bob's", "idea"]

    def test_lowercase_can_be_disabled(self):
        assert tokenize("Ham and Eggs", lowercase=False) == ["Ham", "and", "Eggs"]

    def test_stop_words_removed_when_requested(self):
        tokens = tokenize("the cat and the hat", stop_words=DEFAULT_STOP_WORDS)
        assert tokens == ["cat", "hat"]

    def test_empty_document_gives_empty_list(self):
        assert tokenize("") == []

    def test_non_string_rejected(self):
        with pytest.raises(ValidationError):
            tokenize(42)  # type: ignore[arg-type]


class TestNgrams:
    def test_unigrams_are_identity(self):
        assert ngrams(["a", "b", "c"], (1, 1)) == ["a", "b", "c"]

    def test_unigrams_and_bigrams(self):
        assert ngrams(["a", "b", "c"], (1, 2)) == ["a", "b", "c", "a b", "b c"]

    def test_bigrams_only(self):
        assert ngrams(["a", "b", "c"], (2, 2)) == ["a b", "b c"]

    def test_short_sequence_yields_no_higher_ngrams(self):
        assert ngrams(["a"], (2, 3)) == []

    def test_invalid_range_rejected(self):
        with pytest.raises(ValidationError):
            ngrams(["a"], (0, 1))
        with pytest.raises(ValidationError):
            ngrams(["a"], (3, 2))


class TestAnalyze:
    def test_combines_tokenisation_and_ngrams(self):
        result = analyze("Big data, big models", ngram_range=(1, 2))
        assert "big data" in result
        assert "big models" in result
        assert result.count("big") == 2
