"""Tests for the synthetic text corpora."""

import numpy as np
import pytest

from repro.exceptions import UnknownComponentError, ValidationError
from repro.text import (
    TEXT_DATASET_REGISTRY,
    list_text_datasets,
    load_text_dataset,
    make_text_classification,
)


class TestMakeTextClassification:
    def test_returns_documents_and_aligned_labels(self):
        documents, labels = make_text_classification(60, n_classes=3, random_state=0)
        assert len(documents) == 60
        assert labels.shape == (60,)
        assert set(np.unique(labels)) == {0, 1, 2}

    def test_documents_are_nonempty_strings(self):
        documents, _ = make_text_classification(40, random_state=1)
        assert all(isinstance(d, str) and d for d in documents)

    def test_deterministic_for_same_seed(self):
        documents_a, labels_a = make_text_classification(30, random_state=5)
        documents_b, labels_b = make_text_classification(30, random_state=5)
        assert documents_a == documents_b
        np.testing.assert_array_equal(labels_a, labels_b)

    def test_different_seeds_differ(self):
        documents_a, _ = make_text_classification(30, random_state=0)
        documents_b, _ = make_text_classification(30, random_state=1)
        assert documents_a != documents_b

    def test_classes_use_distinct_signal_vocabulary(self):
        documents, labels = make_text_classification(
            200, n_classes=2, signal_strength=0.5, label_noise=0.0, random_state=2
        )
        class0_words = set(" ".join(d for d, l in zip(documents, labels) if l == 0).split())
        class1_words = set(" ".join(d for d, l in zip(documents, labels) if l == 1).split())
        # Signal words are class-exclusive, so neither class's vocabulary is a
        # subset of the other's.
        assert class0_words - class1_words
        assert class1_words - class0_words

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValidationError):
            make_text_classification(1, n_classes=2)
        with pytest.raises(ValidationError):
            make_text_classification(50, n_classes=1)
        with pytest.raises(ValidationError):
            make_text_classification(50, signal_strength=0.0)
        with pytest.raises(ValidationError):
            make_text_classification(50, document_length=(10, 5))


class TestRegistry:
    def test_registry_names(self):
        assert set(list_text_datasets()) == set(TEXT_DATASET_REGISTRY)

    def test_load_scales_document_count(self):
        small, _ = load_text_dataset("reviews", scale=0.25, random_state=0)
        full, _ = load_text_dataset("reviews", scale=1.0, random_state=0)
        assert len(small) < len(full)

    def test_newsgroups_is_multiclass(self):
        _, labels = load_text_dataset("newsgroups", scale=0.2, random_state=0)
        assert np.unique(labels).shape[0] == 4

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownComponentError):
            load_text_dataset("imdb")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValidationError):
            load_text_dataset("reviews", scale=-1.0)
