"""Tests for the text vectorizers (count, TF-IDF, hashing)."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.text import CountVectorizer, HashingVectorizer, TfidfVectorizer

CORPUS = [
    "the cat sat on the mat",
    "the dog sat on the log",
    "cats and dogs are friends",
    "the mat was red",
]


class TestCountVectorizer:
    def test_counts_match_manual_expectation(self):
        vectorizer = CountVectorizer(remove_stop_words=False)
        matrix = vectorizer.fit_transform(["a b b c", "c c a"])
        names = vectorizer.get_feature_names()
        assert names == ["a", "b", "c"]
        np.testing.assert_array_equal(matrix, [[1, 2, 1], [1, 0, 2]])

    def test_stop_words_removed_by_default(self):
        vectorizer = CountVectorizer()
        vectorizer.fit(CORPUS)
        assert "the" not in vectorizer.vocabulary_
        assert "on" not in vectorizer.vocabulary_

    def test_unknown_terms_ignored_at_transform_time(self):
        vectorizer = CountVectorizer(remove_stop_words=False).fit(["alpha beta"])
        matrix = vectorizer.transform(["alpha gamma delta"])
        assert matrix.shape == (1, 2)
        assert matrix.sum() == 1.0

    def test_min_df_filters_rare_terms(self):
        vectorizer = CountVectorizer(remove_stop_words=False, min_df=2)
        vectorizer.fit(["a b", "a c", "a d"])
        assert list(vectorizer.vocabulary_) == ["a"]

    def test_max_features_keeps_most_frequent_terms(self):
        vectorizer = CountVectorizer(remove_stop_words=False, max_features=2)
        vectorizer.fit(["a a a b b c", "a b c"])
        assert set(vectorizer.vocabulary_) == {"a", "b"}

    def test_binary_mode_caps_counts_at_one(self):
        vectorizer = CountVectorizer(remove_stop_words=False, binary=True)
        matrix = vectorizer.fit_transform(["a a a b"])
        assert matrix.max() == 1.0

    def test_bigrams_included_when_requested(self):
        vectorizer = CountVectorizer(remove_stop_words=False, ngram_range=(1, 2))
        vectorizer.fit(["red cat", "red dog"])
        assert "red cat" in vectorizer.vocabulary_

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            CountVectorizer().transform(CORPUS)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValidationError):
            CountVectorizer().fit([])

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            CountVectorizer(min_df=0)
        with pytest.raises(ValidationError):
            CountVectorizer(max_features=0)


class TestTfidfVectorizer:
    def test_rows_are_l2_normalised_by_default(self):
        matrix = TfidfVectorizer(remove_stop_words=False).fit_transform(CORPUS)
        norms = np.linalg.norm(matrix, axis=1)
        np.testing.assert_allclose(norms[norms > 0], 1.0)

    def test_rare_terms_receive_higher_idf_than_common_terms(self):
        vectorizer = TfidfVectorizer(remove_stop_words=False).fit(
            ["common rare", "common", "common other"]
        )
        idf = vectorizer.idf_
        vocabulary = vectorizer.vocabulary_
        assert idf[vocabulary["rare"]] > idf[vocabulary["common"]]

    def test_norm_none_keeps_raw_tfidf(self):
        vectorizer = TfidfVectorizer(remove_stop_words=False, norm=None)
        matrix = vectorizer.fit_transform(["a a b", "a b b"])
        assert not np.allclose(np.linalg.norm(matrix, axis=1), 1.0)

    def test_l1_norm_rows_sum_to_one(self):
        matrix = TfidfVectorizer(remove_stop_words=False, norm="l1").fit_transform(CORPUS)
        sums = np.abs(matrix).sum(axis=1)
        np.testing.assert_allclose(sums[sums > 0], 1.0)

    def test_invalid_norm_rejected(self):
        with pytest.raises(ValidationError):
            TfidfVectorizer(norm="max")


class TestHashingVectorizer:
    def test_output_has_requested_width_and_needs_no_fit(self):
        matrix = HashingVectorizer(n_features=32).transform(CORPUS)
        assert matrix.shape == (len(CORPUS), 32)

    def test_deterministic_across_calls(self):
        vectorizer = HashingVectorizer(n_features=64)
        np.testing.assert_array_equal(
            vectorizer.transform(CORPUS), vectorizer.fit_transform(CORPUS)
        )

    def test_same_document_maps_to_same_row(self):
        vectorizer = HashingVectorizer(n_features=16)
        matrix = vectorizer.transform(["cat dog", "cat dog"])
        np.testing.assert_array_equal(matrix[0], matrix[1])

    def test_invalid_width_rejected(self):
        with pytest.raises(ValidationError):
            HashingVectorizer(n_features=0)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValidationError):
            HashingVectorizer().transform([])


class TestVectorizersFeedDownstreamModels:
    def test_tfidf_features_train_a_better_than_chance_classifier(self):
        from repro.models import make_classifier, train_test_split
        from repro.text import load_text_dataset

        documents, labels = load_text_dataset("reviews", scale=0.5, random_state=0)
        features = TfidfVectorizer(max_features=80).fit_transform(documents)
        X_train, X_valid, y_train, y_valid = train_test_split(
            features, labels, test_size=0.25, random_state=0
        )
        model = make_classifier("lr").fit(X_train, y_train)
        assert model.score(X_valid, y_valid) > 0.7
