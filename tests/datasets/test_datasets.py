"""Tests for synthetic generators and the 45-dataset registry."""

import numpy as np
import pytest

from repro.datasets import (
    BOTTLENECK_DATASETS,
    DATASET_REGISTRY,
    MOTIVATION_DATASETS,
    DistortionSpec,
    dataset_statistics,
    distort_features,
    get_dataset_info,
    list_datasets,
    load_dataset,
    make_classification,
)
from repro.exceptions import UnknownComponentError, ValidationError


class TestMakeClassification:
    def test_shapes_and_labels(self):
        X, y = make_classification(n_samples=100, n_features=5, n_classes=3,
                                   random_state=0)
        assert X.shape == (100, 5)
        assert y.shape == (100,)
        assert set(y.tolist()) == {0, 1, 2}

    def test_deterministic(self):
        a = make_classification(n_samples=50, n_features=4, random_state=7)
        b = make_classification(n_samples=50, n_features=4, random_state=7)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_class_sep_controls_difficulty(self):
        from repro.models import LogisticRegression

        easy_X, easy_y = make_classification(n_samples=200, n_features=6,
                                             class_sep=3.0, random_state=0)
        hard_X, hard_y = make_classification(n_samples=200, n_features=6,
                                             class_sep=0.3, random_state=0)
        easy = LogisticRegression(max_iter=100).fit(easy_X, easy_y).score(easy_X, easy_y)
        hard = LogisticRegression(max_iter=100).fit(hard_X, hard_y).score(hard_X, hard_y)
        assert easy > hard

    def test_weights_skew_class_sizes(self):
        _, y = make_classification(n_samples=200, n_classes=2,
                                   weights=(0.8, 0.2), random_state=0)
        counts = np.bincount(y)
        assert counts[0] > counts[1] * 2

    def test_label_noise_flips_labels(self):
        X, clean = make_classification(n_samples=300, n_features=4,
                                       label_noise=0.0, random_state=5)
        _, noisy = make_classification(n_samples=300, n_features=4,
                                       label_noise=0.3, random_state=5)
        assert np.mean(clean != noisy) > 0.05

    def test_invalid_arguments(self):
        with pytest.raises(ValidationError):
            make_classification(n_samples=1, n_classes=2)
        with pytest.raises(ValidationError):
            make_classification(n_classes=1)
        with pytest.raises(ValidationError):
            make_classification(n_samples=10, n_classes=2, weights=(1.0,))


class TestDistortion:
    def test_shape_preserved(self, rng):
        X = rng.normal(size=(50, 6))
        out = distort_features(X, random_state=0)
        assert out.shape == X.shape

    def test_distortion_increases_scale_heterogeneity(self, rng):
        X = rng.normal(size=(200, 8))
        out = distort_features(
            X, DistortionSpec(scale_spread=3.0, skew_fraction=0.5), random_state=0
        )
        spread_before = np.log10(X.std(axis=0).max() / X.std(axis=0).min())
        spread_after = np.log10(out.std(axis=0).max() / out.std(axis=0).min())
        assert spread_after > spread_before

    def test_distortion_is_monotone_per_feature(self, rng):
        """Row ordering within each feature is preserved (rank statistics intact)."""
        X = rng.normal(size=(100, 5))
        out = distort_features(X, random_state=3)
        for j in range(X.shape[1]):
            original_order = np.argsort(X[:, j])
            transformed_order = np.argsort(out[:, j])
            np.testing.assert_array_equal(original_order, transformed_order)

    def test_output_finite(self, rng):
        X = rng.normal(size=(100, 10)) * 5
        out = distort_features(X, random_state=1)
        assert np.all(np.isfinite(out))


class TestRegistry:
    def test_45_datasets_registered(self):
        """The paper evaluates on 45 datasets (Table 9)."""
        assert len(DATASET_REGISTRY) == 45
        assert len(list_datasets()) == 45

    def test_motivation_datasets_exist(self):
        assert set(MOTIVATION_DATASETS) <= set(DATASET_REGISTRY)
        assert set(BOTTLENECK_DATASETS) <= set(DATASET_REGISTRY)

    def test_binary_and_multiclass_mix(self):
        """Table 9: 28 binary and 17 multi-class datasets."""
        binary = sum(info.is_binary for info in DATASET_REGISTRY.values())
        assert binary == 28
        assert 45 - binary == 17

    def test_load_dataset_matches_info(self):
        for name in ("heart", "wine", "christine"):
            info = get_dataset_info(name)
            X, y = load_dataset(name)
            assert X.shape == (info.n_samples, info.n_features)
            assert np.unique(y).shape[0] == info.n_classes

    def test_load_is_deterministic(self):
        a = load_dataset("forex")
        b = load_dataset("forex")
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_scale_changes_row_count_only(self):
        base_X, _ = load_dataset("blood")
        bigger_X, _ = load_dataset("blood", scale=2.0)
        assert bigger_X.shape[0] > base_X.shape[0]
        assert bigger_X.shape[1] == base_X.shape[1]

    def test_unknown_dataset_raises(self):
        with pytest.raises(UnknownComponentError):
            load_dataset("not-a-dataset")

    def test_size_categories_cover_table5_groups(self):
        categories = {info.size_category for info in DATASET_REGISTRY.values()}
        assert categories == {"high_dimensional", "small", "medium", "large"}

    def test_statistics_rows(self):
        stats = dataset_statistics()
        assert len(stats) == 45
        assert {"name", "n_samples", "n_features", "n_classes", "binary"} <= set(stats[0])

    def test_every_dataset_loads_and_is_finite(self):
        for name in list_datasets():
            X, y = load_dataset(name, scale=0.5)
            assert np.all(np.isfinite(X))
            assert X.shape[0] == y.shape[0]
            assert np.unique(y).shape[0] >= 2
