"""Tests for the extension preprocessors (beyond the paper's default seven)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import UnknownComponentError, ValidationError
from repro.preprocessing import (
    DEFAULT_PREPROCESSOR_NAMES,
    EXTENDED_PREPROCESSOR_NAMES,
    ClippingTransformer,
    KBinsDiscretizer,
    LogTransformer,
    RobustScaler,
    extended_preprocessors,
    extended_search_space,
    get_extended_preprocessor_class,
)

matrices = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(3, 25), st.integers(1, 4)),
    elements=st.floats(min_value=-1e6, max_value=1e6,
                       allow_nan=False, allow_infinity=False),
)


class TestRobustScaler:
    def test_centres_on_median_and_scales_by_iqr(self):
        X = np.array([[1.0], [2.0], [3.0], [4.0], [100.0]])
        out = RobustScaler().fit_transform(X)
        median = np.median(X)
        iqr = np.percentile(X, 75) - np.percentile(X, 25)
        expected = (X - median) / iqr
        np.testing.assert_allclose(out, expected)

    def test_outlier_does_not_affect_scale_of_bulk(self):
        X = np.vstack([np.arange(20.0).reshape(-1, 1), [[1e6]]])
        out = RobustScaler().fit_transform(X)
        # The bulk of the data stays within a few robust units even though the
        # raw range is ~1e6 wide.
        assert np.abs(out[:-1]).max() < 3.0

    def test_constant_feature_maps_to_zero(self):
        X = np.full((10, 2), 7.0)
        out = RobustScaler().fit_transform(X)
        np.testing.assert_allclose(out, 0.0)

    def test_centering_and_scaling_flags(self):
        X = np.array([[0.0], [2.0], [4.0], [6.0]])
        no_center = RobustScaler(with_centering=False).fit_transform(X)
        assert no_center.min() >= 0.0
        no_scale = RobustScaler(with_scaling=False).fit_transform(X)
        np.testing.assert_allclose(no_scale, X - np.median(X))

    def test_invalid_quantile_range_rejected(self):
        with pytest.raises(ValidationError):
            RobustScaler(q_min=80.0, q_max=20.0)


class TestKBinsDiscretizer:
    def test_uniform_bins_cover_range(self):
        X = np.linspace(0.0, 1.0, 50).reshape(-1, 1)
        out = KBinsDiscretizer(n_bins=5, strategy="uniform").fit_transform(X)
        assert set(np.round(np.unique(out), 6)) <= {0.0, 0.25, 0.5, 0.75, 1.0}
        assert out.min() == 0.0
        assert out.max() == 1.0

    def test_quantile_bins_are_roughly_equal_population(self):
        rng = np.random.default_rng(0)
        X = rng.exponential(size=(1000, 1))
        out = KBinsDiscretizer(n_bins=4, strategy="quantile").fit_transform(X)
        _, counts = np.unique(out, return_counts=True)
        assert counts.shape[0] == 4
        assert counts.min() > 150

    def test_number_of_distinct_values_bounded_by_n_bins(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(200, 3))
        out = KBinsDiscretizer(n_bins=7).fit_transform(X)
        for column in out.T:
            assert np.unique(column).shape[0] <= 7

    def test_constant_feature_single_bin(self):
        X = np.full((20, 1), 3.0)
        out = KBinsDiscretizer(n_bins=4).fit_transform(X)
        assert np.unique(out).shape[0] == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            KBinsDiscretizer(n_bins=1)
        with pytest.raises(ValidationError):
            KBinsDiscretizer(strategy="kmeans")


class TestLogTransformer:
    def test_is_odd_function(self):
        X = np.array([[-5.0, 5.0], [-0.5, 0.5]])
        out = LogTransformer().fit_transform(X)
        np.testing.assert_allclose(out[:, 0], -out[:, 1])

    def test_zero_maps_to_zero_and_monotone(self):
        X = np.array([[-10.0], [-1.0], [0.0], [1.0], [10.0]])
        out = LogTransformer().fit_transform(X).ravel()
        assert out[2] == 0.0
        assert np.all(np.diff(out) > 0)

    def test_base_changes_scale(self):
        X = np.array([[np.e - 1.0]])
        natural = LogTransformer().fit_transform(X)
        base10 = LogTransformer(base=10.0).fit_transform(X)
        np.testing.assert_allclose(natural, 1.0)
        np.testing.assert_allclose(base10, 1.0 / np.log(10.0))

    def test_invalid_base_rejected(self):
        with pytest.raises(ValidationError):
            LogTransformer(base=1.0)


class TestClippingTransformer:
    def test_clips_extreme_values_to_training_percentiles(self):
        X = np.arange(100.0).reshape(-1, 1)
        clipper = ClippingTransformer(q_min=10.0, q_max=90.0).fit(X)
        out = clipper.transform(np.array([[-50.0], [50.0], [500.0]]))
        lower = np.percentile(X, 10.0)
        upper = np.percentile(X, 90.0)
        np.testing.assert_allclose(out.ravel(), [lower, 50.0, upper])

    def test_values_inside_range_unchanged(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 2))
        out = ClippingTransformer(q_min=0.0, q_max=100.0).fit_transform(X)
        np.testing.assert_allclose(out, X)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValidationError):
            ClippingTransformer(q_min=99.0, q_max=1.0)


class TestExtendedRegistry:
    def test_extension_names_do_not_overlap_defaults(self):
        assert not set(EXTENDED_PREPROCESSOR_NAMES) & set(DEFAULT_PREPROCESSOR_NAMES)

    def test_extended_preprocessors_returns_all_four(self):
        instances = extended_preprocessors()
        assert [p.name for p in instances] == list(EXTENDED_PREPROCESSOR_NAMES)

    def test_unknown_extension_name_raises(self):
        with pytest.raises(UnknownComponentError):
            get_extended_preprocessor_class("missing")

    def test_extended_space_contains_defaults_plus_extensions(self):
        space = extended_search_space()
        names = [candidate.name for candidate in space.candidates]
        assert names[: len(DEFAULT_PREPROCESSOR_NAMES)] == list(DEFAULT_PREPROCESSOR_NAMES)
        assert names[len(DEFAULT_PREPROCESSOR_NAMES):] == list(EXTENDED_PREPROCESSOR_NAMES)
        assert space.max_length == space.n_candidates

    def test_extensions_only_space(self):
        space = extended_search_space(include_defaults=False,
                                      extension_names=["robust_scaler"],
                                      max_length=3)
        assert space.n_candidates == 1
        assert space.max_length == 3

    def test_extended_space_samples_valid_pipelines(self):
        space = extended_search_space()
        pipeline = space.sample_pipeline(random_state=0)
        assert 1 <= len(pipeline) <= space.max_length


@given(X=matrices)
@settings(max_examples=30, deadline=None)
def test_extension_preprocessors_preserve_shape_and_finiteness(X):
    """Every extension preprocessor maps finite input to finite output of equal shape."""
    for preprocessor in extended_preprocessors():
        out = preprocessor.fit_transform(X)
        assert out.shape == X.shape
        assert np.all(np.isfinite(out))


@given(X=matrices)
@settings(max_examples=30, deadline=None)
def test_kbins_output_in_unit_interval(X):
    out = KBinsDiscretizer(n_bins=4).fit_transform(X)
    assert out.min() >= -1e-9
    assert out.max() <= 1.0 + 1e-9


@given(X=matrices)
@settings(max_examples=30, deadline=None)
def test_clipping_never_widens_the_range(X):
    out = ClippingTransformer().fit_transform(X)
    assert out.min() >= X.min() - 1e-9
    assert out.max() <= X.max() + 1e-9


@given(X=matrices)
@settings(max_examples=30, deadline=None)
def test_log_transform_preserves_sign(X):
    out = LogTransformer().fit_transform(X)
    assert np.all(np.sign(out) == np.sign(X))
