"""Tests for Normalizer and Binarizer (Figure 1(e) and 1(h) examples)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.preprocessing import Binarizer, Normalizer

FIGURE1_COLUMN = np.array([-1.5, 1.0, 1.5, 2.5, 3.0, 4.0, 5.0]).reshape(-1, 1)


class TestNormalizer:
    def test_figure1_example_single_column(self):
        """Figure 1(e): with a single column every non-zero value maps to +-1."""
        out = Normalizer().fit_transform(FIGURE1_COLUMN)
        np.testing.assert_allclose(out.ravel(), [-1, 1, 1, 1, 1, 1, 1])

    def test_l2_rows_have_unit_norm(self, rng):
        X = rng.normal(size=(50, 4))
        out = Normalizer(norm="l2").fit_transform(X)
        np.testing.assert_allclose(np.linalg.norm(out, axis=1), 1.0, atol=1e-12)

    def test_l1_rows_have_unit_l1_norm(self, rng):
        X = rng.normal(size=(50, 4))
        out = Normalizer(norm="l1").fit_transform(X)
        np.testing.assert_allclose(np.abs(out).sum(axis=1), 1.0, atol=1e-12)

    def test_max_norm_rows_bounded_by_one(self, rng):
        X = rng.normal(size=(50, 4))
        out = Normalizer(norm="max").fit_transform(X)
        np.testing.assert_allclose(np.abs(out).max(axis=1), 1.0, atol=1e-12)

    def test_zero_row_left_unchanged(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0]])
        out = Normalizer().fit_transform(X)
        np.testing.assert_allclose(out[0], 0.0)

    def test_invalid_norm_rejected(self):
        with pytest.raises(ValidationError):
            Normalizer(norm="l3")

    def test_row_wise_independence(self, rng):
        """Normalising a subset of rows gives the same values as the full set."""
        X = rng.normal(size=(20, 3))
        full = Normalizer().fit_transform(X)
        partial = Normalizer().fit(X).transform(X[:5])
        np.testing.assert_allclose(full[:5], partial)


class TestBinarizer:
    def test_figure1_example(self):
        """Figure 1(h): -1.5 maps to 0, all other values map to 1."""
        out = Binarizer().fit_transform(FIGURE1_COLUMN)
        np.testing.assert_array_equal(out.ravel(), [0, 1, 1, 1, 1, 1, 1])

    def test_zero_maps_to_one_with_default_threshold(self):
        """The paper: non-negative values map to 1 with the default threshold 0."""
        out = Binarizer().fit_transform(np.array([[0.0], [-0.1], [0.1]]))
        np.testing.assert_array_equal(out.ravel(), [1, 0, 1])

    def test_custom_threshold(self):
        out = Binarizer(threshold=2.0).fit_transform(FIGURE1_COLUMN)
        np.testing.assert_array_equal(out.ravel(), [0, 0, 0, 1, 1, 1, 1])

    def test_output_is_binary(self, rng):
        X = rng.normal(size=(100, 5))
        out = Binarizer(threshold=0.3).fit_transform(X)
        assert set(np.unique(out)).issubset({0.0, 1.0})

    def test_idempotent_for_midpoint_threshold(self, rng):
        """Binarizing already-binary data with threshold 0.5 changes nothing."""
        X = rng.normal(size=(40, 3))
        once = Binarizer(threshold=0.5).fit_transform(X)
        twice = Binarizer(threshold=0.5).fit_transform(once)
        np.testing.assert_array_equal(once, twice)

    def test_threshold_is_a_parameter(self):
        assert Binarizer(threshold=0.4).get_params() == {"threshold": 0.4}
        assert Binarizer(threshold=0.4) != Binarizer(threshold=0.6)
