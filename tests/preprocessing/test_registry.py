"""Tests for the preprocessor registry and parameter-grid expansion."""

import pytest

from repro.exceptions import UnknownComponentError
from repro.preprocessing import (
    DEFAULT_PREPROCESSOR_NAMES,
    PREPROCESSOR_CLASSES,
    Binarizer,
    default_preprocessors,
    expand_parameter_grid,
    get_preprocessor_class,
    make_preprocessor,
)


class TestRegistry:
    def test_exactly_seven_default_preprocessors(self):
        """The paper studies exactly seven preprocessors (Section 2.1)."""
        assert len(DEFAULT_PREPROCESSOR_NAMES) == 7
        assert len(PREPROCESSOR_CLASSES) == 7

    def test_expected_names_present(self):
        expected = {
            "standard_scaler", "minmax_scaler", "maxabs_scaler", "normalizer",
            "power_transformer", "quantile_transformer", "binarizer",
        }
        assert set(DEFAULT_PREPROCESSOR_NAMES) == expected

    def test_get_class_by_name(self):
        assert get_preprocessor_class("binarizer") is Binarizer

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownComponentError):
            get_preprocessor_class("pca")

    def test_make_preprocessor_with_params(self):
        preprocessor = make_preprocessor("binarizer", threshold=0.5)
        assert preprocessor.threshold == 0.5

    def test_default_preprocessors_are_fresh_instances(self):
        first = default_preprocessors()
        second = default_preprocessors()
        assert all(a is not b for a, b in zip(first, second))
        assert [type(a) for a in first] == [type(b) for b in second]

    def test_default_preprocessors_subset(self):
        subset = default_preprocessors(["binarizer", "normalizer"])
        assert [p.name for p in subset] == ["binarizer", "normalizer"]


class TestExpandParameterGrid:
    def test_empty_params_give_single_instance(self):
        instances = expand_parameter_grid({"maxabs_scaler": {}})
        assert len(instances) == 1

    def test_single_parameter_expansion(self):
        instances = expand_parameter_grid(
            {"binarizer": {"threshold": [0.0, 0.5, 1.0]}}
        )
        assert len(instances) == 3
        assert sorted(p.threshold for p in instances) == [0.0, 0.5, 1.0]

    def test_cartesian_product_of_parameters(self):
        instances = expand_parameter_grid(
            {"quantile_transformer": {
                "n_quantiles": [10, 100],
                "output_distribution": ["uniform", "normal"],
            }}
        )
        assert len(instances) == 4

    def test_low_cardinality_space_size_matches_paper(self):
        """Section 6.2: the low-cardinality One-step expansion has 31 preprocessors."""
        grid = {
            "binarizer": {"threshold": [0, 0.2, 0.4, 0.6, 0.8, 1.0]},
            "minmax_scaler": {},
            "maxabs_scaler": {},
            "normalizer": {"norm": ["l1", "l2", "max"]},
            "standard_scaler": {"with_mean": [True, False]},
            "power_transformer": {"standardize": [True, False]},
            "quantile_transformer": {
                "n_quantiles": [10, 100, 200, 500, 1000, 1200, 1500, 2000],
                "output_distribution": ["uniform", "normal"],
            },
        }
        assert len(expand_parameter_grid(grid)) == 31

    def test_instances_are_distinct_objects(self):
        instances = expand_parameter_grid({"binarizer": {"threshold": [0.0, 0.0]}})
        assert instances[0] is not instances[1]
