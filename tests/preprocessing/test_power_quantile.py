"""Tests for PowerTransformer (Yeo-Johnson) and QuantileTransformer."""

import numpy as np
import pytest
from scipy import stats

from repro.exceptions import ValidationError
from repro.preprocessing import PowerTransformer, QuantileTransformer
from repro.preprocessing.power import (
    optimal_lambda,
    yeo_johnson_log_likelihood,
    yeo_johnson_transform,
)

FIGURE1_COLUMN = np.array([-1.5, 1.0, 1.5, 2.5, 3.0, 4.0, 5.0]).reshape(-1, 1)


class TestYeoJohnsonFunction:
    def test_identity_at_lambda_one(self):
        x = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
        np.testing.assert_allclose(yeo_johnson_transform(x, 1.0), x, atol=1e-12)

    def test_lambda_zero_is_log1p_for_positive(self):
        x = np.array([0.0, 1.0, 4.0])
        np.testing.assert_allclose(yeo_johnson_transform(x, 0.0), np.log1p(x))

    def test_lambda_two_is_neg_log1p_for_negative(self):
        x = np.array([-1.0, -3.0])
        np.testing.assert_allclose(yeo_johnson_transform(x, 2.0), -np.log1p(-x))

    def test_paper_example_value(self):
        """Equation 1 example: Yeo-Johnson(-1.5) with lambda=1.22 ~= -1.34."""
        value = yeo_johnson_transform(np.array([-1.5]), 1.22)[0]
        assert value == pytest.approx(-1.34, abs=0.01)

    def test_monotonicity(self, rng):
        x = np.sort(rng.normal(size=50))
        for lmbda in (-1.0, 0.0, 0.5, 1.0, 2.0, 3.0):
            out = yeo_johnson_transform(x, lmbda)
            assert np.all(np.diff(out) >= -1e-12)

    def test_log_likelihood_finite_for_reasonable_data(self, rng):
        x = rng.normal(size=100)
        assert np.isfinite(yeo_johnson_log_likelihood(x, 0.7))

    def test_optimal_lambda_reduces_skew(self, rng):
        x = rng.exponential(size=400)  # strongly right-skewed
        lmbda = optimal_lambda(x)
        transformed = yeo_johnson_transform(x, lmbda)
        assert abs(stats.skew(transformed)) < abs(stats.skew(x))


class TestPowerTransformer:
    def test_reduces_skewness_of_exponential_data(self, rng):
        X = rng.exponential(scale=2.0, size=(400, 3))
        out = PowerTransformer().fit_transform(X)
        for j in range(3):
            assert abs(stats.skew(out[:, j])) < abs(stats.skew(X[:, j]))

    def test_standardize_gives_zero_mean_unit_variance(self, rng):
        X = rng.exponential(size=(300, 2))
        out = PowerTransformer(standardize=True).fit_transform(X)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-6)

    def test_no_standardize_keeps_raw_transform(self, rng):
        X = rng.exponential(size=(100, 1)) + 5.0
        out = PowerTransformer(standardize=False).fit_transform(X)
        assert out.mean() != pytest.approx(0.0, abs=0.1)

    def test_constant_feature_handled(self):
        X = np.full((20, 2), 3.0)
        out = PowerTransformer().fit_transform(X)
        assert np.all(np.isfinite(out))

    def test_per_feature_lambdas_learned(self, rng):
        X = np.column_stack([rng.exponential(size=200), rng.normal(size=200)])
        transformer = PowerTransformer().fit(X)
        assert transformer.lambdas_.shape == (2,)
        assert transformer.lambdas_[0] != pytest.approx(transformer.lambdas_[1], abs=1e-3)

    def test_transform_is_monotone_per_feature(self, rng):
        X = rng.normal(size=(100, 1))
        transformer = PowerTransformer(standardize=False).fit(X)
        ordered = np.sort(X, axis=0)
        out = transformer.transform(ordered)
        assert np.all(np.diff(out[:, 0]) >= -1e-9)


class TestQuantileTransformer:
    def test_figure1_example(self):
        """Figure 1(g): ranks 0/6 .. 6/6 for the seven example values."""
        out = QuantileTransformer(n_quantiles=7).fit_transform(FIGURE1_COLUMN)
        expected = np.array([0, 1, 2, 3, 4, 5, 6]) / 6.0
        np.testing.assert_allclose(out.ravel(), expected, atol=1e-9)

    def test_uniform_output_range(self, rng):
        X = rng.normal(scale=40.0, size=(300, 4))
        out = QuantileTransformer(n_quantiles=100).fit_transform(X)
        assert out.min() >= 0.0
        assert out.max() <= 1.0

    def test_uniform_output_is_flat(self, rng):
        X = rng.exponential(size=(1000, 1))
        out = QuantileTransformer(n_quantiles=500).fit_transform(X)
        # Kolmogorov-Smirnov distance to uniform should be small.
        statistic, _ = stats.kstest(out.ravel(), "uniform")
        assert statistic < 0.05

    def test_normal_output_distribution(self, rng):
        X = rng.exponential(size=(800, 1))
        out = QuantileTransformer(n_quantiles=400,
                                  output_distribution="normal").fit_transform(X)
        assert abs(out.mean()) < 0.15
        assert abs(out.std() - 1.0) < 0.2

    def test_n_quantiles_clipped_to_sample_count(self, rng):
        X = rng.normal(size=(10, 2))
        transformer = QuantileTransformer(n_quantiles=1000).fit(X)
        assert transformer.n_quantiles_ == 10

    def test_monotone_per_feature(self, rng):
        X = rng.normal(size=(200, 1))
        transformer = QuantileTransformer(n_quantiles=50).fit(X)
        ordered = np.sort(X, axis=0)
        out = transformer.transform(ordered)
        assert np.all(np.diff(out[:, 0]) >= -1e-12)

    def test_invalid_output_distribution_rejected(self):
        with pytest.raises(ValidationError):
            QuantileTransformer(output_distribution="poisson")

    def test_too_few_quantiles_rejected(self):
        with pytest.raises(ValidationError):
            QuantileTransformer(n_quantiles=1)
