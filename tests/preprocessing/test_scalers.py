"""Tests for StandardScaler, MinMaxScaler and MaxAbsScaler.

Includes the worked example from Figure 1 of the paper: the feature column
[-1.5, 1, 1.5, 2.5, 3, 4, 5] and its transformed values under each scaler.
"""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.preprocessing import MaxAbsScaler, MinMaxScaler, StandardScaler

#: the example feature column of Figure 1(a)
FIGURE1_COLUMN = np.array([-1.5, 1.0, 1.5, 2.5, 3.0, 4.0, 5.0]).reshape(-1, 1)


class TestStandardScaler:
    def test_figure1_example(self):
        """Figure 1(b): -1.5 maps to about -1.87 under StandardScaler."""
        out = StandardScaler().fit_transform(FIGURE1_COLUMN)
        assert out[0, 0] == pytest.approx(-1.87, abs=0.01)

    def test_zero_mean_unit_variance(self, rng):
        X = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        out = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_maps_to_zero(self):
        X = np.full((10, 2), 7.0)
        out = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(out, 0.0)

    def test_with_mean_false_keeps_offset(self, rng):
        X = rng.normal(loc=10.0, size=(50, 2))
        out = StandardScaler(with_mean=False).fit_transform(X)
        assert out.mean() > 1.0  # data not centred

    def test_with_std_false_only_centres(self, rng):
        X = rng.normal(scale=5.0, size=(50, 2))
        out = StandardScaler(with_std=False).fit_transform(X)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        assert out.std() > 2.0

    def test_transform_uses_training_statistics(self, rng):
        X_train = rng.normal(size=(100, 3))
        X_test = rng.normal(loc=100.0, size=(10, 3))
        scaler = StandardScaler().fit(X_train)
        out = scaler.transform(X_test)
        assert out.mean() > 10.0  # test data far from training mean stays far

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(FIGURE1_COLUMN)

    def test_feature_count_mismatch_raises(self, rng):
        scaler = StandardScaler().fit(rng.normal(size=(20, 3)))
        with pytest.raises(ValidationError):
            scaler.transform(rng.normal(size=(5, 4)))


class TestMinMaxScaler:
    def test_figure1_example(self):
        """Figure 1(d): value 1 maps to 0.38 with min=-1.5, max=5."""
        out = MinMaxScaler().fit_transform(FIGURE1_COLUMN)
        assert out[1, 0] == pytest.approx(0.38, abs=0.01)
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1.0)

    def test_output_within_range(self, rng):
        X = rng.normal(scale=50.0, size=(100, 5))
        out = MinMaxScaler().fit_transform(X)
        assert out.min() >= 0.0
        assert out.max() <= 1.0

    def test_custom_range(self, rng):
        X = rng.normal(size=(50, 2))
        out = MinMaxScaler(range_min=-1.0, range_max=1.0).fit_transform(X)
        assert out.min() == pytest.approx(-1.0)
        assert out.max() == pytest.approx(1.0)

    def test_constant_feature_maps_to_range_min(self):
        X = np.full((10, 1), 3.0)
        out = MinMaxScaler(range_min=0.25).fit_transform(X)
        np.testing.assert_allclose(out, 0.25)

    def test_invalid_range_raises(self):
        with pytest.raises(ValidationError):
            MinMaxScaler(range_min=1.0, range_max=0.0)

    def test_unseen_values_can_exceed_range(self, rng):
        X_train = rng.uniform(0, 1, size=(50, 1))
        scaler = MinMaxScaler().fit(X_train)
        out = scaler.transform(np.array([[10.0]]))
        assert out[0, 0] > 1.0


class TestMaxAbsScaler:
    def test_figure1_example(self):
        """Figure 1(c): -1.5 maps to -0.3 when the max absolute value is 5."""
        out = MaxAbsScaler().fit_transform(FIGURE1_COLUMN)
        assert out[0, 0] == pytest.approx(-0.3, abs=1e-9)
        assert out[-1, 0] == pytest.approx(1.0)

    def test_output_bounded_by_one(self, rng):
        X = rng.normal(scale=100.0, size=(200, 4))
        out = MaxAbsScaler().fit_transform(X)
        assert np.abs(out).max() <= 1.0 + 1e-12

    def test_zero_feature_unchanged(self):
        X = np.zeros((10, 2))
        out = MaxAbsScaler().fit_transform(X)
        np.testing.assert_allclose(out, 0.0)

    def test_sign_preserved(self, rng):
        X = rng.normal(size=(50, 3))
        out = MaxAbsScaler().fit_transform(X)
        np.testing.assert_array_equal(np.sign(out), np.sign(X))

    def test_has_no_parameters(self):
        assert MaxAbsScaler().get_params() == {}


class TestScalerProtocol:
    @pytest.mark.parametrize("cls", [StandardScaler, MinMaxScaler, MaxAbsScaler])
    def test_clone_is_unfitted_copy(self, cls, rng):
        scaler = cls().fit(rng.normal(size=(20, 2)))
        clone = scaler.clone()
        assert not clone.is_fitted()
        assert clone.get_params() == cls().get_params()

    @pytest.mark.parametrize("cls", [StandardScaler, MinMaxScaler, MaxAbsScaler])
    def test_shape_preserved(self, cls, rng):
        X = rng.normal(size=(30, 5))
        assert cls().fit_transform(X).shape == X.shape

    @pytest.mark.parametrize("cls", [StandardScaler, MinMaxScaler, MaxAbsScaler])
    def test_output_is_finite(self, cls, rng):
        X = rng.normal(scale=1e6, size=(30, 3))
        assert np.all(np.isfinite(cls().fit_transform(X)))

    @pytest.mark.parametrize("cls", [StandardScaler, MinMaxScaler, MaxAbsScaler])
    def test_equality_by_params(self, cls):
        assert cls() == cls()
        assert hash(cls()) == hash(cls())
