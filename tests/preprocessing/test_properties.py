"""Property-based tests (hypothesis) for the preprocessor invariants."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.preprocessing import (
    Binarizer,
    MaxAbsScaler,
    MinMaxScaler,
    Normalizer,
    QuantileTransformer,
    StandardScaler,
    default_preprocessors,
)

# Feature matrices with bounded finite values, 2-30 rows, 1-5 columns.
matrices = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 30), st.integers(1, 5)),
    elements=st.floats(min_value=-1e6, max_value=1e6,
                       allow_nan=False, allow_infinity=False),
)


@given(X=matrices)
@settings(max_examples=40, deadline=None)
def test_all_preprocessors_preserve_shape_and_finiteness(X):
    """Every default preprocessor maps finite input to finite output of the same shape."""
    for preprocessor in default_preprocessors():
        out = preprocessor.fit_transform(X)
        assert out.shape == X.shape
        assert np.all(np.isfinite(out))


@given(X=matrices)
@settings(max_examples=40, deadline=None)
def test_minmax_output_always_in_unit_interval(X):
    out = MinMaxScaler().fit_transform(X)
    assert out.min() >= -1e-9
    assert out.max() <= 1.0 + 1e-9


@given(X=matrices)
@settings(max_examples=40, deadline=None)
def test_maxabs_output_bounded_by_one(X):
    out = MaxAbsScaler().fit_transform(X)
    assert np.abs(out).max() <= 1.0 + 1e-9


@given(X=matrices)
@settings(max_examples=40, deadline=None)
def test_binarizer_output_is_binary(X):
    out = Binarizer().fit_transform(X)
    assert set(np.unique(out)).issubset({0.0, 1.0})


@given(X=matrices)
@settings(max_examples=40, deadline=None)
def test_normalizer_rows_have_at_most_unit_l2_norm(X):
    out = Normalizer().fit_transform(X)
    norms = np.linalg.norm(out, axis=1)
    # Zero rows keep norm 0; all other rows have norm 1.
    assert np.all((np.abs(norms - 1.0) < 1e-9) | (norms < 1e-12))


@given(X=matrices)
@settings(max_examples=40, deadline=None)
def test_quantile_uniform_output_in_unit_interval(X):
    out = QuantileTransformer(n_quantiles=10).fit_transform(X)
    assert out.min() >= -1e-9
    assert out.max() <= 1.0 + 1e-9


@given(X=matrices, shift=st.floats(-100.0, 100.0), scale=st.floats(0.1, 100.0))
@settings(max_examples=40, deadline=None)
def test_standard_scaler_invariant_to_affine_shift_and_scale(X, shift, scale):
    """StandardScaler output is unchanged by positive affine feature rescaling."""
    # Only well-conditioned columns: near-constant columns hit the
    # zero-variance guard, where the invariance deliberately does not hold.
    assume(np.all(X.std(axis=0) > 1e-3 * (1.0 + np.abs(X).max(axis=0))))
    base = StandardScaler().fit_transform(X)
    shifted = StandardScaler().fit_transform(X * scale + shift)
    np.testing.assert_allclose(base, shifted, atol=1e-5)


@given(X=matrices)
@settings(max_examples=40, deadline=None)
def test_fit_transform_equals_fit_then_transform(X):
    """fit_transform and fit().transform() agree for every preprocessor."""
    for preprocessor in default_preprocessors():
        combined = preprocessor.clone().fit_transform(X)
        separate = preprocessor.clone().fit(X).transform(X)
        np.testing.assert_allclose(combined, separate, atol=1e-9)
