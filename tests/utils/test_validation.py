"""Tests for input-validation helpers."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.utils.validation import check_array, check_is_fitted, check_X_y, column_or_1d


class TestCheckArray:
    def test_list_converted_to_float_array(self):
        arr = check_array([[1, 2], [3, 4]])
        assert arr.dtype == np.float64
        assert arr.shape == (2, 2)

    def test_1d_reshaped_to_column(self):
        arr = check_array([1.0, 2.0, 3.0])
        assert arr.shape == (3, 1)

    def test_3d_rejected(self):
        with pytest.raises(ValidationError):
            check_array(np.zeros((2, 2, 2)))

    def test_nan_rejected_by_default(self):
        with pytest.raises(ValidationError):
            check_array([[1.0, np.nan]])

    def test_nan_allowed_when_requested(self):
        arr = check_array([[1.0, np.nan]], allow_nan=True)
        assert np.isnan(arr[0, 1])

    def test_inf_rejected(self):
        with pytest.raises(ValidationError):
            check_array([[np.inf, 1.0]])

    def test_min_rows_enforced(self):
        with pytest.raises(ValidationError):
            check_array([[1.0, 2.0]], min_rows=2)

    def test_empty_columns_rejected(self):
        with pytest.raises(ValidationError):
            check_array(np.zeros((3, 0)))


class TestColumnOr1d:
    def test_flattens_column_vector(self):
        out = column_or_1d(np.array([[1], [2], [3]]))
        assert out.shape == (3,)

    def test_rejects_matrix(self):
        with pytest.raises(ValidationError):
            column_or_1d(np.zeros((3, 2)))

    def test_accepts_list(self):
        out = column_or_1d([1, 2, 3])
        assert out.shape == (3,)


class TestCheckXy:
    def test_length_mismatch_raises(self):
        with pytest.raises(ValidationError):
            check_X_y(np.zeros((3, 2)), [0, 1])

    def test_returns_validated_pair(self):
        X, y = check_X_y([[1, 2], [3, 4]], [0, 1])
        assert X.shape == (2, 2)
        assert y.shape == (2,)


class TestCheckIsFitted:
    class _Dummy:
        pass

    def test_missing_attribute_raises(self):
        with pytest.raises(NotFittedError):
            check_is_fitted(self._Dummy(), "coef_")

    def test_present_attribute_passes(self):
        obj = self._Dummy()
        obj.coef_ = 1
        check_is_fitted(obj, "coef_")

    def test_accepts_list_of_attributes(self):
        obj = self._Dummy()
        obj.a_ = 1
        with pytest.raises(NotFittedError):
            check_is_fitted(obj, ["a_", "b_"])
