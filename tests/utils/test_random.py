"""Tests for RNG helpers."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.random import check_random_state, spawn_rng


class TestCheckRandomState:
    def test_none_returns_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = check_random_state(42).random(5)
        b = check_random_state(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = check_random_state(1).random(5)
        b = check_random_state(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert check_random_state(gen) is gen

    def test_numpy_integer_seed(self):
        seed = np.int64(7)
        a = check_random_state(seed).random(3)
        b = check_random_state(7).random(3)
        np.testing.assert_array_equal(a, b)

    def test_invalid_type_raises(self):
        with pytest.raises(ValidationError):
            check_random_state("not-a-seed")


class TestSpawnRng:
    def test_spawn_single(self):
        child = spawn_rng(check_random_state(0), 1)
        assert isinstance(child, np.random.Generator)

    def test_spawn_many_are_independent(self):
        children = spawn_rng(check_random_state(0), 3)
        assert len(children) == 3
        draws = [child.random(4) for child in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_spawn_is_deterministic_in_parent_seed(self):
        first = spawn_rng(check_random_state(5), 2)
        second = spawn_rng(check_random_state(5), 2)
        np.testing.assert_array_equal(first[0].random(3), second[0].random(3))
        np.testing.assert_array_equal(first[1].random(3), second[1].random(3))
