"""Tests for experiment configuration, the grid runner and text reporting."""

import numpy as np
import pytest

from repro.analysis import BottleneckReport
from repro.experiments import (
    ExperimentConfig,
    format_breakdown_table,
    format_comparison_table,
    format_ranking_table,
    format_series,
    format_table,
    full_config,
    histogram,
    no_fp_vs_random_search,
    quick_config,
    run_experiment,
    run_single,
)


class TestConfig:
    def test_quick_config_defaults(self):
        config = quick_config()
        assert len(config.datasets) == 6
        assert config.models == ("lr",)
        assert len(config.algorithms) == 15

    def test_full_config_covers_45_datasets(self):
        config = full_config()
        assert len(config.datasets) == 45
        assert config.models == ("lr", "xgb", "mlp")

    def test_n_runs(self):
        config = ExperimentConfig(datasets=("heart",), models=("lr", "xgb"),
                                  algorithms=("rs", "pbt"), n_repeats=3)
        assert config.n_runs() == 1 * 2 * 2 * 3

    def test_overrides(self):
        config = quick_config(max_trials=5, algorithms=("rs",))
        assert config.max_trials == 5
        assert config.algorithms == ("rs",)


class TestRunner:
    def test_run_single(self):
        result, baseline = run_single("blood", "lr", "rs", max_trials=6, random_state=0)
        assert len(result) == 6
        assert 0.0 <= baseline <= 1.0
        assert result.baseline_accuracy == baseline

    def test_run_experiment_produces_scenarios_and_bottlenecks(self):
        config = quick_config(
            datasets=("heart", "blood"), algorithms=("rs", "tevo_h"), max_trials=6
        )
        outcome = run_experiment(config)
        assert len(outcome.scenarios) == 2
        assert len(outcome.bottlenecks) == 4
        assert len(outcome.results) == 4
        for scenario in outcome.scenarios:
            assert set(scenario.accuracies) == {"rs", "tevo_h"}

    def test_rankings_from_outcome(self):
        config = quick_config(datasets=("heart",), algorithms=("rs", "pbt"), max_trials=8)
        outcome = run_experiment(config)
        rankings = outcome.rankings(min_improvement=-100.0)  # keep all scenarios
        assert set(rankings["overall"]) == {"rs", "pbt"}

    def test_progress_callback_invoked(self):
        calls = []
        config = quick_config(datasets=("blood",), algorithms=("rs",), max_trials=4)
        run_experiment(config, progress_callback=lambda *args: calls.append(args))
        assert len(calls) == 1

    def test_best_pipelines_accessor(self):
        config = quick_config(datasets=("heart",), algorithms=("rs",), max_trials=5)
        outcome = run_experiment(config)
        assert len(outcome.best_pipelines("rs")) == 1

    def test_no_fp_vs_rs_rows(self):
        rows = no_fp_vs_random_search(("blood",), models=("lr",), max_trials=5)
        assert len(rows) == 1
        assert {"dataset", "lr_no_fp", "lr_rs"} <= set(rows[0])


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["rs", 0.5], ["pbt", 0.75]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "rs" in lines[2] and "0.5000" in lines[2]

    def test_format_table_handles_nan(self):
        text = format_table(["a"], [[float("nan")]])
        assert "-" in text.splitlines()[-1]

    def test_format_ranking_table(self):
        rankings = {
            "overall": {"rs": 2.0, "pbt": 1.0},
            "per_model": {"lr": {"rs": 2.0, "pbt": 1.0}},
            "n_scenarios": 1,
            "n_scenarios_per_model": {"lr": 1},
        }
        text = format_ranking_table(rankings, ["pbt", "rs"])
        assert "pbt" in text and "overall" in text

    def test_format_breakdown_table(self):
        reports = [BottleneckReport("rs", "heart", "lr", 10.0, 30.0, 60.0)]
        text = format_breakdown_table(reports)
        assert "train" in text

    def test_format_series(self):
        text = format_series("trials", [10, 20], {"one_step": [0.8, 0.85],
                                                  "two_step": [0.7, 0.9]})
        assert "one_step" in text and "20" in text

    def test_histogram_bars(self):
        text = histogram(np.linspace(0, 1, 100), bins=5)
        assert len(text.splitlines()) == 5
        assert "#" in text
