"""Cross-run persistent caching at the experiment level.

Covers the PR acceptance criterion: a repeated ``run_experiment`` with
``cache_dir`` set performs zero uncached evaluations on the second run,
with results bit-for-bit identical to the cache-off run — on the serial,
thread and process backends.  Also runs the smoke mode of
``benchmarks/bench_cache_warmup.py`` so the benchmark harness is exercised
by the tier-1 suite on every run.
"""

import importlib.util
from pathlib import Path

import pytest

from repro.core.context import ExecutionContext
from repro.experiments import quick_config, run_experiment, run_single

BENCH_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "bench_cache_warmup.py"
)


def _tiny_config(**overrides):
    return quick_config(datasets=("blood", "wine"), algorithms=("rs", "tevo_h"),
                        max_trials=5, dataset_scale=0.5, **overrides)


def _accuracies(outcome):
    return [(s.dataset, s.model, s.baseline_accuracy, sorted(s.accuracies.items()))
            for s in outcome.scenarios]


class TestPersistentExperimentCache:
    def test_warm_rerun_does_zero_uncached_evaluations(self, tmp_path):
        config = _tiny_config(
            context=ExecutionContext(cache_dir=str(tmp_path / "cache")))
        reference = run_experiment(_tiny_config())  # cache off

        cold = run_experiment(config)
        assert cold.uncached_evaluations > 0
        assert _accuracies(cold) == _accuracies(reference)

        warm = run_experiment(config)
        assert warm.uncached_evaluations == 0
        assert _accuracies(warm) == _accuracies(reference)
        assert warm.rankings(min_improvement=-100.0) == \
            reference.rankings(min_improvement=-100.0)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_every_backend_shares_the_cache(self, tmp_path, backend):
        """A cold serial run warms the cache for every parallel backend."""
        cache_dir = str(tmp_path / "cache")
        config = _tiny_config(context=ExecutionContext(cache_dir=cache_dir))
        cold = run_experiment(config)

        warm = run_experiment(config, context=ExecutionContext(
            cache_dir=cache_dir, n_jobs=1 if backend == "serial" else 2,
            backend=backend))
        assert warm.uncached_evaluations == 0
        assert _accuracies(warm) == _accuracies(cold)

    def test_parallel_cold_run_warms_the_serial_one(self, tmp_path):
        """Process workers write through to the shared cache root."""
        cache_dir = str(tmp_path / "cache")
        config = _tiny_config(context=ExecutionContext(
            cache_dir=cache_dir, n_jobs=2, backend="process"))
        cold = run_experiment(config)
        assert cold.uncached_evaluations > 0

        config = _tiny_config(context=ExecutionContext(cache_dir=cache_dir))

        warm = run_experiment(config)
        assert warm.uncached_evaluations == 0
        assert _accuracies(warm) == _accuracies(cold)

    def test_context_override_beats_config(self, tmp_path):
        config = _tiny_config()  # no cache_dir in the config
        override = ExecutionContext(cache_dir=str(tmp_path / "cache"))
        run_experiment(config, context=override)
        warm = run_experiment(config, context=override)
        assert warm.uncached_evaluations == 0

    def test_legacy_cache_dir_kwarg_warns_and_works(self, tmp_path):
        from repro.exceptions import ReproDeprecationWarning

        config = _tiny_config()
        with pytest.warns(ReproDeprecationWarning):
            run_experiment(config, cache_dir=str(tmp_path / "cache"))
        with pytest.warns(ReproDeprecationWarning):
            warm = run_experiment(config, cache_dir=str(tmp_path / "cache"))
        assert warm.uncached_evaluations == 0

    def test_outcome_counts_uncached_without_cache_dir(self):
        outcome = run_experiment(
            quick_config(datasets=("blood",), algorithms=("rs",),
                         max_trials=4, dataset_scale=0.5)
        )
        # baseline + at most max_trials search evaluations (duplicates of
        # random sampling are answered by the in-memory cache)
        assert 1 <= outcome.uncached_evaluations <= 5

    def test_run_single_reuses_the_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        context = ExecutionContext(cache_dir=cache_dir)
        cold, baseline_cold = run_single("blood", "lr", "rs", max_trials=5,
                                         dataset_scale=0.5, context=context)
        warm, baseline_warm = run_single("blood", "lr", "rs", max_trials=5,
                                         dataset_scale=0.5, context=context)
        assert baseline_warm == baseline_cold
        assert [t.accuracy for t in warm.trials] == \
            [t.accuracy for t in cold.trials]


class TestBenchmarkSmokeMode:
    def test_bench_cache_warmup_smoke(self, tmp_path):
        """The benchmark's fast smoke mode runs under tier-1 pytest."""
        spec = importlib.util.spec_from_file_location(
            "bench_cache_warmup", BENCH_PATH
        )
        bench = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(bench)
        cold, warm = bench.smoke_check(cache_dir=str(tmp_path / "cache"))
        assert warm.uncached_evaluations == 0
        assert bench.scenario_accuracies(cold) == \
            bench.scenario_accuracies(warm)
