"""Parallel experiment-grid fan-out: every backend yields the same outcome.

The grid dispatches cells as individual futures (no whole-grid barrier):
``cell_callback`` reports completions as they land while results merge in
grid order, so outcomes are identical for every worker count and backend.

Also runs the smoke mode of ``benchmarks/bench_parallel_speedup.py`` so the
execution engine's grid fan-out is exercised by the tier-1 suite on every
run (the full speedup measurement stays in the benchmark harness).
"""

import importlib.util
from pathlib import Path

import pytest

from repro.core.context import ExecutionContext
from repro.experiments import quick_config, run_experiment, run_single

BENCH_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "bench_parallel_speedup.py"
)


def _tiny_config(**overrides):
    return quick_config(datasets=("blood", "wine"), algorithms=("rs", "tevo_h"),
                        max_trials=5, dataset_scale=0.5, **overrides)


def _accuracies(outcome):
    return [(s.dataset, s.model, s.baseline_accuracy, sorted(s.accuracies.items()))
            for s in outcome.scenarios]


class TestParallelGrid:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_outcome_identical_to_serial(self, backend):
        serial = run_experiment(_tiny_config())
        parallel = run_experiment(
            _tiny_config(context=ExecutionContext(n_jobs=2, backend=backend))
        )
        assert _accuracies(parallel) == _accuracies(serial)
        assert parallel.rankings(min_improvement=-100.0) == \
            serial.rankings(min_improvement=-100.0)
        assert set(parallel.results) == set(serial.results)

    def test_config_carries_parallel_options(self):
        config = quick_config(datasets=("blood",), algorithms=("rs",),
                              max_trials=4,
                              context=ExecutionContext(n_jobs=2,
                                                       backend="thread"))
        # The legacy fields mirror the context for existing readers.
        assert config.n_jobs == 2 and config.backend == "thread"
        outcome = run_experiment(config)  # options read from the config
        assert len(outcome.scenarios) == 1

    def test_context_override_beats_config(self):
        config = _tiny_config()
        outcome = run_experiment(
            config, context=ExecutionContext(n_jobs=2, backend="thread")
        )
        assert outcome.config.context.backend == "thread"
        assert _accuracies(outcome) == _accuracies(run_experiment(config))

    def test_bottlenecks_and_results_present_in_parallel_run(self):
        config = _tiny_config(context=ExecutionContext(n_jobs=2,
                                                       backend="thread"))
        outcome = run_experiment(config)
        assert len(outcome.bottlenecks) == 4
        assert all(result is not None for result in outcome.results.values())

    def test_progress_callback_fires_in_grid_order(self):
        calls = []
        config = _tiny_config(context=ExecutionContext(n_jobs=2,
                                                       backend="thread"))
        run_experiment(config,
                       progress_callback=lambda d, m, a, acc: calls.append((d, m, a)))
        expected = [(d, m, a) for d in config.datasets for m in config.models
                    for a in config.algorithms]
        assert calls == expected

    @pytest.mark.parametrize("backend", [None, "thread"])
    def test_cell_callback_reports_every_completed_cell(self, backend):
        """The futures-based fan-out reports each cell as it completes."""
        context = ExecutionContext() if backend is None else \
            ExecutionContext(n_jobs=2, backend=backend)
        config = _tiny_config(context=context)
        calls = []
        run_experiment(
            config,
            cell_callback=lambda d, m, a, r, done, total:
                calls.append((d, m, a, r, done, total)),
        )
        assert len(calls) == config.n_runs()
        # Completion counters are monotonic 1..n and the total is constant.
        assert [c[4] for c in calls] == list(range(1, config.n_runs() + 1))
        assert all(c[5] == config.n_runs() for c in calls)
        # Every grid cell is reported exactly once.
        reported = {(d, m, a, r) for d, m, a, r, _, _ in calls}
        expected = {(d, m, a, r) for d in config.datasets
                    for m in config.models for a in config.algorithms
                    for r in range(config.n_repeats)}
        assert reported == expected

    def test_explicit_backend_without_n_jobs_keeps_one_grid_worker(
            self, monkeypatch):
        """context(backend=..., n_jobs=None) must not silently fan the
        grid out to every core (the pre-context default was one worker)."""
        from repro.experiments import runner as runner_module

        seen = {}
        original = runner_module.ExecutionEngine

        class Recording(original):
            def __init__(self, backend, *, n_workers=None):
                super().__init__(backend, n_workers=n_workers)
                seen["n_workers"] = self.n_workers

        monkeypatch.setattr(runner_module, "ExecutionEngine", Recording)
        run_experiment(quick_config(
            datasets=("blood",), algorithms=("rs",), max_trials=3,
            dataset_scale=0.5,
            context=ExecutionContext(backend="thread"),
        ))
        assert seen["n_workers"] == 1

    def test_empty_algorithms_yields_baseline_only_scenarios(self):
        config = quick_config(datasets=("blood",), algorithms=(), max_trials=4,
                              dataset_scale=0.5)
        outcome = run_experiment(config)
        assert len(outcome.scenarios) == 1
        assert outcome.scenarios[0].accuracies == {}
        assert 0.0 <= outcome.scenarios[0].baseline_accuracy <= 1.0

    def test_run_single_accepts_parallel_context(self):
        serial, baseline_s = run_single("blood", "lr", "pbt", max_trials=6,
                                        dataset_scale=0.5)
        threaded, baseline_t = run_single(
            "blood", "lr", "pbt", max_trials=6, dataset_scale=0.5,
            context=ExecutionContext(n_jobs=2, backend="thread"),
        )
        assert baseline_t == baseline_s
        assert threaded.best_accuracy == serial.best_accuracy


class TestBenchmarkSmokeMode:
    def test_bench_parallel_speedup_smoke(self):
        """The benchmark's fast smoke mode runs under tier-1 pytest."""
        spec = importlib.util.spec_from_file_location(
            "bench_parallel_speedup", BENCH_PATH
        )
        bench = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(bench)
        serial, parallel = bench.smoke_check(backend="thread", n_jobs=2)
        assert bench.scenario_accuracies(serial) == \
            bench.scenario_accuracies(parallel)
        assert len(serial.scenarios) == 2
