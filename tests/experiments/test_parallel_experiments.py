"""Parallel experiment-grid fan-out: every backend yields the same outcome.

Also runs the smoke mode of ``benchmarks/bench_parallel_speedup.py`` so the
execution engine's grid fan-out is exercised by the tier-1 suite on every
run (the full speedup measurement stays in the benchmark harness).
"""

import importlib.util
from pathlib import Path

import pytest

from repro.experiments import quick_config, run_experiment, run_single

BENCH_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "bench_parallel_speedup.py"
)


def _tiny_config():
    return quick_config(datasets=("blood", "wine"), algorithms=("rs", "tevo_h"),
                        max_trials=5, dataset_scale=0.5)


def _accuracies(outcome):
    return [(s.dataset, s.model, s.baseline_accuracy, sorted(s.accuracies.items()))
            for s in outcome.scenarios]


class TestParallelGrid:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_outcome_identical_to_serial(self, backend):
        config = _tiny_config()
        serial = run_experiment(config)
        parallel = run_experiment(config, n_jobs=2, backend=backend)
        assert _accuracies(parallel) == _accuracies(serial)
        assert parallel.rankings(min_improvement=-100.0) == \
            serial.rankings(min_improvement=-100.0)
        assert set(parallel.results) == set(serial.results)

    def test_config_carries_parallel_options(self):
        config = quick_config(datasets=("blood",), algorithms=("rs",),
                              max_trials=4, n_jobs=2, backend="thread")
        outcome = run_experiment(config)  # options read from the config
        assert len(outcome.scenarios) == 1

    def test_bottlenecks_and_results_present_in_parallel_run(self):
        config = _tiny_config()
        outcome = run_experiment(config, n_jobs=2, backend="thread")
        assert len(outcome.bottlenecks) == 4
        assert all(result is not None for result in outcome.results.values())

    def test_progress_callback_fires_in_grid_order(self):
        calls = []
        config = _tiny_config()
        run_experiment(config, n_jobs=2, backend="thread",
                       progress_callback=lambda d, m, a, acc: calls.append((d, m, a)))
        expected = [(d, m, a) for d in config.datasets for m in config.models
                    for a in config.algorithms]
        assert calls == expected

    def test_empty_algorithms_yields_baseline_only_scenarios(self):
        config = quick_config(datasets=("blood",), algorithms=(), max_trials=4,
                              dataset_scale=0.5)
        outcome = run_experiment(config)
        assert len(outcome.scenarios) == 1
        assert outcome.scenarios[0].accuracies == {}
        assert 0.0 <= outcome.scenarios[0].baseline_accuracy <= 1.0

    def test_run_single_accepts_parallel_options(self):
        serial, baseline_s = run_single("blood", "lr", "pbt", max_trials=6,
                                        dataset_scale=0.5)
        threaded, baseline_t = run_single("blood", "lr", "pbt", max_trials=6,
                                          dataset_scale=0.5, n_jobs=2,
                                          backend="thread")
        assert baseline_t == baseline_s
        assert threaded.best_accuracy == serial.best_accuracy


class TestBenchmarkSmokeMode:
    def test_bench_parallel_speedup_smoke(self):
        """The benchmark's fast smoke mode runs under tier-1 pytest."""
        spec = importlib.util.spec_from_file_location(
            "bench_parallel_speedup", BENCH_PATH
        )
        bench = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(bench)
        serial, parallel = bench.smoke_check(backend="thread", n_jobs=2)
        assert bench.scenario_accuracies(serial) == \
            bench.scenario_accuracies(parallel)
        assert len(serial.scenarios) == 2
