"""Shared pytest fixtures: small datasets, problems and evaluators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evaluation import PipelineEvaluator
from repro.core.problem import AutoFPProblem
from repro.core.search_space import SearchSpace
from repro.datasets.synthetic import distort_features, make_classification
from repro.models.linear import LogisticRegression


@pytest.fixture(scope="session")
def rng():
    """Session-wide deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_binary_data():
    """A small, well-separated binary classification problem (no distortion)."""
    X, y = make_classification(
        n_samples=120, n_features=6, n_classes=2, class_sep=2.0, random_state=0
    )
    return X, y


@pytest.fixture(scope="session")
def small_multiclass_data():
    """A small 3-class problem."""
    X, y = make_classification(
        n_samples=150, n_features=8, n_classes=3, class_sep=2.0, random_state=1
    )
    return X, y


@pytest.fixture(scope="session")
def distorted_data():
    """A binary problem whose features have heterogeneous scales and skew.

    Feature preprocessing visibly matters on this dataset, which is what most
    search-algorithm tests rely on.
    """
    X, y = make_classification(
        n_samples=140, n_features=8, n_classes=2, class_sep=2.0, random_state=2
    )
    X = distort_features(X, random_state=2)
    return X, y


@pytest.fixture(scope="session")
def small_space():
    """Default 7-preprocessor search space with short pipelines."""
    return SearchSpace(max_length=3)


@pytest.fixture(scope="session")
def lr_problem(distorted_data):
    """An AutoFPProblem with a fast logistic-regression downstream model."""
    X, y = distorted_data
    model = LogisticRegression(max_iter=60)
    return AutoFPProblem.from_arrays(
        X, y, model, space=SearchSpace(max_length=3), random_state=0, name="test/lr"
    )


@pytest.fixture(scope="session")
def lr_evaluator(distorted_data):
    """A PipelineEvaluator over the distorted data with a fast LR model."""
    X, y = distorted_data
    return PipelineEvaluator.from_dataset(
        X, y, LogisticRegression(max_iter=60), random_state=0
    )


@pytest.fixture
def live_engine():
    """Factory: a ready-to-run ExecutionEngine for any ``BACKEND_NAMES`` name.

    Tests that parametrize over every backend need more than
    ``ExecutionEngine(name)`` for ``"remote"``: a coordinator with no
    registered workers leases nothing, so the first evaluation would block
    forever.  This factory boots a 2-worker loopback fleet for the remote
    case and tears everything down (engine, then workers) at test exit.
    """
    from repro.engine import ExecutionEngine

    cleanups = []

    def factory(name, n_workers=2):
        if name == "remote":
            from repro.engine.remote import start_loopback

            backend, workers = start_loopback(n_workers)
            engine = ExecutionEngine(backend)

            def shutdown(engine=engine, workers=workers):
                engine.close()
                for worker in workers:
                    worker.stop()

            cleanups.append(shutdown)
        else:
            engine = ExecutionEngine(
                name, n_workers=None if name == "serial" else n_workers
            )
            cleanups.append(engine.close)
        return engine

    yield factory
    for cleanup in reversed(cleanups):
        cleanup()
