"""Tests for ranking, bottleneck analysis and FP-growth."""

import numpy as np
import pytest

from repro.analysis import (
    Scenario,
    analyze_result,
    average_rankings,
    bottleneck_table,
    category_average_ranks,
    fp_growth,
    max_pattern_support,
    mine_pipeline_patterns,
    rank_with_ties,
    ranking_order,
)
from repro.core import Pipeline, SearchResult, TrialRecord
from repro.datasets import get_dataset_info


class TestRanking:
    def test_rank_with_ties(self):
        ranks = rank_with_ties({"a": 0.9, "b": 0.8, "c": 0.9, "d": 0.5})
        assert ranks["a"] == 1 and ranks["c"] == 1
        assert ranks["b"] == 3
        assert ranks["d"] == 4

    def test_scenario_qualification_filter(self):
        qualifying = Scenario("d1", "lr", baseline_accuracy=0.5,
                              accuracies={"rs": 0.7})
        not_qualifying = Scenario("d2", "lr", baseline_accuracy=0.7,
                                  accuracies={"rs": 0.705})
        assert qualifying.qualifies(1.5)
        assert not not_qualifying.qualifies(1.5)

    def test_average_rankings_overall_and_per_model(self):
        scenarios = [
            Scenario("d1", "lr", 0.5, {"a": 0.9, "b": 0.8}),
            Scenario("d2", "lr", 0.5, {"a": 0.7, "b": 0.95}),
            Scenario("d3", "xgb", 0.5, {"a": 0.9, "b": 0.6}),
        ]
        rankings = average_rankings(scenarios, min_improvement=1.5)
        assert rankings["n_scenarios"] == 3
        assert rankings["overall"]["a"] == pytest.approx((1 + 2 + 1) / 3)
        assert rankings["overall"]["b"] == pytest.approx((2 + 1 + 2) / 3)
        assert rankings["per_model"]["xgb"]["a"] == 1.0

    def test_non_qualifying_scenarios_excluded(self):
        scenarios = [
            Scenario("d1", "lr", 0.5, {"a": 0.9, "b": 0.8}),
            Scenario("d2", "lr", 0.9, {"a": 0.905, "b": 0.901}),  # < 1.5% improvement
        ]
        rankings = average_rankings(scenarios)
        assert rankings["n_scenarios"] == 1

    def test_ranking_order(self):
        order = ranking_order({"a": 2.0, "b": 1.0, "c": 3.0})
        assert order == ["b", "a", "c"]

    def test_category_average(self):
        averages = category_average_ranks(
            {"rs": 5.0, "anneal": 9.0, "pbt": 1.0},
            {"traditional": ("rs", "anneal"), "evolution": ("pbt",)},
        )
        assert averages["traditional"] == 7.0
        assert averages["evolution"] == 1.0


class TestBottleneck:
    def _result(self, pick, prep, train, algorithm="rs"):
        result = SearchResult(algorithm=algorithm)
        result.add(TrialRecord(Pipeline(), accuracy=0.5, pick_time=pick,
                               prep_time=prep, train_time=train))
        return result

    def test_analyze_result_percentages(self):
        report = analyze_result(self._result(1.0, 3.0, 6.0), dataset="heart", model="lr")
        assert report.pick_percent == pytest.approx(10.0)
        assert report.prep_percent == pytest.approx(30.0)
        assert report.train_percent == pytest.approx(60.0)
        assert report.bottleneck == "train"

    def test_bottleneck_table_groups_by_dataset_category(self):
        reports = [
            analyze_result(self._result(0.1, 5.0, 1.0), dataset="heart", model="lr"),
            analyze_result(self._result(0.1, 1.0, 5.0), dataset="christine", model="lr"),
        ]
        infos = {name: get_dataset_info(name) for name in ("heart", "christine")}
        table = bottleneck_table(reports, infos)
        assert table[("small", "lr")]["rs"] == "prep"
        assert table[("high_dimensional", "lr")]["rs"] == "train"

    def test_tie_reported_as_composite(self):
        reports = [
            analyze_result(self._result(0.1, 5.0, 1.0), dataset="heart", model="lr"),
            analyze_result(self._result(0.1, 1.0, 5.0), dataset="heart", model="lr"),
        ]
        infos = {"heart": get_dataset_info("heart")}
        table = bottleneck_table(reports, infos)
        assert table[("small", "lr")]["rs"] == "prep/train"


class TestFPGrowth:
    def test_known_frequent_itemsets(self):
        transactions = [
            ["a", "b"], ["b", "c"], ["a", "b", "c"], ["a", "b"], ["b"],
        ]
        patterns = fp_growth(transactions, min_support=0.6)
        assert patterns[frozenset({"b"})] == pytest.approx(1.0)
        assert patterns[frozenset({"a", "b"})] == pytest.approx(0.6)
        assert frozenset({"c"}) not in patterns  # support 0.4 < 0.6

    def test_empty_transactions(self):
        assert fp_growth([], min_support=0.5) == {}

    def test_min_support_one_requires_universal_items(self):
        patterns = fp_growth([["a", "b"], ["a"]], min_support=1.0)
        assert set(patterns) == {frozenset({"a"})}

    def test_duplicates_within_transaction_ignored(self):
        patterns = fp_growth([["a", "a", "b"], ["a", "b"]], min_support=1.0)
        assert patterns[frozenset({"a", "b"})] == pytest.approx(1.0)

    def test_support_monotonicity(self):
        """Supersets never have higher support than their subsets (Apriori property)."""
        rng = np.random.default_rng(0)
        items = list("abcde")
        transactions = [
            [item for item in items if rng.random() < 0.5] or ["a"]
            for _ in range(50)
        ]
        patterns = fp_growth(transactions, min_support=0.1)
        for pattern, support in patterns.items():
            for item in pattern:
                subset = pattern - {item}
                if subset and subset in patterns:
                    assert patterns[subset] >= support - 1e-12

    def test_mine_pipeline_patterns(self):
        pipelines = [
            Pipeline.from_names(["standard_scaler", "binarizer"]),
            Pipeline.from_names(["standard_scaler", "normalizer"]),
            Pipeline.from_names(["standard_scaler"]),
        ]
        patterns = mine_pipeline_patterns(pipelines, min_support=0.5)
        assert patterns[frozenset({"standard_scaler"})] == pytest.approx(1.0)

    def test_max_pattern_support_filters_singletons(self):
        patterns = {
            frozenset({"a"}): 1.0,
            frozenset({"a", "b"}): 0.4,
        }
        assert max_pattern_support(patterns, min_size=2) == pytest.approx(0.4)
        assert max_pattern_support({frozenset({"a"}): 1.0}, min_size=2) == 0.0
