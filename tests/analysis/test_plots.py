"""Tests for the ASCII chart helpers."""

import pytest

from repro.analysis import (
    ascii_bar_chart,
    ascii_histogram,
    ascii_line_chart,
    format_ranking_table,
)
from repro.exceptions import ValidationError


class TestAsciiHistogram:
    def test_row_count_matches_bins_and_counts_sum_to_samples(self):
        values = [0.1, 0.2, 0.2, 0.3, 0.9]
        chart = ascii_histogram(values, bins=4)
        lines = chart.splitlines()
        assert len(lines) == 4
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert sum(counts) == len(values)

    def test_title_is_first_line(self):
        chart = ascii_histogram([1.0, 2.0], bins=2, title="Figure 2 shape")
        assert chart.splitlines()[0] == "Figure 2 shape"

    def test_largest_bin_gets_longest_bar(self):
        chart = ascii_histogram([0.0] * 8 + [1.0], bins=2, width=20)
        first, second = chart.splitlines()
        assert first.count("#") > second.count("#")

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValidationError):
            ascii_histogram([], bins=3)
        with pytest.raises(ValidationError):
            ascii_histogram([1.0], bins=0)
        with pytest.raises(ValidationError):
            ascii_histogram([1.0], width=0)


class TestAsciiBarChart:
    def test_one_row_per_item_in_insertion_order(self):
        chart = ascii_bar_chart({"pbt": 1.0, "rs": 6.0, "enas": 15.0})
        lines = chart.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("pbt")
        assert lines[2].startswith("enas")

    def test_maximum_value_fills_the_width(self):
        chart = ascii_bar_chart({"a": 1.0, "b": 4.0}, width=8)
        assert "#" * 8 in chart.splitlines()[1]

    def test_negative_values_rejected(self):
        with pytest.raises(ValidationError):
            ascii_bar_chart({"a": -1.0})

    def test_empty_mapping_rejected(self):
        with pytest.raises(ValidationError):
            ascii_bar_chart({})


class TestAsciiLineChart:
    def test_dimensions_and_legend(self):
        chart = ascii_line_chart({"rs": [0.5, 0.6, 0.7], "pbt": [0.5, 0.8, 0.9]},
                                 height=6, width=20)
        lines = chart.splitlines()
        # height rows + axis row + legend row
        assert len(lines) == 8
        assert "rs" in lines[-1] and "pbt" in lines[-1]

    def test_monotone_series_puts_marker_in_top_row_at_the_end(self):
        chart = ascii_line_chart({"acc": [0.0, 0.5, 1.0]}, height=5, width=10)
        top_row = chart.splitlines()[0]
        assert top_row.rstrip().endswith("*")

    def test_constant_series_does_not_crash(self):
        chart = ascii_line_chart({"flat": [0.5, 0.5, 0.5]}, height=4, width=8)
        assert "flat" in chart

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValidationError):
            ascii_line_chart({})
        with pytest.raises(ValidationError):
            ascii_line_chart({"x": []})
        with pytest.raises(ValidationError):
            ascii_line_chart({"x": [1.0]}, height=1)


class TestFormatRankingTable:
    def test_orders_by_ascending_rank(self):
        table = format_ranking_table({"rs": 6.0, "pbt": 1.0, "enas": 15.0})
        lines = table.splitlines()
        assert "pbt" in lines[0]
        assert "enas" in lines[-1]

    def test_empty_rankings_rejected(self):
        with pytest.raises(ValidationError):
            format_ranking_table({})
