"""SearchSession telemetry: trial spans, heartbeat, live metrics callback.

The acceptance contract of the tracing tentpole: in ``trace`` mode every
observed trial produces a ``trial`` event whose per-phase attributes
(pick/prep/train) cover ≥95% of the trial's wall-clock, the heartbeat
file always reflects the latest completed trial, and ``on_metrics``
fires per trial with a flat snapshot.  Everything is opt-in: ``off``
mode produces no files and no callback overhead.
"""

import json

import pytest

from repro.core.context import ExecutionContext
from repro.core.problem import AutoFPProblem
from repro.datasets.synthetic import distort_features, make_classification
from repro.models.linear import LogisticRegression
from repro.search import SearchSession, make_search_algorithm
from repro.telemetry import HEARTBEAT_FILE_NAME, TRACE_FILE_NAME
from repro.telemetry.tracing import TRIAL_PHASES, read_trace, summarize_trace


def _problem(context):
    X, y = make_classification(n_samples=130, n_features=6, n_classes=2,
                               class_sep=2.0, random_state=4)
    X = distort_features(X, random_state=4)
    return AutoFPProblem.from_arrays(
        X, y, LogisticRegression(max_iter=50), random_state=0,
        name="telemetry/lr", context=context,
    )


@pytest.fixture
def traced_run(tmp_path):
    context = ExecutionContext(telemetry_mode="trace", telemetry_dir=tmp_path)
    observed = []
    session = SearchSession(
        _problem(context), make_search_algorithm("rs", random_state=0),
        on_metrics=lambda s, snapshot: observed.append(snapshot),
    )
    result = session.run(max_trials=8)
    return session, result, observed, tmp_path


class TestTrialSpans:
    def test_one_trial_event_per_observed_trial(self, traced_run):
        _, result, _, tmp_path = traced_run
        events = read_trace(tmp_path / TRACE_FILE_NAME)
        trials = [e for e in events if e["name"] == "trial"]
        assert len(trials) == len(result) == 8
        assert all(e["attrs"]["algorithm"] == "rs" for e in trials)

    def test_phase_attrs_cover_95_percent_of_trial_wall_clock(self, traced_run):
        _, _, _, tmp_path = traced_run
        trials = [e for e in read_trace(tmp_path / TRACE_FILE_NAME)
                  if e["name"] == "trial"]
        for event in trials:
            phase_total = sum(event["attrs"].get(p, 0.0) for p in TRIAL_PHASES)
            assert phase_total >= 0.95 * event["dur"], (
                f"phases cover only {phase_total:.6f}s of "
                f"{event['dur']:.6f}s trial wall-clock"
            )

    def test_evaluator_spans_present_alongside_trials(self, traced_run):
        _, _, _, tmp_path = traced_run
        names = {e["name"] for e in read_trace(tmp_path / TRACE_FILE_NAME)}
        assert {"trial", "propose", "cache_lookup", "prep", "train"} <= names

    def test_summary_attributes_time_to_the_algorithm(self, traced_run):
        _, _, _, tmp_path = traced_run
        summary = summarize_trace(read_trace(tmp_path / TRACE_FILE_NAME))
        assert set(summary["algorithms"]) == {"rs"}
        row = summary["algorithms"]["rs"]
        assert row["trials"] == 8
        assert row["pick_pct"] + row["prep_pct"] + row["train_pct"] \
            == pytest.approx(100.0)

    def test_records_carry_phase_timings(self, traced_run):
        _, result, _, _ = traced_run
        for trial in result.trials:
            assert set(trial.phase_timings) == set(TRIAL_PHASES)
            assert trial.phase_timings["prep"] == trial.prep_time


class TestHeartbeat:
    def test_heartbeat_reflects_the_finished_run(self, traced_run):
        _, result, _, tmp_path = traced_run
        heartbeat = json.loads((tmp_path / HEARTBEAT_FILE_NAME).read_text(encoding="utf-8"))
        assert heartbeat["algorithm"] == "rs"
        assert heartbeat["trials"] == len(result)
        assert heartbeat["best_accuracy"] == result.best_accuracy
        assert heartbeat["metrics"]["session.trials"] == len(result)

    def test_unwritable_heartbeat_degrades_to_a_warning(self, tmp_path,
                                                        monkeypatch):
        import repro.search.session as session_module

        def refuse(path, text):
            raise OSError("disk full")

        monkeypatch.setattr(session_module, "atomic_write_text", refuse)
        context = ExecutionContext(telemetry_mode="counters",
                                   telemetry_dir=tmp_path)
        session = SearchSession(_problem(context),
                                make_search_algorithm("rs", random_state=0))
        result = session.run(max_trials=4)  # must not raise
        assert len(result) == 4


class TestOnMetrics:
    def test_fires_per_trial_with_flat_snapshots(self, traced_run):
        session, result, observed, _ = traced_run
        assert len(observed) == len(result)
        last = observed[-1]
        assert last["session.trials"] == len(result)
        assert "evaluator.n_evaluations" in last
        assert last == session.metrics_snapshot()

    def test_works_without_any_telemetry_dir(self):
        observed = []
        session = SearchSession(
            _problem(ExecutionContext(telemetry_mode="counters")),
            make_search_algorithm("rs", random_state=0),
            on_metrics=lambda s, snapshot: observed.append(snapshot),
        )
        session.run(max_trials=4)
        assert len(observed) == 4


class TestOffMode:
    def test_off_mode_writes_nothing(self, tmp_path):
        context = ExecutionContext(telemetry_mode="off",
                                   telemetry_dir=tmp_path)
        session = SearchSession(_problem(context),
                                make_search_algorithm("rs", random_state=0))
        result = session.run(max_trials=4)
        assert not (tmp_path / TRACE_FILE_NAME).exists()
        assert not (tmp_path / HEARTBEAT_FILE_NAME).exists()
        assert all(t.phase_timings is None for t in result.trials)
