"""Lint guard: ad-hoc counter storage must not creep back into the library.

PR 6 migrated every private counter dict / loose counter attribute bag
onto :class:`repro.telemetry.metrics.MetricSet` and the process-wide
registry, and shipped a bespoke AST walk here to keep it that way.  That
walk now lives in the lint framework as rule RPR003; this guard invokes
the one shared implementation so the check cannot drift from what
``repro lint`` enforces.
"""

from pathlib import Path

import repro
from repro.lint import lint_paths, make_rules

SRC_ROOT = Path(repro.__file__).resolve().parent


def test_no_module_keeps_private_counter_dicts():
    report = lint_paths([SRC_ROOT], rules=make_rules(["RPR003"]))
    offenders = [
        f"{finding.path}:{finding.line} {finding.snippet}"
        for finding in report.findings
    ]
    assert not offenders, (
        "ad-hoc counter dicts found — use repro.telemetry.metrics.MetricSet "
        "(instance counters) or get_registry() (process-wide series) "
        "instead:\n  " + "\n  ".join(offenders)
    )


def test_library_counters_live_on_metric_sets():
    """The migrated classes expose their counters through a MetricSet."""
    from repro.core.evaluation import PipelineEvaluator
    from repro.core.prefixcache import PrefixTransformCache
    from repro.io.evalcache import PersistentEvalCache
    from repro.telemetry.metrics import MetricSet

    for owner in (PipelineEvaluator, PrefixTransformCache, PersistentEvalCache):
        names = getattr(owner, "COUNTER_NAMES")
        assert names, f"{owner.__name__} declares no counter names"
        for name in names:
            assert isinstance(getattr(owner, name), property), (
                f"{owner.__name__}.{name} is not a metric_property"
            )

    cache = PrefixTransformCache(max_bytes=1024)
    assert isinstance(cache.metrics, MetricSet)
