"""Lint guard: ad-hoc counter storage must not creep back into the library.

PR 6 migrated every private counter dict / loose counter attribute bag
onto :class:`repro.telemetry.metrics.MetricSet` and the process-wide
registry.  This check walks every module under ``src/repro`` and fails
if an instance attribute that *names itself a counter store* is assigned
a dict literal again — the pattern the telemetry subsystem replaced.
"""

import ast
from pathlib import Path

import repro

SRC_ROOT = Path(repro.__file__).resolve().parent

#: attribute-name fragments that mark a counter store
_COUNTER_FRAGMENTS = ("counter", "counters")

#: the one package allowed to implement counter storage
_ALLOWED = {"telemetry"}


def _is_dict_valued(node: ast.AST) -> bool:
    return isinstance(node, ast.Dict) or (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "dict"
    )


def _offending_assignments(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        if not _is_dict_valued(value):
            continue
        for target in targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and any(fragment in target.attr.lower()
                            for fragment in _COUNTER_FRAGMENTS)):
                yield target.attr, node.lineno


def test_no_module_keeps_private_counter_dicts():
    offenders = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        relative = path.relative_to(SRC_ROOT)
        if relative.parts[0] in _ALLOWED:
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for attribute, lineno in _offending_assignments(tree):
            offenders.append(f"{relative}:{lineno} self.{attribute} = {{...}}")
    assert not offenders, (
        "ad-hoc counter dicts found — use repro.telemetry.metrics.MetricSet "
        "(instance counters) or get_registry() (process-wide series) "
        "instead:\n  " + "\n  ".join(offenders)
    )


def test_library_counters_live_on_metric_sets():
    """The migrated classes expose their counters through a MetricSet."""
    from repro.core.evaluation import PipelineEvaluator
    from repro.core.prefixcache import PrefixTransformCache
    from repro.io.evalcache import PersistentEvalCache
    from repro.telemetry.metrics import MetricSet

    for owner in (PipelineEvaluator, PrefixTransformCache, PersistentEvalCache):
        names = getattr(owner, "COUNTER_NAMES")
        assert names, f"{owner.__name__} declares no counter names"
        for name in names:
            assert isinstance(getattr(owner, name), property), (
                f"{owner.__name__}.{name} is not a metric_property"
            )

    cache = PrefixTransformCache(max_bytes=1024)
    assert isinstance(cache.metrics, MetricSet)
