"""Span tracing: JSONL sink, torn-line tolerance, exports, aggregation."""

import json
import os
import pickle

import pytest

from repro.exceptions import ValidationError
from repro.telemetry import TRACE_FILE_NAME
from repro.telemetry.tracing import (
    Tracer,
    make_tracer,
    read_trace,
    summarize_trace,
    to_chrome_trace,
    trace_span,
)


class TestTracerSink:
    def test_emit_read_round_trip(self, tmp_path):
        tracer = Tracer(tmp_path / "trace.jsonl")
        tracer.emit("prep", ts=10.0, dur=0.25, steps=3)
        tracer.emit("train", ts=10.25, dur=0.75)
        tracer.close()
        events = read_trace(tmp_path / "trace.jsonl")
        assert [event["name"] for event in events] == ["prep", "train"]
        assert events[0]["attrs"] == {"steps": 3}
        assert events[0]["pid"] == os.getpid()
        assert events[1]["dur"] == 0.75

    def test_no_footprint_until_first_emit(self, tmp_path):
        tracer = Tracer(tmp_path / "nested" / "trace.jsonl")
        assert not (tmp_path / "nested").exists()
        tracer.emit("x", ts=0.0, dur=0.0)
        tracer.close()
        assert (tmp_path / "nested" / "trace.jsonl").exists()

    def test_span_context_manager_times_the_block(self, tmp_path):
        tracer = Tracer(tmp_path / "trace.jsonl")
        with tracer.span("prep", steps=2):
            pass
        tracer.close()
        (event,) = read_trace(tmp_path / "trace.jsonl")
        assert event["name"] == "prep"
        assert event["dur"] >= 0.0
        assert event["attrs"] == {"steps": 2}

    def test_span_records_the_exception_type(self, tmp_path):
        tracer = Tracer(tmp_path / "trace.jsonl")
        with pytest.raises(RuntimeError):
            with tracer.span("train"):
                raise RuntimeError("boom")
        tracer.close()
        (event,) = read_trace(tmp_path / "trace.jsonl")
        assert event["attrs"]["error"] == "RuntimeError"

    def test_trace_span_with_none_tracer_is_a_no_op(self):
        with trace_span(None, "prep", steps=1):
            pass  # must neither fail nor write anywhere

    def test_tracer_pickles_to_its_path_only(self, tmp_path):
        tracer = Tracer(tmp_path / "trace.jsonl")
        tracer.emit("x", ts=0.0, dur=0.0)  # open the descriptor
        clone = pickle.loads(pickle.dumps(tracer))
        assert clone.path == tracer.path
        clone.emit("y", ts=1.0, dur=0.0)  # reopens its own O_APPEND handle
        tracer.close()
        clone.close()
        assert [e["name"] for e in read_trace(tracer.path)] == ["x", "y"]


class TestReadTrace:
    def test_torn_and_garbled_lines_are_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        good = json.dumps({"name": "prep", "ts": 1.0, "dur": 0.5})
        path.write_text(
            good + "\n"
            + '{"name": "train", "ts": 2.0, "du'  # torn mid-write by a kill
            + "\nnot json at all\n"
            + json.dumps({"ts": 3.0, "dur": 0.1}) + "\n"  # no name: dropped
            + json.dumps({"name": "train", "ts": 4.0, "dur": 0.2}) + "\n",
            encoding="utf-8",
        )
        events = read_trace(path)
        assert [(e["name"], e["ts"]) for e in events] == [("prep", 1.0),
                                                          ("train", 4.0)]

    def test_missing_file_raises_validation_error(self, tmp_path):
        with pytest.raises(ValidationError):
            read_trace(tmp_path / "absent.jsonl")


class TestMakeTracer:
    def test_only_trace_mode_with_a_dir_produces_a_sink(self, tmp_path):
        tracer = make_tracer("trace", tmp_path)
        assert isinstance(tracer, Tracer)
        assert tracer.path == tmp_path / TRACE_FILE_NAME

    @pytest.mark.parametrize("mode,directory", [
        ("off", "somewhere"), ("counters", "somewhere"),
        ("trace", None), (None, None),
    ])
    def test_every_other_combination_is_spans_off(self, mode, directory):
        assert make_tracer(mode, directory) is None


class TestChromeExport:
    def test_events_become_complete_x_events_in_microseconds(self):
        events = [{"name": "prep", "ts": 1.5, "dur": 0.25, "pid": 42,
                   "attrs": {"steps": 3}}]
        document = to_chrome_trace(events)
        assert document["displayTimeUnit"] == "ms"
        (entry,) = document["traceEvents"]
        assert entry["ph"] == "X"
        assert entry["ts"] == pytest.approx(1.5e6)
        assert entry["dur"] == pytest.approx(0.25e6)
        assert entry["pid"] == 42 and entry["tid"] == 42
        assert entry["args"] == {"steps": 3}
        json.dumps(document)  # must be directly serialisable


class TestSummarizeTrace:
    def _trial(self, algorithm, pick, prep, train):
        return {"name": "trial", "ts": 0.0, "dur": pick + prep + train,
                "attrs": {"algorithm": algorithm, "pick": pick,
                          "prep": prep, "train": train}}

    def test_table5_shape_per_algorithm_and_overall(self):
        events = [
            self._trial("rs", 0.1, 0.6, 0.3),
            self._trial("rs", 0.1, 0.4, 0.5),
            self._trial("pbt", 0.2, 0.5, 0.3),
            {"name": "cache_lookup", "ts": 0.0, "dur": 0.01},
        ]
        summary = summarize_trace(events)
        rs = summary["algorithms"]["rs"]
        assert rs["trials"] == 2
        assert rs["total"] == pytest.approx(2.0)
        assert rs["prep"] == pytest.approx(1.0)
        assert rs["prep_pct"] == pytest.approx(50.0)
        overall = summary["overall"]
        assert overall["trials"] == 3
        assert overall["pick_pct"] + overall["prep_pct"] \
            + overall["train_pct"] == pytest.approx(100.0)
        assert summary["spans"]["cache_lookup"] == {"count": 1, "total": 0.01}

    def test_empty_trace_summarises_without_dividing_by_zero(self):
        summary = summarize_trace([])
        assert summary["algorithms"] == {}
        assert summary["overall"]["trials"] == 0
        assert summary["overall"]["prep_pct"] == 0.0
