"""Metrics layer: MetricSet / MetricsSnapshot / MetricsRegistry.

Covers the worker→parent shipping protocol (snapshot, diff, merge), the
attribute-compatibility shim (:func:`metric_property`), pickling of a
``MetricSet`` across process boundaries, and the process-wide registry's
series semantics (labels, kind stability, flat snapshots).
"""

import pickle

import pytest

from repro.exceptions import ValidationError
from repro.telemetry.metrics import (
    MetricSet,
    MetricsRegistry,
    MetricsSnapshot,
    get_registry,
    metric_property,
)


class TestMetricsSnapshot:
    def test_diff_reports_only_nonzero_changes(self):
        before = MetricsSnapshot({"hits": 2, "misses": 5, "idle": 1})
        after = MetricsSnapshot({"hits": 7, "misses": 5, "new": 3})
        assert after.diff(before) == {"hits": 5, "new": 3, "idle": -1}

    def test_diff_against_none_is_the_snapshot_itself(self):
        after = MetricsSnapshot({"hits": 2, "zero": 0})
        assert after.diff(None) == {"hits": 2}

    def test_merge_adds_values_and_keeps_sources_intact(self):
        mine = MetricsSnapshot({"hits": 1})
        theirs = MetricsSnapshot({"hits": 2, "misses": 4})
        merged = mine.merge(theirs)
        assert merged == {"hits": 3, "misses": 4}
        assert mine == {"hits": 1} and theirs == {"hits": 2, "misses": 4}

    def test_round_trips_through_plain_dict(self):
        snapshot = MetricsSnapshot({"a": 1, "b": 2.5})
        rebuilt = MetricsSnapshot.from_dict(snapshot.to_dict())
        assert rebuilt == snapshot and isinstance(rebuilt, MetricsSnapshot)

    def test_from_dict_rejects_non_dicts(self):
        with pytest.raises(ValidationError):
            MetricsSnapshot.from_dict(["hits", 1])

    def test_diff_then_merge_reconstructs_the_later_reading(self):
        """The shipping protocol identity: before.merge(after.diff(before)) == after."""
        before = MetricsSnapshot({"hits": 3, "misses": 1})
        after = MetricsSnapshot({"hits": 9, "misses": 1, "evictions": 2})
        assert before.merge(after.diff(before)) == after


class TestMetricSet:
    def test_declared_names_start_at_zero(self):
        metrics = MetricSet(("hits", "misses"))
        assert metrics.get("hits") == 0
        assert "misses" in metrics and len(metrics) == 2

    def test_inc_set_get(self):
        metrics = MetricSet()
        metrics.inc("hits")
        metrics.inc("hits", 4)
        metrics.set("bytes", 123)
        assert metrics.get("hits") == 5 and metrics.get("bytes") == 123
        assert metrics.get("unknown") == 0

    def test_merge_absorbs_foreign_names(self):
        metrics = MetricSet(("hits",))
        metrics.merge({"hits": 2, "prefix.steps_reused": 7})
        assert metrics.get("hits") == 2
        assert metrics.get("prefix.steps_reused") == 7

    def test_reset_zeroes_but_keeps_names(self):
        metrics = MetricSet(("hits",))
        metrics.inc("hits", 3)
        metrics.reset()
        assert metrics.get("hits") == 0 and "hits" in metrics

    def test_snapshot_is_a_detached_copy(self):
        metrics = MetricSet(("hits",))
        snapshot = metrics.snapshot()
        metrics.inc("hits")
        assert snapshot["hits"] == 0 and metrics.get("hits") == 1

    def test_pickle_round_trip(self):
        metrics = MetricSet(("hits",))
        metrics.inc("hits", 2)
        clone = pickle.loads(pickle.dumps(metrics))
        assert clone.snapshot() == metrics.snapshot()
        clone.inc("hits")  # the clone has its own storage
        assert metrics.get("hits") == 2


class TestMetricProperty:
    class _Cache:
        metrics: MetricSet
        hits = metric_property("hits")
        misses = metric_property("misses")

        def __init__(self):
            self.metrics = MetricSet(("hits", "misses"))

    def test_reads_and_writes_go_through_the_metric_set(self):
        cache = self._Cache()
        cache.hits += 1
        cache.hits += 1
        cache.misses = 10
        assert cache.hits == 2
        assert cache.metrics.snapshot() == {"hits": 2, "misses": 10}


class TestMetricsRegistry:
    def test_counter_is_get_or_create(self):
        registry = MetricsRegistry()
        counter = registry.counter("evals")
        counter.inc()
        assert registry.counter("evals") is counter
        assert registry.counter("evals").value == 1

    def test_labels_distinguish_series(self):
        registry = MetricsRegistry()
        registry.counter("evals", backend="thread").inc(2)
        registry.counter("evals", backend="process").inc(5)
        snapshot = registry.snapshot()
        assert snapshot["evals{backend=thread}"] == 2
        assert snapshot["evals{backend=process}"] == 5

    def test_kind_mismatch_is_a_programming_error(self):
        registry = MetricsRegistry()
        registry.counter("depth")
        with pytest.raises(ValidationError):
            registry.gauge("depth")

    def test_gauge_tracks_high_water(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("inflight")
        gauge.inc(3)
        gauge.dec(2)
        gauge.inc(1)
        snapshot = registry.snapshot()
        assert snapshot["inflight"] == 2
        assert snapshot["inflight.high_water"] == 3

    def test_histogram_summarises_observations(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("prep_s")
        for value in (0.5, 1.5, 1.0):
            histogram.observe(value)
        assert histogram.mean == pytest.approx(1.0)
        snapshot = registry.snapshot()
        assert snapshot["prep_s.count"] == 3
        assert snapshot["prep_s.sum"] == pytest.approx(3.0)
        assert snapshot["prep_s.min"] == 0.5
        assert snapshot["prep_s.max"] == 1.5

    def test_absorb_merges_a_worker_delta_in_bulk(self):
        registry = MetricsRegistry()
        registry.counter("budget.refunded_trials").inc(1)
        registry.absorb({"budget.refunded_trials": 2, "prefix.hits": 4})
        snapshot = registry.snapshot()
        assert snapshot["budget.refunded_trials"] == 3
        assert snapshot["prefix.hits"] == 4

    def test_reset_drops_every_series(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert len(registry) == 0 and registry.snapshot() == {}

    def test_get_registry_is_a_process_singleton(self):
        assert get_registry() is get_registry()


class TestWorkerDeltaShippingUnderProcessBackend:
    """The diff/merge protocol end to end across a real process pool."""

    def _pipelines(self):
        from repro.core.pipeline import Pipeline
        from repro.preprocessing import MinMaxScaler, Normalizer, StandardScaler

        shared = [StandardScaler(), MinMaxScaler()]
        return [
            Pipeline(shared),
            Pipeline(shared + [Normalizer()]),
            Pipeline(shared + [MinMaxScaler()]),
            Pipeline(shared + [StandardScaler()]),
        ]

    def test_prefix_reuse_in_workers_lands_in_parent_reports(self, distorted_data):
        from repro.core.evaluation import PipelineEvaluator
        from repro.engine import ExecutionEngine
        from repro.models.linear import LogisticRegression

        X, y = distorted_data
        engine = ExecutionEngine("process", n_workers=1)
        evaluator = PipelineEvaluator.from_dataset(
            X, y, LogisticRegression(max_iter=40), random_state=0,
            prefix_cache_bytes=1 << 24, engine=engine,
        )
        try:
            evaluator.evaluate_many(self._pipelines())
        finally:
            engine.close()
        # The reuse happened in another address space; the shipped
        # MetricsSnapshot deltas must still surface in the parent.
        merged = evaluator._worker_metrics.snapshot()
        assert merged.get("prefix.hits", 0) >= 3
        assert merged.get("prefix.steps_reused", 0) >= 6
        info = evaluator.cache_info()
        assert info["prefix_hits"] == merged["prefix.hits"]
        assert info["steps_reused"] == merged["prefix.steps_reused"]
