"""Tests for the AutoML-context modules: TPOT-FP, HPO and the comparison."""

import pytest

from repro.automl import (
    AUTOML_FP_CAPABILITIES,
    GeneticProgrammingFP,
    HPO_GRIDS,
    HPOSearch,
    compare_automl_context,
    summarize_comparisons,
    tpot_search_space,
    TPOT_PREPROCESSOR_NAMES,
)
from repro.exceptions import UnknownComponentError


class TestTpotFP:
    def test_tpot_space_has_five_preprocessors(self):
        """Table 8: TPOT's FP module exposes 5 preprocessors."""
        assert len(TPOT_PREPROCESSOR_NAMES) == 5
        space = tpot_search_space()
        assert space.n_candidates == 5
        names = {candidate.name for candidate in space.candidates}
        assert "power_transformer" not in names
        assert "quantile_transformer" not in names

    def test_gp_search_runs_and_respects_budget(self, lr_problem):
        result = GeneticProgrammingFP(population_size=4, random_state=0).search(
            lr_problem, max_trials=14
        )
        assert result.algorithm == "tpot_fp"
        assert len(result) == 14
        assert 0.0 <= result.best_accuracy <= 1.0

    def test_gp_only_uses_tpot_preprocessors(self, lr_problem):
        result = GeneticProgrammingFP(population_size=4, random_state=0).search(
            lr_problem, max_trials=12
        )
        for trial in result.trials:
            assert set(trial.pipeline.names()) <= set(TPOT_PREPROCESSOR_NAMES)

    def test_gp_unrestricted_mode_uses_all_seven(self, lr_problem):
        result = GeneticProgrammingFP(
            population_size=4, restrict_to_tpot=False, random_state=1
        ).search(lr_problem, max_trials=20)
        names = set()
        for trial in result.trials:
            names.update(trial.pipeline.names())
        assert len(names) > 5

    def test_gp_deterministic_given_seed(self, lr_problem):
        a = GeneticProgrammingFP(random_state=9).search(lr_problem, max_trials=10)
        b = GeneticProgrammingFP(random_state=9).search(lr_problem, max_trials=10)
        assert a.best_pipeline == b.best_pipeline


class TestHPO:
    def test_grids_exist_for_all_downstream_models(self):
        assert set(HPO_GRIDS) == {"lr", "xgb", "mlp"}

    def test_unknown_model_rejected(self):
        with pytest.raises(UnknownComponentError):
            HPOSearch("svm")

    def test_hpo_runs_and_returns_best(self, distorted_data):
        X, y = distorted_data
        from repro.models import train_test_split

        X_train, X_valid, y_train, y_valid = train_test_split(X, y, random_state=0)
        result = HPOSearch("lr", random_state=0).search(
            X_train, y_train, X_valid, y_valid, max_trials=6
        )
        assert len(result) == 6
        assert 0.0 <= result.best_accuracy <= 1.0
        assert set(result.best_params) == set(HPO_GRIDS["lr"])

    def test_custom_grid(self, distorted_data):
        X, y = distorted_data
        from repro.models import train_test_split

        X_train, X_valid, y_train, y_valid = train_test_split(X, y, random_state=0)
        search = HPOSearch("lr", grid={"C": (0.5, 2.0)}, random_state=0)
        result = search.search(X_train, y_train, X_valid, y_valid, max_trials=4)
        assert all(t.params["C"] in (0.5, 2.0) for t in result.trials)


class TestComparison:
    def test_capability_matrix_matches_table8(self):
        assert AUTOML_FP_CAPABILITIES["auto_weka"]["n_preprocessors"] == 0
        assert AUTOML_FP_CAPABILITIES["auto_sklearn"]["n_preprocessors"] == 5
        assert AUTOML_FP_CAPABILITIES["auto_sklearn"]["pipeline_length"] == "1"
        assert AUTOML_FP_CAPABILITIES["tpot"]["search"] == "GP"
        assert AUTOML_FP_CAPABILITIES["auto_fp"]["n_preprocessors"] == 7

    def test_comparison_runs_all_three_contenders(self, distorted_data):
        X, y = distorted_data
        comparison = compare_automl_context(
            X, y, "lr", dataset_name="unit", max_trials=8, random_state=0
        )
        assert comparison.dataset == "unit"
        for value in (comparison.baseline_accuracy, comparison.auto_fp_accuracy,
                      comparison.tpot_fp_accuracy, comparison.hpo_accuracy):
            assert 0.0 <= value <= 1.0

    def test_auto_fp_uses_larger_space_and_beats_baseline(self, distorted_data):
        X, y = distorted_data
        comparison = compare_automl_context(
            X, y, "lr", dataset_name="unit", max_trials=15, random_state=0
        )
        assert comparison.auto_fp_accuracy >= comparison.baseline_accuracy

    def test_summary_counts(self, distorted_data):
        X, y = distorted_data
        comparisons = [
            compare_automl_context(X, y, "lr", dataset_name=f"d{i}",
                                   max_trials=6, random_state=i)
            for i in range(2)
        ]
        summary = summarize_comparisons(comparisons)
        assert summary["n"] == 2
        assert 0 <= summary["auto_fp_beats_tpot"] <= 2
        assert 0 <= summary["auto_fp_beats_hpo"] <= 2
