"""Tests for the directory-backed result store."""

import pytest

from repro.core import Pipeline, SearchResult, TrialRecord
from repro.exceptions import ValidationError
from repro.io import ResultStore
from repro.preprocessing import MinMaxScaler, StandardScaler


def _result(algorithm: str, accuracy: float, baseline: float = 0.6) -> SearchResult:
    result = SearchResult(algorithm=algorithm, baseline_accuracy=baseline)
    result.add(TrialRecord(pipeline=Pipeline([StandardScaler()]), accuracy=accuracy))
    result.add(TrialRecord(pipeline=Pipeline([MinMaxScaler()]), accuracy=accuracy - 0.1))
    return result


class TestResultStore:
    def test_save_then_load_round_trips(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        key = store.key("heart", "lr", "pbt")
        store.save(key, _result("pbt", 0.9))
        restored = store.load(key)
        assert restored.algorithm == "pbt"
        assert restored.best_accuracy == 0.9

    def test_exists_and_len_reflect_saves(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.key("wine", "xgb", "rs")
        assert not store.exists(key)
        assert len(store) == 0
        store.save(key, _result("rs", 0.7))
        assert store.exists(key)
        assert len(store) == 1

    def test_keys_enumerates_all_saved_runs(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(store.key("heart", "lr", "pbt"), _result("pbt", 0.9))
        store.save(store.key("heart", "lr", "rs"), _result("rs", 0.85))
        store.save(store.key("wine", "mlp", "tpe", tag="seed1"), _result("tpe", 0.6))
        keys = store.keys()
        assert len(keys) == 3
        assert {k.dataset for k in keys} == {"heart", "wine"}
        assert any(k.tag == "seed1" for k in keys)

    def test_summary_rows_contain_improvement(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(store.key("heart", "lr", "pbt"), _result("pbt", 0.9, baseline=0.8))
        rows = store.summary_rows()
        assert len(rows) == 1
        assert rows[0]["best_accuracy"] == 0.9
        assert rows[0]["improvement_points"] == pytest.approx(10.0)

    def test_loading_missing_key_raises(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValidationError):
            store.load(store.key("heart", "lr", "missing"))

    def test_invalid_key_components_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValidationError):
            store.key("heart/../../etc", "lr", "rs")
        with pytest.raises(ValidationError):
            store.key("", "lr", "rs")

    def test_tagged_and_untagged_runs_do_not_collide(self, tmp_path):
        store = ResultStore(tmp_path)
        plain = store.key("heart", "lr", "rs")
        tagged = store.key("heart", "lr", "rs", tag="rerun")
        store.save(plain, _result("rs", 0.7))
        store.save(tagged, _result("rs", 0.75))
        assert store.load(plain).best_accuracy == 0.7
        assert store.load(tagged).best_accuracy == 0.75

    def test_hyphenated_algorithm_round_trips(self, tmp_path):
        """Regression: keys() used to split the stem on the first '-', so a
        hyphenated algorithm came back as a wrong (algorithm, tag) pair."""
        store = ResultStore(tmp_path)
        store.save(store.key("heart", "lr", "random-search"),
                   _result("random-search", 0.8))
        [key] = store.keys()
        assert key.algorithm == "random-search"
        assert key.tag == ""
        assert store.load(key).algorithm == "random-search"

    def test_hyphenated_algorithm_and_tag_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        saved = store.key("heart", "lr", "random-search", tag="seed-1")
        store.save(saved, _result("random-search", 0.8))
        [key] = store.keys()
        assert key == saved
        assert key.algorithm == "random-search"
        assert key.tag == "seed-1"
        rows = store.summary_rows()
        assert rows[0]["algorithm"] == "random-search"
        assert rows[0]["tag"] == "seed-1"

    def test_double_hyphen_component_rejected(self, tmp_path):
        """'--' is the stem separator, so components may not contain it."""
        store = ResultStore(tmp_path)
        with pytest.raises(ValidationError):
            store.key("heart", "lr", "random--search")
        with pytest.raises(ValidationError):
            store.key("heart", "lr", "rs", tag="a--b")
        with pytest.raises(ValidationError):
            store.key("heart", "lr", "rs-")
        with pytest.raises(ValidationError):
            store.key("heart", "lr", "-rs")


class TestFormatMarkerAndLegacyShim:
    """The format_version marker and the pre-PR-2 tagged-stem loader shim."""

    def _write_legacy(self, root, dataset, model, stem, algorithm,
                      accuracy=0.7):
        """Write a pre-format-marker store file (no format_version key)."""
        import json

        from repro.io.serialization import search_result_to_dict

        document = search_result_to_dict(_result(algorithm, accuracy))
        del document["format_version"]
        path = root / dataset / model / f"{stem}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(document), encoding="utf-8")
        return path

    def test_saved_documents_carry_format_version(self, tmp_path):
        import json

        from repro.io.serialization import RESULT_FORMAT_VERSION

        store = ResultStore(tmp_path)
        path = store.save(store.key("heart", "lr", "pbt"), _result("pbt", 0.9))
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["format_version"] == RESULT_FORMAT_VERSION

    def test_newer_format_version_is_refused(self, tmp_path):
        import json

        store = ResultStore(tmp_path)
        key = store.key("heart", "lr", "pbt")
        path = store.save(key, _result("pbt", 0.9))
        data = json.loads(path.read_text(encoding="utf-8"))
        data["format_version"] = 999
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(ValidationError):
            store.load(key)

    def test_legacy_tagged_stem_reparsed_from_document(self, tmp_path):
        """rs-seed1.json from a pre-PR-2 store is (rs, seed1), not (rs-seed1, '')."""
        store = ResultStore(tmp_path)
        self._write_legacy(tmp_path, "heart", "lr", "rs-seed1", "rs")
        [key] = store.keys()
        assert key.algorithm == "rs"
        assert key.tag == "seed1"

    def test_legacy_tagged_run_round_trips_through_load_and_resave(self, tmp_path):
        store = ResultStore(tmp_path)
        legacy_path = self._write_legacy(tmp_path, "heart", "lr",
                                         "tevo_h-rerun", "tevo_h",
                                         accuracy=0.75)
        [key] = store.keys()
        assert store.exists(key)
        loaded = store.load(key)  # served from the legacy single-hyphen path
        assert loaded.algorithm == "tevo_h"
        assert loaded.best_accuracy == 0.75
        # Re-saving migrates to the current '--' layout and removes the
        # superseded legacy file, so the run is never listed twice.
        new_path = store.save(key, loaded)
        assert new_path != legacy_path
        assert new_path.name == "tevo_h--rerun.json"
        assert not legacy_path.exists()
        assert store.keys() == [key]
        assert store.load(key).best_accuracy == 0.75
        assert len(store.summary_rows()) == 1

    def test_legacy_hyphenated_algorithm_without_tag(self, tmp_path):
        """An unmarked random-search.json is an untagged hyphenated algorithm."""
        store = ResultStore(tmp_path)
        self._write_legacy(tmp_path, "heart", "lr", "random-search",
                           "random-search")
        [key] = store.keys()
        assert key.algorithm == "random-search"
        assert key.tag == ""
        assert store.load(key).algorithm == "random-search"

    def test_colliding_modern_file_never_shadowed_or_deleted(self, tmp_path):
        """heart/lr/tevo-h.json (modern, untagged, hyphenated algorithm)
        must not be served for — or deleted by — key ('tevo', tag='h')."""
        store = ResultStore(tmp_path)
        modern_key = store.key("heart", "lr", "tevo-h")
        modern_path = store.save(modern_key, _result("tevo-h", 0.9))
        colliding = store.key("heart", "lr", "tevo", tag="h")
        # The never-saved tagged key neither exists nor loads the modern run.
        assert not store.exists(colliding)
        with pytest.raises(ValidationError):
            store.load(colliding)
        # Saving the tagged key must not unlink the unrelated modern file.
        store.save(colliding, _result("tevo", 0.6))
        assert modern_path.exists()
        assert store.load(modern_key).best_accuracy == 0.9
        assert store.load(colliding).best_accuracy == 0.6
        assert {(k.algorithm, k.tag) for k in store.keys()} == \
            {("tevo-h", ""), ("tevo", "h")}

    def test_modern_hyphenated_stem_not_misread_as_legacy(self, tmp_path):
        """A marked document's stem is never split on single hyphens."""
        store = ResultStore(tmp_path)
        store.save(store.key("heart", "lr", "random-search"),
                   _result("random-search", 0.8))
        [key] = store.keys()
        assert key.algorithm == "random-search"
        assert key.tag == ""

    def test_unreadable_unmarked_file_falls_back_to_stem(self, tmp_path):
        path = tmp_path / "heart" / "lr" / "some-stem.json"
        path.parent.mkdir(parents=True)
        path.write_text("{not json", encoding="utf-8")
        store = ResultStore(tmp_path)
        [key] = store.keys()
        assert key.algorithm == "some-stem"
        assert key.tag == ""

    def test_summary_rows_include_legacy_tagged_runs(self, tmp_path):
        store = ResultStore(tmp_path)
        self._write_legacy(tmp_path, "heart", "lr", "rs-old", "rs",
                           accuracy=0.7)
        store.save(store.key("heart", "lr", "rs", tag="new"),
                   _result("rs", 0.8))
        rows = {(row["algorithm"], row["tag"]): row["best_accuracy"]
                for row in store.summary_rows()}
        assert rows[("rs", "old")] == 0.7
        assert rows[("rs", "new")] == 0.8
