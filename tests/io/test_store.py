"""Tests for the directory-backed result store."""

import pytest

from repro.core import Pipeline, SearchResult, TrialRecord
from repro.exceptions import ValidationError
from repro.io import ResultStore
from repro.preprocessing import MinMaxScaler, StandardScaler


def _result(algorithm: str, accuracy: float, baseline: float = 0.6) -> SearchResult:
    result = SearchResult(algorithm=algorithm, baseline_accuracy=baseline)
    result.add(TrialRecord(pipeline=Pipeline([StandardScaler()]), accuracy=accuracy))
    result.add(TrialRecord(pipeline=Pipeline([MinMaxScaler()]), accuracy=accuracy - 0.1))
    return result


class TestResultStore:
    def test_save_then_load_round_trips(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        key = store.key("heart", "lr", "pbt")
        store.save(key, _result("pbt", 0.9))
        restored = store.load(key)
        assert restored.algorithm == "pbt"
        assert restored.best_accuracy == 0.9

    def test_exists_and_len_reflect_saves(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.key("wine", "xgb", "rs")
        assert not store.exists(key)
        assert len(store) == 0
        store.save(key, _result("rs", 0.7))
        assert store.exists(key)
        assert len(store) == 1

    def test_keys_enumerates_all_saved_runs(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(store.key("heart", "lr", "pbt"), _result("pbt", 0.9))
        store.save(store.key("heart", "lr", "rs"), _result("rs", 0.85))
        store.save(store.key("wine", "mlp", "tpe", tag="seed1"), _result("tpe", 0.6))
        keys = store.keys()
        assert len(keys) == 3
        assert {k.dataset for k in keys} == {"heart", "wine"}
        assert any(k.tag == "seed1" for k in keys)

    def test_summary_rows_contain_improvement(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(store.key("heart", "lr", "pbt"), _result("pbt", 0.9, baseline=0.8))
        rows = store.summary_rows()
        assert len(rows) == 1
        assert rows[0]["best_accuracy"] == 0.9
        assert rows[0]["improvement_points"] == pytest.approx(10.0)

    def test_loading_missing_key_raises(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValidationError):
            store.load(store.key("heart", "lr", "missing"))

    def test_invalid_key_components_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValidationError):
            store.key("heart/../../etc", "lr", "rs")
        with pytest.raises(ValidationError):
            store.key("", "lr", "rs")

    def test_tagged_and_untagged_runs_do_not_collide(self, tmp_path):
        store = ResultStore(tmp_path)
        plain = store.key("heart", "lr", "rs")
        tagged = store.key("heart", "lr", "rs", tag="rerun")
        store.save(plain, _result("rs", 0.7))
        store.save(tagged, _result("rs", 0.75))
        assert store.load(plain).best_accuracy == 0.7
        assert store.load(tagged).best_accuracy == 0.75

    def test_hyphenated_algorithm_round_trips(self, tmp_path):
        """Regression: keys() used to split the stem on the first '-', so a
        hyphenated algorithm came back as a wrong (algorithm, tag) pair."""
        store = ResultStore(tmp_path)
        store.save(store.key("heart", "lr", "random-search"),
                   _result("random-search", 0.8))
        [key] = store.keys()
        assert key.algorithm == "random-search"
        assert key.tag == ""
        assert store.load(key).algorithm == "random-search"

    def test_hyphenated_algorithm_and_tag_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        saved = store.key("heart", "lr", "random-search", tag="seed-1")
        store.save(saved, _result("random-search", 0.8))
        [key] = store.keys()
        assert key == saved
        assert key.algorithm == "random-search"
        assert key.tag == "seed-1"
        rows = store.summary_rows()
        assert rows[0]["algorithm"] == "random-search"
        assert rows[0]["tag"] == "seed-1"

    def test_double_hyphen_component_rejected(self, tmp_path):
        """'--' is the stem separator, so components may not contain it."""
        store = ResultStore(tmp_path)
        with pytest.raises(ValidationError):
            store.key("heart", "lr", "random--search")
        with pytest.raises(ValidationError):
            store.key("heart", "lr", "rs", tag="a--b")
        with pytest.raises(ValidationError):
            store.key("heart", "lr", "rs-")
        with pytest.raises(ValidationError):
            store.key("heart", "lr", "-rs")
