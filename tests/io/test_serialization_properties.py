"""Property-based round-trip tests for the result serialization layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Pipeline, SearchResult, SearchSpace, TrialRecord
from repro.io import (
    pipeline_from_dict,
    pipeline_to_dict,
    search_result_from_dict,
    search_result_to_dict,
)

_SPACE = SearchSpace(max_length=5)

pipeline_indices = st.lists(
    st.integers(0, _SPACE.n_candidates - 1), min_size=0, max_size=5
)


def _pipeline_from(indices) -> Pipeline:
    if not indices:
        return Pipeline()
    return _SPACE.pipeline_from_indices(indices)


@given(indices=pipeline_indices)
@settings(max_examples=50, deadline=None)
def test_every_default_space_pipeline_round_trips(indices):
    pipeline = _pipeline_from(indices)
    restored = pipeline_from_dict(pipeline_to_dict(pipeline))
    assert restored.spec() == pipeline.spec()
    assert restored.describe() == pipeline.describe()


@given(
    trials=st.lists(
        st.tuples(
            pipeline_indices,
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            st.floats(min_value=0.1, max_value=1.0, allow_nan=False),
        ),
        min_size=1,
        max_size=8,
    ),
    baseline=st.one_of(st.none(), st.floats(min_value=0.0, max_value=1.0,
                                            allow_nan=False)),
)
@settings(max_examples=30, deadline=None)
def test_search_results_round_trip_preserving_best_trial(trials, baseline):
    result = SearchResult(algorithm="property", baseline_accuracy=baseline)
    for indices, accuracy, fidelity in trials:
        result.add(TrialRecord(pipeline=_pipeline_from(indices),
                               accuracy=accuracy, fidelity=fidelity))
    restored = search_result_from_dict(search_result_to_dict(result))
    assert len(restored) == len(result)
    assert restored.baseline_accuracy == result.baseline_accuracy
    assert restored.best_trial().accuracy == result.best_trial().accuracy
    assert restored.best_pipeline.spec() == result.best_pipeline.spec()
