"""Tests for JSON/CSV serialization of pipelines, trials and search results."""

import json

import pytest

from repro.core import Pipeline, SearchResult, TrialRecord
from repro.exceptions import ValidationError
from repro.io import (
    load_search_result,
    pipeline_from_dict,
    pipeline_to_dict,
    read_rows_csv,
    save_search_result,
    search_result_from_dict,
    search_result_to_dict,
    trial_from_dict,
    trial_to_dict,
    write_rows_csv,
)
from repro.preprocessing import Binarizer, MinMaxScaler, Normalizer, RobustScaler


def _sample_result() -> SearchResult:
    result = SearchResult(algorithm="rs", baseline_accuracy=0.7)
    result.add(TrialRecord(
        pipeline=Pipeline([MinMaxScaler(), Binarizer(threshold=0.5)]),
        accuracy=0.81, pick_time=0.01, prep_time=0.02, train_time=0.3,
        fidelity=1.0, iteration=1,
    ))
    result.add(TrialRecord(
        pipeline=Pipeline([Normalizer()]),
        accuracy=0.76, fidelity=0.5, iteration=2,
    ))
    return result


class TestPipelineSerialization:
    def test_round_trip_preserves_spec(self):
        pipeline = Pipeline([MinMaxScaler(range_min=0.0, range_max=2.0), Binarizer()])
        restored = pipeline_from_dict(pipeline_to_dict(pipeline))
        assert restored.spec() == pipeline.spec()

    def test_round_trip_of_extension_preprocessors(self):
        pipeline = Pipeline([RobustScaler(q_min=10.0, q_max=90.0)])
        restored = pipeline_from_dict(pipeline_to_dict(pipeline))
        assert restored.spec() == pipeline.spec()

    def test_empty_pipeline_round_trips(self):
        restored = pipeline_from_dict(pipeline_to_dict(Pipeline()))
        assert restored.is_empty()

    def test_unknown_preprocessor_name_rejected(self):
        with pytest.raises(ValidationError):
            pipeline_from_dict({"steps": [{"name": "pca", "params": {}}]})

    def test_dict_is_json_serialisable(self):
        encoded = json.dumps(pipeline_to_dict(Pipeline([Binarizer(threshold=0.3)])))
        assert "binarizer" in encoded


class TestTrialAndResultSerialization:
    def test_trial_round_trip_preserves_all_fields(self):
        trial = TrialRecord(
            pipeline=Pipeline([Normalizer()]), accuracy=0.9,
            pick_time=0.1, prep_time=0.2, train_time=0.3, fidelity=0.5, iteration=7,
        )
        restored = trial_from_dict(trial_to_dict(trial))
        assert restored.pipeline.spec() == trial.pipeline.spec()
        assert restored.accuracy == trial.accuracy
        assert restored.fidelity == trial.fidelity
        assert restored.iteration == trial.iteration
        assert restored.total_time == pytest.approx(trial.total_time)

    def test_search_result_round_trip(self):
        result = _sample_result()
        restored = search_result_from_dict(search_result_to_dict(result))
        assert restored.algorithm == "rs"
        assert restored.baseline_accuracy == 0.7
        assert len(restored) == len(result)
        assert restored.best_accuracy == result.best_accuracy
        assert restored.best_pipeline.spec() == result.best_pipeline.spec()

    def test_save_and_load_from_disk(self, tmp_path):
        result = _sample_result()
        path = save_search_result(result, tmp_path / "runs" / "rs.json")
        assert path.exists()
        restored = load_search_result(path)
        assert restored.best_accuracy == result.best_accuracy

    def test_missing_optional_fields_get_defaults(self):
        restored = trial_from_dict({
            "pipeline": {"steps": []},
            "accuracy": 0.5,
        })
        assert restored.fidelity == 1.0
        assert restored.pick_time == 0.0


class TestAtomicWrites:
    def test_atomic_write_replaces_content_and_leaves_no_temp(self, tmp_path):
        from repro.io import atomic_write_text

        path = tmp_path / "doc.json"
        atomic_write_text(path, "first")
        atomic_write_text(path, "second")
        assert path.read_text(encoding="utf-8") == "second"
        assert list(tmp_path.iterdir()) == [path]

    def test_failed_write_preserves_previous_file(self, tmp_path):
        from repro.io import atomic_write_text

        path = tmp_path / "doc.json"
        atomic_write_text(path, "intact")
        with pytest.raises(TypeError):
            atomic_write_text(path, object())  # not a string: write fails
        assert path.read_text(encoding="utf-8") == "intact"
        assert list(tmp_path.iterdir()) == [path]

    def test_save_search_result_is_atomic(self, tmp_path):
        """A save over an existing file never exposes a torn document."""
        path = tmp_path / "rs.json"
        save_search_result(_sample_result(), path)
        before = path.read_text(encoding="utf-8")
        save_search_result(_sample_result(), path)
        assert path.read_text(encoding="utf-8") == before
        assert list(tmp_path.iterdir()) == [path]


class TestCSVRoundTrip:
    def test_rows_round_trip_with_type_recovery(self, tmp_path):
        rows = [
            {"dataset": "heart", "trials": 40, "accuracy": 0.875},
            {"dataset": "wine", "trials": 25, "accuracy": 0.64},
        ]
        path = write_rows_csv(rows, tmp_path / "summary.csv")
        restored = read_rows_csv(path)
        assert restored == rows

    def test_explicit_fieldnames_control_column_order(self, tmp_path):
        rows = [{"b": 2, "a": 1}]
        path = write_rows_csv(rows, tmp_path / "ordered.csv", fieldnames=["a", "b"])
        header = path.read_text(encoding="utf-8").splitlines()[0]
        assert header == "a,b"

    def test_missing_keys_become_none_on_read(self, tmp_path):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        path = write_rows_csv(rows, tmp_path / "gaps.csv", fieldnames=["a", "b"])
        restored = read_rows_csv(path)
        assert restored[1]["b"] is None

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            write_rows_csv([], tmp_path / "empty.csv")
