"""Concurrency stress test for the persistent evaluation cache.

Multiple worker processes append to one cache root at once while torn and
truncated shard lines are injected, mimicking crashes mid-write and racing
appenders.  The guarantees under test:

* a reader never crashes on corrupt shard content,
* every entry a worker committed (its ``put`` returned) is readable on a
  fresh reopen, regardless of interleaving,
* ``meta.json`` is authoritative on reopen — a reader constructed with a
  *different* ``n_shards`` still finds every entry because the stored
  layout wins.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.io.evalcache import PersistentEvalCache

FINGERPRINT = "deadbeef" * 8
N_WORKERS = 3
ENTRIES_PER_WORKER = 40
N_SHARDS = 4


def _entry(worker: int, index: int) -> dict:
    return {"accuracy": round(0.5 + worker * 0.01 + index * 1e-4, 6),
            "prep_time": 0.0, "train_time": 0.0, "failed": False}


def _worker_keys(worker: int) -> list[tuple]:
    # A mix of worker-private keys and keys shared by every worker, so the
    # log replays both disjoint appends and racing writes to the same key.
    private = [((f"worker{worker}", index), 1.0)
               for index in range(ENTRIES_PER_WORKER)]
    shared = [(("shared", index), 0.5) for index in range(10)]
    return private + shared


def _append_worker(root: str, worker: int) -> None:
    cache = PersistentEvalCache(root, fingerprint=FINGERPRINT,
                                n_shards=N_SHARDS)
    for key in _worker_keys(worker):
        cache.put(key, _entry(worker, hash(key[0][1]) % 100))


def _run_workers(root) -> None:
    context = multiprocessing.get_context("fork")
    workers = [context.Process(target=_append_worker, args=(str(root), worker))
               for worker in range(N_WORKERS)]
    for process in workers:
        process.start()
    for process in workers:
        process.join(timeout=60)
        assert process.exitcode == 0, "cache writer crashed"


def _inject_corruption(cache_dir) -> int:
    """Append torn/truncated/garbage lines to every shard; returns count."""
    injected = 0
    for shard in sorted(cache_dir.glob("shard-*.jsonl")):
        with shard.open("ab") as handle:
            handle.write(b'{"k": "torn-no-newline')  # crash mid-write
            handle.write(b"\n\x00\x01garbage bytes\n")
            handle.write(b'{"k": 42, "e": []}\n')  # parses, wrong types
            injected += 3
        # A torn line *in the middle* of the log: rewrite the file with the
        # first committed line truncated halfway.
        lines = shard.read_bytes().split(b"\n")
        if lines and len(lines[0]) > 10:
            lines.insert(0, lines[0][: len(lines[0]) // 2])
            shard.write_bytes(b"\n".join(lines))
            injected += 1
    return injected


@pytest.fixture(scope="module")
def stressed_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("evalcache-stress")
    _run_workers(root)
    injected = _inject_corruption(root / FINGERPRINT)
    return root, injected


class TestEvalCacheConcurrencyStress:
    def test_no_committed_entry_is_lost(self, stressed_root):
        root, _ = stressed_root
        cache = PersistentEvalCache(root, fingerprint=FINGERPRINT,
                                    n_shards=N_SHARDS)
        for worker in range(N_WORKERS):
            for key in _worker_keys(worker):
                entry = cache.get(key)
                assert entry is not None, f"lost committed entry {key}"
                if key[0][0] != "shared":
                    assert entry == _entry(worker, hash(key[0][1]) % 100)

    def test_shared_keys_hold_some_writers_value(self, stressed_root):
        root, _ = stressed_root
        cache = PersistentEvalCache(root, fingerprint=FINGERPRINT,
                                    n_shards=N_SHARDS)
        candidates = [
            {_entry(worker, hash(index) % 100)["accuracy"]
             for worker in range(N_WORKERS)}
            for index in range(10)
        ]
        for index in range(10):
            entry = cache.get((("shared", index), 0.5))
            assert entry["accuracy"] in candidates[index]

    def test_reader_skips_corrupt_lines_without_crashing(self, stressed_root):
        root, injected = stressed_root
        cache = PersistentEvalCache(root, fingerprint=FINGERPRINT,
                                    n_shards=N_SHARDS)
        cache.load_all()
        assert injected > 0
        assert cache.skipped_lines >= injected
        expected = N_WORKERS * ENTRIES_PER_WORKER + 10
        assert len(cache) == expected

    def test_meta_json_is_authoritative_on_reopen(self, stressed_root):
        """A reader opened with the wrong shard count adopts the stored one."""
        root, _ = stressed_root
        meta = json.loads(
            (root / FINGERPRINT / "meta.json").read_text("utf-8")
        )
        assert meta["n_shards"] == N_SHARDS
        wrong = PersistentEvalCache(root, fingerprint=FINGERPRINT,
                                    n_shards=N_SHARDS * 4)
        assert wrong.n_shards == N_SHARDS
        # Lookups hash into the *stored* layout, so nothing is missed.
        assert wrong.get((("worker0", 0), 1.0)) is not None
        assert len(wrong) == N_WORKERS * ENTRIES_PER_WORKER + 10

    @pytest.mark.slow
    def test_heavy_contention_many_workers(self, tmp_path):
        """Opt-in scale variant: more writers, same guarantees."""
        context = multiprocessing.get_context("fork")
        workers = [context.Process(target=_append_worker,
                                   args=(str(tmp_path), worker))
                   for worker in range(8)]
        for process in workers:
            process.start()
        for process in workers:
            process.join(timeout=120)
            assert process.exitcode == 0
        cache = PersistentEvalCache(tmp_path, fingerprint=FINGERPRINT,
                                    n_shards=N_SHARDS)
        for worker in range(8):
            for key in _worker_keys(worker):
                assert cache.get(key) is not None

    def test_concurrent_writers_preserve_single_line_appends(self, stressed_root):
        """Every uncorrupted line is a complete JSON document on its own.

        Single-``os.write`` appends on O_APPEND descriptors must never
        interleave inside each other, so aside from the deliberately
        injected garbage every line parses.
        """
        root, injected = stressed_root
        unparseable = 0
        for shard in sorted((root / FINGERPRINT).glob("shard-*.jsonl")):
            for line in shard.read_text("utf-8").splitlines():
                if not line.strip():
                    continue
                try:
                    json.loads(line)
                except json.JSONDecodeError:
                    unparseable += 1
        assert unparseable <= injected
