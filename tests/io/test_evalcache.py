"""Tests for the persistent cross-run evaluation cache (repro.io.evalcache)."""

import json

import pytest

from repro.exceptions import ValidationError
from repro.io.evalcache import PersistentEvalCache, key_token, open_eval_cache

FP = "a" * 64  # stand-in fingerprint


def _key(name: str, fidelity: float = 1.0) -> tuple:
    return (((name, ()),), round(fidelity, 6))


def _entry(accuracy: float) -> dict:
    return {"accuracy": accuracy, "prep_time": 0.01, "train_time": 0.02,
            "failed": False}


class TestPersistentEvalCache:
    def test_put_then_get_round_trips(self, tmp_path):
        cache = PersistentEvalCache(tmp_path, fingerprint=FP)
        cache.put(_key("standard_scaler"), _entry(0.9))
        assert cache.get(_key("standard_scaler")) == _entry(0.9)
        assert cache.get(_key("minmax_scaler")) is None

    def test_entries_survive_across_instances(self, tmp_path):
        first = PersistentEvalCache(tmp_path, fingerprint=FP)
        first.put(_key("a"), _entry(0.7))
        first.put(_key("b", 0.5), _entry(0.6))
        # A brand-new instance (a later run / another process) reads them back.
        second = PersistentEvalCache(tmp_path, fingerprint=FP)
        assert second.get(_key("a")) == _entry(0.7)
        assert second.get(_key("b", 0.5)) == _entry(0.6)
        assert second.hits == 2

    def test_fidelity_is_part_of_the_key(self, tmp_path):
        cache = PersistentEvalCache(tmp_path, fingerprint=FP)
        cache.put(_key("a", 1.0), _entry(0.9))
        assert cache.get(_key("a", 0.5)) is None

    def test_fingerprints_are_isolated(self, tmp_path):
        one = PersistentEvalCache(tmp_path, fingerprint="1" * 64)
        two = PersistentEvalCache(tmp_path, fingerprint="2" * 64)
        one.put(_key("a"), _entry(0.9))
        assert two.get(_key("a")) is None

    def test_hit_miss_write_counters(self, tmp_path):
        cache = PersistentEvalCache(tmp_path, fingerprint=FP)
        assert cache.get(_key("a")) is None
        cache.put(_key("a"), _entry(0.5))
        cache.get(_key("a"))
        info = cache.info()
        assert info["misses"] == 1
        assert info["hits"] == 1
        assert info["writes"] == 1
        assert info["entries"] == 1

    def test_put_many_skips_already_stored_keys(self, tmp_path):
        cache = PersistentEvalCache(tmp_path, fingerprint=FP)
        cache.put(_key("a"), _entry(0.5))
        cache.put_many([(_key("a"), _entry(0.5)), (_key("b"), _entry(0.6))])
        assert cache.writes == 2  # the duplicate "a" was not re-appended

    def test_truncated_line_is_skipped_not_fatal(self, tmp_path):
        cache = PersistentEvalCache(tmp_path, fingerprint=FP, n_shards=1)
        cache.put(_key("a"), _entry(0.5))
        cache.put(_key("b"), _entry(0.6))
        shard = tmp_path / FP / "shard-00.jsonl"
        text = shard.read_text(encoding="utf-8")
        # Simulate a crash mid-append: cut the last line in half.
        shard.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1],
                         encoding="utf-8")
        fresh = PersistentEvalCache(tmp_path, fingerprint=FP, n_shards=1)
        assert fresh.get(_key("a")) == _entry(0.5)
        assert fresh.get(_key("b")) is None
        assert fresh.skipped_lines == 1

    def test_garbage_lines_are_skipped(self, tmp_path):
        cache = PersistentEvalCache(tmp_path, fingerprint=FP, n_shards=1)
        cache.put(_key("a"), _entry(0.5))
        shard = tmp_path / FP / "shard-00.jsonl"
        with shard.open("a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps({"unrelated": 1}) + "\n")
            handle.write(json.dumps({"k": 5, "e": {}}) + "\n")  # wrong types
        fresh = PersistentEvalCache(tmp_path, fingerprint=FP, n_shards=1)
        fresh.load_all()
        assert fresh.get(_key("a")) == _entry(0.5)
        assert fresh.skipped_lines == 3

    def test_last_write_wins_when_log_has_duplicates(self, tmp_path):
        cache = PersistentEvalCache(tmp_path, fingerprint=FP, n_shards=1)
        cache.put(_key("a"), _entry(0.5))
        shard = tmp_path / FP / "shard-00.jsonl"
        with shard.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"k": key_token(_key("a")), "e": _entry(0.8)}) + "\n")
        fresh = PersistentEvalCache(tmp_path, fingerprint=FP, n_shards=1)
        assert fresh.get(_key("a")) == _entry(0.8)

    def test_refresh_picks_up_concurrent_writers(self, tmp_path):
        reader = PersistentEvalCache(tmp_path, fingerprint=FP, n_shards=1)
        assert reader.get(_key("a")) is None  # loads the (empty) shard
        writer = PersistentEvalCache(tmp_path, fingerprint=FP, n_shards=1)
        writer.put(_key("a"), _entry(0.5))
        assert reader.get(_key("a")) is None  # lazy load happened already
        reader.refresh()
        assert reader.get(_key("a")) == _entry(0.5)

    def test_entries_spread_over_shards(self, tmp_path):
        cache = PersistentEvalCache(tmp_path, fingerprint=FP, n_shards=4)
        for index in range(40):
            cache.put(_key(f"prep_{index}"), _entry(0.1))
        shards = sorted(p.name for p in (tmp_path / FP).glob("shard-*.jsonl"))
        assert len(shards) > 1
        assert len(cache) == 40

    def test_meta_file_written_once(self, tmp_path):
        cache = PersistentEvalCache(tmp_path, fingerprint=FP)
        cache.put(_key("a"), _entry(0.5))
        meta = json.loads((tmp_path / FP / "meta.json").read_text(encoding="utf-8"))
        assert meta["fingerprint"] == FP
        assert meta["n_shards"] == cache.n_shards

    def test_reopen_adopts_the_stored_shard_count(self, tmp_path):
        """The shard count is a layout property: a different n_shards on
        reopen would hash lookups into the wrong files."""
        writer = PersistentEvalCache(tmp_path, fingerprint=FP, n_shards=16)
        for index in range(20):
            writer.put(_key(f"prep_{index}"), _entry(0.1))
        reader = PersistentEvalCache(tmp_path, fingerprint=FP, n_shards=4)
        assert reader.n_shards == 16  # meta.json wins over the argument
        for index in range(20):
            assert reader.get(_key(f"prep_{index}")) == _entry(0.1)

    def test_newer_format_version_is_refused(self, tmp_path):
        cache = PersistentEvalCache(tmp_path, fingerprint=FP)
        cache.put(_key("a"), _entry(0.5))
        meta_path = tmp_path / FP / "meta.json"
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        meta["format_version"] = 999
        meta_path.write_text(json.dumps(meta), encoding="utf-8")
        with pytest.raises(ValidationError):
            PersistentEvalCache(tmp_path, fingerprint=FP)

    def test_corrupt_meta_falls_back_to_arguments(self, tmp_path):
        (tmp_path / FP).mkdir(parents=True)
        (tmp_path / FP / "meta.json").write_text("not json{", encoding="utf-8")
        cache = PersistentEvalCache(tmp_path, fingerprint=FP, n_shards=4)
        assert cache.n_shards == 4
        cache.put(_key("a"), _entry(0.5))  # self-heals the meta file
        assert json.loads(
            (tmp_path / FP / "meta.json").read_text(encoding="utf-8"))["n_shards"] == 4

    def test_validation(self, tmp_path):
        with pytest.raises(ValidationError):
            PersistentEvalCache(tmp_path, fingerprint="")
        with pytest.raises(ValidationError):
            PersistentEvalCache(tmp_path, fingerprint=FP, n_shards=0)

    def test_compact_rewrites_duplicates_and_corruption_away(self, tmp_path):
        cache = PersistentEvalCache(tmp_path, fingerprint=FP, n_shards=1)
        cache.put(_key("a"), _entry(0.5))
        cache.put(_key("b"), _entry(0.6))
        shard = tmp_path / FP / "shard-00.jsonl"
        with shard.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"k": key_token(_key("a")), "e": _entry(0.8)}) + "\n")
            handle.write('{"k": "torn line\n')

        summary = PersistentEvalCache(tmp_path, fingerprint=FP).compact()
        assert summary["entries"] == 2
        assert summary["lines_before"] == 4
        assert summary["lines_removed"] == 2

        fresh = PersistentEvalCache(tmp_path, fingerprint=FP)
        fresh.load_all()
        assert fresh.skipped_lines == 0
        assert len(fresh) == 2
        assert fresh.get(_key("a")) == _entry(0.8)  # last write still wins
        assert fresh.get(_key("b")) == _entry(0.6)

    def test_cache_stats_and_prune_root(self, tmp_path):
        from repro.io.evalcache import cache_stats, prune_cache_root

        import os
        import time

        old = PersistentEvalCache(tmp_path, fingerprint="1" * 64)
        old.put(_key("a"), _entry(0.5))
        new = PersistentEvalCache(tmp_path, fingerprint="2" * 64)
        new.put(_key("a"), _entry(0.7))
        new.put(_key("b"), _entry(0.8))
        # Make the recency ordering unambiguous regardless of fs timestamp
        # granularity: age every file of the "old" fingerprint.
        past = time.time() - 60
        for path in (tmp_path / ("1" * 64)).iterdir():
            os.utime(path, (past, past))

        rows = cache_stats(tmp_path)
        assert [row["fingerprint"] for row in rows] == ["2" * 64, "1" * 64]
        assert rows[0]["entries"] == 2 and rows[1]["entries"] == 1
        assert all(row["bytes"] > 0 for row in rows)

        summary = prune_cache_root(tmp_path, keep_fingerprints=1)
        assert summary["kept"] == ["2" * 64]
        assert summary["removed"] == ["1" * 64]
        assert not (tmp_path / ("1" * 64)).exists()
        kept = PersistentEvalCache(tmp_path, fingerprint="2" * 64)
        assert kept.get(_key("b")) == _entry(0.8)

    def test_prune_rejects_negative_keep(self, tmp_path):
        from repro.io.evalcache import prune_cache_root

        with pytest.raises(ValidationError):
            prune_cache_root(tmp_path, keep_fingerprints=-1)

    def test_open_eval_cache_none_disables(self, tmp_path):
        assert open_eval_cache(None, FP) is None
        cache = open_eval_cache(tmp_path, FP)
        assert isinstance(cache, PersistentEvalCache)


class TestBoundedIndex:
    """The in-memory index obeys ``max_index_entries`` without losing data.

    Long-lived cache roots hold far more entries than a parent process
    should index; the bound turns the index into an LRU whose evictions
    fall back to re-scanning the entry's shard file — every stored entry
    stays retrievable, only its lookup cost changes.
    """

    def test_every_entry_retrievable_despite_a_tiny_index(self, tmp_path):
        writer = PersistentEvalCache(tmp_path, fingerprint=FP, n_shards=4)
        for i in range(60):
            writer.put(_key(f"step{i}"), _entry(i / 100.0))

        reader = PersistentEvalCache(tmp_path, fingerprint=FP,
                                     max_index_entries=8)
        for i in range(60):
            assert reader.get(_key(f"step{i}")) == _entry(i / 100.0), i
        assert len(reader._entries) <= 8
        assert reader.hits == 60
        assert reader.index_evictions > 0
        assert reader.rescans > 0

    def test_bound_applies_while_writing_too(self, tmp_path):
        cache = PersistentEvalCache(tmp_path, fingerprint=FP,
                                    max_index_entries=5)
        for i in range(40):
            cache.put(_key(f"step{i}"), _entry(i / 100.0))
        assert len(cache._entries) <= 5
        # Old and new entries both answer (old ones via shard rescans).
        assert cache.get(_key("step0")) == _entry(0.0)
        assert cache.get(_key("step39")) == _entry(0.39)

    def test_unevicted_shards_answer_misses_without_rescanning(self, tmp_path):
        cache = PersistentEvalCache(tmp_path, fingerprint=FP,
                                    max_index_entries=100)
        cache.put(_key("present"), _entry(0.5))
        assert cache.get(_key("absent")) is None
        assert cache.rescans == 0  # no eviction ever happened: miss is final

    def test_rescan_finds_the_last_write_and_tolerates_garbage(self, tmp_path):
        cache = PersistentEvalCache(tmp_path, fingerprint=FP, n_shards=1,
                                    max_index_entries=2)
        cache.put(_key("target"), _entry(0.1))
        # Supersede on disk (duplicate append) and interleave torn lines.
        shard = cache._shard_path(0)
        with shard.open("a", encoding="utf-8") as handle:
            handle.write("{\"k\": \"gar\n")
            handle.write(json.dumps(
                {"k": key_token(_key("target")), "e": _entry(0.8)}) + "\n")
        # Evict "target" from the index by touching other keys.
        cache.put(_key("filler1"), _entry(0.2))
        cache.put(_key("filler2"), _entry(0.3))
        cache.put(_key("filler3"), _entry(0.4))
        assert cache.get(_key("target")) == _entry(0.8)

    def test_compact_respects_the_bound_afterwards(self, tmp_path):
        cache = PersistentEvalCache(tmp_path, fingerprint=FP,
                                    max_index_entries=4)
        for i in range(20):
            cache.put(_key(f"step{i}"), _entry(i / 100.0))
        summary = cache.compact()
        assert summary["entries"] == 20  # compaction saw every live entry
        assert len(cache._entries) <= 4  # the index re-trimmed afterwards
        fresh = PersistentEvalCache(tmp_path, fingerprint=FP)
        fresh.load_all()
        assert len(fresh) == 20  # nothing was lost on disk

    def test_validation_and_info(self, tmp_path):
        with pytest.raises(ValidationError):
            PersistentEvalCache(tmp_path, fingerprint=FP, max_index_entries=0)
        cache = open_eval_cache(tmp_path, FP, max_index_entries=7)
        info = cache.info()
        assert info["max_index_entries"] == 7
        assert info["index_evictions"] == 0 and info["rescans"] == 0

    def test_evaluator_cache_size_bounds_the_disk_index(self, tmp_path):
        """The evaluator threads its own LRU bound down to the disk index."""
        import numpy as np

        from repro.core.evaluation import PipelineEvaluator
        from repro.models.linear import LogisticRegression

        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 4))
        y = (X[:, 0] > 0).astype(int)
        evaluator = PipelineEvaluator.from_dataset(
            X, y, LogisticRegression(max_iter=25), random_state=0,
            cache_dir=tmp_path, cache_size=3,
        )
        assert evaluator.disk_cache.max_index_entries == 3
        unbounded = PipelineEvaluator.from_dataset(
            X, y, LogisticRegression(max_iter=25), random_state=0,
            cache_dir=tmp_path,
        )
        assert unbounded.disk_cache.max_index_entries is None

    def test_unknown_keys_never_pay_a_rescan_even_after_evictions(self, tmp_path):
        """The per-shard membership filter keeps the common case — probing
        a pipeline that was never cached — O(1) under a bounded index."""
        cache = PersistentEvalCache(tmp_path, fingerprint=FP, n_shards=2,
                                    max_index_entries=3)
        for i in range(30):
            cache.put(_key(f"step{i}"), _entry(i / 100.0))
        assert cache.index_evictions > 0
        before = cache.rescans
        for i in range(50):
            assert cache.get(_key(f"never-seen-{i}")) is None
        assert cache.rescans == before  # authoritative misses, no file reads
        # Evicted-but-real keys still resolve (via a rescan).
        assert cache.get(_key("step0")) == _entry(0.0)
        assert cache.rescans > before
