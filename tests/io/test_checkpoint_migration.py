"""Session-checkpoint format migration: old documents load, newer refuse.

Version history (see ``repro.io.serialization``): v0 documents predate
the ``format_version`` stamp and the ``driver``/``loop`` sections; v1
documents predate the context's telemetry fields.  Both must load
through the migration shim and resume to the identical result a current
checkpoint produces; documents from a *future* format must be refused
with actionable guidance, never silently misread.
"""

import json

import pytest

from repro.core.problem import AutoFPProblem
from repro.datasets.synthetic import distort_features, make_classification
from repro.exceptions import ValidationError
from repro.io.serialization import (
    SESSION_CHECKPOINT_KIND,
    SESSION_CHECKPOINT_VERSION,
    load_session_checkpoint,
    save_session_checkpoint,
)
from repro.search import SearchSession, make_search_algorithm


def _problem():
    X, y = make_classification(n_samples=120, n_features=6, n_classes=2,
                               class_sep=2.0, random_state=3)
    X = distort_features(X, random_state=3)
    return AutoFPProblem.from_arrays(X, y, "lr", random_state=0)


def _trials(result):
    return [(t.pipeline.spec(), round(t.fidelity, 6), t.accuracy, t.iteration)
            for t in result.trials]


class TestDocumentMigration:
    def _minimal(self, **overrides):
        document = {"kind": SESSION_CHECKPOINT_KIND,
                    "context": {"backend": "serial"}}
        document.update(overrides)
        return document

    def test_v0_document_gains_every_later_section(self, tmp_path):
        path = tmp_path / "v0.checkpoint"
        document = self._minimal()  # no format_version at all
        path.write_text(json.dumps(document), encoding="utf-8")
        loaded = load_session_checkpoint(path)
        assert loaded["format_version"] == SESSION_CHECKPOINT_VERSION
        assert loaded["driver"] == "sync"
        assert loaded["loop"] == {}
        assert loaded["context"]["telemetry_mode"] == "off"
        assert loaded["context"]["telemetry_dir"] is None

    def test_v1_document_gains_telemetry_fields_only(self, tmp_path):
        path = tmp_path / "v1.checkpoint"
        document = self._minimal(format_version=1, driver="async",
                                 loop={"queued": []})
        path.write_text(json.dumps(document), encoding="utf-8")
        loaded = load_session_checkpoint(path)
        assert loaded["format_version"] == SESSION_CHECKPOINT_VERSION
        assert loaded["driver"] == "async"  # v0 migration did not run
        assert loaded["loop"] == {"queued": []}
        assert loaded["context"]["telemetry_mode"] == "off"

    def test_migration_preserves_explicit_values(self, tmp_path):
        path = tmp_path / "explicit.checkpoint"
        document = self._minimal(format_version=1)
        document["context"] = {"telemetry_mode": "counters",
                               "telemetry_dir": "/tmp/t"}
        path.write_text(json.dumps(document), encoding="utf-8")
        loaded = load_session_checkpoint(path)
        assert loaded["context"]["telemetry_mode"] == "counters"
        assert loaded["context"]["telemetry_dir"] == "/tmp/t"

    def test_future_version_is_refused_with_guidance(self, tmp_path):
        path = tmp_path / "future.checkpoint"
        document = self._minimal(format_version=SESSION_CHECKPOINT_VERSION + 1)
        path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(ValidationError, match="newer release"):
            load_session_checkpoint(path)

    def test_save_stamps_the_current_version(self, tmp_path):
        path = save_session_checkpoint({"context": {}},
                                       tmp_path / "fresh.checkpoint")
        raw = json.loads(path.read_text(encoding="utf-8"))
        assert raw["format_version"] == SESSION_CHECKPOINT_VERSION
        assert raw["kind"] == SESSION_CHECKPOINT_KIND


class TestEndToEndResumeFromOlderFormats:
    """A real checkpoint, downgraded on disk, still resumes bit-for-bit."""

    def _interrupted_checkpoint(self, tmp_path):
        path = tmp_path / "run.checkpoint"
        session = SearchSession(
            _problem(), make_search_algorithm("tpe", random_state=0),
            on_trial=lambda s, r: s.stop() if len(s.result) == 4 else None,
        )
        session.run(max_trials=10)
        session.checkpoint(path)
        reference = SearchSession(
            _problem(), make_search_algorithm("tpe", random_state=0)
        ).run(max_trials=10)
        return path, reference

    def _downgrade(self, path, version):
        document = json.loads(path.read_text(encoding="utf-8"))
        document["format_version"] = version
        if version < 2:
            document["context"].pop("telemetry_mode", None)
            document["context"].pop("telemetry_dir", None)
        if version < 1:
            document.pop("format_version")
            document.pop("driver", None)
            document.pop("loop", None)
        path.write_text(json.dumps(document), encoding="utf-8")

    @pytest.mark.parametrize("version", [0, 1])
    def test_downgraded_checkpoint_finishes_identically(self, tmp_path,
                                                        version):
        path, reference = self._interrupted_checkpoint(tmp_path)
        self._downgrade(path, version)
        resumed = SearchSession.resume(path, problem=_problem())
        assert len(resumed.result) == 4
        assert _trials(resumed.run()) == _trials(reference)
