"""Serve under faults: a killed tenant finishes, co-tenants stay whole.

The manager owns one shared process engine; the server-side chaos plan
(``base_context.chaos``) genuinely kills a pool worker (``os._exit``)
mid-search.  Crash recovery must finish the killed tenant's session
with results identical to a clean run, serve a co-tenant untouched
while the server reports ``degraded``, and record the crash details in
``/healthz`` (see ``test_manager.py`` for the clean-path suite).
"""

import time

import pytest

from repro.core.context import ExecutionContext
from repro.serve import SessionManager
from repro.telemetry.metrics import get_registry

#: the killed tenant searches with pbt: its population dispatches a whole
#: batch to the shared process pool, so chaos index 2 is always evaluated
#: by a real worker process (single-task rs batches run inline instead)
KILLED_SPEC = {"dataset": "blood", "algorithm": "pbt", "max_trials": 8,
               "seed": 3, "scale": 0.5, "tenant": "alpha"}
COTENANT_SPEC = {"dataset": "blood", "max_trials": 4, "seed": 4,
                 "scale": 0.5, "tenant": "beta"}


def _wait_for(condition, *, timeout=120.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {message}")


def _wait_settled(manager, session_id, *, timeout=120.0):
    _wait_for(
        lambda: manager.status(session_id)["status"]
        not in ("queued", "running"),
        timeout=timeout, message=f"{session_id} to settle",
    )
    return manager.status(session_id)


@pytest.fixture(autouse=True)
def _reset_registry():
    get_registry().reset()
    yield
    get_registry().reset()


def _make_manager(tmp_path, *, chaos=None):
    return SessionManager(
        state_dir=tmp_path / "state",
        max_sessions=2,
        base_context=ExecutionContext(backend="process", n_jobs=2,
                                      chaos=chaos),
    )


def _run_clean_reference(tmp_path):
    manager = _make_manager(tmp_path)
    try:
        status = _wait_settled(manager, manager.submit(dict(KILLED_SPEC)))
        assert status["status"] == "done"
        health = manager.healthz()
        assert health["status"] == "ok"
        assert "last_crash" not in health
        return status["best_accuracy"]
    finally:
        manager.shutdown()


@pytest.mark.slow
class TestCrashedTenantIsolation:
    def test_killed_tenant_finishes_and_cotenant_is_untouched(self, tmp_path):
        reference_best = _run_clean_reference(tmp_path / "clean")

        manager = _make_manager(tmp_path / "chaos", chaos="crash@2")
        try:
            # Dispatch index 2 lands in alpha's first pbt batch: its pool
            # worker is genuinely killed (os._exit) mid-evaluation.
            killed = _wait_settled(manager,
                                   manager.submit(dict(KILLED_SPEC)))
            assert killed["status"] == "done", killed
            assert killed["trials"] == KILLED_SPEC["max_trials"]
            # Non-sticky faults fire once: the recovered run converges to
            # the clean run's results bit-for-bit.
            assert killed["best_accuracy"] == reference_best

            health = manager.healthz()
            assert health["status"] == "degraded"
            assert health["last_crash"]["kind"] == "worker_crash"
            assert health["last_crash"]["time"] > 0
            assert get_registry().counter("engine.worker_crashes").value == 1

            # Degraded means "a crash was recovered", not "stop serving":
            # a co-tenant submitted afterwards runs to completion on the
            # same rebuilt shared engine, untouched by the spent plan.
            cotenant = _wait_settled(manager,
                                     manager.submit(dict(COTENANT_SPEC)))
            assert cotenant["status"] == "done", cotenant
            assert cotenant["trials"] == COTENANT_SPEC["max_trials"]
            assert all(trial.failure_kind is None for trial in
                       manager._sessions[cotenant["session_id"]]
                       .session.result.trials)

            health = manager.healthz()
            assert health["status"] == "degraded"  # sticky by design
            assert health["sessions"].get("done") == 2
        finally:
            manager.shutdown()

    def test_inline_crashes_degrade_health_too(self, tmp_path):
        # rs dispatches single-task batches, which the process backend
        # runs inline through the guarded envelope — the crash is still
        # recovered and still surfaces in /healthz.
        manager = _make_manager(tmp_path, chaos="crash@0")
        try:
            status = _wait_settled(manager,
                                   manager.submit(dict(COTENANT_SPEC)))
            assert status["status"] == "done"
            health = manager.healthz()
            assert health["status"] == "degraded"
            assert health["last_crash"]["kind"] == "worker_crash"
        finally:
            manager.shutdown()
        assert manager.healthz()["status"] == "shutdown"
