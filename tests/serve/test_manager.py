"""SessionManager: admission, lifecycle, durability, observability.

Everything here drives the manager directly (no sockets); the HTTP layer
is a thin translation tested separately in ``test_http.py``.  The core
acceptance test is restart-resume: kill a manager mid-search, build a new
one on the same state dir, and the resumed session's accuracies must be
bit-for-bit identical to a run that was never interrupted.
"""

import time

import pytest

from repro.core.context import ExecutionContext
from repro.exceptions import ValidationError
from repro.serve import AdmissionError, SessionManager, UnknownSessionError
from repro.serve.manager import normalize_spec
from repro.telemetry.metrics import get_registry

#: tiny-but-real search spec every test submits (blood is the smallest
#: registry dataset; scale 0.5 keeps one trial well under a second)
SPEC = {"dataset": "blood", "max_trials": 4, "seed": 3, "scale": 0.5}


def _wait_for(condition, *, timeout=60.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {message}")


def _wait_settled(manager, session_id, *, timeout=60.0):
    _wait_for(
        lambda: manager.status(session_id)["status"]
        not in ("queued", "running"),
        timeout=timeout, message=f"{session_id} to settle",
    )
    return manager.status(session_id)


@pytest.fixture
def manager(tmp_path):
    built = SessionManager(state_dir=tmp_path / "state", max_sessions=2)
    yield built
    built.shutdown()


@pytest.fixture(autouse=True)
def _reset_registry():
    get_registry().reset()
    yield
    get_registry().reset()


class TestSpecValidation:
    def test_defaults_filled_in(self):
        spec = normalize_spec({"dataset": "blood"})
        assert spec["model"] == "lr"
        assert spec["algorithm"] == "rs"
        assert spec["tenant"] == "default"
        assert spec["max_trials"] == 20

    def test_unknown_fields_refused(self):
        with pytest.raises(ValidationError, match="unknown submission"):
            normalize_spec({"dataset": "blood", "dataste": "typo"})

    def test_dataset_required(self):
        with pytest.raises(ValidationError, match="dataset"):
            normalize_spec({})

    def test_execution_resources_not_submittable(self):
        with pytest.raises(ValidationError, match="owned by"):
            normalize_spec({"dataset": "blood",
                            "context": {"n_jobs": 8, "backend": "process"}})

    def test_submit_rejects_unknown_dataset_eagerly(self, manager):
        with pytest.raises(Exception, match="nope"):
            manager.submit({"dataset": "nope"})
        assert manager.sessions() == []


class TestLifecycle:
    def test_submit_runs_to_done(self, manager):
        session_id = manager.submit(SPEC)
        final = _wait_settled(manager, session_id)
        assert final["status"] == "done"
        assert final["trials"] == SPEC["max_trials"]
        assert final["result"]["best_accuracy"] is not None
        assert len(final["result"]["accuracies"]) == SPEC["max_trials"]

    def test_trial_events_stream_in_order(self, manager):
        session_id = manager.submit(SPEC)
        _wait_settled(manager, session_id)
        chunk = manager.events(session_id, after=0)
        kinds = [event["kind"] for event in chunk["events"]]
        assert kinds.count("trial") == SPEC["max_trials"]
        assert kinds[-1] == "status"
        assert [event["seq"] for event in chunk["events"]] \
            == list(range(len(kinds)))
        # Long-poll continuation: nothing new after the end.
        again = manager.events(session_id, after=chunk["next"], timeout=0.1)
        assert again["events"] == []
        assert again["status"] == "done"

    def test_unknown_session_raises(self, manager):
        with pytest.raises(UnknownSessionError):
            manager.status("no-such-session")
        with pytest.raises(UnknownSessionError):
            manager.events("no-such-session")

    def test_queued_session_waits_for_a_slot(self, tmp_path):
        manager = SessionManager(state_dir=tmp_path / "state", max_sessions=1)
        try:
            first = manager.submit({**SPEC, "max_trials": 8})
            second = manager.submit(SPEC)
            statuses = {view["session_id"]: view["status"]
                        for view in manager.sessions()}
            assert statuses[second] == "queued"
            final = _wait_settled(manager, second)
            assert final["status"] == "done"
            assert _wait_settled(manager, first)["status"] == "done"
        finally:
            manager.shutdown()

    def test_pause_before_start_and_resume(self, tmp_path):
        manager = SessionManager(state_dir=tmp_path / "state", max_sessions=1)
        try:
            blocker = manager.submit({**SPEC, "max_trials": 8})
            queued = manager.submit(SPEC)
            view = manager.pause(queued)
            assert view["status"] == "paused"
            # A paused session never grabs the slot the blocker frees.
            _wait_settled(manager, blocker)
            assert manager.status(queued)["status"] == "paused"
            manager.resume(queued)
            assert _wait_settled(manager, queued)["status"] == "done"
        finally:
            manager.shutdown()

    def test_cancel_refunds_the_tenant_quota(self, tmp_path):
        manager = SessionManager(state_dir=tmp_path / "state", max_sessions=1,
                                 tenant_quota=10)
        try:
            blocker = manager.submit({**SPEC, "max_trials": 6,
                                      "tenant": "acme"})
            queued = manager.submit({**SPEC, "tenant": "acme"})
            # 6 + 4 consumed: a further submission for acme is refused ...
            with pytest.raises(AdmissionError, match="acme"):
                manager.submit({**SPEC, "tenant": "acme"})
            # ... and other tenants are unaffected.
            other = manager.submit({**SPEC, "tenant": "other"})
            # Cancelling the queued session refunds its 4 trials.
            assert manager.cancel(queued)["status"] == "cancelled"
            retry = manager.submit({**SPEC, "tenant": "acme"})
            for session_id in (blocker, other, retry):
                assert _wait_settled(manager, session_id)["status"] == "done"
        finally:
            manager.shutdown()

    def test_failed_session_reports_not_raises(self, manager):
        # vehicle-lr would be fine; an impossible model makes the worker
        # fail after admission (model names are resolved at build time).
        session_id = manager.submit({**SPEC, "model": "no-such-model"})
        final = _wait_settled(manager, session_id)
        assert final["status"] == "failed"
        assert "no-such-model" in final["error"]
        assert manager.healthz()["sessions"]["failed"] == 1


class TestDurability:
    def test_restart_resumes_bit_for_bit(self, tmp_path):
        spec = {**SPEC, "max_trials": 8}
        # Reference: the same submission, never interrupted.
        reference = SessionManager(state_dir=tmp_path / "ref",
                                   checkpoint_every=2)
        try:
            ref_id = reference.submit(spec)
            expected = _wait_settled(reference, ref_id)["result"]["accuracies"]
        finally:
            reference.shutdown()

        # A chaos delay pins the fourth evaluation for a few seconds so the
        # kill deterministically lands mid-search (cached repeat trials can
        # otherwise finish the whole run before shutdown takes effect).
        # Delays change timing only, never results.
        first = SessionManager(
            state_dir=tmp_path / "state", checkpoint_every=2,
            base_context=ExecutionContext(chaos="delay@3:2.5"),
        )
        session_id = first.submit(spec)
        _wait_for(lambda: (first.status(session_id)["trials"] or 0) >= 3,
                  message="a few trials before the kill")
        first.shutdown()
        interrupted = first.status(session_id)
        assert interrupted["status"] == "interrupted"
        assert interrupted["trials"] < spec["max_trials"]

        second = SessionManager(state_dir=tmp_path / "state",
                                checkpoint_every=2)
        try:
            assert session_id in [view["session_id"]
                                  for view in second.sessions()]
            final = _wait_settled(second, session_id)
            assert final["status"] == "done"
            assert final["result"]["accuracies"] == expected
        finally:
            second.shutdown()

    def test_terminal_sessions_recover_as_terminal(self, tmp_path):
        first = SessionManager(state_dir=tmp_path / "state")
        session_id = first.submit(SPEC)
        _wait_settled(first, session_id)
        first.shutdown()

        second = SessionManager(state_dir=tmp_path / "state")
        try:
            view = second.status(session_id)
            assert view["status"] == "done"
            assert view["result"]["best_accuracy"] is not None
        finally:
            second.shutdown()

    def test_recovered_tenant_usage_still_counts(self, tmp_path):
        first = SessionManager(state_dir=tmp_path / "state", max_sessions=1,
                               tenant_quota=10)
        blocker = first.submit({**SPEC, "max_trials": 6, "tenant": "acme"})
        queued = first.submit({**SPEC, "tenant": "acme"})
        first.shutdown()

        second = SessionManager(state_dir=tmp_path / "state", max_sessions=1,
                                tenant_quota=10)
        try:
            # The recovered in-flight sessions re-consume acme's quota.
            with pytest.raises(AdmissionError):
                second.submit({**SPEC, "tenant": "acme"})
            for session_id in (blocker, queued):
                assert _wait_settled(second, session_id)["status"] == "done"
        finally:
            second.shutdown()


class TestObservability:
    def test_healthz_counts_sessions_by_state(self, manager):
        assert manager.healthz()["sessions"] == {}
        session_id = manager.submit(SPEC)
        _wait_settled(manager, session_id)
        health = manager.healthz()
        assert health["status"] == "ok"
        assert health["sessions"] == {"done": 1}
        assert health["max_sessions"] == 2

    def test_metrics_carry_per_session_heartbeats(self, manager):
        first = manager.submit(SPEC)
        second = manager.submit({**SPEC, "seed": 5})
        for session_id in (first, second):
            _wait_settled(manager, session_id)
        metrics = manager.metrics()
        assert set(metrics["sessions"]) == {first, second}
        for session_id in (first, second):
            heartbeat = metrics["sessions"][session_id]["heartbeat"]
            assert heartbeat["session_id"] == session_id
            assert heartbeat["trials"] == SPEC["max_trials"]
        assert "registry" in metrics

    def test_concurrent_sessions_keep_separate_results(self, manager):
        # Two concurrent sessions over one shared manager: distinct
        # heartbeats above, and per-session determinism here.
        solo = SessionManager(state_dir=None, max_sessions=1)
        try:
            solo_id = solo.submit(SPEC)
            expected = _wait_settled(solo, solo_id)["result"]["accuracies"]
        finally:
            solo.shutdown()

        first = manager.submit(SPEC)
        second = manager.submit({**SPEC, "seed": 9})
        accuracies = {
            session_id: _wait_settled(manager, session_id)["result"]
            ["accuracies"]
            for session_id in (first, second)
        }
        assert accuracies[first] == expected
        assert accuracies[second] != expected  # different seed, own stream


class TestFairScheduling:
    """Weighted fair queueing replaces FIFO for free session slots."""

    @staticmethod
    def _record(tenant, max_trials=4):
        from types import SimpleNamespace
        return SimpleNamespace(spec={"tenant": tenant,
                                     "max_trials": max_trials})

    @classmethod
    def _drain(cls, scheduler, queued):
        queued = list(queued)
        order = []
        while queued:
            choice = scheduler.take(queued)
            queued.remove(choice)
            order.append(choice.spec["tenant"])
        return order

    def test_weights_must_be_positive(self):
        from repro.serve.manager import _FairScheduler
        with pytest.raises(ValidationError, match="> 0"):
            _FairScheduler({"acme": 0})
        with pytest.raises(ValidationError, match="> 0"):
            _FairScheduler({"acme": -1.5})

    def test_flooding_tenant_cannot_starve_a_light_one(self):
        from repro.serve.manager import _FairScheduler
        scheduler = _FairScheduler()
        queued = [self._record("heavy") for _ in range(10)]
        queued.append(self._record("light"))
        order = self._drain(scheduler, queued)
        # equal weights: the light tenant's single session starts after
        # at most one of the flooder's, not behind all ten
        assert "light" in order[:2]

    def test_weights_scale_the_share(self):
        from repro.serve.manager import _FairScheduler
        scheduler = _FairScheduler({"gold": 2.0, "bronze": 1.0})
        queued = ([self._record("gold", 1) for _ in range(12)]
                  + [self._record("bronze", 1) for _ in range(12)])
        order = self._drain(scheduler, queued)
        # over any early window, gold gets ~2x the starts
        window = order[:9]
        assert window.count("gold") == 6
        assert window.count("bronze") == 3

    def test_schedule_is_deterministic(self):
        from repro.serve.manager import _FairScheduler
        queued = [self._record(tenant, cost)
                  for tenant, cost in (("a", 4), ("b", 2), ("a", 1),
                                       ("c", 8), ("b", 3), ("c", 1))]
        first = self._drain(_FairScheduler({"b": 1.5}), list(queued))
        second = self._drain(_FairScheduler({"b": 1.5}), list(queued))
        assert first == second

    def test_per_tenant_queue_stays_fifo(self):
        from repro.serve.manager import _FairScheduler
        scheduler = _FairScheduler()
        cheap_later = self._record("acme", 1)
        pricey_first = self._record("acme", 9)
        # only the head of a tenant's queue is eligible: the cheap later
        # submission must not jump its own tenant's earlier one
        assert scheduler.take([pricey_first, cheap_later]) is pricey_first

    def test_manager_weighted_no_starvation(self, tmp_path):
        manager = SessionManager(state_dir=tmp_path / "state",
                                 max_sessions=1,
                                 tenant_weights={"light": 2.0})
        try:
            assert manager.tenant_weights == {"light": 2.0}
            blocker = manager.submit({**SPEC, "max_trials": 6,
                                      "tenant": "heavy"})
            flood = [manager.submit({**SPEC, "tenant": "heavy"})
                     for _ in range(3)]
            light = manager.submit({**SPEC, "tenant": "light"})
            assert _wait_settled(manager, light)["status"] == "done"
            # the light session finished while the flood still waits:
            # under FIFO it would have been last
            statuses = [manager.status(session_id)["status"]
                        for session_id in flood]
            assert statuses.count("queued") >= 2
            for session_id in [blocker, *flood]:
                assert _wait_settled(manager, session_id)["status"] == "done"
        finally:
            manager.shutdown()


class TestEngineView:
    def test_engineless_manager_reports_serial(self, manager):
        view = manager.engine_view()
        assert view["backend"] == "serial"
        assert view["n_workers"] == 1
        assert view["inflight"] == 0
        assert manager.healthz()["engine"] == view
        assert manager.metrics()["engine"] == view

    def test_pooled_backend_reports_capacity(self, tmp_path):
        manager = SessionManager(
            state_dir=tmp_path / "state",
            base_context=ExecutionContext(backend="thread", n_jobs=2),
        )
        try:
            view = manager.engine_view()
            assert view["backend"] == "thread"
            assert view["n_workers"] == 2
            assert "workers" not in view  # no membership notion
        finally:
            manager.shutdown()

    def test_remote_backend_reports_live_membership(self, tmp_path):
        manager = SessionManager(
            state_dir=tmp_path / "state",
            base_context=ExecutionContext(backend="remote"),
        )
        try:
            view = manager.engine_view()
            assert view["backend"] == "remote"
            # a fleet nobody joined yet: operators see 0 live workers
            # well before throughput would reveal it
            assert view["workers"] == 0
            assert view["n_workers"] == 1  # dispatch-heuristic floor
            assert manager.healthz()["engine"]["workers"] == 0
        finally:
            manager.shutdown()
