"""The serve HTTP API end to end: real server, ephemeral port, real client.

Each fixture boots a :class:`ThreadingHTTPServer` on port 0 and drives it
through :class:`ServeClient` — the same stack ``repro serve`` /
``repro submit`` run.  The acceptance test kills the whole server
mid-search and asserts a restarted server resumes the session to a result
bit-for-bit identical to an uninterrupted run.
"""

import threading
import time

import pytest

from repro.exceptions import ReproError
from repro.serve import ServeAPIError, ServeClient, SessionManager, build_server

SPEC = {"dataset": "blood", "max_trials": 4, "seed": 3, "scale": 0.5}


class _Server:
    """One manager + HTTP server + client, torn down as a unit."""

    def __init__(self, state_dir, **manager_options):
        self.manager = SessionManager(state_dir=state_dir, **manager_options)
        self.server = build_server(self.manager)
        self.thread = threading.Thread(target=self.server.serve_forever,
                                       daemon=True)
        self.thread.start()
        host, port = self.server.server_address[:2]
        self.client = ServeClient(f"http://{host}:{port}")

    def stop(self):
        self.server.shutdown()
        self.server.server_close()
        self.manager.shutdown()
        self.thread.join(timeout=10)


@pytest.fixture
def served(tmp_path):
    server = _Server(tmp_path / "state", max_sessions=2, checkpoint_every=2)
    yield server
    server.stop()


class TestEndpoints:
    def test_healthz_and_metrics(self, served):
        health = served.client.healthz()
        assert health["status"] == "ok"
        assert health["max_sessions"] == 2
        assert "registry" in served.client.metrics()

    def test_submit_status_events_roundtrip(self, served):
        view = served.client.submit(SPEC)
        session_id = view["session_id"]
        assert view["status"] in ("queued", "running")

        final = served.client.wait(session_id)
        assert final["status"] == "done"
        assert final["trials"] == SPEC["max_trials"]

        chunk = served.client.events(session_id)
        kinds = [event["kind"] for event in chunk["events"]]
        assert kinds.count("trial") == SPEC["max_trials"]
        assert served.client.sessions()[0]["session_id"] == session_id

    def test_long_poll_blocks_until_events_arrive(self, served):
        session_id = served.client.submit({**SPEC, "max_trials": 6})[
            "session_id"]
        seen = 0
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            chunk = served.client.events(session_id, after=seen, timeout=5.0)
            seen = chunk["next"]
            if chunk["status"] not in ("queued", "running"):
                break
        assert seen >= 6

    def test_checkpoint_pause_resume_cycle(self, served):
        session_id = served.client.submit({**SPEC, "max_trials": 6})[
            "session_id"]
        served.client.wait(session_id)
        checkpoint = served.client.checkpoint(session_id)
        assert checkpoint["checkpoint"].endswith("checkpoint.json")
        # Terminal sessions cannot pause; the error carries the state.
        with pytest.raises(ServeAPIError) as info:
            served.client.pause(session_id)
        assert info.value.status == 400
        assert "done" in info.value.message

    def test_error_statuses(self, served):
        with pytest.raises(ServeAPIError) as not_found:
            served.client.status("no-such-session")
        assert not_found.value.status == 404

        with pytest.raises(ServeAPIError) as bad_request:
            served.client.submit({"dataset": "blood", "max_trials": 0})
        assert bad_request.value.status == 400

        with pytest.raises(ServeAPIError) as bad_route:
            served.client._call("GET", "/no/such/route")
        assert bad_route.value.status == 404

    def test_admission_denied_maps_to_429(self, tmp_path):
        server = _Server(tmp_path / "state", tenant_quota=5)
        try:
            server.client.submit({**SPEC, "tenant": "small"})
            with pytest.raises(ServeAPIError) as info:
                server.client.submit({**SPEC, "tenant": "small"})
            assert info.value.status == 429
            assert "quota" in info.value.message
        finally:
            server.stop()

    def test_unreachable_server_raises_repro_error(self):
        client = ServeClient("http://127.0.0.1:9", timeout=1.0)
        with pytest.raises(ReproError, match="cannot reach"):
            client.healthz()


class TestServerRestart:
    def test_kill_and_restart_resumes_bit_for_bit(self, tmp_path):
        spec = {**SPEC, "max_trials": 8}
        reference = _Server(tmp_path / "ref", checkpoint_every=2)
        try:
            ref_id = reference.client.submit(spec)["session_id"]
            expected = reference.client.wait(ref_id)["result"]["accuracies"]
        finally:
            reference.stop()

        first = _Server(tmp_path / "state", checkpoint_every=2)
        session_id = first.client.submit(spec)["session_id"]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if (first.client.status(session_id)["trials"] or 0) >= 3:
                break
            time.sleep(0.05)
        first.stop()  # kill the server mid-search

        second = _Server(tmp_path / "state", checkpoint_every=2)
        try:
            assert second.client.status(session_id)["status"] in (
                "queued", "running", "done")
            final = second.client.wait(session_id)
            assert final["status"] == "done"
            assert final["trials"] == spec["max_trials"]
            assert final["result"]["accuracies"] == expected
        finally:
            second.stop()
