"""Engine-aware budget semantics: no over-admission, bounded time overshoot.

PR 1 left two budget gaps: a batch of k proposals was admitted as long as
the budget was not yet exhausted (so fractional-fidelity batches could
overshoot ``TrialBudget.max_trials``), and with an engine attached a time
budget was only checked at the batch boundary (overshoot of up to one whole
batch).  These tests pin the fixed semantics: admission is clipped to
``remaining()``, and wall-clock budgets cut batches short between dispatch
chunks of ``n_workers`` tasks.
"""

import pytest

from repro.core import (
    AutoFPProblem,
    CompositeBudget,
    Pipeline,
    TimeBudget,
    TrialBudget,
)
from repro.core.search_space import SearchSpace
from repro.engine import ExecutionEngine
from repro.models.linear import LogisticRegression
from repro.search.base import SearchAlgorithm
from repro.search.traditional import RandomSearch

#: ten distinct single/double-step pipelines (distinct cache keys)
TEN_PIPELINES = [
    Pipeline.from_names(names) for names in (
        ["standard_scaler"], ["minmax_scaler"], ["maxabs_scaler"],
        ["normalizer"], ["binarizer"], ["quantile_transformer"],
        ["power_transformer"], ["standard_scaler", "minmax_scaler"],
        ["minmax_scaler", "normalizer"], ["maxabs_scaler", "binarizer"],
    )
]


class FixedBatch(SearchAlgorithm):
    """Proposes the same fixed batch every iteration (test-only)."""

    name = "fixed_batch"

    def __init__(self, proposals):
        super().__init__(random_state=0)
        self._proposals = list(proposals)

    def _propose(self, space, rng, trials):
        return list(self._proposals)


class TickingModel(LogisticRegression):
    """LogisticRegression whose every fit advances a fake wall clock.

    The clock lives on the class so ``clone()`` (a deepcopy) still ticks
    the shared value.
    """

    ticks = [0.0]

    def fit(self, X, y):
        type(self).ticks[0] += 1.0
        return super().fit(X, y)


def _problem(distorted_data, *, model=None, engine=None):
    X, y = distorted_data
    problem = AutoFPProblem.from_arrays(
        X, y, model if model is not None else LogisticRegression(max_iter=30),
        space=SearchSpace(max_length=3), random_state=0, name="clip/lr",
    )
    if engine is not None:
        problem.evaluator.set_engine(engine)
    return problem


class TestTrialBudgetClipping:
    @pytest.mark.parametrize("engine", [None, "serial", "thread"])
    def test_batched_search_never_exceeds_max_trials(self, distorted_data,
                                                     engine):
        problem = _problem(
            distorted_data,
            engine=None if engine is None
            else ExecutionEngine(engine,
                                 n_workers=None if engine == "serial" else 2),
        )
        budget = TrialBudget(5)
        result = RandomSearch(batch_size=8).search(problem, budget)
        assert len(result) == 5
        assert budget.used == 5.0

    def test_batch_larger_than_remaining_is_clipped(self, distorted_data):
        problem = _problem(distorted_data,
                           engine=ExecutionEngine("thread", n_workers=2))
        budget = TrialBudget(3)
        result = FixedBatch(TEN_PIPELINES).search(problem, budget)
        assert len(result) == 3
        assert budget.used == 3.0

    def test_fractional_fidelity_never_overshoots(self, distorted_data):
        proposals = [(pipeline, 0.4) for pipeline in TEN_PIPELINES[:3]]
        problem = _problem(distorted_data)
        budget = TrialBudget(1)
        result = FixedBatch(proposals).search(problem, budget)
        # 0.4 + 0.4 admitted, 0.4 clipped; the leftover 0.2 is spent on the
        # next iteration's first proposal instead of overshooting.
        assert budget.used == pytest.approx(1.0)
        assert budget.used <= budget.max_trials
        assert len(result) == 3

    def test_composite_fractional_leftover_charges_trial_units(self,
                                                               distorted_data):
        """Regression: the fractional-leftover charge once used composite
        remaining(), which can be seconds — undercharging the trial budget
        and admitting evaluations beyond max_trials."""
        proposals = [(pipeline, 0.4) for pipeline in TEN_PIPELINES[:3]]
        problem = _problem(distorted_data)
        trials = TrialBudget(1)
        now = [0.0]
        # Time remaining (0.1 s) is deliberately smaller than the trial
        # remainder (0.2): the leftover charge must still be 0.2 trials.
        budget = CompositeBudget(trials,
                                 TimeBudget(0.1, clock=lambda: now[0]))
        result = FixedBatch(proposals).search(problem, budget)
        assert trials.used == pytest.approx(1.0)
        assert trials.used <= trials.max_trials
        assert len(result) == 3  # the seconds-as-trials bug admitted a 4th

    def test_initial_batch_is_clipped_too(self, distorted_data):
        class WideInit(FixedBatch):
            def _initial_pipelines(self, space, rng):
                return TEN_PIPELINES

        problem = _problem(distorted_data)
        budget = TrialBudget(4)
        result = WideInit(TEN_PIPELINES).search(problem, budget)
        assert len(result) == 4
        assert budget.used == 4.0


class TestTimeBudgetChunking:
    def _ticking_problem(self, distorted_data, engine=None):
        TickingModel.ticks[0] = 0.0
        return _problem(distorted_data, model=TickingModel(max_iter=30),
                        engine=engine)

    def test_serial_path_stops_between_trials(self, distorted_data):
        problem = self._ticking_problem(distorted_data)
        budget = TimeBudget(3.5, clock=lambda: TickingModel.ticks[0])
        FixedBatch(TEN_PIPELINES).search(problem, budget)
        # Trials tick 1s each: the 4th ends at t=4 > 3.5 and the batch stops
        # there — one in-flight task past the boundary, never the whole batch.
        assert problem.evaluator.n_evaluations == 4

    def test_engine_batches_stop_at_chunk_boundaries(self, distorted_data):
        engine = ExecutionEngine("serial", n_workers=1)
        problem = self._ticking_problem(distorted_data, engine=engine)
        budget = TimeBudget(3.5, clock=lambda: TickingModel.ticks[0])
        FixedBatch(TEN_PIPELINES).search(problem, budget)
        # Chunk size == n_workers == 1: same bound as the serial path, even
        # though the whole 10-task batch was admitted at once.
        assert problem.evaluator.n_evaluations == 4

    def test_overshoot_bounded_by_one_worker_wave(self, distorted_data):
        engine = ExecutionEngine("thread", n_workers=2)
        problem = self._ticking_problem(distorted_data, engine=engine)
        budget = TimeBudget(3.5, clock=lambda: TickingModel.ticks[0])
        try:
            FixedBatch(TEN_PIPELINES).search(problem, budget)
        finally:
            engine.close()
        # Time is checked every 2-task wave: at most one wave past expiry.
        assert problem.evaluator.n_evaluations <= 6

    def test_crumb_remainder_never_buys_an_extra_trial(self, distorted_data):
        proposals = [(pipeline, 0.1) for pipeline in TEN_PIPELINES]
        problem = _problem(distorted_data)
        budget = TrialBudget(1)
        result = FixedBatch(proposals).search(problem, budget)
        # Exactly ten 0.1-fidelity trials; the one-ulp leftover does not
        # re-enter the loop for an eleventh.
        assert len(result) == 10
        assert budget.used <= budget.max_trials

    def test_count_only_budgets_dispatch_batches_whole(self, distorted_data):
        """A TrialBudget can never interrupt, so the engine must get the
        admitted batch in one call, not n_workers-sized chunks."""
        batch_sizes = []

        class RecordingEngine(ExecutionEngine):
            def run(self, evaluator, tasks):
                batch_sizes.append(len(list(tasks)))
                return super().run(evaluator, tasks)

        engine = RecordingEngine("thread", n_workers=2)
        problem = _problem(distorted_data, engine=engine)
        try:
            FixedBatch(TEN_PIPELINES).search(problem, TrialBudget(10))
        finally:
            engine.close()
        assert max(batch_sizes) == 10  # undivided despite n_workers == 2

    def test_undispatched_tasks_are_refunded(self, distorted_data):
        engine = ExecutionEngine("serial", n_workers=1)
        problem = self._ticking_problem(distorted_data, engine=engine)
        trials = TrialBudget(100)
        budget = CompositeBudget(
            trials, TimeBudget(3.5, clock=lambda: TickingModel.ticks[0])
        )
        FixedBatch(TEN_PIPELINES).search(problem, budget)
        # All 10 were admitted (and pre-charged) as one batch, but only the
        # dispatched prefix stays charged after the time budget cut it short.
        assert trials.used == problem.evaluator.n_evaluations


class TestBudgetProtocol:
    def test_trial_budget_admits_clips_to_remaining(self):
        budget = TrialBudget(2)
        assert budget.admits(2.0)
        assert not budget.admits(2.5)
        budget.consume(1.5)
        assert budget.admits(0.5)
        assert not budget.admits(0.6)
        assert not budget.interrupted()  # count budgets never interrupt

    def test_trial_budget_admits_tolerates_float_error(self):
        budget = TrialBudget(1)
        for _ in range(3):
            budget.consume(1.0 / 3.0)
        # used is 1.0 up to float error; a whole extra trial must not fit.
        assert not budget.admits(1.0 / 3.0)

    def test_float_crumb_counts_as_exhausted(self):
        """Ten 0.1-fidelity rungs leave a one-ulp remainder: that crumb
        must not keep the budget alive (it would buy a whole free trial
        through the fractional-leftover branch)."""
        budget = TrialBudget(1)
        for _ in range(10):
            budget.consume(0.1)
        assert budget.used < budget.max_trials  # the crumb is real
        assert budget.exhausted()
        assert budget.remaining() <= budget.TOLERANCE * 10

    def test_can_interrupt_capability(self):
        now = [0.0]
        trials = TrialBudget(5)
        clock = TimeBudget(1.0, clock=lambda: now[0])
        assert not trials.can_interrupt()
        assert clock.can_interrupt()
        assert CompositeBudget(trials, clock).can_interrupt()
        assert not CompositeBudget(trials, TrialBudget(9)).can_interrupt()

    def test_time_budget_interrupts_on_expiry(self):
        now = [0.0]
        budget = TimeBudget(2.0, clock=lambda: now[0])
        assert budget.admits(100.0)  # cost per task is unknowable: admit
        assert not budget.interrupted()
        now[0] = 2.5
        assert not budget.admits()
        assert budget.interrupted()

    def test_admissible_stays_in_trial_units(self):
        budget = TrialBudget(1)
        budget.consume(0.6)
        assert budget.admissible(1.0) == pytest.approx(0.4)
        now = [0.0]
        clock = TimeBudget(0.1, clock=lambda: now[0])
        assert clock.admissible(1.0) == 1.0  # no trial dimension: full charge
        # Composite: seconds must never leak into the trial-unit charge,
        # even when the time budget's remaining() is the smaller number.
        combined = CompositeBudget(budget, clock)
        assert combined.remaining() == pytest.approx(0.1)  # seconds
        assert combined.admissible(1.0) == pytest.approx(0.4)  # trials

    def test_composite_combines_both(self):
        now = [0.0]
        trials = TrialBudget(3)
        combined = CompositeBudget(trials,
                                   TimeBudget(10.0, clock=lambda: now[0]))
        assert combined.admits(3.0)
        assert not combined.admits(4.0)
        assert not combined.interrupted()
        now[0] = 11.0
        assert combined.interrupted()
        assert not combined.admits(1.0)
