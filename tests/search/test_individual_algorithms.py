"""Behavioural tests of individual search algorithms."""

import numpy as np
import pytest

from repro.core import Pipeline, SearchSpace
from repro.core.result import SearchResult, TrialRecord
from repro.search import (
    BOHB,
    ENAS,
    PBT,
    SMAC,
    TEVO_H,
    TEVO_Y,
    TPE,
    Anneal,
    Hyperband,
    RandomSearch,
    Reinforce,
    expected_improvement,
)
from repro.exceptions import ValidationError


class TestRandomSearchAndAnneal:
    def test_random_search_samples_diverse_pipelines(self, lr_problem):
        result = RandomSearch(random_state=0).search(lr_problem, max_trials=20)
        assert len({t.pipeline for t in result.trials}) > 5

    def test_anneal_parameters_validated(self):
        anneal = Anneal(initial_temperature=0.2, cooling=0.9)
        assert anneal.initial_temperature == 0.2
        assert anneal.cooling == 0.9

    def test_anneal_proposals_are_neighbours_of_current(self, lr_problem):
        """After the first trial, Anneal proposes one-edit neighbours."""
        result = Anneal(random_state=3).search(lr_problem, max_trials=12)
        lengths = [len(t.pipeline) for t in result.trials]
        # consecutive proposals differ in length by at most 1
        assert all(abs(a - b) <= 1 for a, b in zip(lengths[1:], lengths[:-1]))


class TestExpectedImprovement:
    def test_zero_std_no_improvement(self):
        ei = expected_improvement(np.array([0.5]), np.array([0.0]), best=0.6)
        assert ei[0] == pytest.approx(0.0, abs=1e-6)

    def test_higher_mean_gives_higher_ei(self):
        ei = expected_improvement(np.array([0.5, 0.9]), np.array([0.1, 0.1]), best=0.6)
        assert ei[1] > ei[0]

    def test_higher_uncertainty_gives_higher_ei_below_best(self):
        ei = expected_improvement(np.array([0.5, 0.5]), np.array([0.01, 0.3]), best=0.6)
        assert ei[1] > ei[0]


class TestSMACAndTPE:
    def test_smac_initialisation_count(self, lr_problem):
        result = SMAC(n_init=5, random_state=0).search(lr_problem, max_trials=12)
        init_trials = [t for t in result.trials if t.iteration == 0]
        assert len(init_trials) == 5

    def test_smac_surrogate_is_fitted_after_init(self, lr_problem):
        smac = SMAC(n_init=4, random_state=0)
        smac.search(lr_problem, max_trials=10)
        assert smac._surrogate is not None

    def test_tpe_falls_back_to_random_before_min_trials(self, lr_problem):
        tpe = TPE(n_init=6, random_state=0)
        result = tpe.search(lr_problem, max_trials=4)
        assert len(result) == 4  # still produced trials without a fitted model

    def test_tpe_model_ready_after_enough_trials(self, lr_problem):
        tpe = TPE(n_init=5, random_state=0)
        tpe.search(lr_problem, max_trials=15)
        assert tpe._model is not None and tpe._model.ready_


class TestEvolution:
    def test_tevo_population_bounded(self, lr_problem):
        tevo = TEVO_H(population_size=5, random_state=0)
        tevo.search(lr_problem, max_trials=20)
        assert len(tevo._population) <= 5

    def test_tevo_y_removes_oldest(self, lr_problem):
        tevo = TEVO_Y(population_size=4, random_state=0)
        tevo.search(lr_problem, max_trials=15)
        births = [member.birth for member in tevo._population]
        # The oldest survivors are the most recent births.
        assert min(births) >= 15 - 4 - 1

    def test_tevo_h_keeps_best(self, lr_problem):
        tevo = TEVO_H(population_size=4, random_state=0)
        result = tevo.search(lr_problem, max_trials=15)
        best = result.best_accuracy
        assert any(abs(m.accuracy - best) < 1e-12 for m in tevo._population)

    def test_invalid_kill_strategy_rejected(self):
        from repro.search.evolution import TournamentEvolution

        with pytest.raises(ValidationError):
            TournamentEvolution(kill_strategy="youngest")

    def test_pbt_proposes_multiple_pipelines_per_iteration(self, lr_problem):
        pbt = PBT(population_size=6, random_state=0)
        result = pbt.search(lr_problem, max_trials=18)
        # After the 6 initial trials there are iterations evaluating >1 pipeline.
        from collections import Counter

        per_iteration = Counter(t.iteration for t in result.trials if t.iteration > 0)
        assert max(per_iteration.values()) > 1

    def test_pbt_exploration_probability_validated(self):
        pbt = PBT(explore_probability=0.5)
        assert pbt.explore_probability == 0.5


class TestRLAlgorithms:
    def test_reinforce_policy_moves_toward_rewarding_lengths(self, lr_problem):
        reinforce = Reinforce(learning_rate=1.0, random_state=0)
        reinforce.search(lr_problem, max_trials=25)
        probabilities = reinforce.policy_probabilities()
        assert probabilities["length"].shape == (lr_problem.space.max_length,)
        np.testing.assert_allclose(probabilities["length"].sum(), 1.0)
        # The policy should no longer be uniform after 25 updates.
        uniform = 1.0 / lr_problem.space.max_length
        assert np.abs(probabilities["length"] - uniform).max() > 1e-3

    def test_enas_controller_emits_valid_pipelines(self, lr_problem):
        enas = ENAS(random_state=0)
        result = enas.search(lr_problem, max_trials=10)
        for trial in result.trials:
            assert 1 <= len(trial.pipeline) <= lr_problem.space.max_length

    def test_enas_baseline_tracks_reward(self, lr_problem):
        enas = ENAS(random_state=1)
        enas.search(lr_problem, max_trials=8)
        assert 0.0 <= enas._baseline <= 1.0


class TestBanditAlgorithms:
    def test_hyperband_uses_multiple_fidelities(self, lr_problem):
        result = Hyperband(eta=3.0, min_fidelity=1 / 9, random_state=0).search(
            lr_problem, max_trials=15
        )
        fidelities = {round(t.fidelity, 3) for t in result.trials}
        assert len(fidelities) >= 2

    def test_hyperband_successive_halving_shrinks_rungs(self, lr_problem):
        """Within one bracket, each promotion keeps ~1/eta of the configurations."""
        hyperband = Hyperband(eta=3.0, min_fidelity=1 / 9, random_state=0)
        rng = np.random.default_rng(0)
        hyperband._setup(lr_problem, rng)
        hyperband._start_bracket(lr_problem.space, rng)
        first_rung = hyperband._current_rung
        assert len(first_rung.pipelines) == 9
        assert first_rung.fidelity == pytest.approx(1 / 9)
        # Complete the rung with synthetic scores and advance.
        for i, pipeline in enumerate(first_rung.pipelines):
            first_rung.results[pipeline.spec()] = i / 10.0
        hyperband._advance(lr_problem.space, rng)
        second_rung = hyperband._current_rung
        assert len(second_rung.pipelines) == 3
        assert second_rung.fidelity == pytest.approx(1 / 3)

    def test_hyperband_invalid_eta_rejected(self):
        with pytest.raises(ValidationError):
            Hyperband(eta=1.0)

    def test_hyperband_invalid_fidelity_rejected(self):
        with pytest.raises(ValidationError):
            Hyperband(min_fidelity=0.0)

    def test_bohb_uses_density_after_enough_trials(self, lr_problem):
        bohb = BOHB(min_model_trials=4, random_state=0)
        bohb.search(lr_problem, max_trials=25)
        assert bohb._density is not None

    def test_best_trial_only_considers_full_fidelity_when_available(self, lr_problem):
        result = Hyperband(random_state=0).search(lr_problem, max_trials=20)
        full_fidelity = [t for t in result.trials if t.fidelity >= 1.0]
        if full_fidelity:
            assert result.best_trial().fidelity >= 1.0


class TestProgressiveNAS:
    def test_initialises_with_all_single_preprocessors(self, lr_problem):
        from repro.search import PMNE

        pmne = PMNE(random_state=0)
        result = pmne.search(lr_problem, max_trials=10)
        init = [t.pipeline for t in result.trials if t.iteration == 0]
        assert len(init) == 7
        assert all(len(p) == 1 for p in init)

    def test_beam_grows_pipeline_length(self, lr_problem):
        from repro.search import PMNE

        pmne = PMNE(beam_width=3, random_state=0)
        result = pmne.search(lr_problem, max_trials=16)
        later = [t for t in result.trials if t.iteration >= 1]
        assert any(len(t.pipeline) >= 2 for t in later)

    def test_invalid_surrogate_rejected(self):
        from repro.search.pnas import ProgressiveNAS

        with pytest.raises(ValidationError):
            ProgressiveNAS(surrogate="transformer")

    def test_ensemble_variants_use_ensemble_surrogate(self, lr_problem):
        from repro.search import PME
        from repro.surrogates import EnsembleRegressor

        pme = PME(n_ensemble=2, random_state=0)
        pme.search(lr_problem, max_trials=12)
        assert isinstance(pme._model, EnsembleRegressor)
