"""ASHA: asynchronous successive halving with rung promotion on completion."""

import numpy as np
import pytest

from repro.core.problem import AutoFPProblem
from repro.core.search_space import SearchSpace
from repro.datasets.synthetic import distort_features, make_classification
from repro.engine import ExecutionEngine
from repro.exceptions import ValidationError
from repro.search import ASHA, make_search_algorithm
from repro.search.registry import EXTENSION_ALGORITHM_CLASSES


@pytest.fixture(scope="module")
def problem():
    X, y = make_classification(n_samples=140, n_features=8, n_classes=2,
                               class_sep=2.0, random_state=2)
    X = distort_features(X, random_state=2)
    return AutoFPProblem.from_arrays(
        X, y, "lr", space=SearchSpace(max_length=3), random_state=0,
        name="asha/lr",
    )


class TestConstruction:
    def test_registered_as_extension_algorithm(self):
        assert EXTENSION_ALGORITHM_CLASSES["asha"] is ASHA
        assert isinstance(make_search_algorithm("asha"), ASHA)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            ASHA(eta=1.0)
        with pytest.raises(ValidationError):
            ASHA(min_fidelity=0.0)
        with pytest.raises(ValidationError):
            ASHA(min_fidelity=1.5)

    def test_rung_ladder_always_reaches_full_fidelity(self):
        searcher = ASHA(eta=3.0, min_fidelity=0.2)
        searcher._setup(None, np.random.default_rng(0))
        assert searcher._fidelities[0] == pytest.approx(0.2)
        assert searcher._fidelities[-1] == 1.0
        assert all(a < b for a, b in zip(searcher._fidelities,
                                         searcher._fidelities[1:]))


class TestSearchBehaviour:
    def test_produces_rungs_and_full_fidelity_trials(self, problem):
        result = ASHA(random_state=0).search(problem, max_trials=12)
        fidelities = {round(t.fidelity, 6) for t in result.trials}
        assert round(1.0 / 9.0, 6) in fidelities  # bottom rung grew
        assert len(result) > 12  # low-fidelity rungs buy extra evaluations
        assert 0.0 <= result.best_accuracy <= 1.0

    def test_promotion_re_evaluates_top_configs_at_higher_fidelity(self, problem):
        result = ASHA(random_state=0).search(problem, max_trials=12)
        by_spec = {}
        for trial in result.trials:
            by_spec.setdefault(trial.pipeline.spec(), set()).add(
                round(trial.fidelity, 6)
            )
        promoted = [spec for spec, fidelities in by_spec.items()
                    if len(fidelities) > 1]
        assert promoted, "no configuration was ever promoted"

    def test_never_promotes_the_same_config_twice_from_one_rung(self, problem):
        # Random bottom-rung sampling may legitimately re-draw a spec, but
        # promotions are deduplicated per rung, so above the bottom
        # fidelity every (spec, fidelity) pair appears exactly once.
        result = ASHA(random_state=0).search(problem, max_trials=15)
        bottom = min(round(t.fidelity, 6) for t in result.trials)
        seen = set()
        for trial in result.trials:
            key = (trial.pipeline.spec(), round(trial.fidelity, 6))
            if key[1] == bottom:
                continue
            assert key not in seen, f"duplicate promoted evaluation {key}"
            seen.add(key)

    def test_async_thread_run_saturates_and_matches_values(self, problem):
        engine = ExecutionEngine("thread", n_workers=3)
        problem.evaluator.set_engine(engine)
        try:
            result = ASHA(random_state=0).search(problem, max_trials=10,
                                                 driver="async")
        finally:
            problem.evaluator.set_engine(None)
            engine.close()
        assert len(result) > 0
        for trial in result.trials:
            expected = problem.evaluator.evaluate(trial.pipeline,
                                                  fidelity=trial.fidelity)
            assert trial.accuracy == expected.accuracy
