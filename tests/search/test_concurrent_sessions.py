"""Concurrent sessions in one process must never collide.

The multi-tenant contract behind ``repro serve``: sessions sharing one
process (and possibly one telemetry directory) keep disjoint heartbeat
files, session-scoped metrics snapshots, and bit-for-bit the same results
they would produce alone.  These are the regression tests for the
heartbeat-clobbering and metric-bleed bugs.
"""

import json
import threading

import pytest

from repro.core.context import ExecutionContext
from repro.core.problem import AutoFPProblem
from repro.datasets.synthetic import distort_features, make_classification
from repro.models.linear import LogisticRegression
from repro.search import SearchSession, make_search_algorithm
from repro.telemetry import HEARTBEAT_FILE_NAME, heartbeat_file_name
from repro.telemetry.metrics import get_registry


def _problem(context, *, data_seed=4):
    X, y = make_classification(n_samples=130, n_features=6, n_classes=2,
                               class_sep=2.0, random_state=data_seed)
    X = distort_features(X, random_state=data_seed)
    return AutoFPProblem.from_arrays(
        X, y, LogisticRegression(max_iter=50), random_state=0,
        name=f"concurrent-{data_seed}/lr", context=context,
    )


def _session(context, *, session_id, algo_seed=0, data_seed=4):
    return SearchSession(
        _problem(context, data_seed=data_seed),
        make_search_algorithm("rs", random_state=algo_seed),
        session_id=session_id,
    )


class TestHeartbeatIsolation:
    def test_each_session_owns_its_heartbeat_file(self, tmp_path):
        context = ExecutionContext(telemetry_mode="counters",
                                   telemetry_dir=tmp_path)
        a = _session(context, session_id="tenant-a")
        b = _session(context, session_id="tenant-b", algo_seed=1)
        a.run(max_trials=3)
        b.run(max_trials=5)

        beat_a = json.loads((tmp_path / heartbeat_file_name("tenant-a"))
                            .read_text(encoding="utf-8"))
        beat_b = json.loads((tmp_path / heartbeat_file_name("tenant-b"))
                            .read_text(encoding="utf-8"))
        assert beat_a["session_id"] == "tenant-a"
        assert beat_a["trials"] == 3
        assert beat_b["session_id"] == "tenant-b"
        assert beat_b["trials"] == 5

    def test_legacy_alias_only_with_a_sole_writer(self, tmp_path):
        # One session in the dir: heartbeat.json keeps working as before.
        solo_dir = tmp_path / "solo"
        solo_dir.mkdir()
        context = ExecutionContext(telemetry_mode="counters",
                                   telemetry_dir=solo_dir)
        solo = _session(context, session_id="only-one")
        solo.run(max_trials=2)
        legacy = json.loads((solo_dir / HEARTBEAT_FILE_NAME)
                            .read_text(encoding="utf-8"))
        assert legacy["session_id"] == "only-one"

        # Two sessions sharing a dir: neither may clobber the alias.
        shared_dir = tmp_path / "shared"
        shared_dir.mkdir()
        context = ExecutionContext(telemetry_mode="counters",
                                   telemetry_dir=shared_dir)
        a = _session(context, session_id="pair-a")
        b = _session(context, session_id="pair-b")
        a.run(max_trials=2)
        b.run(max_trials=2)
        assert (shared_dir / heartbeat_file_name("pair-a")).exists()
        assert (shared_dir / heartbeat_file_name("pair-b")).exists()
        assert not (shared_dir / HEARTBEAT_FILE_NAME).exists()

    def test_resumed_session_keeps_its_heartbeat_identity(self, tmp_path):
        telemetry = tmp_path / "telemetry"
        telemetry.mkdir()
        context = ExecutionContext(telemetry_mode="counters",
                                   telemetry_dir=telemetry)
        session = SearchSession(
            _problem(context), make_search_algorithm("rs", random_state=0),
            session_id="keep-me", checkpoint_path=tmp_path / "cp.json",
            on_trial=lambda s, trial: s.stop() if len(s.result) == 3 else None,
        )
        session.run(max_trials=5)
        assert len(session.result) == 3
        session.checkpoint()

        resumed = SearchSession.resume(tmp_path / "cp.json",
                                       problem=_problem(context))
        assert resumed.session_id == "keep-me"
        resumed.run()
        beat = json.loads((telemetry / heartbeat_file_name("keep-me"))
                          .read_text(encoding="utf-8"))
        assert beat["trials"] == 5


class TestMetricsScoping:
    def test_snapshots_exclude_other_sessions_series(self):
        registry = get_registry()
        a = _session(ExecutionContext(), session_id="scope-a")
        b = _session(ExecutionContext(), session_id="scope-b")
        registry.counter("budget.refunded_trials", session="scope-a").inc(3)
        registry.counter("budget.refunded_trials", session="scope-b").inc(7)

        snap_a = a.metrics_snapshot()
        snap_b = b.metrics_snapshot()
        # The owning session reads its series under the plain name ...
        assert snap_a["budget.refunded_trials"] == 3
        assert snap_b["budget.refunded_trials"] == 7
        # ... and never sees the other tenant's series under any name.
        assert not any("scope-b" in key for key in snap_a)
        assert not any("scope-a" in key for key in snap_b)

    def test_unlabelled_series_stay_visible_to_everyone(self):
        registry = get_registry()
        registry.gauge("engine.inflight").set(2)
        session = _session(ExecutionContext(), session_id="scope-c")
        assert session.metrics_snapshot()["engine.inflight"] == 2

    def test_plain_snapshot_still_sees_every_series(self):
        registry = get_registry()
        registry.counter("budget.refunded_trials", session="x").inc(1)
        registry.counter("budget.refunded_trials", session="y").inc(2)
        reading = registry.snapshot()
        assert reading["budget.refunded_trials{session=x}"] == 1
        assert reading["budget.refunded_trials{session=y}"] == 2


class TestConcurrentDeterminism:
    def test_interleaved_sessions_match_solo_runs(self, tmp_path):
        context = ExecutionContext(telemetry_mode="counters",
                                   telemetry_dir=tmp_path)
        solo = {}
        for data_seed in (4, 5):
            result = _session(ExecutionContext(), session_id=f"solo-{data_seed}",
                              data_seed=data_seed).run(max_trials=6)
            solo[data_seed] = [t.accuracy for t in result.trials]

        sessions = {
            data_seed: _session(context, session_id=f"pair-{data_seed}",
                                data_seed=data_seed)
            for data_seed in (4, 5)
        }
        threads = [threading.Thread(target=s.run,
                                    kwargs={"max_trials": 6})
                   for s in sessions.values()]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for data_seed, session in sessions.items():
            got = [t.accuracy for t in session.result.trials]
            assert got == solo[data_seed], (
                f"concurrent run for data_seed={data_seed} diverged"
            )

    def test_refund_counter_is_session_labelled(self):
        registry = get_registry()
        context = ExecutionContext()
        session = _session(context, session_id="refund-owner")
        evaluator = session.problem.evaluator
        original = evaluator.evaluate_tasks
        state = {"dropped": False}

        def drop_once(tasks, *, budget=None):
            records = original(tasks, budget=budget)
            if not state["dropped"] and records:
                # Pretend the last admitted task never came back (as a
                # time-budget expiry would): the session must refund its
                # charge under its own session label.
                state["dropped"] = True
                return records[:-1]
            return records

        evaluator.evaluate_tasks = drop_once
        session.run(max_trials=4)
        reading = registry.snapshot()
        key = "budget.refunded_trials{session=refund-owner}"
        assert reading.get(key, 0) >= 1
        assert session.metrics_snapshot()["budget.refunded_trials"] \
            == reading[key]


@pytest.fixture(autouse=True)
def _reset_registry():
    get_registry().reset()
    yield
    get_registry().reset()
