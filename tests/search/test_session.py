"""SearchSession: the resumable lifecycle facade over search runs.

Covers the event callbacks, graceful interruption, checkpoint/resume
round-trips (including cross-"process" resume via the serialized document
alone), the provenance-based problem rebuild, the fingerprint guard, and
the ResultStore checkpoint integration.  The bit-for-bit
interrupted-equals-uninterrupted matrix for evolution/PNAS/TPE/ASHA lives
in ``tests/engine/test_determinism.py``.
"""

import pytest

from repro.core.budget import TimeBudget, TrialBudget
from repro.core.context import ExecutionContext
from repro.core.problem import AutoFPProblem
from repro.datasets.synthetic import distort_features, make_classification
from repro.exceptions import ValidationError
from repro.io.store import ResultStore
from repro.search import SearchSession, make_search_algorithm


def _data():
    X, y = make_classification(n_samples=120, n_features=6, n_classes=2,
                               class_sep=2.0, random_state=3)
    return distort_features(X, random_state=3), y


def _problem(**kwargs):
    X, y = _data()
    return AutoFPProblem.from_arrays(X, y, "lr", random_state=0, **kwargs)


def _trials(result):
    return [(t.pipeline.spec(), round(t.fidelity, 6), t.accuracy, t.iteration)
            for t in result.trials]


class TestSessionBasics:
    def test_run_matches_algorithm_search(self):
        session = SearchSession(_problem(),
                                make_search_algorithm("pbt", random_state=0))
        via_session = session.run(max_trials=10)
        direct = make_search_algorithm("pbt", random_state=0).search(
            _problem(), max_trials=10)
        assert _trials(via_session) == _trials(direct)

    def test_default_budget_comes_from_the_context(self):
        session = SearchSession(
            _problem(), make_search_algorithm("rs", random_state=0),
            context=ExecutionContext(default_budget=7),
        )
        assert len(session.run()) == 7

    def test_context_async_mode_selects_the_async_driver(self):
        session = SearchSession(
            _problem(), make_search_algorithm("rs", random_state=0),
            context=ExecutionContext(async_mode=True),
        )
        session.run(max_trials=4)
        assert session._driver == "async"

    def test_events_fire_per_trial_and_per_batch(self):
        trials, batches = [], []
        session = SearchSession(
            _problem(), make_search_algorithm("pbt", random_state=0),
            on_trial=lambda s, record: trials.append(record.accuracy),
            on_batch=lambda s, iteration, tasks: batches.append(
                (iteration, len(tasks))),
        )
        result = session.run(max_trials=10)
        assert len(trials) == len(result) == 10
        assert sum(n for _, n in batches) == 10
        assert batches[0][0] == 0  # the initial-population batch

    def test_driver_cannot_switch_mid_search(self):
        session = SearchSession(_problem(),
                                make_search_algorithm("rs", random_state=0),
                                on_trial=lambda s, r: s.stop())
        session.run(max_trials=6, driver="sync")
        with pytest.raises(ValidationError):
            session.run(driver="async")

    def test_invalid_driver_rejected(self):
        session = SearchSession(_problem(),
                                make_search_algorithm("rs", random_state=0))
        with pytest.raises(ValidationError):
            session.run(max_trials=4, driver="turbo")


class TestStopAndContinue:
    @pytest.mark.parametrize("driver", ["sync", "async"])
    def test_stop_then_run_continues_to_the_identical_result(self, driver):
        def stop_at_four(session, record):
            if len(session.result) == 4:
                session.stop()

        session = SearchSession(_problem(),
                                make_search_algorithm("tevo_h", random_state=0),
                                on_trial=stop_at_four)
        partial = session.run(max_trials=10, driver=driver)
        assert session.stopped and len(partial) == 4
        session.on_trial = None
        full = session.run()
        reference = make_search_algorithm("tevo_h", random_state=0).search(
            _problem(), max_trials=10, driver=driver)
        assert _trials(full) == _trials(reference)

    def test_stop_mid_batch_parks_pending_records(self):
        # PBT's initial population is one 8-wide batch; stopping at the
        # second observation leaves six evaluated-but-unobserved records.
        session = SearchSession(
            _problem(), make_search_algorithm("pbt", random_state=0),
            on_trial=lambda s, r: s.stop() if len(s.result) == 2 else None,
        )
        partial = session.run(max_trials=10)
        assert len(partial) == 2
        assert len(session._pending_records) == 6
        session.on_trial = None
        full = session.run()
        reference = make_search_algorithm("pbt", random_state=0).search(
            _problem(), max_trials=10)
        assert _trials(full) == _trials(reference)


class TestCheckpointResume:
    def test_checkpoint_outside_a_run_and_resume(self, tmp_path):
        path = tmp_path / "run.checkpoint"
        session = SearchSession(_problem(),
                                make_search_algorithm("tpe", random_state=0),
                                on_trial=lambda s, r: s.stop()
                                if len(s.result) == 5 else None)
        session.run(max_trials=12)
        written = session.checkpoint(path)
        assert written == path and path.exists()
        resumed = SearchSession.resume(path, problem=_problem())
        full = resumed.run()
        reference = make_search_algorithm("tpe", random_state=0).search(
            _problem(), max_trials=12)
        assert _trials(full) == _trials(reference)

    def test_checkpoint_requested_from_a_callback_lands_after_the_trial(
            self, tmp_path):
        path = tmp_path / "mid.checkpoint"
        seen = []

        def hook(session, record):
            if len(session.result) == 3:
                session.checkpoint(path)

        session = SearchSession(
            _problem(), make_search_algorithm("rs", random_state=0),
            on_trial=hook,
            on_checkpoint=lambda s, p: seen.append((len(s.result), p)),
        )
        result = session.run(max_trials=8)
        assert len(result) == 8  # checkpointing does not stop the run
        assert seen == [(3, path)]
        resumed = SearchSession.resume(path, problem=_problem())
        assert len(resumed.result) == 3
        assert _trials(resumed.run()) == _trials(result)

    def test_automatic_checkpoints_every_n_trials(self, tmp_path):
        path = tmp_path / "auto.checkpoint"
        writes = []
        session = SearchSession(
            _problem(), make_search_algorithm("rs", random_state=0),
            checkpoint_path=path, checkpoint_every=3,
            on_checkpoint=lambda s, p: writes.append(len(s.result)),
        )
        result = session.run(max_trials=8)
        assert writes == [3, 6]
        # The last periodic snapshot resumes to the identical final result.
        resumed = SearchSession.resume(path, problem=_problem())
        assert _trials(resumed.run()) == _trials(result)

    def test_resume_rebuilds_registry_problems_from_provenance(self, tmp_path):
        path = tmp_path / "registry.checkpoint"
        problem = AutoFPProblem.from_registry("blood", "lr", scale=0.5,
                                              random_state=0)
        session = SearchSession(problem,
                                make_search_algorithm("rs", random_state=0),
                                on_trial=lambda s, r: s.stop()
                                if len(s.result) == 3 else None)
        session.run(max_trials=6)
        session.checkpoint(path)
        resumed = SearchSession.resume(path)  # no problem passed
        assert resumed.problem.name == "blood/lr"
        full = resumed.run()
        reference = make_search_algorithm("rs", random_state=0).search(
            AutoFPProblem.from_registry("blood", "lr", scale=0.5,
                                        random_state=0), max_trials=6)
        assert _trials(full) == _trials(reference)

    def test_resume_refuses_a_mismatched_problem(self, tmp_path):
        path = tmp_path / "guard.checkpoint"
        session = SearchSession(_problem(),
                                make_search_algorithm("rs", random_state=0),
                                on_trial=lambda s, r: s.stop())
        session.run(max_trials=4)
        session.checkpoint(path)
        X, y = _data()
        other = AutoFPProblem.from_arrays(X, y, "lr", random_state=99)
        with pytest.raises(ValidationError, match="fingerprint"):
            SearchSession.resume(path, problem=other)

    def test_array_problems_require_an_explicit_problem_on_resume(
            self, tmp_path):
        path = tmp_path / "arrays.checkpoint"
        session = SearchSession(_problem(),
                                make_search_algorithm("rs", random_state=0),
                                on_trial=lambda s, r: s.stop())
        session.run(max_trials=4)
        session.checkpoint(path)
        with pytest.raises(ValidationError, match="raw arrays"):
            SearchSession.resume(path)

    def test_checkpoint_requires_a_trial_budget(self):
        session = SearchSession(_problem(),
                                make_search_algorithm("rs", random_state=0),
                                on_trial=lambda s, r: s.stop())
        session.run(budget=TimeBudget(60.0))
        with pytest.raises(ValidationError, match="TrialBudget"):
            session.checkpoint("unused.checkpoint")

    def test_periodic_checkpoints_with_a_time_budget_fail_before_the_run(
            self, tmp_path):
        """An impossible auto-checkpoint config is rejected up front, not
        via an exception out of the search loop at the first snapshot."""
        session = SearchSession(_problem(),
                                make_search_algorithm("rs", random_state=0),
                                checkpoint_path=tmp_path / "x.checkpoint",
                                checkpoint_every=2)
        problem = session.problem
        evaluations_before = problem.evaluator.n_evaluations
        with pytest.raises(ValidationError, match="TrialBudget"):
            session.run(budget=TimeBudget(60.0))
        assert problem.evaluator.n_evaluations == evaluations_before

    def test_mid_run_checkpoint_request_with_time_budget_raises_at_the_call(
            self):
        """session.checkpoint() from a callback fails at the call site
        instead of poisoning the deferred write."""
        failures = []

        def hook(session, record):
            with pytest.raises(ValidationError, match="TrialBudget"):
                session.checkpoint("unused.checkpoint")
            failures.append(1)
            session.stop()

        session = SearchSession(_problem(),
                                make_search_algorithm("rs", random_state=0),
                                on_trial=hook)
        session.run(budget=TimeBudget(60.0))
        assert failures == [1]

    def test_checkpoint_before_any_run_is_rejected(self, tmp_path):
        session = SearchSession(_problem(),
                                make_search_algorithm("rs", random_state=0))
        with pytest.raises(ValidationError, match="not started"):
            session.checkpoint(tmp_path / "early.checkpoint")

    def test_resumed_budget_cannot_be_replaced(self, tmp_path):
        path = tmp_path / "budget.checkpoint"
        session = SearchSession(_problem(),
                                make_search_algorithm("rs", random_state=0),
                                on_trial=lambda s, r: s.stop())
        session.run(max_trials=6)
        session.checkpoint(path)
        resumed = SearchSession.resume(path, problem=_problem())
        with pytest.raises(ValidationError, match="budget"):
            resumed.run(budget=TrialBudget(99))

    def test_finished_run_resumes_to_the_same_result_without_new_trials(
            self, tmp_path):
        path = tmp_path / "done.checkpoint"
        session = SearchSession(_problem(),
                                make_search_algorithm("rs", random_state=0))
        result = session.run(max_trials=5)
        session.checkpoint(path)
        resumed = SearchSession.resume(path, problem=_problem())
        evaluations_before = resumed.problem.evaluator.n_evaluations
        again = resumed.run()
        assert _trials(again) == _trials(result)
        assert resumed.problem.evaluator.n_evaluations == evaluations_before


class TestResultStoreCheckpoints:
    def test_checkpoints_live_beside_results_and_stay_out_of_keys(
            self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = store.key("blood", "lr", "rs", tag="resume-demo")
        session = SearchSession(_problem(),
                                make_search_algorithm("rs", random_state=0),
                                on_trial=lambda s, r: s.stop()
                                if len(s.result) == 3 else None)
        result = session.run(max_trials=8)
        session.checkpoint(store.checkpoint_path_for(key))
        assert store.has_checkpoint(key)
        assert store.keys() == []  # a checkpoint is not a finished result

        document = store.load_checkpoint(key)
        assert document["algorithm"] == "rs"
        resumed = SearchSession.resume(store.checkpoint_path_for(key),
                                       problem=_problem())
        final = resumed.run()
        store.save(key, final)
        assert store.discard_checkpoint(key)
        assert not store.has_checkpoint(key)
        assert [k for k in store.keys()] == [key]
        assert len(store.load(key)) == len(final)
        assert len(final) == 8 and len(result) == 3
