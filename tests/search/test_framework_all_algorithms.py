"""Integration tests of the unified framework across all 15 search algorithms."""

import numpy as np
import pytest

from repro.core import TrialBudget
from repro.search import (
    ALGORITHM_CATEGORIES,
    ALL_ALGORITHM_NAMES,
    SEARCH_ALGORITHM_CLASSES,
    category_of,
    get_search_algorithm_class,
    make_search_algorithm,
    taxonomy_table,
)
from repro.exceptions import UnknownComponentError


class TestRegistry:
    def test_fifteen_algorithms(self):
        """The paper extends exactly 15 search algorithms to Auto-FP."""
        assert len(ALL_ALGORITHM_NAMES) == 15

    def test_five_categories_cover_all_algorithms(self):
        members = [name for names in ALGORITHM_CATEGORIES.values() for name in names]
        assert sorted(members) == sorted(ALL_ALGORITHM_NAMES)
        assert len(ALGORITHM_CATEGORIES) == 5

    def test_category_sizes_match_table3(self):
        assert len(ALGORITHM_CATEGORIES["traditional"]) == 2
        assert len(ALGORITHM_CATEGORIES["surrogate"]) == 6
        assert len(ALGORITHM_CATEGORIES["evolution"]) == 3
        assert len(ALGORITHM_CATEGORIES["rl"]) == 2
        assert len(ALGORITHM_CATEGORIES["bandit"]) == 2

    def test_category_of(self):
        assert category_of("pbt") == "evolution"
        assert category_of("bohb") == "bandit"
        with pytest.raises(UnknownComponentError):
            category_of("gradient_descent")

    def test_unknown_algorithm_raises(self):
        with pytest.raises(UnknownComponentError):
            get_search_algorithm_class("grid_search")

    def test_taxonomy_table_rows(self):
        rows = taxonomy_table()
        assert len(rows) == 15
        for row in rows:
            assert row["category"] in {"traditional", "surrogate", "evolution", "rl", "bandit"}
            assert row["area"] in {"hpo", "nas"}
            assert row["samples_per_iteration"] in {"=1", ">1"}

    def test_taxonomy_matches_paper_columns(self):
        rows = {row["name"]: row for row in taxonomy_table()}
        assert rows["smac"]["surrogate_model"] == "Random Forest"
        assert rows["tpe"]["surrogate_model"] == "KDE"
        assert rows["rs"]["initialization"] == "None"
        assert rows["pbt"]["initialization"] == "Random Search"
        assert rows["pmne"]["initialization"] == "Single Preprocessors"
        assert rows["hyperband"]["evaluations_per_iteration"] == ">1"


class TestAllAlgorithmsRun:
    @pytest.mark.parametrize("name", ALL_ALGORITHM_NAMES)
    def test_search_returns_valid_result(self, name, lr_problem):
        """Every algorithm runs end-to-end and returns a valid best pipeline."""
        algorithm = make_search_algorithm(name, random_state=0)
        result = algorithm.search(lr_problem, max_trials=10)
        assert result.algorithm == name
        assert len(result) >= 1
        assert 0.0 <= result.best_accuracy <= 1.0
        assert 1 <= len(result.best_pipeline) <= lr_problem.space.max_length

    @pytest.mark.parametrize("name", ["rs", "pbt", "tevo_h", "tpe"])
    def test_deterministic_given_seed(self, name, lr_problem):
        first = make_search_algorithm(name, random_state=11).search(lr_problem, max_trials=8)
        second = make_search_algorithm(name, random_state=11).search(lr_problem, max_trials=8)
        assert first.best_pipeline == second.best_pipeline
        assert first.best_accuracy == second.best_accuracy

    @pytest.mark.parametrize("name", ["rs", "anneal", "tevo_h", "tevo_y", "reinforce",
                                      "smac", "tpe", "enas"])
    def test_trial_budget_respected_for_single_eval_algorithms(self, name, lr_problem):
        result = make_search_algorithm(name, random_state=0).search(lr_problem, max_trials=9)
        assert len(result) == 9

    @pytest.mark.parametrize("name", ALL_ALGORITHM_NAMES)
    def test_budget_object_accepted(self, name, lr_problem):
        budget = TrialBudget(6)
        make_search_algorithm(name, random_state=0).search(lr_problem, budget=budget)
        assert budget.exhausted() or budget.remaining() < 1

    def test_search_beats_no_fp_baseline_on_distorted_data(self, lr_problem):
        """On scale-distorted data the searched pipeline beats no preprocessing.

        This is the paper's core motivation (Figure 2): good pipelines
        substantially improve accuracy for a scale-sensitive model.
        """
        baseline = lr_problem.baseline_accuracy()
        result = make_search_algorithm("rs", random_state=0).search(lr_problem, max_trials=20)
        assert result.best_accuracy >= baseline

    def test_pick_time_recorded_by_framework(self, lr_problem):
        result = make_search_algorithm("smac", random_state=0).search(lr_problem, max_trials=12)
        assert any(t.pick_time > 0 for t in result.trials)

    def test_results_track_iteration_numbers(self, lr_problem):
        result = make_search_algorithm("rs", random_state=0).search(lr_problem, max_trials=5)
        iterations = [t.iteration for t in result.trials]
        assert iterations == sorted(iterations)
