"""Tests for the UCB / Thompson-sampling extension searchers."""

import numpy as np
import pytest

from repro.exceptions import UnknownComponentError, ValidationError
from repro.search import (
    EXTENSION_ALGORITHM_CLASSES,
    SEARCH_ALGORITHM_CLASSES,
    ThompsonSamplingSearch,
    UCBSearch,
    make_search_algorithm,
)
from repro.search.bandit_extra import _ArmStatistics


class TestArmStatistics:
    def test_counts_and_means_track_updates(self):
        arms = _ArmStatistics(3)
        arms.update(0, 0.5)
        arms.update(0, 1.0)
        arms.update(2, 0.2)
        np.testing.assert_array_equal(arms.counts, [2, 0, 1])
        np.testing.assert_allclose(arms.means()[[0, 2]], [0.75, 0.2])

    def test_variance_is_positive_even_for_single_pull(self):
        arms = _ArmStatistics(2)
        arms.update(1, 0.7)
        assert arms.variances()[1] > 0


class TestRegistryIntegration:
    def test_extension_algorithms_not_in_the_15_algorithm_table(self):
        assert "ucb" not in SEARCH_ALGORITHM_CLASSES
        assert "thompson" not in SEARCH_ALGORITHM_CLASSES
        assert "asha" not in SEARCH_ALGORITHM_CLASSES
        assert set(EXTENSION_ALGORITHM_CLASSES) == {"ucb", "thompson", "asha"}

    def test_make_search_algorithm_resolves_extension_names(self):
        assert isinstance(make_search_algorithm("ucb"), UCBSearch)
        assert isinstance(make_search_algorithm("thompson"), ThompsonSamplingSearch)

    def test_unknown_name_still_raises(self):
        with pytest.raises(UnknownComponentError):
            make_search_algorithm("epsilon_greedy")


@pytest.mark.parametrize("name", ["ucb", "thompson"])
class TestSearchBehaviour:
    def test_respects_trial_budget(self, name, lr_problem):
        result = make_search_algorithm(name, random_state=0).search(
            lr_problem, max_trials=12
        )
        assert len(result) == 12

    def test_best_pipeline_beats_or_matches_worst_trial(self, name, lr_problem):
        result = make_search_algorithm(name, random_state=0).search(
            lr_problem, max_trials=15
        )
        accuracies = [trial.accuracy for trial in result.trials]
        assert result.best_accuracy == max(accuracies)

    def test_search_is_deterministic_given_seed(self, name, lr_problem):
        first = make_search_algorithm(name, random_state=3).search(
            lr_problem, max_trials=10
        )
        second = make_search_algorithm(name, random_state=3).search(
            lr_problem, max_trials=10
        )
        assert [t.pipeline.spec() for t in first.trials] == \
            [t.pipeline.spec() for t in second.trials]

    def test_taxonomy_row_reports_bandit_category(self, name, lr_problem):
        row = make_search_algorithm(name).taxonomy_row()
        assert row["category"] == "bandit"


class TestArmLearning:
    def test_ucb_prefers_the_better_arm_after_enough_pulls(self):
        rng = np.random.default_rng(0)
        search = UCBSearch(random_state=0)

        class _Problem:
            pass

        # Minimal stand-in exposing only what _setup needs.
        from repro.core import SearchSpace

        problem = _Problem()
        problem.space = SearchSpace(max_length=1)
        search._setup(problem, rng)

        # Feed synthetic rewards: arm 0 is good, all others are poor.
        from repro.core.result import TrialRecord

        space = problem.space
        for _ in range(30):
            arm = search._select_arm(search._position_arms[0], rng)
            accuracy = 0.9 if arm == 0 else 0.3
            pipeline = space.pipeline_from_indices([arm])
            record = TrialRecord(pipeline=pipeline, accuracy=accuracy)
            search._observe(record)
        assert search._position_arms[0].counts[0] == search._position_arms[0].counts.max()

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ValidationError):
            UCBSearch(exploration=0.0)
        with pytest.raises(ValidationError):
            ThompsonSamplingSearch(prior_variance=-1.0)
