"""Tests for the ``python -m repro`` command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(*argv: str) -> tuple[int, str]:
    """Run the CLI with ``argv`` and capture its stdout."""
    buffer = io.StringIO()
    code = main(list(argv), out=buffer)
    return code, buffer.getvalue()


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag_exits_cleanly(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_search_requires_dataset(self):
        # --dataset is validated at command level now (a --resume run reads
        # it from the checkpoint instead), so a bare `search` parses but
        # exits with an error.
        code, output = run_cli("search")
        assert code == 2
        assert "--dataset" in output


class TestListingCommands:
    def test_datasets_lists_all_45_tabular_datasets(self):
        code, output = run_cli("datasets")
        assert code == 0
        # header + 45 dataset rows
        assert len(output.strip().splitlines()) == 46
        assert "heart" in output

    def test_datasets_ctr_and_text_registries(self):
        code, output = run_cli("datasets", "--kind", "ctr")
        assert code == 0
        assert "tmall" in output and "instacart" in output
        code, output = run_cli("datasets", "--kind", "text")
        assert code == 0
        assert "reviews" in output

    def test_preprocessors_lists_defaults_and_extensions(self):
        code, output = run_cli("preprocessors")
        assert code == 0
        assert "standard_scaler" in output
        assert "robust_scaler" in output

    def test_algorithms_lists_all_fifteen(self):
        code, output = run_cli("algorithms")
        assert code == 0
        for name in ("rs", "pbt", "enas", "bohb"):
            assert name in output
        assert "ucb" in output  # extension searchers mentioned

    def test_algorithms_category_filter(self):
        code, output = run_cli("algorithms", "--category", "evolution")
        assert code == 0
        assert "pbt" in output
        assert "smac" not in output

    def test_algorithms_unknown_category_fails(self):
        code, output = run_cli("algorithms", "--category", "quantum")
        assert code == 1


class TestSearchCommand:
    def test_search_prints_summary_and_saves_json(self, tmp_path):
        output_path = tmp_path / "result.json"
        code, output = run_cli(
            "search", "--dataset", "heart", "--model", "lr",
            "--algorithm", "rs", "--max-trials", "8", "--scale", "0.5",
            "--output", str(output_path),
        )
        assert code == 0
        assert "best pipeline" in output
        assert output_path.exists()
        data = json.loads(output_path.read_text(encoding="utf-8"))
        assert data["algorithm"] == "rs"
        assert len(data["trials"]) == 8

    def test_unknown_dataset_reports_error_exit_code(self):
        code, output = run_cli("search", "--dataset", "not_a_dataset",
                               "--max-trials", "5")
        assert code == 2
        assert "error" in output.lower()

    def test_unknown_algorithm_reports_error_exit_code(self):
        code, output = run_cli("search", "--dataset", "heart",
                               "--algorithm", "gradient_descent",
                               "--max-trials", "5", "--scale", "0.4")
        assert code == 2


class TestCompareCommand:
    def test_compare_prints_ranking(self):
        code, output = run_cli(
            "compare", "--dataset", "heart", "--algorithms", "rs", "tevo_h",
            "--max-trials", "6", "--scale", "0.4",
        )
        assert code == 0
        assert "ranking" in output
        assert "rs" in output and "tevo_h" in output


class TestExperimentCommand:
    def test_experiment_prints_grid_and_ranking(self):
        code, output = run_cli(
            "experiment", "--datasets", "blood", "wine",
            "--algorithms", "rs", "tevo_h", "--max-trials", "5",
            "--scale", "0.5",
        )
        assert code == 0
        assert "4 runs" in output
        assert "average ranking" in output
        assert "rs" in output and "tevo_h" in output

    def test_experiment_parallel_matches_serial(self):
        args = ("experiment", "--datasets", "blood", "--algorithms",
                "rs", "pbt", "--max-trials", "5", "--scale", "0.5")
        code_serial, serial_output = run_cli(*args)
        code_parallel, parallel_output = run_cli(
            *args, "--n-jobs", "2", "--backend", "thread")
        assert code_serial == code_parallel == 0
        # Identical accuracies and ranking; only the execution line differs.
        strip = lambda text: text.splitlines()[2:]
        assert strip(serial_output) == strip(parallel_output)

    def test_search_accepts_parallel_options(self):
        code, output = run_cli(
            "search", "--dataset", "blood", "--algorithm", "pbt",
            "--max-trials", "6", "--scale", "0.5",
            "--n-jobs", "2", "--backend", "thread",
        )
        assert code == 0
        assert "best pipeline" in output

    def test_invalid_backend_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["experiment", "--datasets", "blood", "--backend", "gpu"])


class TestAsyncOption:
    def test_search_async_serial_matches_sync(self):
        """--async with serial evaluation is bit-for-bit identical output."""
        args = ("search", "--dataset", "blood", "--algorithm", "rs",
                "--max-trials", "6", "--scale", "0.5")
        code_sync, sync_output = run_cli(*args)
        code_async, async_output = run_cli(*args, "--async")
        assert code_sync == code_async == 0
        # Identical results; only the execution-context line names the driver.
        strip = lambda text: [line for line in text.splitlines()
                              if not line.startswith("execution")]
        assert strip(async_output) == strip(sync_output)

    def test_search_async_with_threads_runs_asha(self):
        code, output = run_cli(
            "search", "--dataset", "blood", "--algorithm", "asha",
            "--max-trials", "6", "--scale", "0.5",
            "--n-jobs", "2", "--backend", "thread", "--async",
        )
        assert code == 0
        assert "best pipeline" in output

    def test_experiment_async_matches_sync(self):
        args = ("experiment", "--datasets", "blood", "--algorithms",
                "rs", "pbt", "--max-trials", "5", "--scale", "0.5")
        code_sync, sync_output = run_cli(*args)
        code_async, async_output = run_cli(*args, "--async")
        assert code_sync == code_async == 0
        strip = lambda text: [line for line in text.splitlines()
                              if not line.startswith("execution")]
        assert strip(sync_output) == strip(async_output)


class TestCacheDirOption:
    def test_search_warm_rerun_hits_the_cache(self, tmp_path):
        args = ("search", "--dataset", "blood", "--algorithm", "rs",
                "--max-trials", "6", "--scale", "0.5",
                "--cache-dir", str(tmp_path / "cache"))
        code_cold, cold_output = run_cli(*args)
        code_warm, warm_output = run_cli(*args)
        assert code_cold == code_warm == 0
        assert "eval cache" in cold_output
        # The warm run answers every evaluation from disk ...
        assert ": 0 uncached" in warm_output
        assert ": 0 uncached" not in cold_output
        # ... and reproduces the cold results exactly (cache line differs).
        strip = lambda text: [line for line in text.splitlines()
                              if not line.startswith("eval cache")]
        assert strip(warm_output) == strip(cold_output)

    def test_experiment_warm_rerun_reports_zero_uncached(self, tmp_path):
        args = ("experiment", "--datasets", "blood", "--algorithms", "rs",
                "--max-trials", "5", "--scale", "0.5",
                "--cache-dir", str(tmp_path / "cache"))
        code_cold, cold_output = run_cli(*args)
        code_warm, warm_output = run_cli(*args)
        assert code_cold == code_warm == 0
        assert ": 0 uncached" in warm_output
        assert ": 0 uncached" not in cold_output
        strip = lambda text: [line for line in text.splitlines()
                              if not line.startswith("eval cache")]
        assert strip(warm_output) == strip(cold_output)


class TestPrefixCacheOption:
    def test_search_prefix_cache_matches_uncached_results(self):
        args = ("search", "--dataset", "blood", "--algorithm", "pbt",
                "--max-trials", "8", "--scale", "0.5")
        code_off, off_output = run_cli(*args)
        code_on, on_output = run_cli(*args, "--prefix-cache-mb", "64")
        assert code_off == code_on == 0
        assert "prefix cache" in on_output
        assert "steps reused" in on_output
        # Prefix reuse is invisible in the results: only the cache line
        # and the execution-context banner are new.
        strip = lambda text: [line for line in text.splitlines()
                              if not line.startswith(("prefix cache",
                                                      "execution"))]
        assert strip(on_output) == strip(off_output)

    def test_zero_budget_disables_the_cache_cleanly(self):
        code, output = run_cli(
            "search", "--dataset", "blood", "--algorithm", "rs",
            "--max-trials", "4", "--scale", "0.5", "--prefix-cache-mb", "0")
        assert code == 0
        assert "prefix cache" not in output

    def test_experiment_accepts_prefix_cache_option(self):
        args = ("experiment", "--datasets", "blood", "--algorithms",
                "rs", "pbt", "--max-trials", "5", "--scale", "0.5")
        code_off, off_output = run_cli(*args)
        code_on, on_output = run_cli(*args, "--prefix-cache-mb", "64")
        assert code_off == code_on == 0
        strip = lambda text: [line for line in text.splitlines()
                              if not line.startswith("execution")]
        assert strip(on_output) == strip(off_output)


class TestEvalcacheCommand:
    def _populate(self, tmp_path) -> str:
        root = str(tmp_path / "cache")
        code, _ = run_cli("search", "--dataset", "blood", "--algorithm", "rs",
                          "--max-trials", "6", "--scale", "0.5",
                          "--cache-dir", root)
        assert code == 0
        return root

    def test_stats_lists_fingerprints(self, tmp_path):
        root = self._populate(tmp_path)
        code, output = run_cli("evalcache", "stats", "--cache-dir", root)
        assert code == 0
        assert "fingerprint" in output
        assert "1 fingerprint(s)" in output

    def test_stats_on_missing_root(self, tmp_path):
        code, output = run_cli("evalcache", "stats",
                               "--cache-dir", str(tmp_path / "nothing"))
        assert code == 0
        assert "no cache fingerprints" in output

    def test_prune_keeps_recent_fingerprints_and_compacts(self, tmp_path):
        root = self._populate(tmp_path)
        # A second fingerprint (different seed => different split).
        code, _ = run_cli("search", "--dataset", "blood", "--algorithm", "rs",
                          "--max-trials", "6", "--scale", "0.5", "--seed", "7",
                          "--cache-dir", root)
        assert code == 0
        from repro.io.evalcache import cache_stats

        assert len(cache_stats(root)) == 2
        code, output = run_cli("evalcache", "prune", "--cache-dir", root,
                               "--keep-fingerprints", "1")
        assert code == 0
        assert "kept         : 1 fingerprint(s)" in output
        assert "removed      : 1 fingerprint(s)" in output
        rows = cache_stats(root)
        assert len(rows) == 1
        # Compaction leaves exactly one live line per entry.
        assert rows[0]["lines"] == rows[0]["entries"]
        # The kept (most recently used) cache still answers a warm rerun.
        code, warm_output = run_cli(
            "search", "--dataset", "blood", "--algorithm", "rs",
            "--max-trials", "6", "--scale", "0.5", "--seed", "7",
            "--cache-dir", root)
        assert code == 0
        assert ": 0 uncached" in warm_output

    def test_prune_requires_keep_fingerprints(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evalcache", "prune", "--cache-dir", "x"])


class TestMetafeaturesCommand:
    def test_prints_all_forty_metafeatures(self):
        code, output = run_cli("metafeatures", "--dataset", "blood", "--scale", "0.5")
        assert code == 0
        lines = [line for line in output.splitlines() if line.strip()]
        assert len(lines) == 40
        assert any(line.startswith("NumberOfClasses") for line in lines)


class TestCheckpointResumeOptions:
    def test_search_checkpoint_then_resume_matches_uninterrupted(self, tmp_path):
        checkpoint = str(tmp_path / "run.checkpoint")
        args = ("search", "--dataset", "blood", "--algorithm", "pbt",
                "--max-trials", "12", "--scale", "0.5")
        code_ref, ref_output = run_cli(*args)
        code_ck, ck_output = run_cli(*args, "--checkpoint", checkpoint,
                                     "--checkpoint-every", "4")
        assert code_ref == code_ck == 0
        assert "resume with --resume" in ck_output
        # The completed run left its periodic checkpoints behind; resuming
        # one replays to the identical final result (the interrupted case
        # is covered in tests/engine/test_determinism.py — here we prove
        # the CLI wiring end to end).
        code_resume, resume_output = run_cli(
            "search", "--resume", "--checkpoint", checkpoint)
        assert code_resume == 0
        assert "resuming" in resume_output
        assert "scale 0.5" in resume_output  # provenance, not the default
        pick = lambda text, label: [line for line in text.splitlines()
                                    if line.startswith(label)]
        for label in ("best acc", "best pipeline", "trials"):
            assert pick(resume_output, label) == pick(ref_output, label)

    def test_resume_without_checkpoint_is_an_error(self):
        code, output = run_cli("search", "--resume")
        assert code == 2
        assert "--checkpoint" in output

    def test_context_file_configures_the_run(self, tmp_path):
        import json

        context_file = tmp_path / "run-context.json"
        context_file.write_text(json.dumps({"n_jobs": 2, "backend": "thread"}), encoding="utf-8")
        code, output = run_cli(
            "search", "--dataset", "blood", "--algorithm", "rs",
            "--max-trials", "5", "--scale", "0.5",
            "--context", str(context_file),
        )
        assert code == 0
        assert "backend=thread" in output and "n_jobs=2" in output
