"""Tests for the parameter-extended search spaces and One-step / Two-step."""

import numpy as np
import pytest

from repro.extensions import (
    OneStepSearch,
    ParameterizedSpace,
    TwoStepSearch,
    compare_one_step_two_step,
    high_cardinality_space,
    low_cardinality_space,
)
from repro.search import PBT, RandomSearch


class TestParameterizedSpaces:
    def test_low_cardinality_matches_table6(self):
        space = low_cardinality_space()
        assert space.max_cardinality() == 8  # n_quantiles grid
        assert space.n_parameterized_preprocessors() == 31  # Section 6.2

    def test_high_cardinality_matches_table7(self):
        space = high_cardinality_space()
        assert space.max_cardinality() == 1990  # n_quantiles from 10 to 2000 step 1
        # QuantileTransformer dominates the One-step expansion (~99%).
        quantile_count = 1990 * 2
        fraction = quantile_count / space.n_parameterized_preprocessors()
        assert fraction > 0.98

    def test_one_step_space_candidate_count(self):
        space = low_cardinality_space(max_length=3)
        enlarged = space.one_step_space()
        assert enlarged.n_candidates == 31
        assert enlarged.max_length == 3

    def test_one_step_space_contains_parameterised_instances(self):
        enlarged = low_cardinality_space().one_step_space()
        thresholds = {
            candidate.threshold
            for candidate in enlarged.candidates
            if candidate.name == "binarizer"
        }
        assert thresholds == {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}

    def test_sample_configuration_has_seven_candidates(self):
        configured = low_cardinality_space().sample_configuration(random_state=0)
        assert configured.n_candidates == 7
        names = sorted(candidate.name for candidate in configured.candidates)
        assert len(set(names)) == 7

    def test_sample_configuration_varies_with_seed(self):
        space = low_cardinality_space()
        first = space.sample_configuration(random_state=1)
        second = space.sample_configuration(random_state=2)
        first_params = [c.get_params() for c in first.candidates]
        second_params = [c.get_params() for c in second.candidates]
        assert first_params != second_params

    def test_custom_space(self):
        space = ParameterizedSpace(
            grid={"binarizer": {"threshold": (0.0, 1.0)}, "normalizer": {}},
            max_length=2,
        )
        assert space.max_cardinality() == 2
        assert space.n_parameterized_preprocessors() == 3


class TestStrategies:
    def test_one_step_runs_in_enlarged_space(self, lr_problem):
        outcome = OneStepSearch(
            PBT(random_state=0), low_cardinality_space(max_length=3)
        ).search(lr_problem, max_trials=15)
        assert outcome.strategy == "one_step"
        assert outcome.n_rounds == 1
        assert 0.0 <= outcome.best_accuracy <= 1.0

    def test_two_step_performs_multiple_rounds(self, lr_problem):
        outcome = TwoStepSearch(
            lambda seed: RandomSearch(random_state=seed),
            low_cardinality_space(max_length=3),
            trials_per_round=5,
            random_state=0,
        ).search(lr_problem, max_trials=15)
        assert outcome.strategy == "two_step"
        assert outcome.n_rounds == 3
        assert len(outcome.result) == 15

    def test_two_step_budget_not_exceeded(self, lr_problem):
        outcome = TwoStepSearch(
            lambda seed: RandomSearch(random_state=seed),
            low_cardinality_space(max_length=3),
            trials_per_round=7,
            random_state=0,
        ).search(lr_problem, max_trials=10)
        assert len(outcome.result) <= 10

    def test_compare_returns_both_strategies(self, lr_problem):
        comparison = compare_one_step_two_step(
            lr_problem,
            low_cardinality_space(max_length=3),
            lambda seed: RandomSearch(random_state=seed),
            max_trials=12,
            trials_per_round=4,
            random_state=0,
        )
        assert set(comparison) == {"one_step", "two_step"}
        for outcome in comparison.values():
            assert outcome.best_accuracy >= 0.0
            assert outcome.result.baseline_accuracy is not None

    def test_high_cardinality_one_step_dominated_by_quantile(self, lr_problem):
        """In the high-cardinality One-step space most sampled steps are
        QuantileTransformer (Section 6.3's explanation for why One-step loses)."""
        enlarged = high_cardinality_space(max_length=3).one_step_space()
        rng = np.random.default_rng(0)
        names = []
        for _ in range(100):
            names.extend(enlarged.sample_pipeline(rng).names())
        fraction = names.count("quantile_transformer") / len(names)
        assert fraction > 0.9
