"""Tests for the Section 8 budget-allocation strategies."""

import pytest

from repro.exceptions import UnknownComponentError, ValidationError
from repro.extensions import (
    AllocatedTwoStepSearch,
    FixedAllocation,
    GreedyAdaptiveAllocation,
    HalvingAllocation,
    RoundOutcome,
    compare_allocations,
    low_cardinality_space,
    make_allocation,
)
from repro.search import RandomSearch, TEVO_H


def _history(*flags, trials=5):
    """Build a RoundOutcome history from improvement flags."""
    return [
        RoundOutcome(round_index=i + 1, trials_used=trials, best_accuracy=0.5,
                     improved_overall_best=flag, configuration_id=i)
        for i, flag in enumerate(flags)
    ]


class TestFixedAllocation:
    def test_constant_round_size_and_fresh_configurations(self):
        allocation = FixedAllocation(trials_per_round=10)
        plan = allocation.plan_round(_history(True, False), remaining_trials=100)
        assert plan.trials == 10
        assert plan.reuse_configuration is False

    def test_round_clipped_to_remaining_budget(self):
        plan = FixedAllocation(trials_per_round=10).plan_round([], remaining_trials=4)
        assert plan.trials == 4

    def test_invalid_round_size_rejected(self):
        with pytest.raises(ValidationError):
            FixedAllocation(trials_per_round=0)


class TestHalvingAllocation:
    def test_screening_rounds_use_small_budget_and_fresh_configurations(self):
        allocation = HalvingAllocation(n_screening=3, screening_trials=4)
        plan = allocation.plan_round(_history(True), remaining_trials=50)
        assert plan.trials == 4
        assert plan.reuse_configuration is False

    def test_exploitation_rounds_reuse_best_and_grow_budget(self):
        allocation = HalvingAllocation(n_screening=2, screening_trials=4, eta=2.0)
        first_exploit = allocation.plan_round(_history(True, False), remaining_trials=100)
        second_exploit = allocation.plan_round(
            _history(True, False, True), remaining_trials=100
        )
        assert first_exploit.reuse_configuration is True
        assert second_exploit.trials > first_exploit.trials

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            HalvingAllocation(n_screening=0)
        with pytest.raises(ValidationError):
            HalvingAllocation(eta=1.0)


class TestGreedyAdaptiveAllocation:
    def test_first_round_uses_minimum_budget(self):
        plan = GreedyAdaptiveAllocation(min_trials=5).plan_round([], remaining_trials=60)
        assert plan.trials == 5
        assert plan.reuse_configuration is False

    def test_improvement_doubles_budget_and_reuses_configuration(self):
        allocation = GreedyAdaptiveAllocation(min_trials=5, max_trials_per_round=30)
        plan = allocation.plan_round(_history(True, trials=6), remaining_trials=60)
        assert plan.trials == 12
        assert plan.reuse_configuration is True

    def test_budget_capped_at_maximum(self):
        allocation = GreedyAdaptiveAllocation(min_trials=5, max_trials_per_round=10)
        plan = allocation.plan_round(_history(True, trials=8), remaining_trials=60)
        assert plan.trials == 10

    def test_no_improvement_falls_back_to_fresh_configuration(self):
        allocation = GreedyAdaptiveAllocation(min_trials=5)
        plan = allocation.plan_round(_history(False, trials=20), remaining_trials=60)
        assert plan.trials == 5
        assert plan.reuse_configuration is False

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            GreedyAdaptiveAllocation(min_trials=0)
        with pytest.raises(ValidationError):
            GreedyAdaptiveAllocation(min_trials=10, max_trials_per_round=5)


class TestMakeAllocation:
    def test_resolves_all_names(self):
        assert isinstance(make_allocation("fixed"), FixedAllocation)
        assert isinstance(make_allocation("halving"), HalvingAllocation)
        assert isinstance(make_allocation("greedy"), GreedyAdaptiveAllocation)

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownComponentError):
            make_allocation("round_robin")


class TestAllocatedTwoStepSearch:
    @pytest.fixture(scope="class")
    def parameter_space(self):
        return low_cardinality_space(max_length=3)

    def test_respects_total_budget(self, lr_problem, parameter_space):
        searcher = AllocatedTwoStepSearch(
            lambda seed: RandomSearch(random_state=seed),
            parameter_space, allocation=FixedAllocation(trials_per_round=6),
            random_state=0,
        )
        outcome = searcher.search(lr_problem, max_trials=18)
        assert len(outcome.result.trials) == 18
        assert outcome.n_rounds == 3

    def test_greedy_allocation_records_round_history(self, lr_problem, parameter_space):
        searcher = AllocatedTwoStepSearch(
            lambda seed: RandomSearch(random_state=seed),
            parameter_space, allocation=GreedyAdaptiveAllocation(min_trials=4),
            random_state=0,
        )
        outcome = searcher.search(lr_problem, max_trials=20)
        assert outcome.rounds
        assert sum(r.trials_used for r in outcome.rounds) == len(outcome.result.trials)

    def test_best_accuracy_at_least_matches_plain_round_best(self, lr_problem,
                                                             parameter_space):
        searcher = AllocatedTwoStepSearch(
            lambda seed: TEVO_H(random_state=seed),
            parameter_space, allocation=HalvingAllocation(n_screening=2,
                                                          screening_trials=4),
            random_state=0,
        )
        outcome = searcher.search(lr_problem, max_trials=20)
        per_round_best = max(r.best_accuracy for r in outcome.rounds)
        assert outcome.best_accuracy == pytest.approx(per_round_best)

    def test_compare_allocations_runs_all_strategies(self, lr_problem, parameter_space):
        outcomes = compare_allocations(
            lr_problem, parameter_space,
            lambda seed: RandomSearch(random_state=seed),
            max_trials=15, random_state=0,
        )
        assert set(outcomes) == {"fixed", "halving", "greedy"}
        baseline = lr_problem.baseline_accuracy()
        for outcome in outcomes.values():
            assert outcome.best_accuracy >= baseline - 0.25
