"""Tests for the synthetic recommendation / CTR dataset generators."""

import numpy as np
import pytest

from repro.deep import (
    CTR_DATASET_REGISTRY,
    get_ctr_dataset_info,
    list_ctr_datasets,
    load_ctr_dataset,
    make_basket_dataset,
    make_ctr_dataset,
)
from repro.exceptions import UnknownComponentError, ValidationError


class TestMakeCTRDataset:
    def test_shapes_and_binary_labels(self):
        X, y = make_ctr_dataset(200, field_cardinalities=(5, 4), n_numeric=3,
                                random_state=0)
        assert X.shape == (200, 5 + 4 + 3)
        assert set(np.unique(y)) <= {0, 1}

    def test_one_hot_blocks_have_exactly_one_active_entry(self):
        X, _ = make_ctr_dataset(150, field_cardinalities=(6, 3), n_numeric=0,
                                random_state=1)
        first_block = X[:, :6]
        second_block = X[:, 6:9]
        np.testing.assert_array_equal(first_block.sum(axis=1), 1.0)
        np.testing.assert_array_equal(second_block.sum(axis=1), 1.0)

    def test_deterministic_for_same_seed(self):
        X1, y1 = make_ctr_dataset(100, random_state=7)
        X2, y2 = make_ctr_dataset(100, random_state=7)
        np.testing.assert_array_equal(X1, X2)
        np.testing.assert_array_equal(y1, y2)

    def test_distortion_spreads_numeric_scales(self):
        X, _ = make_ctr_dataset(500, field_cardinalities=(4,), n_numeric=4,
                                distort_numeric=True, random_state=3)
        numeric = X[:, 4:]
        stds = numeric.std(axis=0)
        assert stds.max() / max(stds.min(), 1e-12) > 10.0

    def test_both_classes_present(self):
        _, y = make_ctr_dataset(400, random_state=2)
        assert 0 < y.mean() < 1

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValidationError):
            make_ctr_dataset(5)
        with pytest.raises(ValidationError):
            make_ctr_dataset(100, field_cardinalities=())
        with pytest.raises(ValidationError):
            make_ctr_dataset(100, field_cardinalities=(1, 3))


class TestMakeBasketDataset:
    def test_features_are_binary(self):
        X, y = make_basket_dataset(200, n_products=20, random_state=0)
        assert X.shape == (200, 20)
        assert set(np.unique(X)) <= {0.0, 1.0}
        assert set(np.unique(y)) <= {0, 1}

    def test_labels_driven_by_patterns(self):
        # With no label noise, every positive sample contains some complete
        # positive pattern, so positives have (on average) larger baskets.
        X, y = make_basket_dataset(500, n_products=25, label_noise=0.0,
                                   random_state=1)
        assert 0 < y.mean() < 1
        assert X[y == 1].sum(axis=1).mean() >= X[y == 0].sum(axis=1).mean()

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValidationError):
            make_basket_dataset(100, n_products=2)
        with pytest.raises(ValidationError):
            make_basket_dataset(100, n_patterns=0)


class TestRegistry:
    def test_registry_contains_tmall_and_instacart(self):
        assert set(list_ctr_datasets()) == {"instacart", "tmall"}

    def test_info_flags_expected_fp_effect(self):
        assert get_ctr_dataset_info("tmall").fp_expected_to_help is True
        assert get_ctr_dataset_info("instacart").fp_expected_to_help is False

    def test_load_respects_scale(self):
        X_small, _ = load_ctr_dataset("tmall", scale=0.25, random_state=0)
        X_full, _ = load_ctr_dataset("tmall", scale=1.0, random_state=0)
        assert X_small.shape[0] < X_full.shape[0]
        assert X_full.shape[0] == CTR_DATASET_REGISTRY["tmall"].n_samples

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownComponentError):
            load_ctr_dataset("movielens")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValidationError):
            load_ctr_dataset("tmall", scale=0.0)

    def test_instacart_features_are_binary(self):
        X, _ = load_ctr_dataset("instacart", scale=0.2, random_state=0)
        assert set(np.unique(X)) <= {0.0, 1.0}
