"""Numerical gradient checks for the deep models' hand-written backpropagation.

The FM / DeepFM / DCN classifiers implement their gradients manually, so the
most valuable test is a finite-difference check: perturb every parameter,
measure the change in the cross-entropy loss, and compare against the
analytic gradient the model reports.  The checks run on tiny batches so they
stay fast.
"""

import numpy as np
import pytest

from repro.deep._dense import AdamOptimizer, DenseStack, iterate_minibatches
from repro.deep.dcn import DeepCrossNetworkClassifier
from repro.deep.deepfm import DeepFMClassifier
from repro.deep.factorization_machine import FactorizationMachineClassifier
from repro.models.base import one_hot, softmax

EPSILON = 1e-5
TOLERANCE = 1e-4


def _cross_entropy(logits: np.ndarray, targets: np.ndarray) -> float:
    probabilities = np.clip(softmax(logits), 1e-12, 1.0)
    return float(-np.sum(targets * np.log(probabilities)) / logits.shape[0])


def _numerical_gradient(parameter: np.ndarray, loss_fn) -> np.ndarray:
    grad = np.zeros_like(parameter)
    iterator = np.nditer(parameter, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = parameter[index]
        parameter[index] = original + EPSILON
        loss_plus = loss_fn()
        parameter[index] = original - EPSILON
        loss_minus = loss_fn()
        parameter[index] = original
        grad[index] = (loss_plus - loss_minus) / (2 * EPSILON)
        iterator.iternext()
    return grad


def _tiny_batch(seed: int = 0, n_samples: int = 6, n_features: int = 3,
                n_classes: int = 2):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_samples, n_features))
    y = rng.integers(0, n_classes, size=n_samples)
    return X, one_hot(y, n_classes)


class TestFactorizationMachineGradients:
    def test_analytic_gradients_match_finite_differences(self):
        X, targets = _tiny_batch(seed=1)
        model = FactorizationMachineClassifier(n_factors=2, alpha=0.0,
                                               random_state=0)
        rng = np.random.default_rng(0)
        model.bias_ = rng.normal(size=2)
        model.linear_ = rng.normal(size=(3, 2))
        model.factors_ = rng.normal(size=(2, 3, 2))

        analytic = model._gradients(X, targets)

        def loss():
            return _cross_entropy(model._scores(X), targets)

        for parameter, grad in zip([model.bias_, model.linear_, model.factors_],
                                   analytic):
            numerical = _numerical_gradient(parameter, loss)
            np.testing.assert_allclose(grad, numerical, atol=TOLERANCE)


class TestDeepFMGradients:
    def test_analytic_gradients_match_finite_differences(self):
        X, targets = _tiny_batch(seed=2)
        model = DeepFMClassifier(n_factors=2, hidden_layer_sizes=(4,), alpha=0.0,
                                 random_state=0)
        rng = np.random.default_rng(1)
        model.bias_ = rng.normal(size=2)
        model.linear_ = rng.normal(size=(3, 2))
        model.factors_ = rng.normal(size=(2, 3, 2))
        model.deep_ = DenseStack([3, 4, 2], rng)

        parameters = [model.bias_, model.linear_, model.factors_,
                      *model.deep_.parameters()]
        analytic = model._gradients(X, targets)

        def loss():
            return _cross_entropy(model._logits(X), targets)

        for parameter, grad in zip(parameters, analytic):
            numerical = _numerical_gradient(parameter, loss)
            np.testing.assert_allclose(grad, numerical, atol=TOLERANCE)


class TestDeepCrossNetworkGradients:
    def test_analytic_gradients_match_finite_differences(self):
        X, targets = _tiny_batch(seed=3, n_features=4)
        model = DeepCrossNetworkClassifier(n_cross_layers=2, hidden_layer_sizes=(3,),
                                           alpha=0.0, random_state=0)
        rng = np.random.default_rng(2)
        model.cross_weights_ = [rng.normal(size=4) for _ in range(2)]
        model.cross_biases_ = [rng.normal(size=4) for _ in range(2)]
        model.deep_ = DenseStack([4, 3], rng)
        model.output_weights_ = rng.normal(size=(4 + 3, 2))
        model.output_bias_ = np.zeros(2)

        parameters = [*model.cross_weights_, *model.cross_biases_,
                      model.output_weights_, model.output_bias_,
                      *model.deep_.parameters()]
        analytic = model._gradients(X, targets)

        def loss():
            return _cross_entropy(model._logits(X), targets)

        for parameter, grad in zip(parameters, analytic):
            numerical = _numerical_gradient(parameter, loss)
            np.testing.assert_allclose(grad, numerical, atol=TOLERANCE)


class TestDenseStack:
    def test_forward_shapes(self):
        rng = np.random.default_rng(0)
        stack = DenseStack([5, 4, 3], rng)
        activations = stack.forward(rng.normal(size=(7, 5)))
        assert [a.shape for a in activations] == [(7, 5), (7, 4), (7, 3)]

    def test_backward_gradients_match_finite_differences(self):
        rng = np.random.default_rng(0)
        stack = DenseStack([3, 4, 2], rng)
        X = rng.normal(size=(5, 3))
        _, targets = _tiny_batch(seed=4, n_samples=5, n_features=3)

        activations = stack.forward(X)
        probabilities = softmax(activations[-1])
        delta = (probabilities - targets) / X.shape[0]
        grads_w, grads_b, _ = stack.backward(activations, delta)

        def loss():
            return _cross_entropy(stack.forward(X)[-1], targets)

        for parameter, grad in zip(stack.weights, grads_w):
            numerical = _numerical_gradient(parameter, loss)
            np.testing.assert_allclose(grad, numerical, atol=TOLERANCE)
        for parameter, grad in zip(stack.biases, grads_b):
            numerical = _numerical_gradient(parameter, loss)
            np.testing.assert_allclose(grad, numerical, atol=TOLERANCE)

    def test_hidden_layers_are_relu_nonnegative(self):
        rng = np.random.default_rng(1)
        stack = DenseStack([4, 6, 2], rng)
        activations = stack.forward(rng.normal(size=(10, 4)))
        assert activations[1].min() >= 0.0


class TestAdamOptimizer:
    def test_moves_parameters_toward_lower_quadratic_loss(self):
        parameter = np.array([5.0, -3.0])
        optimizer = AdamOptimizer([parameter], learning_rate=0.1)
        for _ in range(500):
            optimizer.update([2.0 * parameter])  # gradient of ||p||^2
        assert np.all(np.abs(parameter) < 0.5)

    def test_step_size_bounded_by_learning_rate(self):
        parameter = np.array([1.0])
        optimizer = AdamOptimizer([parameter], learning_rate=0.01)
        optimizer.update([np.array([1000.0])])
        assert abs(parameter[0] - 1.0) <= 0.011


class TestIterateMinibatches:
    def test_covers_every_index_exactly_once(self):
        rng = np.random.default_rng(0)
        batches = list(iterate_minibatches(10, 3, rng))
        flat = np.concatenate(batches)
        assert sorted(flat.tolist()) == list(range(10))
        assert max(len(b) for b in batches) == 3
