"""Tests for the deep recommendation models (FM, DeepFM, DCN)."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.deep import (
    DEEP_MODEL_CLASSES,
    DeepCrossNetworkClassifier,
    DeepFMClassifier,
    FactorizationMachineClassifier,
)
from repro.models import make_classifier, roc_auc_score, train_test_split

MODEL_CLASSES = [
    FactorizationMachineClassifier,
    DeepFMClassifier,
    DeepCrossNetworkClassifier,
]


def _xor_interaction_data(n_samples=400, seed=0):
    """Binary labels driven purely by a pairwise interaction (XOR of two bits)."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 2, size=n_samples)
    b = rng.integers(0, 2, size=n_samples)
    noise = rng.normal(scale=0.1, size=(n_samples, 2))
    X = np.column_stack([a, b, a * 0 + rng.normal(size=n_samples)]) + np.column_stack(
        [noise, np.zeros(n_samples)]
    )
    y = (a ^ b).astype(int)
    return X, y


@pytest.mark.parametrize("model_class", MODEL_CLASSES)
class TestCommonBehaviour:
    def test_fit_predict_shapes_and_labels(self, model_class):
        X, y = make_classification(n_samples=120, n_features=6, n_classes=3,
                                   random_state=0)
        model = model_class(max_iter=8, random_state=0)
        model.fit(X, y)
        predictions = model.predict(X)
        assert predictions.shape == (120,)
        assert set(np.unique(predictions)) <= set(np.unique(y))

    def test_predict_proba_rows_sum_to_one(self, model_class):
        X, y = make_classification(n_samples=90, n_features=5, n_classes=2,
                                   random_state=1)
        model = model_class(max_iter=8, random_state=0).fit(X, y)
        probabilities = model.predict_proba(X)
        assert probabilities.shape == (90, 2)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, atol=1e-9)
        assert probabilities.min() >= 0.0

    def test_learns_separable_problem_better_than_chance(self, model_class):
        X, y = make_classification(n_samples=300, n_features=6, n_classes=2,
                                   class_sep=3.0, random_state=2)
        X_train, X_valid, y_train, y_valid = train_test_split(
            X, y, test_size=0.25, random_state=0
        )
        model = model_class(max_iter=25, random_state=0).fit(X_train, y_train)
        assert model.score(X_valid, y_valid) > 0.75

    def test_clone_returns_unfitted_copy_with_same_params(self, model_class):
        model = model_class(max_iter=5, random_state=3)
        clone = model.clone()
        assert clone is not model
        assert clone.get_params() == model.get_params()
        assert not clone.is_fitted()

    def test_decision_function_matches_argmax_of_proba(self, model_class):
        X, y = make_classification(n_samples=80, n_features=4, random_state=4)
        model = model_class(max_iter=8, random_state=0).fit(X, y)
        scores = model.decision_function(X)
        probabilities = model.predict_proba(X)
        np.testing.assert_array_equal(
            np.argmax(scores, axis=1), np.argmax(probabilities, axis=1)
        )

    def test_predict_before_fit_raises(self, model_class):
        from repro.exceptions import NotFittedError

        with pytest.raises(NotFittedError):
            model_class().predict(np.zeros((3, 2)))


class TestInteractionLearning:
    def test_fm_learns_xor_interaction_that_linear_model_cannot(self):
        X, y = _xor_interaction_data(n_samples=500, seed=0)
        X_train, X_valid, y_train, y_valid = train_test_split(
            X, y, test_size=0.25, random_state=0
        )
        fm = FactorizationMachineClassifier(
            n_factors=8, max_iter=60, learning_rate=0.1, random_state=0
        ).fit(X_train, y_train)
        linear = make_classifier("lr").fit(X_train, y_train)
        assert fm.score(X_valid, y_valid) > linear.score(X_valid, y_valid) + 0.1

    def test_deepfm_and_dcn_learn_xor_interaction(self):
        X, y = _xor_interaction_data(n_samples=500, seed=1)
        X_train, X_valid, y_train, y_valid = train_test_split(
            X, y, test_size=0.25, random_state=0
        )
        for model_class in (DeepFMClassifier, DeepCrossNetworkClassifier):
            model = model_class(max_iter=60, learning_rate=0.05,
                                random_state=0).fit(X_train, y_train)
            assert model.score(X_valid, y_valid) > 0.8


class TestRegistryIntegration:
    def test_deep_models_available_through_make_classifier(self):
        for name in DEEP_MODEL_CLASSES:
            model = make_classifier(name, fast=True)
            assert isinstance(model, DEEP_MODEL_CLASSES[name])

    def test_fast_params_reduce_training_epochs(self):
        model = make_classifier("deepfm", fast=True)
        assert model.max_iter <= 20


class TestDeepCrossNetworkSpecifics:
    def test_no_hidden_layers_uses_cross_branch_only(self):
        X, y = make_classification(n_samples=100, n_features=5, random_state=0)
        model = DeepCrossNetworkClassifier(hidden_layer_sizes=(), max_iter=10,
                                           random_state=0).fit(X, y)
        assert model.deep_ is None
        assert model.predict(X).shape == (100,)

    def test_number_of_cross_layers_respected(self):
        X, y = make_classification(n_samples=80, n_features=4, random_state=0)
        model = DeepCrossNetworkClassifier(n_cross_layers=3, max_iter=5,
                                           random_state=0).fit(X, y)
        assert len(model.cross_weights_) == 3
        assert len(model.cross_biases_) == 3


class TestAUC:
    def test_auc_above_half_on_separable_binary_problem(self):
        X, y = make_classification(n_samples=250, n_features=6, class_sep=2.5,
                                   random_state=5)
        X_train, X_valid, y_train, y_valid = train_test_split(
            X, y, test_size=0.25, random_state=0
        )
        model = DeepFMClassifier(max_iter=25, random_state=0).fit(X_train, y_train)
        auc = roc_auc_score(y_valid, model.predict_proba(X_valid)[:, 1])
        assert auc > 0.7
