"""Tests for PipelineEvaluator, budgets, trial records and search results."""

import numpy as np
import pytest

from repro.core import (
    CompositeBudget,
    Pipeline,
    PipelineEvaluator,
    SearchResult,
    TimeBudget,
    TrialBudget,
    TrialRecord,
)
from repro.exceptions import BudgetExhaustedError, ValidationError
from repro.models import LogisticRegression


class TestTrialBudget:
    def test_consumption(self):
        budget = TrialBudget(3)
        assert not budget.exhausted()
        budget.consume()
        budget.consume()
        assert budget.remaining() == 1
        budget.consume()
        assert budget.exhausted()

    def test_fractional_consumption(self):
        budget = TrialBudget(2)
        budget.consume(0.5)
        budget.consume(0.5)
        assert budget.remaining() == pytest.approx(1.0)

    def test_check_raises_when_exhausted(self):
        budget = TrialBudget(1)
        budget.consume()
        with pytest.raises(BudgetExhaustedError):
            budget.check()

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValidationError):
            TrialBudget(0)


class TestTimeBudget:
    def test_exhaustion_with_fake_clock(self):
        now = [0.0]
        budget = TimeBudget(10.0, clock=lambda: now[0])
        assert not budget.exhausted()
        now[0] = 5.0
        assert budget.remaining() == pytest.approx(5.0)
        now[0] = 11.0
        assert budget.exhausted()

    def test_invalid_seconds_rejected(self):
        with pytest.raises(ValidationError):
            TimeBudget(0.0)


class TestCompositeBudget:
    def test_exhausted_when_any_member_is(self):
        trials = TrialBudget(100)
        now = [0.0]
        time_budget = TimeBudget(1.0, clock=lambda: now[0])
        combined = CompositeBudget(trials, time_budget)
        assert not combined.exhausted()
        now[0] = 2.0
        assert combined.exhausted()

    def test_consume_propagates(self):
        first, second = TrialBudget(5), TrialBudget(10)
        CompositeBudget(first, second).consume(2)
        assert first.used == 2
        assert second.used == 2


class TestPipelineEvaluator:
    def test_baseline_uses_empty_pipeline(self, lr_evaluator):
        baseline = lr_evaluator.baseline_accuracy()
        assert 0.0 <= baseline <= 1.0

    def test_evaluate_returns_trial_record(self, lr_evaluator):
        record = lr_evaluator.evaluate(Pipeline.from_names(["standard_scaler"]))
        assert isinstance(record, TrialRecord)
        assert 0.0 <= record.accuracy <= 1.0
        assert record.prep_time >= 0.0
        assert record.train_time >= 0.0
        assert record.error == pytest.approx(1.0 - record.accuracy)

    def test_preprocessing_improves_distorted_data(self, lr_evaluator):
        """A scaling pipeline beats no preprocessing on scale-distorted data."""
        baseline = lr_evaluator.baseline_accuracy()
        scaled = lr_evaluator.evaluate(
            Pipeline.from_names(["quantile_transformer"])
        ).accuracy
        assert scaled >= baseline

    def test_cache_returns_same_accuracy(self, lr_evaluator):
        pipeline = Pipeline.from_names(["minmax_scaler", "standard_scaler"])
        first = lr_evaluator.evaluate(pipeline)
        second = lr_evaluator.evaluate(pipeline)
        assert first.accuracy == second.accuracy

    def test_cache_can_be_disabled(self, distorted_data):
        X, y = distorted_data
        evaluator = PipelineEvaluator.from_dataset(
            X, y, LogisticRegression(max_iter=30), cache=False, random_state=0
        )
        pipeline = Pipeline.from_names(["standard_scaler"])
        evaluator.evaluate(pipeline)
        evaluator.evaluate(pipeline)
        assert evaluator.n_evaluations == 2

    def test_low_fidelity_uses_fewer_rows(self, lr_evaluator):
        record = lr_evaluator.evaluate(
            Pipeline.from_names(["standard_scaler"]), fidelity=0.3
        )
        assert record.fidelity == 0.3
        assert 0.0 <= record.accuracy <= 1.0

    def test_invalid_fidelity_rejected(self, lr_evaluator):
        with pytest.raises(ValidationError):
            lr_evaluator.evaluate(Pipeline(), fidelity=0.0)

    def test_pick_time_recorded(self, lr_evaluator):
        record = lr_evaluator.evaluate(Pipeline(), pick_time=0.25)
        assert record.pick_time == 0.25
        assert record.total_time >= 0.25

    def test_feature_count_mismatch_rejected(self, distorted_data):
        X, y = distorted_data
        with pytest.raises(ValidationError):
            PipelineEvaluator(X[:, :3], y, X[:, :4], y, LogisticRegression())

    def test_evaluate_many(self, lr_evaluator, small_space):
        pipelines = small_space.sample_pipelines(3, random_state=0)
        records = lr_evaluator.evaluate_many(pipelines)
        assert len(records) == 3


def _failing_pipeline():
    from repro.preprocessing.base import Preprocessor

    class Exploding(Preprocessor):
        name = "exploding"

        def __init__(self):
            super().__init__()

        def _fit(self, X, y=None):
            raise ValueError("synthetic numerical failure")

        def _transform(self, X):  # pragma: no cover - fit always fails first
            return X

    return Pipeline([Exploding()])


class TestFailureCaching:
    def _evaluator(self, distorted_data, **kwargs):
        X, y = distorted_data
        return PipelineEvaluator.from_dataset(
            X, y, LogisticRegression(max_iter=30), random_state=0, **kwargs
        )

    def test_failed_evaluation_is_cached(self, distorted_data):
        evaluator = self._evaluator(distorted_data)
        pipeline = _failing_pipeline()
        first = evaluator.evaluate(pipeline)
        assert first.accuracy == 0.0
        assert evaluator.n_evaluations == 1
        # The repeat evaluation must come from the cache: the degenerate
        # pipeline's prep cost is paid exactly once.
        second = evaluator.evaluate(pipeline)
        assert second.accuracy == 0.0
        assert evaluator.n_evaluations == 1
        assert evaluator.cache_hits == 1

    def test_failed_entry_records_prep_time(self, distorted_data):
        evaluator = self._evaluator(distorted_data)
        record = evaluator.evaluate(_failing_pipeline())
        assert record.train_time == 0.0
        assert record.prep_time >= 0.0


class TestBoundedCache:
    def _evaluator(self, distorted_data, **kwargs):
        X, y = distorted_data
        return PipelineEvaluator.from_dataset(
            X, y, LogisticRegression(max_iter=30), random_state=0, **kwargs
        )

    def test_lru_eviction_respects_bound(self, distorted_data):
        evaluator = self._evaluator(distorted_data, cache_size=3)
        names = ["standard_scaler", "minmax_scaler", "maxabs_scaler",
                 "normalizer", "binarizer"]
        for name in names:
            evaluator.evaluate(Pipeline.from_names([name]))
        info = evaluator.cache_info()
        assert info["size"] == 3
        assert info["maxsize"] == 3
        assert info["evictions"] == 2

    def test_lru_keeps_recently_used_entries(self, distorted_data):
        evaluator = self._evaluator(distorted_data, cache_size=2)
        a = Pipeline.from_names(["standard_scaler"])
        b = Pipeline.from_names(["minmax_scaler"])
        c = Pipeline.from_names(["maxabs_scaler"])
        evaluator.evaluate(a)
        evaluator.evaluate(b)
        evaluator.evaluate(a)  # refresh a: b is now least-recently-used
        evaluator.evaluate(c)  # evicts b
        evaluations_before = evaluator.n_evaluations
        evaluator.evaluate(a)
        assert evaluator.n_evaluations == evaluations_before  # hit
        evaluator.evaluate(b)
        assert evaluator.n_evaluations == evaluations_before + 1  # evicted

    def test_hit_miss_counters(self, distorted_data):
        evaluator = self._evaluator(distorted_data)
        pipeline = Pipeline.from_names(["standard_scaler"])
        evaluator.evaluate(pipeline)
        evaluator.evaluate(pipeline)
        evaluator.evaluate(pipeline, fidelity=0.5)  # different key
        info = evaluator.cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 2
        assert info["size"] == 2

    def test_invalid_cache_size_rejected(self, distorted_data):
        X, y = distorted_data
        with pytest.raises(ValidationError):
            PipelineEvaluator.from_dataset(
                X, y, LogisticRegression(max_iter=30), cache_size=0
            )


class TestDeterministicSubsampling:
    def _evaluator(self, distorted_data, random_state=0):
        X, y = distorted_data
        return PipelineEvaluator.from_dataset(
            X, y, LogisticRegression(max_iter=30), cache=False,
            random_state=random_state,
        )

    def test_low_fidelity_result_independent_of_evaluation_order(self, distorted_data):
        pipeline_a = Pipeline.from_names(["standard_scaler"])
        pipeline_b = Pipeline.from_names(["minmax_scaler"])

        forward = self._evaluator(distorted_data)
        a_first = forward.evaluate(pipeline_a, fidelity=0.4)
        b_second = forward.evaluate(pipeline_b, fidelity=0.4)

        backward = self._evaluator(distorted_data)
        b_first = backward.evaluate(pipeline_b, fidelity=0.4)
        a_second = backward.evaluate(pipeline_a, fidelity=0.4)

        assert a_first.accuracy == a_second.accuracy
        assert b_first.accuracy == b_second.accuracy

    def test_subsample_seed_differs_per_pipeline_and_fidelity(self, distorted_data):
        evaluator = self._evaluator(distorted_data)
        rng_a = evaluator._subsample_rng(Pipeline.from_names(["standard_scaler"]), 0.4)
        rng_b = evaluator._subsample_rng(Pipeline.from_names(["minmax_scaler"]), 0.4)
        rng_c = evaluator._subsample_rng(Pipeline.from_names(["standard_scaler"]), 0.5)
        draws = {tuple(rng.integers(0, 1000, size=3).tolist())
                 for rng in (rng_a, rng_b, rng_c)}
        assert len(draws) == 3

    def test_different_random_state_changes_subsample(self, distorted_data):
        pipeline = Pipeline.from_names(["standard_scaler"])
        one = self._evaluator(distorted_data, random_state=0)
        two = self._evaluator(distorted_data, random_state=1)
        rng_one = one._subsample_rng(pipeline, 0.4)
        rng_two = two._subsample_rng(pipeline, 0.4)
        assert rng_one.integers(0, 10**9) != rng_two.integers(0, 10**9)


class TestSearchResult:
    def _record(self, accuracy, fidelity=1.0, **times):
        return TrialRecord(Pipeline(), accuracy=accuracy, fidelity=fidelity, **times)

    def test_best_trial_prefers_full_fidelity(self):
        result = SearchResult(algorithm="test")
        result.add(self._record(0.99, fidelity=0.1))
        result.add(self._record(0.7, fidelity=1.0))
        assert result.best_accuracy == 0.7

    def test_best_trial_falls_back_to_partial(self):
        result = SearchResult(algorithm="test")
        result.add(self._record(0.4, fidelity=0.5))
        assert result.best_accuracy == 0.4

    def test_empty_result_raises(self):
        with pytest.raises(ValidationError):
            SearchResult(algorithm="test").best_trial()

    def test_improvement_over_baseline(self):
        result = SearchResult(algorithm="test", baseline_accuracy=0.6)
        result.add(self._record(0.75))
        assert result.improvement_over_baseline() == pytest.approx(15.0)

    def test_trajectory_is_monotone(self):
        result = SearchResult(algorithm="test")
        for accuracy in [0.5, 0.4, 0.7, 0.6, 0.9]:
            result.add(self._record(accuracy))
        trajectory = result.accuracy_trajectory()
        assert np.all(np.diff(trajectory) >= 0)
        assert trajectory[-1] == 0.9

    def test_time_breakdown_percentages_sum_to_100(self):
        result = SearchResult(algorithm="test")
        result.add(self._record(0.5, pick_time=1.0, prep_time=2.0, train_time=7.0))
        percentages = result.time_breakdown_percent()
        assert sum(percentages.values()) == pytest.approx(100.0)
        assert result.bottleneck() == "train"
