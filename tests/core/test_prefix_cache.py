"""Prefix-transform cache: byte-budgeted LRU, short-circuits, COW discipline.

Unit tests for :mod:`repro.core.prefixcache` plus the evaluator-level
behaviour of ``PipelineEvaluator(prefix_cache_bytes=...)``: incremental
evaluation must be bit-for-bit identical to the cold path, failed prefixes
must fail all their extensions without re-running Prep, and no registered
preprocessor may mutate its input arrays (the copy-on-write discipline the
cache relies on — cached arrays are handed to later steps as-is).

The cross-backend guarantee (cache-on == cache-off on serial/thread/process,
sync and async) lives in ``tests/engine/test_determinism.py``.
"""

import importlib.util
import pickle
from pathlib import Path

import numpy as np
import pytest

from repro.core.evaluation import PipelineEvaluator
from repro.core.pipeline import FittedPipeline, Pipeline
from repro.core.prefixcache import (
    PrefixTransformCache,
    make_prefix_cache,
)
from repro.datasets.synthetic import distort_features, make_classification
from repro.exceptions import ValidationError
from repro.models.linear import LogisticRegression
from repro.preprocessing import default_preprocessors
from repro.preprocessing.base import Preprocessor
from repro.preprocessing.extended import EXTENDED_PREPROCESSOR_NAMES
from repro.preprocessing.registry import DEFAULT_PREPROCESSOR_NAMES


def _spec(*names: str) -> tuple:
    return Pipeline.from_names(names).spec()


def _arrays(n_bytes: int):
    """A (train, valid) pair whose combined payload is ``n_bytes``."""
    n_values = n_bytes // 8 // 2
    return (np.zeros(n_values, dtype=np.float64),
            np.zeros(n_bytes // 8 - n_values, dtype=np.float64))


class TestByteBudgetLRU:
    def test_insert_and_longest_prefix_lookup(self):
        cache = PrefixTransformCache(max_bytes=1 << 20)
        spec = _spec("standard_scaler", "normalizer", "binarizer")
        train, valid = _arrays(800)
        cache.store(spec[:1], 1.0, None, ("step1",), train, valid)
        cache.store(spec[:2], 1.0, None, ("step1", "step2"), train, valid)

        length, entry = cache.longest_prefix(spec, 1.0, None)
        assert length == 2
        assert entry.fitted_steps == ("step1", "step2")
        assert cache.steps_reused == 2

        # An unrelated spec misses entirely.
        length, entry = cache.longest_prefix(_spec("binarizer"), 1.0, None)
        assert (length, entry) == (0, None)
        assert cache.misses == 1

    def test_byte_budget_evicts_least_recently_used(self):
        train, valid = _arrays(400)
        cache = PrefixTransformCache(max_bytes=1000)  # room for two entries
        first = _spec("standard_scaler")
        second = _spec("normalizer")
        third = _spec("binarizer")
        cache.store(first, 1.0, None, (), train, valid)
        cache.store(second, 1.0, None, (), train, valid)
        assert cache.bytes_held == 800

        # Touch `first` so `second` becomes the LRU victim.
        cache.longest_prefix(first, 1.0, None)
        cache.store(third, 1.0, None, (), train, valid)
        assert cache.evictions == 1
        assert cache.bytes_held == 800
        assert cache.longest_prefix(second, 1.0, None) == (0, None)
        assert cache.longest_prefix(first, 1.0, None)[0] == 1
        assert cache.longest_prefix(third, 1.0, None)[0] == 1

    def test_entry_larger_than_budget_is_not_stored(self):
        cache = PrefixTransformCache(max_bytes=100)
        train, valid = _arrays(800)
        cache.store(_spec("normalizer"), 1.0, None, (), train, valid)
        assert len(cache) == 0
        assert cache.insertions == 0

    def test_failure_tombstones_cost_no_budget(self):
        cache = PrefixTransformCache(max_bytes=100)
        cache.store_failure(_spec("normalizer"), 1.0, None)
        assert len(cache) == 1
        assert cache.bytes_held == 0
        length, entry = cache.longest_prefix(_spec("normalizer", "binarizer"),
                                             1.0, None)
        assert length == 1 and entry.failed
        assert cache.failed_short_circuits == 1

    def test_fidelity_and_token_scope_entries(self):
        cache = PrefixTransformCache(max_bytes=1 << 20)
        train, valid = _arrays(160)
        spec = _spec("standard_scaler", "normalizer")
        cache.store(spec[:1], 1.0, None, (), train, valid)
        # Same prefix at another fidelity (hence another subsample) misses.
        assert cache.longest_prefix(spec, 0.5, spec) == (0, None)
        token_other = _spec("standard_scaler", "binarizer")
        cache.store(spec[:1], 0.5, token_other, (), train, valid)
        assert cache.longest_prefix(spec, 0.5, spec) == (0, None)
        assert cache.longest_prefix(spec, 1.0, None)[0] == 1

    def test_stored_arrays_are_read_only(self):
        cache = PrefixTransformCache(max_bytes=1 << 20)
        train, valid = _arrays(160)
        cache.store(_spec("normalizer"), 1.0, None, (), train, valid)
        _, entry = cache.longest_prefix(_spec("normalizer"), 1.0, None)
        with pytest.raises(ValueError):
            entry.X_train[0] = 1.0
        with pytest.raises(ValueError):
            valid[0] = 1.0  # freezing applies to the caller's object too

    def test_make_prefix_cache_option_handling(self):
        assert make_prefix_cache(None) is None
        assert make_prefix_cache(0) is None
        cache = make_prefix_cache(12345)
        assert isinstance(cache, PrefixTransformCache)
        assert cache.max_bytes == 12345
        with pytest.raises(ValidationError):
            PrefixTransformCache(max_bytes=0)


# --------------------------------------------------------------- evaluator
class ExplodingPreprocessor(Preprocessor):
    """Fails during fit with the numerical error the evaluator catches."""

    name = "exploding"

    def __init__(self) -> None:
        super().__init__()

    def _fit(self, X, y=None):
        raise ValueError("synthetic numerical failure")

    def _transform(self, X):  # pragma: no cover - fit always fails first
        return X


class CountingScaler(Preprocessor):
    """StandardScaler clone that counts its fit calls (class-wide)."""

    name = "counting_scaler"
    fit_calls = 0

    def __init__(self) -> None:
        super().__init__()

    def _fit(self, X, y=None):
        type(self).fit_calls += 1
        self.mean_ = X.mean(axis=0)
        self.scale_ = X.std(axis=0)
        self.scale_[self.scale_ == 0] = 1.0

    def _transform(self, X):
        return (X - self.mean_) / self.scale_


@pytest.fixture()
def data():
    X, y = make_classification(n_samples=120, n_features=6, n_classes=2,
                               class_sep=2.0, random_state=3)
    return distort_features(X, random_state=3), y


def _evaluator(data, **kwargs):
    X, y = data
    return PipelineEvaluator.from_dataset(
        X, y, LogisticRegression(max_iter=40), random_state=0, **kwargs
    )


class TestEvaluatorPrefixReuse:
    def test_extension_reuses_fitted_prefix(self, data):
        CountingScaler.fit_calls = 0
        evaluator = _evaluator(data, prefix_cache_bytes=1 << 24)
        base = Pipeline([CountingScaler()])
        extended = base.append(default_preprocessors(["normalizer"])[0])
        evaluator.evaluate(base)
        assert CountingScaler.fit_calls == 1
        evaluator.evaluate(extended)
        # The scaler prefix came from the cache: no second fit.
        assert CountingScaler.fit_calls == 1
        info = evaluator.cache_info()
        assert info["prefix_hits"] == 1
        assert info["steps_reused"] == 1
        assert info["bytes_held"] > 0

    def test_incremental_matches_cold_path_bit_for_bit(self, data):
        cold = _evaluator(data)
        warm = _evaluator(data, prefix_cache_bytes=1 << 24)
        names = ("standard_scaler", "normalizer", "binarizer",
                 "quantile_transformer")
        pipelines = [Pipeline.from_names(names[:k]) for k in range(1, 5)]
        pipelines += [Pipeline.from_names(("standard_scaler", "binarizer"))]
        for fidelity in (1.0, 0.5):
            for pipeline in pipelines:
                a = cold.evaluate(pipeline, fidelity=fidelity)
                b = warm.evaluate(pipeline, fidelity=fidelity)
                assert a.accuracy == b.accuracy

    def test_failed_prefix_short_circuits_extensions(self, data):
        evaluator = _evaluator(data, prefix_cache_bytes=1 << 24)
        failing = Pipeline([ExplodingPreprocessor()])
        record = evaluator.evaluate(failing)
        assert record.accuracy == 0.0
        CountingScaler.fit_calls = 0
        extended = failing.append(CountingScaler())
        record = evaluator.evaluate(extended)
        assert record.accuracy == 0.0
        # The extension never re-ran Prep: the tombstone answered it.
        assert CountingScaler.fit_calls == 0
        assert evaluator.cache_info()["prefix_short_circuits"] == 1

    def test_full_pipeline_prefix_hit_skips_all_prep(self, data):
        CountingScaler.fit_calls = 0
        evaluator = _evaluator(data, cache=False, prefix_cache_bytes=1 << 24)
        pipeline = Pipeline([CountingScaler()])
        first = evaluator.evaluate(pipeline)
        second = evaluator.evaluate(pipeline)
        # The memoization cache is off, so the evaluation re-runs — but the
        # whole-pipeline prefix entry answers Prep without re-fitting.
        assert CountingScaler.fit_calls == 1
        assert first.accuracy == second.accuracy

    def test_process_worker_rebuilds_its_own_cache(self, data):
        evaluator = _evaluator(data, prefix_cache_bytes=1 << 20)
        evaluator.evaluate(Pipeline.from_names(("standard_scaler",)))
        assert len(evaluator.prefix_cache) == 1
        clone = pickle.loads(pickle.dumps(evaluator))
        # Fresh, private cache with the same budget — not the parent's.
        assert clone.prefix_cache is not evaluator.prefix_cache
        assert clone.prefix_cache.max_bytes == 1 << 20
        assert len(clone.prefix_cache) == 0
        record = clone.evaluate(Pipeline.from_names(("standard_scaler",)))
        assert record.accuracy == \
            evaluator.evaluate(Pipeline.from_names(("standard_scaler",))).accuracy

    def test_disabled_by_default(self, data):
        evaluator = _evaluator(data)
        assert evaluator.prefix_cache is None
        assert "prefix_hits" not in evaluator.cache_info()

    def test_cow_violation_raises_loudly_instead_of_scoring_zero(self, data):
        # A transformer that mutates its input in place works without the
        # cache (it scribbles on its own fresh copy) — with the cache it
        # would corrupt shared arrays, so the frozen array turns the write
        # into a LOUD contract error, never a silent 0.0-accuracy "failure"
        # that would diverge from the cache-off baseline.
        from repro.exceptions import CopyOnWriteViolationError

        class InPlaceCenterer(Preprocessor):
            name = "inplace_centerer"

            def __init__(self) -> None:
                super().__init__()

            def _fit(self, X, y=None):
                self.mean_ = X.mean(axis=0)

            def _transform(self, X):
                X -= self.mean_  # in-place: fine cold, forbidden cached
                return X

        pipeline = Pipeline([CountingScaler(), InPlaceCenterer()])
        cold = _evaluator(data)
        assert cold.evaluate(pipeline).accuracy > 0.0  # works without cache

        warm = _evaluator(data, prefix_cache_bytes=1 << 24)
        warm.evaluate(Pipeline([CountingScaler()]))  # cache the prefix
        with pytest.raises(CopyOnWriteViolationError):
            warm.evaluate(pipeline)

    def test_mutating_model_cannot_corrupt_the_canonical_split(self, data):
        # A zero-step pipeline hands the split straight through, and
        # _sanitize no longer copies finite input — the evaluator must
        # still shield X_train/X_valid from a model that scribbles on its
        # training matrix.
        X, y = data

        class ScribblingModel(LogisticRegression):
            def fit(self, X, y):
                X[:] = 0.0
                return super().fit(X, y)

        evaluator = PipelineEvaluator.from_dataset(
            X, y, ScribblingModel(max_iter=40), random_state=0
        )
        before_train = evaluator.X_train.copy()
        before_valid = evaluator.X_valid.copy()
        evaluator.evaluate(Pipeline())  # the baseline / no-FP evaluation
        assert np.array_equal(evaluator.X_train, before_train)
        assert np.array_equal(evaluator.X_valid, before_valid)

    def test_mutating_model_on_cached_prefix_raises_cow_error(self, data):
        from repro.exceptions import CopyOnWriteViolationError

        X, y = data

        class ScribblingModel(LogisticRegression):
            def fit(self, X, y):
                X -= X.mean(axis=0)
                return super().fit(X, y)

        evaluator = PipelineEvaluator.from_dataset(
            X, y, ScribblingModel(max_iter=40), random_state=0,
            prefix_cache_bytes=1 << 24,
        )
        # The pipeline's final transform output is registered (and frozen)
        # in the prefix cache, so the model's in-place write must surface
        # as the cache's contract error, not a bare numpy ValueError.
        with pytest.raises(CopyOnWriteViolationError):
            evaluator.evaluate(Pipeline.from_names(("standard_scaler",)))

    def test_clear_cache_also_drops_prefix_entries(self, data):
        evaluator = _evaluator(data, prefix_cache_bytes=1 << 24)
        evaluator.evaluate(Pipeline.from_names(("standard_scaler",)))
        assert evaluator.cache_info()["bytes_held"] > 0
        evaluator.clear_cache()
        assert evaluator.cache_info()["bytes_held"] == 0
        assert evaluator.cache_info()["prefix_entries"] == 0

    def test_low_fidelity_prefixes_spend_no_budget(self, data):
        # A fidelity < 1 training subset is derived from the full pipeline
        # spec, so its prefixes could only be re-hit by the exact same
        # (spec, fidelity) — which the memoization cache answers first.
        # Low-fidelity evaluations therefore bypass the prefix cache
        # entirely: no entries, no budget, not even a probe.
        evaluator = _evaluator(data, prefix_cache_bytes=1 << 24)
        evaluator.evaluate(Pipeline.from_names(("standard_scaler",)),
                           fidelity=0.5)
        evaluator.evaluate(Pipeline([ExplodingPreprocessor()]), fidelity=0.5)
        info = evaluator.cache_info()
        assert len(evaluator.prefix_cache) == 0
        assert info["bytes_held"] == 0
        assert info["prefix_hits"] == 0 and info["prefix_misses"] == 0


# ----------------------------------------------------- resumable fit API
class TestWorkerCounterMergeBack:
    """Process-pool workers' prefix-cache counters reach the parent.

    Workers evaluate against private caches; without the per-evaluation
    delta merge (``PipelineEvaluator.absorb_worker_counters``) the parent's
    ``prefix_hits``/``steps_reused`` read 0 under the process backend even
    though real reuse happened in the workers.
    """

    def _pipelines(self):
        base = Pipeline.from_names(["standard_scaler", "normalizer"])
        return [
            base,
            base.append(default_preprocessors(["binarizer"])[0]),
            base.append(default_preprocessors(["maxabs_scaler"])[0]),
            base.append(default_preprocessors(["minmax_scaler"])[0]),
        ]

    def test_batch_path_merges_worker_deltas(self, data):
        from repro.engine import ExecutionEngine

        engine = ExecutionEngine("process", n_workers=1)
        evaluator = _evaluator(data, prefix_cache_bytes=1 << 24,
                               engine=engine)
        try:
            records = evaluator.evaluate_many(self._pipelines())
        finally:
            engine.close()
        info = evaluator.cache_info()
        # One worker fits the shared two-step prefix once and resumes the
        # three extensions from it.
        assert info["prefix_hits"] >= 3
        assert info["steps_reused"] >= 6
        # The delta never leaks into cached entries or records.
        assert all(record.accuracy is not None for record in records)
        for entry in evaluator._cache.values():
            assert "_metrics_delta" not in entry

    def test_futures_path_merges_worker_deltas(self, data):
        from repro.engine import ExecutionEngine

        engine = ExecutionEngine("process", n_workers=1)
        evaluator = _evaluator(data, prefix_cache_bytes=1 << 24,
                               engine=engine)
        try:
            pending = engine.submit_tasks(evaluator, self._pipelines())
            for handle in pending:
                engine.resolve_task(evaluator, handle)
        finally:
            engine.close()
        info = evaluator.cache_info()
        assert info["prefix_hits"] >= 3
        assert info["steps_reused"] >= 6

    def test_parent_and_worker_counters_accumulate(self, data):
        """Serial reuse in the parent and worker deltas add up, and the
        search results stay identical to the engine-less run."""
        from repro.engine import ExecutionEngine
        from repro.core.problem import AutoFPProblem
        from repro.core.search_space import SearchSpace
        from repro.search import make_search_algorithm

        X, y = data

        def run(engine):
            problem = AutoFPProblem.from_arrays(
                X, y, LogisticRegression(max_iter=40),
                space=SearchSpace(max_length=3), random_state=0,
            )
            cached = PipelineEvaluator.from_dataset(
                X, y, LogisticRegression(max_iter=40), random_state=0,
                prefix_cache_bytes=1 << 24, engine=engine,
            )
            problem.evaluator = cached
            result = make_search_algorithm("pbt", random_state=0).search(
                problem, max_trials=10)
            if engine is not None:
                engine.close()
            return result, cached.cache_info()

        serial_result, serial_info = run(None)
        process_result, process_info = run(
            ExecutionEngine("process", n_workers=2))
        assert [t.accuracy for t in process_result.trials] == \
            [t.accuracy for t in serial_result.trials]
        # Worker activity reached the parent's counters (which tasks land
        # on which worker — and hence how much *reuse* each private cache
        # sees — is scheduling-dependent, but every worker evaluation
        # probes its cache, so merged misses are deterministic evidence).
        assert process_info["prefix_hits"] + process_info["prefix_misses"] > 0
        assert serial_info["prefix_hits"] > 0  # the serial reference reuses


class TestResumableFit:
    def test_fit_transform_from_matches_full_fit(self, data):
        X, _ = data
        pipeline = Pipeline.from_names(
            ("standard_scaler", "normalizer", "binarizer")
        )
        fitted, full = pipeline.fit_transform(X)
        prefix_fitted, prefix_out = Pipeline(pipeline.steps[:2]).fit_transform(X)
        suffix, resumed = pipeline.fit_transform_from(2, prefix_out.copy())
        assert np.array_equal(resumed, full)
        composed = FittedPipeline.compose(pipeline, prefix_fitted.fitted_steps,
                                          suffix)
        assert np.array_equal(composed.transform(X), fitted.transform(X))

    def test_step_callback_sees_every_intermediate_prefix(self, data):
        X, _ = data
        pipeline = Pipeline.from_names(("standard_scaler", "normalizer"))
        seen = []
        pipeline.fit_transform_from(
            0, X, step_callback=lambda end, step, cur: seen.append(
                (end, step.name, cur.shape))
        )
        assert [(end, name) for end, name, _ in seen] == \
            [(1, "standard_scaler"), (2, "normalizer")]

    def test_invalid_prefix_lengths_are_rejected(self, data):
        X, _ = data
        pipeline = Pipeline.from_names(("standard_scaler",))
        with pytest.raises(ValidationError):
            pipeline.fit_transform_from(2, X)
        fitted = pipeline.fit(X)
        with pytest.raises(ValidationError):
            fitted.transform_from(5, X)
        with pytest.raises(ValidationError):
            FittedPipeline.compose(pipeline, fitted.fitted_steps,
                                   fitted.fitted_steps)

    def test_transform_from_applies_only_the_suffix(self, data):
        X, _ = data
        pipeline = Pipeline.from_names(("standard_scaler", "normalizer"))
        fitted, full = pipeline.fit_transform(X)
        after_first = fitted.fitted_steps[0].transform(
            np.asarray(X, dtype=np.float64))
        assert np.array_equal(fitted.transform_from(1, after_first), full)


# ------------------------------------------------- copy-on-write guards
ALL_PREPROCESSOR_NAMES = DEFAULT_PREPROCESSOR_NAMES + EXTENDED_PREPROCESSOR_NAMES


@pytest.mark.parametrize("name", ALL_PREPROCESSOR_NAMES)
def test_preprocessor_never_mutates_its_input(name, data):
    """COW discipline: cached arrays are shared, so fit/transform must not
    write to their inputs — neither on the train nor the transform side."""
    from repro.preprocessing.extended import get_extended_preprocessor_class
    from repro.preprocessing.registry import PREPROCESSOR_CLASSES

    if name in PREPROCESSOR_CLASSES:
        step = PREPROCESSOR_CLASSES[name]()
    else:
        step = get_extended_preprocessor_class(name)()
    X, _ = data
    X = np.asarray(X, dtype=np.float64)
    train, other = X[:80], X[80:]
    train_copy, other_copy = train.copy(), other.copy()
    step.fit_transform(train)
    step.transform(other)
    assert np.array_equal(train, train_copy), f"{name} mutated fit input"
    assert np.array_equal(other, other_copy), f"{name} mutated transform input"


BENCH_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "bench_prefix_reuse.py"
)


def test_bench_prefix_reuse_smoke():
    """Exercise the benchmark harness's smoke mode under tier-1.

    The smoke mode asserts the determinism contract (identical accuracies)
    and a meaningful reused-step fraction on the evolution + PNAS workload,
    using deterministic counters so it cannot flake on machine speed.
    """
    spec = importlib.util.spec_from_file_location("bench_prefix_reuse",
                                                  BENCH_PATH)
    bench = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bench)
    off, on = bench.smoke_check()
    assert on["steps_reused"] > 0
    assert on["total_steps"] == off["total_steps"]


class TestSanitizeCopyElision:
    def test_finite_input_is_returned_unchanged_same_object(self):
        X = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert PipelineEvaluator._sanitize(X) is X

    def test_non_finite_input_still_copies_and_cleans(self):
        X = np.array([[np.nan, np.inf], [-np.inf, 1.0]])
        cleaned = PipelineEvaluator._sanitize(X)
        assert cleaned is not X
        assert np.all(np.isfinite(cleaned))
        assert cleaned[1, 1] == 1.0


class TestAdaptiveBudget:
    """``max_bytes=None`` sizes the budget from available memory."""

    def test_fraction_of_available_memory(self):
        from repro.core.prefixcache import (
            ADAPTIVE_MEMORY_FRACTION,
            adaptive_prefix_cache_bytes,
        )
        available = 8 * 1024 * 1024 * 1024  # an 8 GiB box
        expected = int(available * ADAPTIVE_MEMORY_FRACTION)
        assert adaptive_prefix_cache_bytes(available) == expected

    def test_clamped_at_both_ends(self):
        from repro.core.prefixcache import (
            ADAPTIVE_MAX_BYTES,
            ADAPTIVE_MIN_BYTES,
            adaptive_prefix_cache_bytes,
        )
        # a tiny container must not get a useless sliver of a budget
        assert adaptive_prefix_cache_bytes(16 * 1024 * 1024) == \
            ADAPTIVE_MIN_BYTES
        # a huge box must not hand the cache tens of gigabytes
        assert adaptive_prefix_cache_bytes(256 * 1024 * 1024 * 1024) == \
            ADAPTIVE_MAX_BYTES

    def test_unanswerable_probe_falls_back_to_default(self, monkeypatch):
        import repro.core.prefixcache as prefixcache
        monkeypatch.setattr(prefixcache, "available_memory_bytes",
                            lambda: None)
        assert prefixcache.adaptive_prefix_cache_bytes() == \
            prefixcache.DEFAULT_PREFIX_CACHE_BYTES

    def test_default_constructor_uses_the_probe(self, monkeypatch):
        import repro.core.prefixcache as prefixcache
        monkeypatch.setattr(prefixcache, "available_memory_bytes",
                            lambda: 8 * 1024 * 1024 * 1024)
        cache = PrefixTransformCache()
        assert cache.max_bytes == prefixcache.adaptive_prefix_cache_bytes(
            8 * 1024 * 1024 * 1024)

    def test_explicit_budget_bypasses_the_probe(self, monkeypatch):
        import repro.core.prefixcache as prefixcache

        def _boom():
            raise AssertionError("probe must not run for explicit budgets")

        monkeypatch.setattr(prefixcache, "available_memory_bytes", _boom)
        assert PrefixTransformCache(max_bytes=1 << 20).max_bytes == 1 << 20

    def test_make_prefix_cache_still_disables_on_falsy(self):
        assert make_prefix_cache(None) is None
        assert make_prefix_cache(0) is None

    def test_real_probe_is_sane_when_available(self):
        from repro.core.prefixcache import available_memory_bytes
        probed = available_memory_bytes()
        if probed is not None:  # non-POSIX platforms may return None
            assert probed > 0
