"""PipelineEvaluator + persistent cache: cold/warm runs, fingerprints, engines."""

import pickle

import pytest

from repro.core import Pipeline, PipelineEvaluator
from repro.engine import BACKEND_NAMES
from repro.models import LogisticRegression

PIPELINES = [
    Pipeline.from_names(["standard_scaler"]),
    Pipeline.from_names(["minmax_scaler"]),
    Pipeline.from_names(["quantile_transformer", "standard_scaler"]),
    Pipeline(),
]


def _failing_pipeline():
    from repro.preprocessing.base import Preprocessor

    class Exploding(Preprocessor):
        name = "exploding"

        def __init__(self):
            super().__init__()

        def _fit(self, X, y=None):
            raise ValueError("synthetic numerical failure")

        def _transform(self, X):  # pragma: no cover - fit always fails first
            return X

    return Pipeline([Exploding()])


def _evaluator(distorted_data, tmp_path, **kwargs):
    X, y = distorted_data
    return PipelineEvaluator.from_dataset(
        X, y, LogisticRegression(max_iter=30), random_state=0,
        cache_dir=tmp_path / "evalcache", **kwargs,
    )


class TestFingerprint:
    def test_stable_for_identical_context(self, distorted_data):
        X, y = distorted_data
        one = PipelineEvaluator.from_dataset(
            X, y, LogisticRegression(max_iter=30), random_state=0)
        two = PipelineEvaluator.from_dataset(
            X, y, LogisticRegression(max_iter=30), random_state=0)
        assert one.fingerprint() == two.fingerprint()

    def test_differs_by_seed_model_and_data(self, distorted_data,
                                            small_binary_data):
        X, y = distorted_data
        base = PipelineEvaluator.from_dataset(
            X, y, LogisticRegression(max_iter=30), random_state=0)
        other_seed = PipelineEvaluator.from_dataset(
            X, y, LogisticRegression(max_iter=30), random_state=1)
        other_model = PipelineEvaluator.from_dataset(
            X, y, LogisticRegression(max_iter=60), random_state=0)
        Xb, yb = small_binary_data
        other_data = PipelineEvaluator.from_dataset(
            Xb, yb, LogisticRegression(max_iter=30), random_state=0)
        fingerprints = {base.fingerprint(), other_seed.fingerprint(),
                        other_model.fingerprint(), other_data.fingerprint()}
        assert len(fingerprints) == 4


class TestPersistentEvaluatorCache:
    def test_cold_run_populates_disk(self, distorted_data, tmp_path):
        evaluator = _evaluator(distorted_data, tmp_path)
        for pipeline in PIPELINES:
            evaluator.evaluate(pipeline)
        info = evaluator.cache_info()
        assert info["persistent"]
        assert evaluator.n_evaluations == len(PIPELINES)
        assert info["disk_writes"] == len(PIPELINES)
        assert info["disk_hits"] == 0

    def test_warm_run_is_answered_entirely_from_disk(self, distorted_data,
                                                     tmp_path):
        cold = _evaluator(distorted_data, tmp_path)
        expected = [cold.evaluate(p) for p in PIPELINES]

        warm = _evaluator(distorted_data, tmp_path)
        records = [warm.evaluate(p) for p in PIPELINES]

        assert warm.n_evaluations == 0
        info = warm.cache_info()
        assert info["misses"] == 0
        assert info["disk_hits"] == len(PIPELINES)
        # Bit-for-bit: accuracies (and timings) come back exactly as stored.
        assert [r.accuracy for r in records] == [r.accuracy for r in expected]
        assert [r.prep_time for r in records] == [r.prep_time for r in expected]
        assert [r.train_time for r in records] == [r.train_time for r in expected]

    def test_low_fidelity_and_failures_round_trip(self, distorted_data,
                                                  tmp_path):
        cold = _evaluator(distorted_data, tmp_path)
        partial = cold.evaluate(PIPELINES[0], fidelity=0.4)
        failed = cold.evaluate(_failing_pipeline())
        assert failed.accuracy == 0.0

        warm = _evaluator(distorted_data, tmp_path)
        assert warm.evaluate(PIPELINES[0], fidelity=0.4).accuracy == \
            partial.accuracy
        assert warm.evaluate(_failing_pipeline()).accuracy == 0.0
        assert warm.n_evaluations == 0

    def test_disk_promotion_feeds_the_lru(self, distorted_data, tmp_path):
        cold = _evaluator(distorted_data, tmp_path)
        cold.evaluate(PIPELINES[0])
        warm = _evaluator(distorted_data, tmp_path)
        warm.evaluate(PIPELINES[0])  # disk hit, promoted
        warm.evaluate(PIPELINES[0])  # now a pure memory hit
        assert warm.cache_info()["disk_hits"] == 1
        assert warm.cache_info()["hits"] == 2

    def test_different_seed_does_not_reuse_entries(self, distorted_data,
                                                   tmp_path):
        X, y = distorted_data
        cold = _evaluator(distorted_data, tmp_path)
        cold.evaluate(PIPELINES[0])
        other = PipelineEvaluator.from_dataset(
            X, y, LogisticRegression(max_iter=30), random_state=7,
            cache_dir=tmp_path / "evalcache",
        )
        other.evaluate(PIPELINES[0])
        assert other.n_evaluations == 1  # nothing reused across fingerprints

    def test_cache_disabled_disables_persistence_too(self, distorted_data,
                                                     tmp_path):
        evaluator = _evaluator(distorted_data, tmp_path, cache=False)
        assert evaluator.disk_cache is None
        evaluator.evaluate(PIPELINES[0])
        evaluator.evaluate(PIPELINES[0])
        assert evaluator.n_evaluations == 2

    def test_pickling_drops_the_disk_handle(self, distorted_data, tmp_path):
        evaluator = _evaluator(distorted_data, tmp_path)
        evaluator.evaluate(PIPELINES[0])
        clone = pickle.loads(pickle.dumps(evaluator))
        assert clone.disk_cache is None
        assert clone.cache_info()["size"] == 0


class TestPersistentCacheWithEngine:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_warm_engine_batch_skips_every_backend(self, distorted_data,
                                                   tmp_path, backend,
                                                   live_engine):
        cold = _evaluator(distorted_data, tmp_path)
        expected = [cold.evaluate(p) for p in PIPELINES]

        warm = _evaluator(distorted_data, tmp_path,
                          engine=live_engine(backend))
        try:
            records = warm.evaluate_many(PIPELINES)
        finally:
            warm.engine.close()
        assert warm.n_evaluations == 0
        assert warm.cache_info()["misses"] == 0
        assert [r.accuracy for r in records] == [r.accuracy for r in expected]

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_engine_merge_back_persists_worker_results(self, distorted_data,
                                                       tmp_path, backend,
                                                       live_engine):
        cold = _evaluator(distorted_data, tmp_path,
                          engine=live_engine(backend))
        try:
            expected = cold.evaluate_many(PIPELINES)
        finally:
            cold.engine.close()
        assert cold.cache_info()["disk_writes"] == len(PIPELINES)

        warm = _evaluator(distorted_data, tmp_path)
        records = [warm.evaluate(p) for p in PIPELINES]
        assert warm.n_evaluations == 0
        assert [r.accuracy for r in records] == [r.accuracy for r in expected]

    def test_cache_on_off_results_identical(self, distorted_data, tmp_path):
        X, y = distorted_data
        plain = PipelineEvaluator.from_dataset(
            X, y, LogisticRegression(max_iter=30), random_state=0)
        cached_cold = _evaluator(distorted_data, tmp_path)
        cached_warm = _evaluator(distorted_data, tmp_path)
        for pipeline in PIPELINES:
            reference = plain.evaluate(pipeline)
            assert cached_cold.evaluate(pipeline).accuracy == reference.accuracy
        for pipeline in PIPELINES:
            assert cached_warm.evaluate(pipeline).accuracy == \
                plain.evaluate(pipeline).accuracy
        assert cached_warm.n_evaluations == 0
