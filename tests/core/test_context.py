"""ExecutionContext: the unified runtime-configuration object.

Covers the serialization round-trips (dict, env), resource construction
(``build_engine`` / ``evaluator_options``) and — the compatibility
contract of the API redesign — the deprecation shim: every legacy
per-knob keyword spelling (``n_jobs=``, ``backend=``, ``cache_dir=``,
``prefix_cache_bytes=``, ``async_mode=``) warns
:class:`~repro.exceptions.ReproDeprecationWarning` and produces results
identical to the equivalent ``context=ExecutionContext(...)`` call.
"""

import warnings

import pytest

from repro.core.context import ExecutionContext, fold_legacy_kwargs
from repro.core.problem import AutoFPProblem
from repro.datasets.synthetic import distort_features, make_classification
from repro.engine import ExecutionEngine
from repro.exceptions import ReproDeprecationWarning, ValidationError
from repro.experiments import ExperimentConfig, quick_config, run_experiment, run_single
from repro.search import make_search_algorithm


def _data():
    X, y = make_classification(n_samples=120, n_features=6, n_classes=2,
                               class_sep=2.0, random_state=3)
    return distort_features(X, random_state=3), y


def _trials(result):
    return [(t.pipeline.spec(), round(t.fidelity, 6), t.accuracy, t.iteration)
            for t in result.trials]


class TestExecutionContext:
    def test_defaults_describe_a_serial_run(self):
        context = ExecutionContext()
        assert context.backend_name() == "serial"
        assert context.build_engine() is None
        assert context.evaluator_options() == {
            "engine": None, "cache_dir": None, "prefix_cache_bytes": None,
            "telemetry_mode": "off", "telemetry_dir": None,
        }

    def test_dict_round_trip(self):
        context = ExecutionContext(backend="thread", n_jobs=3,
                                   cache_dir="/tmp/c", prefix_cache_bytes=1024,
                                   async_mode=True, default_budget=20, seed=7)
        assert ExecutionContext.from_dict(context.to_dict()) == context

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValidationError):
            ExecutionContext.from_dict({"n_jbos": 2})

    def test_validation(self):
        with pytest.raises(ValidationError):
            ExecutionContext(backend="gpu")
        with pytest.raises(ValidationError):
            ExecutionContext(n_jobs=0)
        with pytest.raises(ValidationError):
            ExecutionContext(default_budget=0)
        # 0 prefix bytes normalises to "disabled", and Paths become strings.
        assert ExecutionContext(prefix_cache_bytes=0).prefix_cache_bytes is None

    def test_context_is_hashable_and_frozen(self):
        context = ExecutionContext(n_jobs=2, backend="thread")
        assert len({context, context.replace()}) == 1
        with pytest.raises((AttributeError, TypeError)):
            context.n_jobs = 4

    def test_from_env_reads_every_knob(self):
        environ = {
            "REPRO_BACKEND": "thread",
            "REPRO_N_JOBS": "3",
            "REPRO_CACHE_DIR": "/tmp/cache",
            "REPRO_PREFIX_CACHE_MB": "1.5",
            "REPRO_ASYNC": "true",
            "REPRO_MAX_TRIALS": "30",
            "REPRO_SEED": "9",
        }
        context = ExecutionContext.from_env(environ)
        assert context == ExecutionContext(
            backend="thread", n_jobs=3, cache_dir="/tmp/cache",
            prefix_cache_bytes=int(1.5 * 1024 * 1024), async_mode=True,
            default_budget=30, seed=9,
        )
        assert ExecutionContext.from_env({}) == ExecutionContext()
        with pytest.raises(ValidationError):
            ExecutionContext.from_env({"REPRO_N_JOBS": "many"})

    def test_build_engine_honours_parallel_options(self):
        engine = ExecutionContext(n_jobs=2, backend="thread").build_engine()
        try:
            assert isinstance(engine, ExecutionEngine)
            assert engine.backend.name == "thread"
            assert engine.n_workers == 2
        finally:
            engine.close()

    def test_configure_evaluator_attaches_engine(self):
        X, y = _data()
        problem = AutoFPProblem.from_arrays(X, y, "lr", random_state=0)
        assert problem.evaluator.engine is None
        ExecutionContext(n_jobs=2, backend="thread").configure_evaluator(
            problem.evaluator)
        try:
            assert problem.evaluator.engine.backend.name == "thread"
        finally:
            problem.evaluator.engine.close()

    def test_trial_budget_defaulting(self):
        assert ExecutionContext().trial_budget().max_trials == 50
        assert ExecutionContext(default_budget=12).trial_budget().max_trials == 12
        assert ExecutionContext(default_budget=12).trial_budget(7).max_trials == 7

    def test_seed_or(self):
        assert ExecutionContext().seed_or(4) == 4
        assert ExecutionContext(seed=11).seed_or(4) == 11

    def test_describe_mentions_the_active_knobs(self):
        text = ExecutionContext(n_jobs=2, backend="thread", async_mode=True,
                                cache_dir="/tmp/c").describe()
        assert "backend=thread" in text and "driver=async" in text
        assert "cache_dir=/tmp/c" in text


class TestFoldLegacyKwargs:
    def test_unset_and_off_values_fold_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            context = fold_legacy_kwargs(None, where="here", n_jobs=None,
                                         backend=None, async_mode=False)
        assert context == ExecutionContext()

    def test_meaningful_values_warn_and_override(self):
        base = ExecutionContext(cache_dir="/keep")
        with pytest.warns(ReproDeprecationWarning, match="here"):
            context = fold_legacy_kwargs(base, where="here", n_jobs=2,
                                         backend="thread")
        assert context == base.replace(n_jobs=2, backend="thread")


class TestDeprecationShimEquivalence:
    """Every legacy spelling warns AND matches its context equivalent."""

    def test_from_arrays_legacy_kwargs_warn_and_match(self):
        X, y = _data()
        modern = AutoFPProblem.from_arrays(
            X, y, "lr", random_state=0,
            context=ExecutionContext(n_jobs=2, backend="thread",
                                     prefix_cache_bytes=1 << 22,
                                     async_mode=True),
        )
        with pytest.warns(ReproDeprecationWarning) as caught:
            legacy = AutoFPProblem.from_arrays(
                X, y, "lr", random_state=0, n_jobs=2, backend="thread",
                prefix_cache_bytes=1 << 22, async_mode=True,
            )
        assert any("n_jobs" in str(w.message) for w in caught)
        assert legacy.context == modern.context
        assert legacy.async_mode is True
        assert legacy.evaluator.prefix_cache is not None
        for problem in (modern, legacy):
            problem.evaluator.engine.close()
        modern_result = make_search_algorithm("rs", random_state=0).search(
            AutoFPProblem.from_arrays(
                X, y, "lr", random_state=0,
                context=ExecutionContext(prefix_cache_bytes=1 << 22)),
            max_trials=6,
        )
        with pytest.warns(ReproDeprecationWarning):
            legacy_problem = AutoFPProblem.from_arrays(
                X, y, "lr", random_state=0, prefix_cache_bytes=1 << 22)
        legacy_result = make_search_algorithm("rs", random_state=0).search(
            legacy_problem, max_trials=6)
        assert _trials(legacy_result) == _trials(modern_result)

    def test_from_registry_legacy_cache_dir_warns_and_matches(self, tmp_path):
        modern = AutoFPProblem.from_registry(
            "blood", "lr", scale=0.5, random_state=0,
            context=ExecutionContext(cache_dir=str(tmp_path / "a")),
        )
        with pytest.warns(ReproDeprecationWarning, match="cache_dir"):
            legacy = AutoFPProblem.from_registry(
                "blood", "lr", scale=0.5, random_state=0,
                cache_dir=str(tmp_path / "b"),
            )
        assert legacy.evaluator.disk_cache is not None
        assert modern.baseline_accuracy() == legacy.baseline_accuracy()

    def test_run_single_legacy_kwargs_warn_and_match(self):
        modern, baseline_m = run_single(
            "blood", "lr", "rs", max_trials=5, dataset_scale=0.5,
            context=ExecutionContext(n_jobs=2, backend="thread"),
        )
        with pytest.warns(ReproDeprecationWarning):
            legacy, baseline_l = run_single(
                "blood", "lr", "rs", max_trials=5, dataset_scale=0.5,
                n_jobs=2, backend="thread",
            )
        assert baseline_l == baseline_m
        assert _trials(legacy) == _trials(modern)

    def test_run_experiment_legacy_kwargs_warn_and_match(self, tmp_path):
        config = quick_config(datasets=("blood",), algorithms=("rs",),
                              max_trials=4, dataset_scale=0.5)
        modern = run_experiment(
            config, context=ExecutionContext(
                n_jobs=2, backend="thread",
                cache_dir=str(tmp_path / "modern"),
                prefix_cache_bytes=1 << 22),
        )
        with pytest.warns(ReproDeprecationWarning):
            legacy = run_experiment(
                config, n_jobs=2, backend="thread",
                cache_dir=str(tmp_path / "legacy"),
                prefix_cache_bytes=1 << 22,
            )
        assert [s.accuracies for s in legacy.scenarios] == \
            [s.accuracies for s in modern.scenarios]

    def test_experiment_config_legacy_fields_warn_and_mirror(self):
        with pytest.warns(ReproDeprecationWarning):
            config = ExperimentConfig(datasets=("blood",), n_jobs=2,
                                      backend="thread", async_mode=True,
                                      prefix_cache_bytes=1 << 22)
        assert config.context == ExecutionContext(
            n_jobs=2, backend="thread", async_mode=True,
            prefix_cache_bytes=1 << 22,
        )
        # Mirrored fields read back consistently, and a round-trip through
        # dataclasses.replace does not re-warn.
        from dataclasses import replace

        assert config.n_jobs == 2 and config.backend == "thread"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            copy = replace(config, max_trials=9)
        assert copy.context == config.context

    def test_context_seed_is_the_default_random_state(self):
        X, y = _data()
        seeded = AutoFPProblem.from_arrays(
            X, y, "lr", context=ExecutionContext(seed=5))
        explicit = AutoFPProblem.from_arrays(X, y, "lr", random_state=5)
        assert seeded.evaluator.fingerprint() == explicit.evaluator.fingerprint()
