"""Failure-injection tests: degenerate pipelines, models and inputs.

A long search run will eventually evaluate pathological pipelines (all-zero
features after Binarizer -> StandardScaler, overflowing transforms, ...).
These tests verify the evaluator and preprocessors degrade gracefully
instead of aborting the whole search.
"""

import numpy as np
import pytest

from repro.core import Pipeline, PipelineEvaluator, SearchSpace
from repro.core.problem import AutoFPProblem
from repro.datasets import make_classification
from repro.exceptions import NotFittedError, ValidationError
from repro.models import make_classifier
from repro.models.linear import LogisticRegression
from repro.preprocessing import Binarizer, StandardScaler, default_preprocessors
from repro.preprocessing.base import Preprocessor
from repro.search import RandomSearch


class ExplodingPreprocessor(Preprocessor):
    """A preprocessor whose fit always fails with a numerical error."""

    name = "exploding"

    def __init__(self) -> None:
        super().__init__()

    def _fit(self, X, y=None):
        raise ValueError("synthetic numerical failure")

    def _transform(self, X):  # pragma: no cover - fit always fails first
        return X


class NaNProducingPreprocessor(Preprocessor):
    """A preprocessor that silently produces NaN values."""

    name = "nan_producer"

    def __init__(self) -> None:
        super().__init__()

    def _fit(self, X, y=None):
        return None

    def _transform(self, X):
        out = X.copy()
        out[:, 0] = np.nan
        return out


@pytest.fixture(scope="module")
def evaluator():
    X, y = make_classification(n_samples=120, n_features=5, class_sep=2.0,
                               random_state=0)
    return PipelineEvaluator.from_dataset(X, y, LogisticRegression(max_iter=40),
                                          random_state=0)


class TestEvaluatorFailureHandling:
    def test_failing_preprocessor_scores_zero_instead_of_raising(self, evaluator):
        record = evaluator.evaluate(Pipeline([ExplodingPreprocessor()]))
        assert record.accuracy == 0.0
        assert record.train_time == 0.0

    def test_nan_output_is_sanitised_before_model_training(self, evaluator):
        record = evaluator.evaluate(Pipeline([NaNProducingPreprocessor()]))
        # The model still trains on the sanitised matrix and produces a score.
        assert 0.0 <= record.accuracy <= 1.0

    def test_search_survives_a_space_containing_a_failing_preprocessor(self):
        X, y = make_classification(n_samples=100, n_features=5, class_sep=2.0,
                                   random_state=1)
        space = SearchSpace([*default_preprocessors(), ExplodingPreprocessor()],
                            max_length=2)
        problem = AutoFPProblem.from_arrays(X, y, LogisticRegression(max_iter=40),
                                            space=space, random_state=0)
        result = RandomSearch(random_state=0).search(problem, max_trials=15)
        assert len(result) == 15
        assert result.best_accuracy > 0.0

    def test_invalid_fidelity_rejected(self, evaluator):
        with pytest.raises(ValidationError):
            evaluator.evaluate(Pipeline([StandardScaler()]), fidelity=0.0)
        with pytest.raises(ValidationError):
            evaluator.evaluate(Pipeline([StandardScaler()]), fidelity=1.5)

    def test_mismatched_split_feature_counts_rejected(self):
        X, y = make_classification(n_samples=60, n_features=4, random_state=0)
        with pytest.raises(ValidationError):
            PipelineEvaluator(X[:40], y[:40], X[40:, :2], y[40:],
                              LogisticRegression())


class TestPreprocessorEdgeCases:
    def test_constant_features_stay_finite_through_every_default_preprocessor(self):
        X = np.full((30, 3), 5.0)
        for preprocessor in default_preprocessors():
            out = preprocessor.fit_transform(X)
            assert np.all(np.isfinite(out))

    def test_single_row_input_is_accepted(self):
        X = np.array([[1.0, -2.0, 3.0]])
        for preprocessor in default_preprocessors():
            out = preprocessor.fit_transform(X)
            assert out.shape == X.shape

    def test_nan_input_rejected_with_clear_error(self):
        X = np.array([[1.0, np.nan], [2.0, 3.0]])
        with pytest.raises(ValidationError):
            StandardScaler().fit(X)

    def test_transform_before_fit_raises_not_fitted(self):
        with pytest.raises(NotFittedError):
            Binarizer().transform(np.zeros((2, 2)))

    def test_transform_with_wrong_feature_count_rejected(self):
        scaler = StandardScaler().fit(np.random.default_rng(0).normal(size=(10, 3)))
        with pytest.raises(ValidationError):
            scaler.transform(np.zeros((4, 2)))


class TestModelEdgeCases:
    def test_models_handle_single_feature_input(self):
        X, y = make_classification(n_samples=80, n_features=1, class_sep=2.0,
                                   random_state=0)
        for name in ("lr", "xgb", "mlp"):
            model = make_classifier(name, fast=True)
            model.fit(X, y)
            assert model.predict(X).shape == (80,)

    def test_models_reject_mismatched_lengths(self):
        X, y = make_classification(n_samples=50, n_features=3, random_state=0)
        for name in ("lr", "xgb"):
            with pytest.raises(ValidationError):
                make_classifier(name, fast=True).fit(X, y[:-5])

    def test_predict_before_fit_raises(self):
        for name in ("lr", "xgb", "mlp"):
            with pytest.raises(NotFittedError):
                make_classifier(name, fast=True).predict(np.zeros((3, 2)))
