"""Tests for AutoFPProblem plus property-based tests of core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AutoFPProblem, Pipeline, SearchSpace
from repro.models import LogisticRegression


class TestAutoFPProblem:
    def test_from_arrays_with_model_name(self, distorted_data):
        X, y = distorted_data
        problem = AutoFPProblem.from_arrays(X, y, "lr", name="demo")
        assert problem.name == "demo"
        assert problem.space.n_candidates == 7
        assert 0.0 <= problem.baseline_accuracy() <= 1.0

    def test_from_arrays_with_model_instance(self, distorted_data):
        X, y = distorted_data
        problem = AutoFPProblem.from_arrays(X, y, LogisticRegression(max_iter=20))
        assert isinstance(problem.evaluator.model, LogisticRegression)

    def test_from_registry(self):
        problem = AutoFPProblem.from_registry("blood", "lr")
        assert problem.name.startswith("blood/")
        assert problem.evaluator.X_train.shape[1] == 4

    def test_custom_space_respected(self, distorted_data):
        X, y = distorted_data
        space = SearchSpace(max_length=2)
        problem = AutoFPProblem.from_arrays(X, y, "lr", space=space)
        assert problem.space.max_length == 2

    def test_split_is_80_20(self, distorted_data):
        X, y = distorted_data
        problem = AutoFPProblem.from_arrays(X, y, "lr")
        n_train = problem.evaluator.X_train.shape[0]
        n_valid = problem.evaluator.X_valid.shape[0]
        assert n_train + n_valid == X.shape[0]
        assert n_valid / X.shape[0] == pytest.approx(0.2, abs=0.05)


# ---------------------------------------------------------------- properties
@st.composite
def space_and_pipelines(draw):
    max_length = draw(st.integers(1, 5))
    space = SearchSpace(max_length=max_length)
    seed = draw(st.integers(0, 10_000))
    n = draw(st.integers(1, 10))
    return space, space.sample_pipelines(n, random_state=seed)


@given(data=space_and_pipelines())
@settings(max_examples=50, deadline=None)
def test_encode_decode_consistency(data):
    """Encoding is injective on sampled pipelines and decodes via indices."""
    space, pipelines = data
    for pipeline in pipelines:
        indices = space.indices_of(pipeline)
        assert space.pipeline_from_indices(indices) == pipeline
        encoded = space.encode(pipeline).reshape(space.max_length, -1)
        assert np.all(encoded.sum(axis=1) == 1.0)


@given(data=space_and_pipelines(), mutation_seed=st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_mutation_stays_in_space(data, mutation_seed):
    """Any chain of mutations keeps length within [1, max_length]."""
    space, pipelines = data
    rng = np.random.default_rng(mutation_seed)
    pipeline = pipelines[0]
    for _ in range(10):
        pipeline = space.mutate(pipeline, rng)
        assert 1 <= len(pipeline) <= space.max_length
        for step in pipeline:
            assert step.name in {c.name for c in space.candidates}


@given(seed=st.integers(0, 10_000), length=st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_pipeline_spec_roundtrip(seed, length):
    """Pipeline.from_spec(spec()) is the identity for sampled pipelines."""
    space = SearchSpace(max_length=4)
    pipeline = space.sample_pipeline(random_state=seed, length=length)
    assert Pipeline.from_spec(pipeline.spec()) == pipeline
