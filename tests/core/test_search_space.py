"""Tests for the Auto-FP search space."""

import numpy as np
import pytest

from repro.core import Pipeline, SearchSpace
from repro.exceptions import SearchSpaceError
from repro.preprocessing import Binarizer, Normalizer, StandardScaler


class TestSpaceBasics:
    def test_default_space_has_seven_candidates(self):
        space = SearchSpace()
        assert space.n_candidates == 7
        assert space.max_length == 7

    def test_size_formula(self):
        """|S_pipe| = sum_{i=1..N} n^i (Definition 3)."""
        space = SearchSpace(max_length=3)
        assert space.size() == 7 + 7**2 + 7**3

    def test_size_matches_paper_motivating_experiment(self):
        """Pipelines of length <= 4 over 7 preprocessors: 2800 in total."""
        space = SearchSpace(max_length=4)
        assert space.size() == 7 + 49 + 343 + 2401  # = 2800

    def test_custom_candidates(self):
        space = SearchSpace([StandardScaler(), Binarizer()], max_length=2)
        assert space.n_candidates == 2
        assert space.size() == 2 + 4

    def test_empty_candidates_rejected(self):
        with pytest.raises(SearchSpaceError):
            SearchSpace([], max_length=2)

    def test_invalid_max_length_rejected(self):
        with pytest.raises(SearchSpaceError):
            SearchSpace(max_length=0)


class TestSampling:
    def test_sampled_pipeline_within_bounds(self):
        space = SearchSpace(max_length=4)
        rng = np.random.default_rng(0)
        for _ in range(50):
            pipeline = space.sample_pipeline(rng)
            assert 1 <= len(pipeline) <= 4

    def test_sampling_deterministic_given_seed(self):
        space = SearchSpace(max_length=3)
        a = space.sample_pipelines(5, random_state=7)
        b = space.sample_pipelines(5, random_state=7)
        assert a == b

    def test_fixed_length_sampling(self):
        space = SearchSpace(max_length=5)
        pipeline = space.sample_pipeline(random_state=0, length=3)
        assert len(pipeline) == 3

    def test_invalid_length_rejected(self):
        space = SearchSpace(max_length=3)
        with pytest.raises(SearchSpaceError):
            space.sample_pipeline(random_state=0, length=9)

    def test_sampling_covers_all_candidates(self):
        space = SearchSpace(max_length=2)
        seen = set()
        rng = np.random.default_rng(1)
        for _ in range(200):
            seen.update(space.sample_pipeline(rng).names())
        assert len(seen) == space.n_candidates


class TestMutation:
    def test_mutation_is_one_edit(self):
        space = SearchSpace(max_length=5)
        rng = np.random.default_rng(0)
        for _ in range(50):
            original = space.sample_pipeline(rng)
            mutated = space.mutate(original, rng)
            assert abs(len(mutated) - len(original)) <= 1
            assert 1 <= len(mutated) <= space.max_length

    def test_mutation_at_max_length_never_grows(self):
        space = SearchSpace(max_length=2)
        pipeline = space.sample_pipeline(random_state=0, length=2)
        rng = np.random.default_rng(3)
        for _ in range(20):
            assert len(space.mutate(pipeline, rng)) <= 2

    def test_single_step_pipeline_never_shrinks_to_empty(self):
        space = SearchSpace(max_length=3)
        pipeline = space.sample_pipeline(random_state=0, length=1)
        rng = np.random.default_rng(4)
        for _ in range(20):
            assert len(space.mutate(pipeline, rng)) >= 1

    def test_neighbors_count(self):
        space = SearchSpace(max_length=3)
        pipeline = space.sample_pipeline(random_state=0)
        assert len(space.neighbors(pipeline, random_state=1, n_neighbors=4)) == 4

    def test_crossover_respects_max_length(self):
        space = SearchSpace(max_length=3)
        rng = np.random.default_rng(5)
        first = space.sample_pipeline(rng, length=3)
        second = space.sample_pipeline(rng, length=3)
        for _ in range(20):
            child = space.crossover(first, second, rng)
            assert 1 <= len(child) <= 3


class TestProgressiveOperations:
    def test_single_step_pipelines(self):
        space = SearchSpace(max_length=3)
        singles = space.single_step_pipelines()
        assert len(singles) == 7
        assert all(len(p) == 1 for p in singles)

    def test_expand_adds_each_candidate(self):
        space = SearchSpace(max_length=3)
        base = space.single_step_pipelines()[0]
        expanded = space.expand(base)
        assert len(expanded) == 7
        assert all(len(p) == 2 for p in expanded)
        assert all(p.names()[0] == base.names()[0] for p in expanded)

    def test_expand_at_max_length_is_empty(self):
        space = SearchSpace(max_length=1)
        assert space.expand(space.single_step_pipelines()[0]) == []

    def test_enumeration_counts(self):
        space = SearchSpace([StandardScaler(), Binarizer(), Normalizer()], max_length=2)
        pipelines = list(space.enumerate_pipelines())
        assert len(pipelines) == 3 + 9
        assert len(set(pipelines)) == 12  # all distinct


class TestEncoding:
    def test_encoding_dimension(self):
        space = SearchSpace(max_length=3)
        assert space.encoding_dim() == 3 * 8
        pipeline = space.sample_pipeline(random_state=0)
        assert space.encode(pipeline).shape == (24,)

    def test_one_hot_blocks_sum_to_one(self):
        space = SearchSpace(max_length=4)
        pipeline = space.sample_pipeline(random_state=2)
        encoded = space.encode(pipeline).reshape(4, 8)
        np.testing.assert_allclose(encoded.sum(axis=1), 1.0)

    def test_empty_positions_marked(self):
        space = SearchSpace(max_length=3)
        pipeline = space.sample_pipeline(random_state=0, length=1)
        encoded = space.encode(pipeline).reshape(3, 8)
        assert encoded[1, -1] == 1.0
        assert encoded[2, -1] == 1.0

    def test_distinct_pipelines_get_distinct_encodings(self):
        space = SearchSpace(max_length=3)
        pipelines = space.sample_pipelines(30, random_state=0)
        encodings = {tuple(space.encode(p)) for p in set(pipelines)}
        assert len(encodings) == len(set(pipelines))

    def test_encode_many_shape(self):
        space = SearchSpace(max_length=2)
        pipelines = space.sample_pipelines(5, random_state=0)
        assert space.encode_many(pipelines).shape == (5, space.encoding_dim())

    def test_indices_roundtrip(self):
        space = SearchSpace(max_length=4)
        pipeline = space.sample_pipeline(random_state=9)
        rebuilt = space.pipeline_from_indices(space.indices_of(pipeline))
        assert rebuilt == pipeline
