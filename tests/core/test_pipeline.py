"""Tests for Pipeline and FittedPipeline."""

import numpy as np
import pytest

from repro.core import Pipeline
from repro.exceptions import ValidationError
from repro.preprocessing import (
    Binarizer,
    MinMaxScaler,
    Normalizer,
    PowerTransformer,
    StandardScaler,
)


class TestPipelineConstruction:
    def test_empty_pipeline(self):
        pipeline = Pipeline()
        assert len(pipeline) == 0
        assert pipeline.is_empty()
        assert pipeline.describe() == "<no preprocessing>"

    def test_steps_are_cloned(self):
        scaler = StandardScaler()
        pipeline = Pipeline([scaler])
        assert pipeline[0] is not scaler

    def test_non_preprocessor_rejected(self):
        with pytest.raises(ValidationError):
            Pipeline(["standard_scaler"])

    def test_from_names(self):
        pipeline = Pipeline.from_names(["minmax_scaler", "binarizer"])
        assert pipeline.names() == ("minmax_scaler", "binarizer")

    def test_from_names_with_params(self):
        pipeline = Pipeline.from_names(["binarizer"], params=[{"threshold": 0.7}])
        assert pipeline[0].threshold == 0.7

    def test_from_spec_roundtrip(self):
        original = Pipeline([Binarizer(threshold=0.3), Normalizer(norm="l1")])
        rebuilt = Pipeline.from_spec(original.spec())
        assert rebuilt == original

    def test_describe_lists_steps_in_order(self):
        pipeline = Pipeline([MinMaxScaler(), PowerTransformer()])
        description = pipeline.describe()
        assert description.index("minmax_scaler") < description.index("power_transformer")
        assert " -> " in description
        # Parameterised steps show their parameters.
        assert "standardize=True" in description


class TestPipelineIdentity:
    def test_equality_by_spec(self):
        a = Pipeline([StandardScaler(), Binarizer()])
        b = Pipeline([StandardScaler(), Binarizer()])
        assert a == b
        assert hash(a) == hash(b)

    def test_order_matters(self):
        a = Pipeline([StandardScaler(), Binarizer()])
        b = Pipeline([Binarizer(), StandardScaler()])
        assert a != b

    def test_parameters_matter(self):
        a = Pipeline([Binarizer(threshold=0.0)])
        b = Pipeline([Binarizer(threshold=0.5)])
        assert a != b

    def test_usable_as_dict_key(self):
        cache = {Pipeline([Normalizer()]): 1.0}
        assert cache[Pipeline([Normalizer()])] == 1.0


class TestPipelineOperations:
    def test_append_returns_new_pipeline(self):
        base = Pipeline([StandardScaler()])
        extended = base.append(Binarizer())
        assert len(base) == 1
        assert len(extended) == 2
        assert extended.names()[-1] == "binarizer"

    def test_replace(self):
        pipeline = Pipeline([StandardScaler(), Binarizer()])
        replaced = pipeline.replace(0, Normalizer())
        assert replaced.names() == ("normalizer", "binarizer")

    def test_truncate(self):
        pipeline = Pipeline([StandardScaler(), Binarizer(), Normalizer()])
        assert pipeline.truncate(1).names() == ("standard_scaler",)


class TestPipelineFitting:
    def test_fit_transform_composes_in_order(self, rng):
        """P1 -> P2 means P2 is applied to P1's output (Definition 2)."""
        X = rng.normal(loc=5.0, scale=3.0, size=(50, 3))
        pipeline = Pipeline([StandardScaler(), Binarizer()])
        _, out = pipeline.fit_transform(X)
        # StandardScaler centres the data, so roughly half the entries are >= 0.
        manual = Binarizer().fit_transform(StandardScaler().fit_transform(X))
        np.testing.assert_array_equal(out, manual)

    def test_order_changes_result(self, rng):
        X = rng.normal(loc=5.0, size=(50, 3))
        _, a = Pipeline([StandardScaler(), Binarizer()]).fit_transform(X)
        _, b = Pipeline([Binarizer(), StandardScaler()]).fit_transform(X)
        assert not np.allclose(a, b)

    def test_empty_pipeline_is_identity(self, rng):
        X = rng.normal(size=(20, 4))
        fitted, out = Pipeline().fit_transform(X)
        np.testing.assert_array_equal(out, X)
        np.testing.assert_array_equal(fitted.transform(X), X)

    def test_fitted_pipeline_transforms_new_data(self, rng):
        X_train = rng.normal(size=(60, 3))
        X_test = rng.normal(size=(20, 3))
        fitted = Pipeline([MinMaxScaler(), StandardScaler()]).fit(X_train)
        out = fitted.transform(X_test)
        assert out.shape == X_test.shape
        assert np.all(np.isfinite(out))

    def test_fit_does_not_mutate_prototypes(self, rng):
        X = rng.normal(size=(30, 2))
        pipeline = Pipeline([StandardScaler()])
        pipeline.fit(X)
        assert not pipeline[0].is_fitted()

    def test_paper_example_p2_composition(self, rng):
        """The P2 example: PowerTransformer -> MinMaxScaler -> Normalizer."""
        X = rng.exponential(size=(80, 4)) * 100.0
        pipeline = Pipeline.from_names(
            ["power_transformer", "minmax_scaler", "normalizer"]
        )
        fitted, out = pipeline.fit_transform(X)
        assert len(fitted) == 3
        # The last step normalises rows, so row norms are <= 1.
        norms = np.linalg.norm(out, axis=1)
        assert np.all(norms <= 1.0 + 1e-9)
