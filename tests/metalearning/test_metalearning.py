"""Tests for the meta-knowledge store and warm-started search (Section 8)."""

import numpy as np
import pytest

from repro.core import Pipeline
from repro.datasets import make_classification
from repro.exceptions import ValidationError
from repro.metalearning import (
    MetaKnowledgeStore,
    MetaTask,
    WarmStartedSearch,
    record_search_outcome,
)
from repro.preprocessing import MinMaxScaler, Normalizer, StandardScaler
from repro.search import TEVO_H, RandomSearch


def _dataset(seed: int, n_features: int = 6):
    return make_classification(n_samples=100, n_features=n_features,
                               class_sep=2.0, random_state=seed)


def _store_with_tasks() -> MetaKnowledgeStore:
    store = MetaKnowledgeStore()
    X0, y0 = _dataset(0)
    X1, y1 = _dataset(1, n_features=12)
    store.add_task("task-a", "lr", X0, y0,
                   [Pipeline([StandardScaler()]), Pipeline([MinMaxScaler()])],
                   best_accuracy=0.9)
    store.add_task("task-b", "lr", X1, y1, [Pipeline([Normalizer()])],
                   best_accuracy=0.8)
    store.add_task("task-c", "xgb", X0, y0, [Pipeline([MinMaxScaler()])],
                   best_accuracy=0.85)
    return store


class TestMetaTask:
    def test_round_trip_through_dict(self):
        X, y = _dataset(0)
        store = MetaKnowledgeStore()
        task = store.add_task("t", "lr", X, y, [Pipeline([StandardScaler()])],
                              best_accuracy=0.7)
        restored = MetaTask.from_dict(task.to_dict())
        assert restored.name == "t"
        assert restored.best_accuracy == 0.7
        assert restored.best_pipelines[0].spec() == task.best_pipelines[0].spec()
        np.testing.assert_allclose(restored.metafeatures, task.metafeatures)


class TestMetaKnowledgeStore:
    def test_add_task_computes_metafeature_vector(self):
        store = MetaKnowledgeStore()
        X, y = _dataset(3)
        task = store.add_task("t", "lr", X, y, [Pipeline([StandardScaler()])])
        assert task.metafeatures.ndim == 1
        assert len(store) == 1

    def test_wrong_metafeature_shape_rejected(self):
        store = MetaKnowledgeStore()
        X, y = _dataset(3)
        with pytest.raises(ValidationError):
            store.add_task("t", "lr", X, y, [Pipeline([StandardScaler()])],
                           metafeatures=np.zeros(3))

    def test_nearest_task_is_the_identical_dataset(self):
        store = _store_with_tasks()
        X0, y0 = _dataset(0)
        nearest = store.nearest_tasks(X0, y0, model="lr", k=1)
        assert nearest[0].name == "task-a"

    def test_model_filter_restricts_candidates(self):
        store = _store_with_tasks()
        X0, y0 = _dataset(0)
        nearest = store.nearest_tasks(X0, y0, model="xgb", k=2)
        assert all(task.model == "xgb" for task in nearest)

    def test_empty_store_returns_no_suggestions(self):
        store = MetaKnowledgeStore()
        X0, y0 = _dataset(0)
        assert store.nearest_tasks(X0, y0) == []
        assert store.suggested_pipelines(X0, y0) == []

    def test_suggested_pipelines_deduplicate_specs(self):
        store = _store_with_tasks()
        X0, y0 = _dataset(0)
        suggestions = store.suggested_pipelines(X0, y0, model="lr", k=3,
                                                max_pipelines=10)
        specs = [p.spec() for p in suggestions]
        assert len(specs) == len(set(specs))

    def test_save_and_load_round_trip(self, tmp_path):
        store = _store_with_tasks()
        path = tmp_path / "meta.json"
        store.save(path)
        restored = MetaKnowledgeStore.load(path)
        assert len(restored) == len(store)
        assert restored.tasks[0].best_pipelines[0].spec() == \
            store.tasks[0].best_pipelines[0].spec()


class TestWarmStartedSearch:
    def test_warm_pipelines_are_evaluated_first(self, lr_problem):
        store = MetaKnowledgeStore()
        evaluator = lr_problem.evaluator
        X = np.vstack([evaluator.X_train, evaluator.X_valid])
        y = np.concatenate([evaluator.y_train, evaluator.y_valid])
        seed_pipeline = Pipeline([StandardScaler(), MinMaxScaler()])
        store.add_task("source", "lr", X, y, [seed_pipeline], best_accuracy=0.9)

        search = WarmStartedSearch(TEVO_H(random_state=0), store, n_warm=3,
                                   model_name="lr", random_state=0)
        result = search.search(lr_problem, max_trials=10)
        assert len(result) == 10
        assert result.trials[0].pipeline.spec() == seed_pipeline.spec()

    def test_empty_store_falls_back_to_base_initialisation(self, lr_problem):
        search = WarmStartedSearch(RandomSearch(random_state=0),
                                   MetaKnowledgeStore(), random_state=0)
        result = search.search(lr_problem, max_trials=8)
        assert len(result) == 8

    def test_name_mentions_wrapped_algorithm(self):
        search = WarmStartedSearch(TEVO_H(), MetaKnowledgeStore())
        assert "tevo_h" in search.name


class TestRecordSearchOutcome:
    def test_records_top_pipelines_for_future_warm_starts(self, lr_problem):
        store = MetaKnowledgeStore()
        result = RandomSearch(random_state=0).search(lr_problem, max_trials=10)
        record_search_outcome(store, lr_problem, result, model_name="lr", top_k=2)
        assert len(store) == 1
        task = store.tasks[0]
        assert task.model == "lr"
        assert 1 <= len(task.best_pipelines) <= 2
        assert task.best_accuracy == pytest.approx(result.best_accuracy)
