"""Tests for classification metrics, splitting and cross-validation."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.models import (
    DecisionTreeClassifier,
    accuracy_score,
    balanced_accuracy_score,
    confusion_matrix,
    cross_val_score,
    error_rate,
    log_loss,
    stratified_kfold_indices,
    train_test_split,
)


class TestAccuracy:
    def test_perfect_prediction(self):
        assert accuracy_score([1, 0, 1], [1, 0, 1]) == 1.0

    def test_all_wrong(self):
        assert accuracy_score([1, 1, 1], [0, 0, 0]) == 0.0

    def test_partial(self):
        assert accuracy_score([1, 0, 1, 0], [1, 0, 0, 0]) == pytest.approx(0.75)

    def test_error_rate_is_complement(self):
        y_true, y_pred = [1, 0, 1, 0], [1, 1, 1, 0]
        assert error_rate(y_true, y_pred) == pytest.approx(
            1.0 - accuracy_score(y_true, y_pred)
        )

    def test_length_mismatch_raises(self):
        with pytest.raises(ValidationError):
            accuracy_score([1, 0], [1])

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            accuracy_score([], [])


class TestLogLoss:
    def test_confident_correct_prediction_is_small(self):
        probs = np.array([[0.99, 0.01], [0.01, 0.99]])
        assert log_loss([0, 1], probs) < 0.05

    def test_confident_wrong_prediction_is_large(self):
        probs = np.array([[0.01, 0.99]])
        assert log_loss([0], probs) > 2.0

    def test_uniform_prediction_is_log_n_classes(self):
        probs = np.full((5, 4), 0.25)
        assert log_loss([0, 1, 2, 3, 0], probs) == pytest.approx(np.log(4))


class TestConfusionMatrix:
    def test_diagonal_for_perfect_prediction(self):
        matrix = confusion_matrix([0, 1, 1, 2], [0, 1, 1, 2])
        np.testing.assert_array_equal(matrix, np.diag([1, 2, 1]))

    def test_off_diagonal_counts(self):
        matrix = confusion_matrix([0, 0, 1], [1, 0, 1])
        assert matrix[0, 1] == 1  # one true-0 predicted as 1
        assert matrix[0, 0] == 1
        assert matrix[1, 1] == 1

    def test_balanced_accuracy_with_imbalance(self):
        # Majority predictor on a 90/10 split: balanced accuracy is 0.5.
        y_true = [0] * 90 + [1] * 10
        y_pred = [0] * 100
        assert balanced_accuracy_score(y_true, y_pred) == pytest.approx(0.5)


class TestTrainTestSplit:
    def test_split_sizes(self, small_binary_data):
        X, y = small_binary_data
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.2,
                                                            random_state=0)
        assert X_train.shape[0] + X_test.shape[0] == X.shape[0]
        assert X_test.shape[0] == pytest.approx(0.2 * X.shape[0], abs=2)

    def test_stratification_preserves_classes(self, small_multiclass_data):
        X, y = small_multiclass_data
        _, _, y_train, y_test = train_test_split(X, y, test_size=0.2, random_state=0)
        assert set(y_train.tolist()) == set(y.tolist())
        assert set(y_test.tolist()) == set(y.tolist())

    def test_deterministic_given_seed(self, small_binary_data):
        X, y = small_binary_data
        a = train_test_split(X, y, random_state=3)
        b = train_test_split(X, y, random_state=3)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[3], b[3])

    def test_no_row_overlap(self, small_binary_data):
        X, y = small_binary_data
        X_train, X_test, _, _ = train_test_split(X, y, random_state=1)
        train_rows = {tuple(row) for row in X_train}
        test_rows = {tuple(row) for row in X_test}
        assert not train_rows & test_rows

    def test_invalid_test_size_raises(self, small_binary_data):
        X, y = small_binary_data
        with pytest.raises(ValidationError):
            train_test_split(X, y, test_size=1.5)


class TestCrossValidation:
    def test_kfold_indices_partition_dataset(self):
        y = np.array([0, 1] * 20)
        seen = []
        for train_idx, test_idx in stratified_kfold_indices(y, 4, random_state=0):
            assert len(set(train_idx) & set(test_idx)) == 0
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(40))

    def test_kfold_requires_two_splits(self):
        with pytest.raises(ValidationError):
            list(stratified_kfold_indices(np.array([0, 1, 0, 1]), 1))

    def test_cross_val_score_shape_and_range(self, small_binary_data):
        X, y = small_binary_data
        scores = cross_val_score(DecisionTreeClassifier(max_depth=3), X, y, cv=3,
                                 random_state=0)
        assert scores.shape == (3,)
        assert np.all((scores >= 0.0) & (scores <= 1.0))

    def test_cross_val_score_beats_chance_on_separable_data(self, small_binary_data):
        X, y = small_binary_data
        scores = cross_val_score(DecisionTreeClassifier(max_depth=4), X, y, cv=3,
                                 random_state=0)
        assert scores.mean() > 0.7
