"""Tests for KNN / naive Bayes / majority classifiers and the model registry."""

import numpy as np
import pytest

from repro.exceptions import UnknownComponentError
from repro.models import (
    DOWNSTREAM_MODEL_NAMES,
    GaussianNB,
    GradientBoostingClassifier,
    KNeighborsClassifier,
    LogisticRegression,
    MajorityClassClassifier,
    MLPClassifier,
    get_classifier_class,
    make_classifier,
)


class TestKNN:
    def test_1nn_memorises_training_data(self, small_binary_data):
        X, y = small_binary_data
        model = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert model.score(X, y) == pytest.approx(1.0)

    def test_knn_reasonable_on_separable_data(self, small_multiclass_data):
        X, y = small_multiclass_data
        model = KNeighborsClassifier(n_neighbors=5).fit(X, y)
        assert model.score(X, y) > 0.8

    def test_k_larger_than_dataset_is_clipped(self, small_binary_data):
        X, y = small_binary_data
        model = KNeighborsClassifier(n_neighbors=10_000).fit(X, y)
        predictions = model.predict(X)
        # With k = n the prediction is the global majority class everywhere.
        assert len(set(predictions.tolist())) == 1

    def test_scale_sensitivity(self, small_binary_data):
        """KNN predictions change when one feature is blown up by 1e6."""
        X, y = small_binary_data
        distorted = X.copy()
        distorted[:, 0] *= 1e6
        base = KNeighborsClassifier(n_neighbors=3).fit(X, y).predict(X)
        skewed = KNeighborsClassifier(n_neighbors=3).fit(distorted, y).predict(distorted)
        assert not np.array_equal(base, skewed)


class TestGaussianNB:
    def test_fits_gaussian_blobs(self, small_multiclass_data):
        X, y = small_multiclass_data
        model = GaussianNB().fit(X, y)
        assert model.score(X, y) > 0.75

    def test_probabilities_valid(self, small_binary_data):
        X, y = small_binary_data
        probs = GaussianNB().fit(X, y).predict_proba(X)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    def test_handles_zero_variance_feature(self, small_binary_data):
        X, y = small_binary_data
        X = np.hstack([X, np.ones((X.shape[0], 1))])
        model = GaussianNB().fit(X, y)
        assert np.all(np.isfinite(model.predict_proba(X)))


class TestMajority:
    def test_predicts_most_frequent_class(self):
        X = np.zeros((10, 2))
        y = np.array([0] * 7 + [1] * 3)
        model = MajorityClassClassifier().fit(X, y)
        assert set(model.predict(X).tolist()) == {0}
        assert model.score(X, y) == pytest.approx(0.7)


class TestModelRegistry:
    def test_three_downstream_models(self):
        assert DOWNSTREAM_MODEL_NAMES == ("lr", "xgb", "mlp")

    def test_paper_model_classes(self):
        assert get_classifier_class("lr") is LogisticRegression
        assert get_classifier_class("xgb") is GradientBoostingClassifier
        assert get_classifier_class("mlp") is MLPClassifier

    def test_unknown_model_raises(self):
        with pytest.raises(UnknownComponentError):
            get_classifier_class("svm")

    def test_fast_flag_reduces_capacity(self):
        fast = make_classifier("xgb", fast=True)
        default = make_classifier("xgb")
        assert fast.n_estimators < default.n_estimators

    def test_overrides_take_precedence_over_fast(self):
        model = make_classifier("xgb", fast=True, n_estimators=99)
        assert model.n_estimators == 99

    @pytest.mark.parametrize("name", DOWNSTREAM_MODEL_NAMES)
    def test_all_downstream_models_trainable(self, name, small_binary_data):
        X, y = small_binary_data
        model = make_classifier(name, fast=True).fit(X, y)
        assert model.score(X, y) > 0.6
