"""Tests for LogisticRegression and LinearDiscriminantAnalysis."""

import numpy as np
import pytest

from repro.datasets.synthetic import make_classification
from repro.exceptions import NotFittedError, ValidationError
from repro.models import LinearDiscriminantAnalysis, LogisticRegression


class TestLogisticRegression:
    def test_learns_linearly_separable_data(self, small_binary_data):
        X, y = small_binary_data
        model = LogisticRegression(max_iter=200).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_multiclass_support(self, small_multiclass_data):
        X, y = small_multiclass_data
        model = LogisticRegression(max_iter=200).fit(X, y)
        assert model.score(X, y) > 0.8
        assert model.predict_proba(X).shape == (X.shape[0], 3)

    def test_probabilities_sum_to_one(self, small_multiclass_data):
        X, y = small_multiclass_data
        model = LogisticRegression(max_iter=80).fit(X, y)
        probs = model.predict_proba(X)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(probs >= 0)

    def test_predictions_use_original_label_space(self):
        X, y = make_classification(n_samples=80, n_features=4, random_state=0)
        shifted_labels = np.where(y == 0, 10, 42)
        model = LogisticRegression(max_iter=60).fit(X, shifted_labels)
        assert set(model.predict(X).tolist()).issubset({10, 42})

    def test_sensitive_to_feature_scale(self, distorted_data):
        """LR accuracy should improve when features are standardised.

        This is the core premise of the paper: linear models are sensitive to
        feature scaling.
        """
        from repro.preprocessing import StandardScaler

        X, y = distorted_data
        raw = LogisticRegression(max_iter=80).fit(X, y).score(X, y)
        scaled_X = StandardScaler().fit_transform(X)
        scaled = LogisticRegression(max_iter=80).fit(scaled_X, y).score(scaled_X, y)
        assert scaled > raw

    def test_regularisation_shrinks_weights(self, small_binary_data):
        X, y = small_binary_data
        strong = LogisticRegression(C=0.01, max_iter=200).fit(X, y)
        weak = LogisticRegression(C=100.0, max_iter=200).fit(X, y)
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)

    def test_predict_before_fit_raises(self, small_binary_data):
        X, _ = small_binary_data
        with pytest.raises(NotFittedError):
            LogisticRegression().predict(X)

    def test_clone_resets_fitted_state(self, small_binary_data):
        X, y = small_binary_data
        model = LogisticRegression(C=2.0).fit(X, y)
        clone = model.clone()
        assert not clone.is_fitted()
        assert clone.C == 2.0

    def test_set_params_unknown_raises(self):
        with pytest.raises(ValidationError):
            LogisticRegression().set_params(penalty="l1")

    def test_deterministic_given_seed(self, small_binary_data):
        X, y = small_binary_data
        a = LogisticRegression(random_state=7, max_iter=50).fit(X, y).predict_proba(X)
        b = LogisticRegression(random_state=7, max_iter=50).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(a, b)


class TestLDA:
    def test_fits_gaussian_classes(self, small_binary_data):
        X, y = small_binary_data
        model = LinearDiscriminantAnalysis().fit(X, y)
        assert model.score(X, y) > 0.85

    def test_multiclass(self, small_multiclass_data):
        X, y = small_multiclass_data
        model = LinearDiscriminantAnalysis().fit(X, y)
        assert model.score(X, y) > 0.7

    def test_handles_collinear_features(self, rng):
        base = rng.normal(size=(100, 2))
        X = np.hstack([base, base[:, :1]])  # duplicated column
        y = (base[:, 0] > 0).astype(int)
        model = LinearDiscriminantAnalysis().fit(X, y)
        assert model.score(X, y) > 0.8

    def test_probabilities_valid(self, small_binary_data):
        X, y = small_binary_data
        probs = LinearDiscriminantAnalysis().fit(X, y).predict_proba(X)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)
