"""Tests for decision trees and random forests (classification + regression)."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.models import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
)


class TestDecisionTreeClassifier:
    def test_fits_separable_data(self, small_binary_data):
        X, y = small_binary_data
        model = DecisionTreeClassifier().fit(X, y)
        assert model.score(X, y) > 0.95

    def test_max_depth_limits_tree(self, small_binary_data):
        X, y = small_binary_data
        model = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert model.depth() <= 2

    def test_depth_one_is_a_stump(self, small_binary_data):
        X, y = small_binary_data
        model = DecisionTreeClassifier(max_depth=1).fit(X, y)
        assert model.n_leaves() <= 2

    def test_unrestricted_tree_memorises_training_data(self, rng):
        X = rng.normal(size=(60, 4))
        y = rng.integers(0, 2, size=60)
        model = DecisionTreeClassifier(max_depth=None, min_samples_leaf=1).fit(X, y)
        assert model.score(X, y) == pytest.approx(1.0)

    def test_min_samples_leaf_respected(self, small_binary_data):
        X, y = small_binary_data
        model = DecisionTreeClassifier(min_samples_leaf=20).fit(X, y)

        def leaf_sizes(node):
            if node.is_leaf():
                return [node.n_samples]
            return leaf_sizes(node.left) + leaf_sizes(node.right)

        assert min(leaf_sizes(model.tree_)) >= 20

    def test_scale_invariance(self, small_binary_data):
        """Trees are invariant to monotone feature rescaling (unlike LR/MLP)."""
        X, y = small_binary_data
        base = DecisionTreeClassifier(max_depth=4, random_state=0).fit(X, y).predict(X)
        scaled = DecisionTreeClassifier(max_depth=4, random_state=0).fit(
            X * 1000.0 + 5.0, y
        ).predict(X * 1000.0 + 5.0)
        np.testing.assert_array_equal(base, scaled)

    def test_multiclass_probabilities(self, small_multiclass_data):
        X, y = small_multiclass_data
        probs = DecisionTreeClassifier(max_depth=5).fit(X, y).predict_proba(X)
        assert probs.shape == (X.shape[0], 3)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_predict_before_fit_raises(self, small_binary_data):
        X, _ = small_binary_data
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(X)

    def test_constant_labels_yield_single_leaf(self, rng):
        X = rng.normal(size=(30, 3))
        y = np.zeros(30, dtype=int)
        model = DecisionTreeClassifier().fit(X, y)
        assert model.n_leaves() == 1
        assert np.all(model.predict(X) == 0)


class TestDecisionTreeRegressor:
    def test_fits_piecewise_constant_function(self, rng):
        X = rng.uniform(-1, 1, size=(200, 1))
        y = np.where(X[:, 0] > 0, 2.0, -2.0)
        model = DecisionTreeRegressor(max_depth=2).fit(X, y)
        predictions = model.predict(X)
        assert np.mean((predictions - y) ** 2) < 0.1

    def test_depth_zero_like_prediction_is_mean(self, rng):
        X = rng.normal(size=(50, 2))
        y = rng.normal(size=50)
        model = DecisionTreeRegressor(max_depth=0).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y.mean())

    def test_deeper_trees_reduce_training_error(self, rng):
        X = rng.uniform(-3, 3, size=(300, 1))
        y = np.sin(X[:, 0])
        shallow = DecisionTreeRegressor(max_depth=1).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=6).fit(X, y)
        err_shallow = np.mean((shallow.predict(X) - y) ** 2)
        err_deep = np.mean((deep.predict(X) - y) ** 2)
        assert err_deep < err_shallow

    def test_clone_preserves_params(self):
        model = DecisionTreeRegressor(max_depth=5, min_samples_leaf=3)
        clone = model.clone()
        assert clone.max_depth == 5
        assert clone.min_samples_leaf == 3


class TestRandomForestClassifier:
    def test_fits_separable_data(self, small_binary_data):
        X, y = small_binary_data
        model = RandomForestClassifier(n_estimators=10, max_depth=4).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_number_of_estimators(self, small_binary_data):
        X, y = small_binary_data
        model = RandomForestClassifier(n_estimators=7).fit(X, y)
        assert len(model.estimators_) == 7

    def test_probabilities_valid(self, small_multiclass_data):
        X, y = small_multiclass_data
        probs = RandomForestClassifier(n_estimators=8, max_depth=4).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)
        assert probs.shape[1] == 3

    def test_deterministic_given_seed(self, small_binary_data):
        X, y = small_binary_data
        a = RandomForestClassifier(n_estimators=5, random_state=3).fit(X, y).predict(X)
        b = RandomForestClassifier(n_estimators=5, random_state=3).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)


class TestRandomForestRegressor:
    def test_prediction_quality(self, rng):
        X = rng.uniform(-2, 2, size=(300, 2))
        y = X[:, 0] ** 2 + X[:, 1]
        model = RandomForestRegressor(n_estimators=15, max_depth=6, random_state=0).fit(X, y)
        residual = np.mean((model.predict(X) - y) ** 2)
        assert residual < np.var(y) * 0.3

    def test_predict_with_std_shapes(self, rng):
        X = rng.normal(size=(80, 3))
        y = X[:, 0]
        model = RandomForestRegressor(n_estimators=5, random_state=0).fit(X, y)
        mean, std = model.predict_with_std(X)
        assert mean.shape == (80,)
        assert std.shape == (80,)
        assert np.all(std >= 0)

    def test_uncertainty_higher_off_distribution(self, rng):
        X = rng.uniform(0, 1, size=(200, 1))
        y = X[:, 0]
        model = RandomForestRegressor(n_estimators=20, max_depth=4, random_state=0).fit(X, y)
        _, std_in = model.predict_with_std(np.array([[0.5]]))
        _, std_out = model.predict_with_std(np.array([[5.0]]))
        # Far outside the training range all trees agree on the boundary leaf,
        # so the spread should not explode; just check both are finite.
        assert np.isfinite(std_in[0]) and np.isfinite(std_out[0])

    def test_clone(self):
        model = RandomForestRegressor(n_estimators=3, max_depth=2)
        clone = model.clone()
        assert clone.get_params() == model.get_params()
