"""Tests for the gradient-boosting (XGB stand-in) and MLP classifiers."""

import numpy as np
import pytest

from repro.models import GradientBoostingClassifier, MLPClassifier
from repro.preprocessing import StandardScaler


class TestGradientBoosting:
    def test_fits_separable_data(self, small_binary_data):
        X, y = small_binary_data
        model = GradientBoostingClassifier(n_estimators=10, max_depth=2).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_multiclass(self, small_multiclass_data):
        X, y = small_multiclass_data
        model = GradientBoostingClassifier(n_estimators=10, max_depth=2).fit(X, y)
        assert model.score(X, y) > 0.8

    def test_more_rounds_fit_training_data_better(self, distorted_data):
        X, y = distorted_data
        few = GradientBoostingClassifier(n_estimators=2, max_depth=2).fit(X, y)
        many = GradientBoostingClassifier(n_estimators=20, max_depth=2).fit(X, y)
        assert many.score(X, y) >= few.score(X, y)

    def test_probabilities_valid(self, small_binary_data):
        X, y = small_binary_data
        probs = GradientBoostingClassifier(n_estimators=5).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_scale_robustness(self, small_binary_data):
        """Tree ensembles give identical predictions under monotone rescaling."""
        X, y = small_binary_data
        base = GradientBoostingClassifier(n_estimators=8, random_state=0).fit(X, y)
        scaled = GradientBoostingClassifier(n_estimators=8, random_state=0).fit(
            X * 500.0 - 3.0, y
        )
        np.testing.assert_array_equal(base.predict(X), scaled.predict(X * 500.0 - 3.0))

    def test_staged_score_length_and_monotone_tail(self, small_binary_data):
        X, y = small_binary_data
        model = GradientBoostingClassifier(n_estimators=6).fit(X, y)
        staged = model.staged_score(X, y)
        assert len(staged) == 6
        assert staged[-1] >= staged[0] - 0.05

    def test_subsample_under_one_still_learns(self, small_binary_data):
        X, y = small_binary_data
        model = GradientBoostingClassifier(n_estimators=10, subsample=0.7,
                                           random_state=0).fit(X, y)
        assert model.score(X, y) > 0.85

    def test_deterministic_given_seed(self, small_binary_data):
        X, y = small_binary_data
        a = GradientBoostingClassifier(n_estimators=4, subsample=0.8,
                                       random_state=5).fit(X, y).predict(X)
        b = GradientBoostingClassifier(n_estimators=4, subsample=0.8,
                                       random_state=5).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)


class TestMLPClassifier:
    def test_fits_separable_data(self, small_binary_data):
        X, y = small_binary_data
        model = MLPClassifier(hidden_layer_sizes=(16,), max_iter=60).fit(X, y)
        assert model.score(X, y) > 0.85

    def test_multiclass(self, small_multiclass_data):
        X, y = small_multiclass_data
        model = MLPClassifier(hidden_layer_sizes=(16,), max_iter=60).fit(X, y)
        assert model.score(X, y) > 0.75

    def test_two_hidden_layers_supported(self, small_binary_data):
        X, y = small_binary_data
        model = MLPClassifier(hidden_layer_sizes=(16, 8), max_iter=40).fit(X, y)
        assert len(model.weights_) == 3
        assert model.score(X, y) > 0.7

    def test_probabilities_valid(self, small_binary_data):
        X, y = small_binary_data
        probs = MLPClassifier(max_iter=20).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    def test_scale_sensitivity(self, distorted_data):
        """MLP benefits strongly from standardisation (paper's MLP results)."""
        X, y = distorted_data
        raw = MLPClassifier(max_iter=30, random_state=0).fit(X, y).score(X, y)
        X_scaled = StandardScaler().fit_transform(X)
        scaled = MLPClassifier(max_iter=30, random_state=0).fit(X_scaled, y).score(X_scaled, y)
        assert scaled >= raw

    def test_deterministic_given_seed(self, small_binary_data):
        X, y = small_binary_data
        a = MLPClassifier(max_iter=15, random_state=2).fit(X, y).predict_proba(X)
        b = MLPClassifier(max_iter=15, random_state=2).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(a, b)

    def test_clone_keeps_architecture(self):
        model = MLPClassifier(hidden_layer_sizes=(8, 4), alpha=1e-3)
        clone = model.clone()
        assert clone.hidden_layer_sizes == (8, 4)
        assert clone.alpha == 1e-3
