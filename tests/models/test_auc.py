"""Tests for the ROC AUC metric used by the deep-model extension."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.models import roc_auc_score


class TestRocAucScore:
    def test_perfect_ranking_scores_one(self):
        y_true = [0, 0, 1, 1]
        y_score = [0.1, 0.2, 0.8, 0.9]
        assert roc_auc_score(y_true, y_score) == 1.0

    def test_inverted_ranking_scores_zero(self):
        y_true = [0, 0, 1, 1]
        y_score = [0.9, 0.8, 0.2, 0.1]
        assert roc_auc_score(y_true, y_score) == 0.0

    def test_random_constant_scores_give_half(self):
        y_true = [0, 1, 0, 1, 0, 1]
        y_score = [0.5] * 6
        assert roc_auc_score(y_true, y_score) == pytest.approx(0.5)

    def test_ties_use_midranks(self):
        # One positive tied with one negative, one positive clearly above.
        y_true = [0, 0, 1, 1]
        y_score = [0.1, 0.5, 0.5, 0.9]
        # pairs: (0.1 vs 0.5)=1, (0.1 vs 0.9)=1, (0.5 vs 0.5)=0.5, (0.5 vs 0.9)=1
        assert roc_auc_score(y_true, y_score) == pytest.approx(3.5 / 4.0)

    def test_matches_pairwise_definition_on_random_data(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 2, size=200)
        y_score = rng.uniform(size=200)
        positives = y_score[y_true == 1]
        negatives = y_score[y_true == 0]
        wins = (positives[:, None] > negatives[None, :]).sum()
        ties = (positives[:, None] == negatives[None, :]).sum()
        expected = (wins + 0.5 * ties) / (positives.size * negatives.size)
        assert roc_auc_score(y_true, y_score) == pytest.approx(expected)

    def test_label_values_other_than_zero_one_are_supported(self):
        y_true = ["neg", "neg", "pos", "pos"]
        # np.unique sorts: "neg" < "pos", so "pos" is the positive class.
        y_score = [0.1, 0.3, 0.7, 0.9]
        assert roc_auc_score(np.asarray(y_true), y_score) == 1.0

    def test_single_class_rejected(self):
        with pytest.raises(ValidationError):
            roc_auc_score([1, 1, 1], [0.1, 0.2, 0.3])

    def test_three_classes_rejected(self):
        with pytest.raises(ValidationError):
            roc_auc_score([0, 1, 2], [0.1, 0.2, 0.3])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            roc_auc_score([0, 1], [0.1, 0.2, 0.3])
