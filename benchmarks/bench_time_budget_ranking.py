"""E15 — Section 5.2 mechanism check: wall-clock budgets reward cheap pickers.

The paper budgets every search run by wall-clock time, and explains the
evolution-based lead of Table 4 by the fact that evolution (and random
search) spend almost nothing on picking the next pipeline, so they evaluate
many more pipelines per time budget than the surrogate-based algorithms,
whose model fitting (random forest, KDE, LSTM) eats into the budget.

The main Table 4 harness uses evaluation-count budgets for determinism (see
EXPERIMENTS.md), which hides that mechanism.  This harness restores it: it
runs a subset of algorithms under a small wall-clock budget and records how
many pipelines each one managed to evaluate and the best accuracy it found.
Expected shape: the cheap pickers (RS, TEVO_H, PBT) complete at least as
many evaluations as the surrogate-based algorithms, with the LSTM-based
Progressive NAS variant (PLNE) the slowest, and no algorithm beats the cheap
pickers by a large accuracy margin.
"""

from __future__ import annotations

from repro import AutoFPProblem
from repro.core.budget import TimeBudget
from repro.datasets import load_dataset
from repro.search import make_search_algorithm

DATASET = "gesture"
DATASET_SCALE = 1.5
ALGORITHMS = ("rs", "tevo_h", "pbt", "tpe", "smac", "plne")
CHEAP_PICKERS = ("rs", "tevo_h", "pbt")
TIME_BUDGET_SECONDS = 3.0


def _run_experiment() -> list[dict]:
    X, y = load_dataset(DATASET, scale=DATASET_SCALE)
    problem = AutoFPProblem.from_arrays(X, y, model="lr", random_state=0,
                                        name=f"{DATASET}/lr")
    baseline = problem.baseline_accuracy()
    rows = []
    for name in ALGORITHMS:
        algorithm = make_search_algorithm(name, random_state=0)
        result = algorithm.search(problem, budget=TimeBudget(TIME_BUDGET_SECONDS))
        pick_seconds = sum(t.pick_time for t in result.trials)
        total_seconds = sum(t.total_time for t in result.trials)
        rows.append({
            "algorithm": name,
            "baseline": baseline,
            "n_evaluations": len(result),
            "best_accuracy": result.best_accuracy,
            "pick_fraction": pick_seconds / total_seconds if total_seconds else 0.0,
        })
    return rows


def test_time_budget_rewards_cheap_pickers(once, artifact):
    rows = once(_run_experiment)

    lines = [
        "Section 5.2 mechanism — evaluations completed under a wall-clock budget",
        f"dataset {DATASET} (scale {DATASET_SCALE}), model LR, "
        f"budget {TIME_BUDGET_SECONDS:.0f}s per algorithm",
        "",
        f"{'algorithm':<10} {'evaluations':>12} {'best acc':>9} {'pick %':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row['algorithm']:<10} {row['n_evaluations']:>12d} "
            f"{row['best_accuracy']:>9.4f} {100 * row['pick_fraction']:>7.1f}%"
        )
    artifact("section5_time_budget_mechanism", "\n".join(lines))

    by_name = {row["algorithm"]: row for row in rows}
    slowest_cheap = min(by_name[name]["n_evaluations"] for name in CHEAP_PICKERS)
    # The LSTM-surrogate Progressive NAS variant pays for its model fitting:
    # it completes no more evaluations than the cheapest pickers.
    assert by_name["plne"]["n_evaluations"] <= slowest_cheap
    # Cheap pickers spend (almost) none of their time choosing pipelines.
    for name in CHEAP_PICKERS:
        assert by_name[name]["pick_fraction"] < 0.2
    # Under the same wall-clock budget no surrogate algorithm dominates the
    # cheap pickers by a wide accuracy margin (the paper's "RS is a strong
    # baseline" finding seen from the time-budget side).
    best_cheap = max(by_name[name]["best_accuracy"] for name in CHEAP_PICKERS)
    for name in ("tpe", "smac", "plne"):
        assert by_name[name]["best_accuracy"] <= best_cheap + 0.08
