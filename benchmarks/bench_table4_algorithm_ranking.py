"""E4 — Table 4 (and Tables 12-15): average ranking of the 15 search algorithms.

The paper runs all 15 algorithms on 45 datasets x 3 models x 6 time limits,
keeps the scenarios where FP improves the downstream model by >= 1.5
percentage points, and ranks algorithms by best validation accuracy within
each scenario.  Headline findings: evolution-based algorithms (PBT, TEVO)
lead, random search is a strong baseline, and RL-based / bandit-based
algorithms trail.

This harness runs the same grid over a diverse subset of datasets with the
LR downstream model and a fixed evaluation budget, then prints the Table 4
layout plus the per-dataset improvement matrix (the Tables 12-15 layout).
Expected shape: the evolution-based category average rank is at least as
good as the RL-based and bandit-based category averages.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import category_average_ranks, ranking_order
from repro.experiments import format_ranking_table, format_table, quick_config, run_experiment
from repro.search import ALGORITHM_CATEGORIES, ALL_ALGORITHM_NAMES

DATASETS = ("heart", "australian", "blood", "wine", "vehicle", "ionosphere", "pd", "forex")
MAX_TRIALS = 20


def _run_experiment():
    config = quick_config(datasets=DATASETS, models=("lr",),
                          algorithms=ALL_ALGORITHM_NAMES, max_trials=MAX_TRIALS)
    return run_experiment(config)


def test_table4_algorithm_ranking(once, artifact):
    outcome = once(_run_experiment)

    rankings = outcome.rankings(min_improvement=1.5)
    if rankings["n_scenarios"] == 0:
        rankings = outcome.rankings(min_improvement=0.0)

    artifact(
        "table4_average_ranking",
        format_ranking_table(rankings, list(ALL_ALGORITHM_NAMES))
        + f"\n\nqualifying scenarios: {rankings['n_scenarios']}",
    )

    # Tables 12-15 layout: improvement over no-FP per dataset and algorithm.
    rows = []
    for scenario in outcome.scenarios:
        row = [scenario.dataset, scenario.model]
        for name in ALL_ALGORITHM_NAMES:
            improvement = (scenario.accuracies[name] - scenario.baseline_accuracy) * 100
            row.append(improvement)
        rows.append(row)
    artifact(
        "tables12_15_improvement_matrix",
        format_table(["dataset", "model", *ALL_ALGORITHM_NAMES], rows,
                     float_format="{:.2f}"),
    )

    overall = rankings["overall"]
    order = ranking_order(overall)
    category_ranks = category_average_ranks(overall, ALGORITHM_CATEGORIES)
    artifact(
        "table4_category_averages",
        format_table(["category", "avg_rank"],
                     sorted(category_ranks.items(), key=lambda kv: kv[1]),
                     float_format="{:.2f}"),
    )

    # Shape checks mirroring the paper's most robust findings.  At laptop
    # scale (a handful of datasets, ~20 evaluations per run) the fine-grained
    # ordering is noisy, so the assertions target the coarse structure:
    # bandit-based algorithms trail, evolution-based algorithms beat them,
    # and random search stays competitive rather than collapsing to the
    # bottom of the table.
    assert len(order) == 15
    assert all(np.isfinite(rank) for rank in category_ranks.values())
    assert category_ranks["bandit"] >= min(category_ranks.values())
    assert category_ranks["evolution"] <= category_ranks["bandit"] + 0.25
    assert order.index("rs") < 14
    worst_rank = max(overall[name] for name in order)
    assert overall["rs"] < worst_rank
