"""E9 — Figure 10 (and Figure 29): Auto-FP in an AutoML context, default space.

The paper compares Auto-FP (PBT over the seven-preprocessor space) against
the FP module of TPOT (GP over five preprocessors) and against the HPO
module (hyperparameter tuning of the downstream model, no preprocessing),
all under the same budget.  Findings: Auto-FP beats TPOT-FP on most
datasets, and is comparable to — often better than — HPO for the
scale-sensitive models (LR, MLP).

This harness runs the three contenders on the Figure 10 dataset list with
the LR and MLP models.  Expected shape: Auto-FP wins or ties against
TPOT-FP on at least half of the (dataset, model) pairs, and beats the no-FP
baseline everywhere.
"""

from __future__ import annotations

from repro.automl import compare_automl_context, summarize_comparisons
from repro.datasets import load_dataset
from repro.experiments import format_comparison_table

DATASETS = ("forex", "heart", "jasmine", "pd", "thyroid", "wine")
MODELS = ("lr", "mlp")
MAX_TRIALS = 20


def _run_experiment() -> list:
    comparisons = []
    for dataset in DATASETS:
        X, y = load_dataset(dataset, scale=0.7)
        for model in MODELS:
            comparisons.append(
                compare_automl_context(
                    X, y, model, dataset_name=dataset,
                    max_trials=MAX_TRIALS, random_state=0,
                )
            )
    return comparisons


def test_fig10_automl_context_default_space(once, artifact):
    comparisons = once(_run_experiment)
    summary = summarize_comparisons(comparisons)

    artifact(
        "figure10_automl_default_space",
        format_comparison_table(comparisons)
        + "\n\n"
        + f"Auto-FP >= TPOT-FP: {summary['auto_fp_beats_tpot']}/{summary['n']}\n"
        + f"Auto-FP >= HPO:     {summary['auto_fp_beats_hpo']}/{summary['n']}\n"
        + f"Auto-FP >= no-FP:   {summary['auto_fp_beats_baseline']}/{summary['n']}",
    )

    # Shape checks mirroring Section 7.1 / 7.2.
    assert summary["auto_fp_beats_baseline"] == summary["n"]
    assert summary["auto_fp_beats_tpot"] >= summary["n"] // 2
    assert summary["auto_fp_beats_hpo"] >= summary["n"] // 2
