"""E12 — Section 5.2: are there frequent excellent preprocessor patterns?

The paper mines the best pipelines found by PBT on all 45 datasets with
FP-growth and finds that no multi-preprocessor pattern has high support —
i.e. there is no universally good pipeline fragment, which is what makes
the search problem genuinely hard.

This harness searches with PBT on a dataset subset, mines the best
pipelines and prints the discovered patterns.  Expected shape: the maximum
support of any pattern with two or more preprocessors stays well below 1.0.
"""

from __future__ import annotations

from repro.analysis import max_pattern_support, mine_pipeline_patterns
from repro.core import AutoFPProblem
from repro.datasets import load_dataset
from repro.experiments import format_table
from repro.search import PBT

DATASETS = (
    "heart", "australian", "blood", "wine", "vehicle", "ionosphere",
    "pd", "forex", "thyroid", "page", "kc1", "phoneme",
)
MAX_TRIALS = 15


def _run_experiment() -> dict:
    best_pipelines = []
    for i, dataset in enumerate(DATASETS):
        X, y = load_dataset(dataset, scale=0.6)
        problem = AutoFPProblem.from_arrays(X, y, model="lr", random_state=0,
                                            name=dataset)
        result = PBT(random_state=i).search(problem, max_trials=MAX_TRIALS)
        best_pipelines.append(result.best_pipeline)
    patterns = mine_pipeline_patterns(best_pipelines, min_support=0.25)
    return {"pipelines": best_pipelines, "patterns": patterns}


def test_frequent_preprocessor_patterns(once, artifact):
    data = once(_run_experiment)
    patterns = data["patterns"]

    rows = [
        ["{" + ", ".join(sorted(pattern)) + "}", len(pattern), support]
        for pattern, support in sorted(patterns.items(), key=lambda kv: -kv[1])
    ]
    best_pipeline_rows = [
        [dataset, pipeline.describe()]
        for dataset, pipeline in zip(DATASETS, data["pipelines"])
    ]
    artifact(
        "section5_frequent_patterns",
        format_table(["pattern", "size", "support"], rows, float_format="{:.2f}")
        + "\n\nbest pipelines per dataset:\n"
        + format_table(["dataset", "best pipeline"], best_pipeline_rows),
    )

    # Shape check: no dominant multi-preprocessor pattern.
    assert max_pattern_support(patterns, min_size=2) < 0.9
