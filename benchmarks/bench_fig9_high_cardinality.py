"""E8 — Figure 9 (and Figures 26-28): One-step vs Two-step, high cardinality.

On the high-cardinality space of Table 7 the QuantileTransformer contributes
~99% of the One-step candidates, so One-step keeps drawing pipelines full of
duplicated QuantileTransformers while Two-step — which fixes one parameter
value per preprocessor before each pipeline search — avoids the imbalance.
The paper's finding is that Two-step is preferred in this regime.

This harness repeats the Figure 8 protocol on the high-cardinality space.
Expected shape: Two-step is at least as good as One-step on average at the
largest budget, and One-step's sampled pipelines are dominated by the
QuantileTransformer.
"""

from __future__ import annotations

import numpy as np

from repro.core import AutoFPProblem
from repro.datasets import load_dataset
from repro.experiments import format_series
from repro.extensions import OneStepSearch, TwoStepSearch, high_cardinality_space
from repro.search import PBT

DATASETS = ("australian", "madeline", "heart")
BUDGETS = (10, 20, 35)
TRIALS_PER_ROUND = 6


def _run_strategies(dataset: str) -> dict:
    X, y = load_dataset(dataset)
    problem = AutoFPProblem.from_arrays(X, y, model="lr", random_state=0, name=dataset)
    parameter_space = high_cardinality_space()
    one_curve, two_curve = [], []
    quantile_fraction = 0.0
    for budget in BUDGETS:
        one = OneStepSearch(PBT(random_state=0), parameter_space).search(
            problem, max_trials=budget
        )
        two = TwoStepSearch(
            lambda seed: PBT(random_state=seed), parameter_space,
            trials_per_round=TRIALS_PER_ROUND, random_state=0,
        ).search(problem, max_trials=budget)
        one_curve.append(one.best_accuracy)
        two_curve.append(two.best_accuracy)
        names = [
            name
            for trial in one.result.trials
            for name in trial.pipeline.names()
        ]
        quantile_fraction = names.count("quantile_transformer") / max(1, len(names))
    return {
        "dataset": dataset,
        "baseline": problem.baseline_accuracy(),
        "one_step": one_curve,
        "two_step": two_curve,
        "one_step_quantile_fraction": quantile_fraction,
    }


def _run_experiment() -> list[dict]:
    return [_run_strategies(dataset) for dataset in DATASETS]


def test_fig9_one_step_vs_two_step_high_cardinality(once, artifact):
    results = once(_run_experiment)

    parts = []
    for row in results:
        parts.append(
            f"--- {row['dataset']} (LR), no-FP accuracy = {row['baseline']:.4f}, "
            f"one-step quantile fraction = {row['one_step_quantile_fraction']:.2f} ---"
        )
        parts.append(format_series(
            "trial budget", list(BUDGETS),
            {"one_step": row["one_step"], "two_step": row["two_step"]},
        ))
    artifact("figure9_high_cardinality", "\n".join(parts))

    # Shape checks: the dominance pathology exists and Two-step holds up.
    for row in results:
        assert row["one_step_quantile_fraction"] > 0.6
    one_final = np.mean([row["one_step"][-1] for row in results])
    two_final = np.mean([row["two_step"][-1] for row in results])
    assert two_final >= one_final - 0.02
