"""E11 — Table 11: no-preprocessing accuracy vs random-search accuracy.

Table 11 of the paper lists, for every dataset and every downstream model,
the validation accuracy without preprocessing and the accuracy of the best
pipeline found by a 200-iteration random search.  The shape that matters:
LR and MLP gain substantially on most datasets, XGB gains little because
tree ensembles are insensitive to monotone feature rescaling.

This harness runs a smaller random search over a dataset subset for all
three downstream models.  Expected shape: the mean improvement for LR and
MLP exceeds the mean improvement for XGB.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import format_table, no_fp_vs_random_search

DATASETS = ("heart", "australian", "blood", "wine", "vehicle", "pd", "forex", "ionosphere")
MODELS = ("lr", "xgb", "mlp")
MAX_TRIALS = 15


def _run_experiment() -> list[dict]:
    return no_fp_vs_random_search(DATASETS, models=MODELS, max_trials=MAX_TRIALS,
                                  random_state=0)


def test_table11_no_fp_vs_random_search(once, artifact):
    rows = once(_run_experiment)

    headers = ["dataset"]
    for model in MODELS:
        headers += [f"{model}_no_fp", f"{model}_rs"]
    table_rows = []
    for row in rows:
        table_rows.append([row["dataset"],
                           *(row[f"{model}_{kind}"] for model in MODELS
                             for kind in ("no_fp", "rs"))])
    artifact("table11_no_fp_vs_random_search", format_table(headers, table_rows))

    improvements = {
        model: np.mean([row[f"{model}_rs"] - row[f"{model}_no_fp"] for row in rows])
        for model in MODELS
    }
    artifact(
        "table11_mean_improvement",
        format_table(["model", "mean_improvement"],
                     [[model, improvements[model]] for model in MODELS]),
    )

    # Random search never loses to no-FP (it can always keep the baseline).
    for model in MODELS:
        for row in rows:
            assert row[f"{model}_rs"] >= row[f"{model}_no_fp"] - 0.05
    # Scale-sensitive models benefit more than the tree ensemble.
    assert improvements["lr"] >= improvements["xgb"] - 1e-9
    assert improvements["mlp"] >= improvements["xgb"] - 1e-9
