"""E3 — Figure 5 / Table 9: statistics of the 45 benchmark datasets.

Figure 5 shows the distribution of dataset sizes, row counts, column counts
and class counts of the 45 datasets.  The registry keeps the original
statistics (Table 9) as metadata next to the scaled-down synthetic
stand-ins, so this harness reproduces both views: the paper-scale histogram
and the generated-scale summary.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import dataset_statistics, list_datasets, load_dataset
from repro.experiments import format_table, histogram


def _run_experiment() -> dict:
    stats = dataset_statistics()
    generated = []
    for name in list_datasets():
        X, y = load_dataset(name, scale=0.5)
        generated.append(
            {"name": name, "rows": X.shape[0], "cols": X.shape[1],
             "classes": int(np.unique(y).shape[0])}
        )
    return {"paper": stats, "generated": generated}


def test_fig5_dataset_statistics(once, artifact):
    data = once(_run_experiment)
    stats = data["paper"]

    sizes = [row["paper_size_mb"] for row in stats]
    rows_counts = [row["paper_rows"] for row in stats]
    cols_counts = [row["paper_cols"] for row in stats]
    class_counts = [row["n_classes"] for row in stats]

    parts = [
        "(a) file size (MB, paper scale, log10)",
        histogram(np.log10(sizes), bins=8),
        "(b) number of rows (paper scale, log10)",
        histogram(np.log10(rows_counts), bins=8),
        "(c) number of columns (paper scale, log10)",
        histogram(np.log10(cols_counts), bins=8),
        "(d) number of classes (generated)",
        histogram(class_counts, bins=8),
    ]
    artifact("figure5_dataset_statistics", "\n".join(parts))

    table = format_table(
        ["dataset", "paper_rows", "paper_cols", "size_mb", "classes", "category"],
        [
            [row["name"], row["paper_rows"], row["paper_cols"], row["paper_size_mb"],
             row["n_classes"], row["size_category"]]
            for row in stats
        ],
        float_format="{:.2f}",
    )
    artifact("table9_dataset_inventory", table)

    # Shape checks: 45 datasets, 28 binary / 17 multi-class, wide size range.
    assert len(stats) == 45
    assert sum(row["binary"] for row in stats) == 28
    assert min(sizes) < 0.1 and max(sizes) > 50
    assert max(cols_counts) > 1000 and min(cols_counts) <= 5


def test_generated_datasets_are_diverse(once, artifact):
    data = once(_run_experiment)
    generated = data["generated"]
    rows = [[g["name"], g["rows"], g["cols"], g["classes"]] for g in generated]
    artifact("figure5_generated_scale", format_table(["dataset", "rows", "cols", "classes"], rows))
    class_counts = {g["classes"] for g in generated}
    col_counts = {g["cols"] for g in generated}
    assert len(class_counts) >= 3
    assert len(col_counts) >= 8
