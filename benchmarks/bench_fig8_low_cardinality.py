"""E7 — Figure 8 (and Figures 23-25): One-step vs Two-step, low cardinality.

Section 6 extends Auto-FP with parameter search.  On the low-cardinality
space of Table 6 the paper finds that One-step (treating every
parameterisation as its own preprocessor, 31 candidates) beats Two-step
(resampling parameter values between short pipeline searches) in most cases
because Two-step explores too few parameter configurations per budget.

This harness runs both strategies with PBT on several datasets over a grid
of budgets and prints the accuracy trajectories.  Expected shape: averaged
over datasets at the largest budget, One-step is at least as good as
Two-step.
"""

from __future__ import annotations

import numpy as np

from repro.core import AutoFPProblem
from repro.datasets import load_dataset
from repro.experiments import format_series
from repro.extensions import OneStepSearch, TwoStepSearch, low_cardinality_space
from repro.search import PBT

DATASETS = ("australian", "madeline", "heart")
BUDGETS = (10, 20, 35)
TRIALS_PER_ROUND = 6


def _run_strategies(dataset: str) -> dict:
    X, y = load_dataset(dataset)
    problem = AutoFPProblem.from_arrays(X, y, model="lr", random_state=0, name=dataset)
    parameter_space = low_cardinality_space()
    one_curve, two_curve = [], []
    for budget in BUDGETS:
        one = OneStepSearch(PBT(random_state=0), parameter_space).search(
            problem, max_trials=budget
        )
        two = TwoStepSearch(
            lambda seed: PBT(random_state=seed), parameter_space,
            trials_per_round=TRIALS_PER_ROUND, random_state=0,
        ).search(problem, max_trials=budget)
        one_curve.append(one.best_accuracy)
        two_curve.append(two.best_accuracy)
    return {
        "dataset": dataset,
        "baseline": problem.baseline_accuracy(),
        "one_step": one_curve,
        "two_step": two_curve,
    }


def _run_experiment() -> list[dict]:
    return [_run_strategies(dataset) for dataset in DATASETS]


def test_fig8_one_step_vs_two_step_low_cardinality(once, artifact):
    results = once(_run_experiment)

    parts = []
    for row in results:
        parts.append(f"--- {row['dataset']} (LR), no-FP accuracy = {row['baseline']:.4f} ---")
        parts.append(format_series(
            "trial budget", list(BUDGETS),
            {"one_step": row["one_step"], "two_step": row["two_step"]},
        ))
    artifact("figure8_low_cardinality", "\n".join(parts))

    # Shape check: at the largest budget One-step is on average >= Two-step.
    one_final = np.mean([row["one_step"][-1] for row in results])
    two_final = np.mean([row["two_step"][-1] for row in results])
    assert one_final >= two_final - 0.02
    # Both strategies beat the no-FP baseline on average.
    baseline = np.mean([row["baseline"] for row in results])
    assert one_final >= baseline - 1e-9
