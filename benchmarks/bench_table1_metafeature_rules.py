"""E2 — Table 1: can data-characteristic rules predict whether FP helps?

The paper computes 40 auto-sklearn meta-features for every dataset, labels a
dataset 1 when 200 random FP pipelines improve the downstream model by more
than 1.5 percentage points (0 when they hurt by the same margin), trains a
decision tree of bounded depth on the meta-features and reports the 3-fold
CV score per tree depth and downstream model.  The finding is that the
scores stay far from 1.0 — no simple rule predicts FP benefit.

This harness runs the same procedure over a subset of the registry with a
smaller random-pipeline budget.  One adaptation: on the synthetic stand-in
datasets FP improves LR on virtually every dataset (the absolute 1.5%
threshold gives all-1 labels), so the label is "improvement above the
median improvement across datasets" — the same question (can meta-features
predict how much FP helps?) with a balanced label.  Expected shape: 3-CV
scores well below 1.0 for every tree depth.
"""

from __future__ import annotations

import numpy as np

from repro.core import AutoFPProblem
from repro.datasets import load_dataset
from repro.experiments import format_table
from repro.metafeatures import metafeature_vector
from repro.models import DecisionTreeClassifier, cross_val_score

DATASETS = (
    "heart", "blood", "australian", "wine", "vehicle", "ionosphere",
    "thyroid", "page", "phoneme", "kc1", "mobile_price", "wilt",
)
MODELS = ("lr", "xgb")
N_RANDOM_PIPELINES = 12
TREE_DEPTHS = (1, 2, 3, None)


def _improvement_for(dataset: str, model: str, seed: int) -> float:
    X, y = load_dataset(dataset, scale=0.6)
    problem = AutoFPProblem.from_arrays(X, y, model=model, random_state=0)
    baseline = problem.baseline_accuracy()
    best = max(
        problem.evaluator.evaluate(p).accuracy
        for p in problem.space.sample_pipelines(N_RANDOM_PIPELINES, random_state=seed)
    )
    return best - baseline


def _run_experiment() -> dict:
    features = []
    improvements: dict[str, list[float]] = {model: [] for model in MODELS}
    for i, dataset in enumerate(DATASETS):
        X, y = load_dataset(dataset, scale=0.6)
        features.append(metafeature_vector(X, y, include_landmarks=False))
        for model in MODELS:
            improvements[model].append(_improvement_for(dataset, model, seed=i))
    features = np.asarray(features)

    scores: dict[str, dict] = {}
    for model in MODELS:
        values = np.asarray(improvements[model])
        labels = (values > np.median(values)).astype(int)
        scores[model] = {}
        for depth in TREE_DEPTHS:
            if len(set(labels.tolist())) < 2:
                scores[model][depth] = 0.5
                continue
            cv_scores = cross_val_score(
                DecisionTreeClassifier(max_depth=depth), features, labels,
                cv=3, random_state=0,
            )
            scores[model][depth] = float(cv_scores.mean())
    return scores


def test_table1_metafeature_rules(once, artifact):
    scores = once(_run_experiment)

    rows = []
    for depth in TREE_DEPTHS:
        label = "No Limit" if depth is None else str(depth)
        rows.append([label, *(scores[model][depth] for model in MODELS)])
    table = format_table(["tree_depth", *(m.upper() + " 3-CV" for m in MODELS)], rows,
                         float_format="{:.2f}")
    artifact("table1_metafeature_rules", table)

    # Paper's conclusion: no rule predicts FP benefit confidently (score << 1).
    for model in MODELS:
        for depth in TREE_DEPTHS:
            assert scores[model][depth] <= 1.0
        assert min(scores[model].values()) < 0.95
