"""E5 — Figure 6: parameter adjustment for Hyperband and BOHB.

The paper sweeps the two key parameters of the bandit-based algorithms —
the halving factor ``eta`` and the minimum budget — on the Jasmine dataset
with the LR model, and shows that no setting makes them beat random search
consistently.

This harness sweeps ``eta`` in {2, 3, 5} and the minimum fidelity in
{1/9, 1/3, 2/3} on the jasmine stand-in, and prints the best accuracy per
setting next to the random-search reference.  Expected shape: the bandit
algorithms are in the same accuracy range as random search but do not beat
it across the board.
"""

from __future__ import annotations

import numpy as np

from repro.core import AutoFPProblem
from repro.datasets import load_dataset
from repro.experiments import format_table
from repro.search import BOHB, Hyperband, RandomSearch

DATASET = "jasmine"
MAX_TRIALS = 25
ETAS = (2.0, 3.0, 5.0)
MIN_FIDELITIES = (1.0 / 9.0, 1.0 / 3.0, 2.0 / 3.0)


def _run_experiment() -> dict:
    X, y = load_dataset(DATASET)
    problem = AutoFPProblem.from_arrays(X, y, model="lr", random_state=0, name=DATASET)
    baseline_rs = RandomSearch(random_state=0).search(problem, max_trials=MAX_TRIALS)

    rows = []
    for algorithm_cls in (Hyperband, BOHB):
        for eta in ETAS:
            result = algorithm_cls(eta=eta, min_fidelity=1.0 / 9.0, random_state=0).search(
                problem, max_trials=MAX_TRIALS
            )
            rows.append({
                "algorithm": algorithm_cls.name, "parameter": f"eta={eta:g}",
                "best_accuracy": result.best_accuracy,
            })
        for min_fidelity in MIN_FIDELITIES:
            result = algorithm_cls(eta=3.0, min_fidelity=min_fidelity, random_state=0).search(
                problem, max_trials=MAX_TRIALS
            )
            rows.append({
                "algorithm": algorithm_cls.name,
                "parameter": f"min_fidelity={min_fidelity:.2f}",
                "best_accuracy": result.best_accuracy,
            })
    return {"rs_accuracy": baseline_rs.best_accuracy, "rows": rows}


def test_fig6_bandit_parameter_adjustment(once, artifact):
    data = once(_run_experiment)
    rs_accuracy = data["rs_accuracy"]

    table = format_table(
        ["algorithm", "parameter", "best_acc", "rs_acc", "beats_rs"],
        [
            [row["algorithm"], row["parameter"], row["best_accuracy"], rs_accuracy,
             "yes" if row["best_accuracy"] > rs_accuracy else "no"]
            for row in data["rows"]
        ],
    )
    artifact("figure6_bandit_parameter_sweep", table)

    accuracies = np.asarray([row["best_accuracy"] for row in data["rows"]])
    # Shape: bandit algorithms are in a sane range and do not dominate RS
    # across every parameter setting.
    assert np.all(accuracies > 0.3)
    assert np.any(accuracies <= rs_accuracy + 1e-9)
