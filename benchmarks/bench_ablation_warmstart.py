"""A3 — Ablation: warm-starting search from meta-learned pipelines (Section 8).

The paper's first research opportunity is to warm-start the evolution-based
searchers: instead of a random initial population, seed the search with the
best pipelines of previously solved, similar datasets (similarity measured
on the auto-sklearn meta-features).

This ablation builds a meta-knowledge store by solving a set of *source*
datasets with TEVO_H, then compares cold-started vs warm-started TEVO_H on
held-out *target* datasets under a small budget, where initialisation
quality matters most.  Expected shape: the warm start never loses more than
noise, and its *anytime* behaviour is better — the best accuracy after the
first few evaluations is at least as high as the cold start's.
"""

from __future__ import annotations

import numpy as np

from repro import AutoFPProblem
from repro.datasets import load_dataset
from repro.metalearning import MetaKnowledgeStore, WarmStartedSearch, record_search_outcome
from repro.search import TEVO_H

SOURCE_DATASETS = ("heart", "blood", "vehicle", "ionosphere")
TARGET_DATASETS = ("wine", "thyroid")
SOURCE_TRIALS = 25
TARGET_TRIALS = 15
EARLY_CUTOFF = 8


def _best_after(result, n_trials: int) -> float:
    trajectory = result.accuracy_trajectory()
    index = min(n_trials, len(trajectory)) - 1
    return float(trajectory[index])


def _run_experiment() -> list[dict]:
    store = MetaKnowledgeStore()
    for dataset in SOURCE_DATASETS:
        X, y = load_dataset(dataset, scale=0.6)
        problem = AutoFPProblem.from_arrays(X, y, model="lr", random_state=0,
                                            name=f"{dataset}/lr")
        result = TEVO_H(random_state=0).search(problem, max_trials=SOURCE_TRIALS)
        record_search_outcome(store, problem, result, model_name="lr")

    rows = []
    for dataset in TARGET_DATASETS:
        X, y = load_dataset(dataset, scale=0.6)
        problem = AutoFPProblem.from_arrays(X, y, model="lr", random_state=0,
                                            name=f"{dataset}/lr")
        cold = TEVO_H(random_state=0).search(problem, max_trials=TARGET_TRIALS)
        warm = WarmStartedSearch(TEVO_H(random_state=0), store, n_warm=5,
                                 model_name="lr", random_state=0).search(
            problem, max_trials=TARGET_TRIALS)
        rows.append({
            "dataset": dataset,
            "baseline": problem.baseline_accuracy(),
            "cold_final": cold.best_accuracy,
            "warm_final": warm.best_accuracy,
            "cold_early": _best_after(cold, EARLY_CUTOFF),
            "warm_early": _best_after(warm, EARLY_CUTOFF),
        })
    return rows


def test_ablation_warmstart(once, artifact):
    rows = once(_run_experiment)

    lines = [
        "Ablation — warm-started vs cold-started TEVO_H (Section 8, opportunity 1)",
        f"store built from {len(SOURCE_DATASETS)} source datasets; "
        f"targets get {TARGET_TRIALS} evaluations",
        "",
        f"{'dataset':<10} {'no-FP':>8} {'cold@' + str(EARLY_CUTOFF):>9} "
        f"{'warm@' + str(EARLY_CUTOFF):>9} {'cold final':>11} {'warm final':>11}",
    ]
    for row in rows:
        lines.append(
            f"{row['dataset']:<10} {row['baseline']:>8.4f} {row['cold_early']:>9.4f} "
            f"{row['warm_early']:>9.4f} {row['cold_final']:>11.4f} "
            f"{row['warm_final']:>11.4f}"
        )
    artifact("ablation_warmstart", "\n".join(lines))

    for row in rows:
        # Warm starting never hurts the final outcome by more than noise ...
        assert row["warm_final"] >= row["cold_final"] - 0.05
        # ... and is at least as good as the cold start early in the run.
        assert row["warm_early"] >= row["cold_early"] - 0.05
        # Both searches comfortably beat the no-preprocessing baseline.
        assert row["warm_final"] >= row["baseline"]
