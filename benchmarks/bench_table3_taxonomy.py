"""E13 — Table 3: the taxonomy of the 15 Auto-FP search algorithms.

Table 3 categorises every algorithm by origin area (HPO / NAS), category,
surrogate model, initialisation strategy and the number of samples /
evaluations per iteration.  The taxonomy in this repository is attached to
the algorithm classes themselves, so regenerating the table doubles as a
consistency check between the documentation and the implementations.
"""

from __future__ import annotations

from repro.experiments import format_table
from repro.search import ALGORITHM_CATEGORIES, taxonomy_table


def _run_experiment() -> list[dict]:
    return taxonomy_table()


def test_table3_taxonomy(once, artifact):
    rows = once(_run_experiment)

    table = format_table(
        ["algorithm", "category", "area", "surrogate", "initialization",
         "samples/iter", "evals/iter"],
        [
            [row["name"], row["category"], row["area"], row["surrogate_model"],
             row["initialization"], row["samples_per_iteration"],
             row["evaluations_per_iteration"]]
            for row in rows
        ],
    )
    artifact("table3_taxonomy", table)

    assert len(rows) == 15
    by_name = {row["name"]: row for row in rows}
    # Spot-check the rows against Table 3 of the paper.
    assert by_name["rs"]["category"] == "traditional"
    assert by_name["smac"]["surrogate_model"] == "Random Forest"
    assert by_name["tpe"]["surrogate_model"] == "KDE"
    assert by_name["pmne"]["initialization"] == "Single Preprocessors"
    assert by_name["tevo_y"]["category"] == "evolution"
    assert by_name["reinforce"]["area"] == "hpo"
    assert by_name["enas"]["area"] == "nas"
    assert by_name["hyperband"]["category"] == "bandit"
    assert by_name["bohb"]["surrogate_model"] == "KDE"
    # Category membership matches the registry.
    for category, members in ALGORITHM_CATEGORIES.items():
        for member in members:
            assert by_name[member]["category"] == category
