"""E-faults — what fault tolerance costs when nothing goes wrong (and
how fast recovery is when it does).

The PR-9 retry envelope wraps every evaluation (attempt loop, fault
unwrap, soft-deadline check), so its no-fault overhead must be noise;
crash recovery tears down and rebuilds a whole process pool, so its cost
must be bounded and paid only on actual crashes.  Two measurements:

* ``test_fault_envelope_smoke`` (CI smoke): the guarded serial engine
  with a retry policy and an armed (but never-expiring) ``eval_timeout``
  versus the plain serial engine over the same batch — identical records
  required, wall-clock ratio bounded.  Also asserts the chaos
  convergence contract end to end: a serial run through a
  crash+error fault plan reproduces the clean records bit-for-bit.
* ``test_process_crash_recovery`` (slow): the same batch on a real
  process pool, clean versus with a planned worker kill
  (``os._exit`` inside the worker), measuring what one
  crash->rebuild->resubmit cycle adds to the batch.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.evaluation import PipelineEvaluator
from repro.core.search_space import SearchSpace
from repro.datasets.synthetic import distort_features, make_classification
from repro.engine import ChaosBackend, EvalTask, ExecutionEngine, RetryPolicy
from repro.engine.backends import ProcessBackend, SerialBackend
from repro.models.linear import LogisticRegression
from repro.telemetry.metrics import get_registry

#: retries without sleeps: the measurements isolate machinery, not backoff
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


def make_evaluator() -> PipelineEvaluator:
    X, y = make_classification(n_samples=140, n_features=8, n_classes=2,
                               class_sep=2.0, random_state=5)
    X = distort_features(X, random_state=5)
    return PipelineEvaluator.from_dataset(
        X, y, LogisticRegression(max_iter=60), random_state=0
    )


def make_tasks(n: int = 16) -> list:
    space = SearchSpace(max_length=3)
    rng = np.random.default_rng(0)
    pipelines: list = []
    seen: set = set()
    while len(pipelines) < n:
        for pipeline in space.sample_pipelines(n, rng):
            if pipeline.spec() not in seen and len(pipelines) < n:
                seen.add(pipeline.spec())
                pipelines.append(pipeline)
    return [EvalTask(pipeline) for pipeline in pipelines]


def timed_batch(engine, n: int = 16):
    """Evaluate the reference batch on ``engine``; ``(rows, seconds)``."""
    evaluator = make_evaluator()
    tasks = make_tasks(n)
    start = time.perf_counter()
    records = engine.run(evaluator, tasks)
    seconds = time.perf_counter() - start
    engine.close()
    rows = [(r.pipeline.spec(), round(r.fidelity, 6), r.accuracy,
             r.failure_kind) for r in records]
    return rows, seconds


def test_fault_envelope_smoke(artifact):
    plain_rows, plain_s = timed_batch(ExecutionEngine("serial"))
    guarded_rows, guarded_s = timed_batch(
        ExecutionEngine("serial", eval_timeout=300.0,
                        retry_policy=RetryPolicy())
    )
    chaos_rows, chaos_s = timed_batch(
        ExecutionEngine(ChaosBackend(SerialBackend(retry_policy=FAST_RETRY),
                                     "error@2,crash@5"))
    )

    assert guarded_rows == plain_rows, \
        "an armed eval_timeout changed evaluation results"
    assert chaos_rows == plain_rows, \
        "a recovered chaos run diverged from the clean run"
    # The envelope is an attempt loop + one monotonic read per task: its
    # cost must vanish next to real evaluations.  Generous bound — CI
    # machines are noisy — plus an absolute slack for sub-second runs.
    assert guarded_s <= plain_s * 2.0 + 0.25, (
        f"guarded envelope overhead too high: "
        f"{guarded_s:.3f}s vs {plain_s:.3f}s plain"
    )

    ratio = guarded_s / plain_s if plain_s > 0 else 1.0
    artifact(
        "fault_envelope_smoke",
        "no-fault overhead of the retry envelope (serial, 16 tasks)\n"
        f"  plain engine        : {plain_s * 1e3:8.1f} ms\n"
        f"  guarded (+timeout)  : {guarded_s * 1e3:8.1f} ms  "
        f"(x{ratio:.2f})\n"
        f"  chaos error+crash   : {chaos_s * 1e3:8.1f} ms  "
        f"(records identical: True)",
        metrics={"plain_s": round(plain_s, 6),
                 "guarded_s": round(guarded_s, 6),
                 "chaos_s": round(chaos_s, 6),
                 "overhead_ratio": round(ratio, 4)},
    )


def test_process_crash_recovery(once, artifact):
    """Full measurement: one worker kill's cost on a process-pool batch."""
    def clean():
        return timed_batch(
            ExecutionEngine(ProcessBackend(n_workers=2,
                                           retry_policy=FAST_RETRY))
        )

    def crashed():
        return timed_batch(
            ExecutionEngine(ChaosBackend(
                ProcessBackend(n_workers=2, retry_policy=FAST_RETRY),
                "crash@3",
            ))
        )

    clean_rows, clean_s = clean()
    get_registry().reset()
    crashed_rows, crashed_s = once(crashed)

    assert crashed_rows == clean_rows, \
        "crash recovery changed the surviving records"
    assert get_registry().counter("engine.worker_crashes").value >= 1, \
        "the planned worker kill never fired"
    recovery_s = crashed_s - clean_s
    assert recovery_s < 60.0, (
        f"crash recovery took {recovery_s:.1f}s over the clean batch"
    )

    artifact(
        "fault_process_crash_recovery",
        "process backend, 2 workers, 16 tasks, one planned worker kill\n"
        f"  clean batch          : {clean_s:7.2f} s\n"
        f"  kill + recover batch : {crashed_s:7.2f} s\n"
        f"  recovery overhead    : {recovery_s:7.2f} s "
        "(pool teardown + rebuild + isolation round + resubmits)",
        metrics={"clean_s": round(clean_s, 6),
                 "crashed_s": round(crashed_s, 6),
                 "recovery_overhead_s": round(recovery_s, 6)},
    )
