"""E10 — Figure 11 (and Figure 30): Auto-FP in an AutoML context, extended space.

Same protocol as Figure 10, but Auto-FP searches the parameter-extended
low-cardinality space of Table 6 (31 One-step preprocessors) instead of the
default seven.  The paper's conclusion — Auto-FP outperforms TPOT-FP and is
comparable to HPO — carries over to the wider search space.

Expected shape: Auto-FP beats the no-FP baseline everywhere and wins or
ties against TPOT-FP on at least half of the (dataset, model) pairs.
"""

from __future__ import annotations

from repro.automl import compare_automl_context, summarize_comparisons
from repro.datasets import load_dataset
from repro.experiments import format_comparison_table
from repro.extensions import low_cardinality_space

DATASETS = ("forex", "heart", "jasmine", "pd", "thyroid", "wine")
MODELS = ("lr", "mlp")
MAX_TRIALS = 20


def _run_experiment() -> list:
    comparisons = []
    extended = low_cardinality_space()
    for dataset in DATASETS:
        X, y = load_dataset(dataset, scale=0.7)
        for model in MODELS:
            comparisons.append(
                compare_automl_context(
                    X, y, model, dataset_name=dataset,
                    max_trials=MAX_TRIALS, random_state=0,
                    extended_space=extended,
                )
            )
    return comparisons


def test_fig11_automl_context_extended_space(once, artifact):
    comparisons = once(_run_experiment)
    summary = summarize_comparisons(comparisons)

    artifact(
        "figure11_automl_extended_space",
        format_comparison_table(comparisons)
        + "\n\n"
        + f"Auto-FP >= TPOT-FP: {summary['auto_fp_beats_tpot']}/{summary['n']}\n"
        + f"Auto-FP >= HPO:     {summary['auto_fp_beats_hpo']}/{summary['n']}\n"
        + f"Auto-FP >= no-FP:   {summary['auto_fp_beats_baseline']}/{summary['n']}",
    )

    assert summary["auto_fp_beats_baseline"] >= summary["n"] - 1
    assert summary["auto_fp_beats_tpot"] >= summary["n"] // 2
    assert summary["auto_fp_beats_hpo"] >= summary["n"] // 2
