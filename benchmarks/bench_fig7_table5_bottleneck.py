"""E6 — Figure 7 and Table 5: where does the search time go?

The paper breaks every search run into "Pick" (choosing the next pipeline),
"Prep" (applying the preprocessors) and "Train" (fitting and scoring the
downstream model), and reports the percentages per algorithm / dataset /
model (Figure 7, Figures 20-22) plus a per-scenario dominant-bottleneck
classification (Table 5).  Headline finding: training dominates in most
cases, preprocessing second, picking is usually negligible — except for the
surrogate-heavy algorithms whose pick time is visible.

This harness runs a representative algorithm subset on the Figure 7 dataset
list with the LR and XGB models and prints the breakdown and the Table 5
classification.  Expected shape: "train" or "prep" dominates every scenario;
"pick" never dominates for random search.
"""

from __future__ import annotations

from repro.analysis import analyze_result, bottleneck_table
from repro.core import AutoFPProblem
from repro.datasets import get_dataset_info, load_dataset
from repro.experiments import format_breakdown_table, format_table
from repro.search import make_search_algorithm

DATASETS = ("australian", "forex", "gesture", "wine", "madeline")
MODELS = ("lr", "xgb")
ALGORITHMS = ("rs", "anneal", "tpe", "smac", "tevo_h", "pbt", "pmne", "plne")
MAX_TRIALS = 12


def _run_experiment() -> list:
    reports = []
    for dataset in DATASETS:
        X, y = load_dataset(dataset, scale=0.7)
        for model in MODELS:
            problem = AutoFPProblem.from_arrays(
                X, y, model=model, random_state=0, name=f"{dataset}/{model}"
            )
            for algorithm in ALGORITHMS:
                result = make_search_algorithm(algorithm, random_state=0).search(
                    problem, max_trials=MAX_TRIALS
                )
                reports.append(analyze_result(result, dataset=dataset, model=model))
    return reports


def test_fig7_table5_bottleneck(once, artifact):
    reports = once(_run_experiment)

    artifact("figure7_overhead_breakdown", format_breakdown_table(reports))

    infos = {name: get_dataset_info(name) for name in DATASETS}
    table = bottleneck_table(reports, infos)
    rows = [
        [group, model, algorithm, bottleneck]
        for (group, model), algorithms in sorted(table.items())
        for algorithm, bottleneck in sorted(algorithms.items())
    ]
    artifact("table5_bottleneck_classification",
             format_table(["dataset_group", "model", "algorithm", "bottleneck"], rows))

    # Shape checks.
    dominated_by_eval = sum(r.bottleneck in ("train", "prep") for r in reports)
    assert dominated_by_eval / len(reports) > 0.6, "evaluation should dominate most runs"
    rs_reports = [r for r in reports if r.algorithm == "rs"]
    assert all(r.bottleneck != "pick" for r in rs_reports)
    # Model evaluation ("train") is the single most common bottleneck.
    from collections import Counter

    counts = Counter(r.bottleneck for r in reports)
    assert counts["train"] >= counts["pick"]
