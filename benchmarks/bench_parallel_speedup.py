"""E-engine — parallel execution engine: speedup vs the serial baseline.

The bottleneck analysis (Figure 7 / Table 5) shows Auto-FP search time is
dominated by pipeline evaluation, and the experiment grid's
(dataset, model, algorithm, repeat) cells are embarrassingly parallel.
This harness measures the wall-clock speedup of fanning a grid of
independent cells across the execution engine's thread and process
backends, and verifies the parallel outcomes are bit-for-bit identical to
the serial baseline.

Expected shape: identical scenario accuracies on every backend, and — on a
multi-core machine — >1.5x speedup with 4 workers on a grid of 8+ cells.
On a single-core machine the equality checks still run; the speedup
assertion is skipped because there is no parallel hardware to exploit.

``smoke_check()`` is the fast variant exercised by the tier-1 test-suite
on every run (see ``tests/experiments/test_parallel_experiments.py``).
"""

from __future__ import annotations

import os
import time

from repro.core.context import ExecutionContext
from repro.experiments import ExperimentConfig, format_table, run_experiment

#: 4 datasets x 1 model x 2 algorithms = 8 independent grid cells
SPEEDUP_GRID = ExperimentConfig(
    datasets=("heart", "blood", "wine", "vehicle"),
    models=("lr",),
    algorithms=("rs", "tevo_h"),
    max_trials=12,
    random_state=0,
)

#: tiny grid for the tier-1 smoke mode (4 cells, ~seconds)
SMOKE_GRID = ExperimentConfig(
    datasets=("blood", "wine"),
    models=("lr",),
    algorithms=("rs", "tevo_h"),
    max_trials=6,
    dataset_scale=0.5,
    random_state=0,
)


def scenario_accuracies(outcome) -> list:
    """Canonical, comparable view of an outcome's scenario accuracies."""
    return [
        (scenario.dataset, scenario.model, scenario.baseline_accuracy,
         sorted(scenario.accuracies.items()))
        for scenario in outcome.scenarios
    ]


def timed_grid(config: ExperimentConfig, *, n_jobs: int = 1,
               backend: str = "serial"):
    """Run the grid and return ``(outcome, wall_seconds)``."""
    start = time.perf_counter()
    outcome = run_experiment(
        config, context=ExecutionContext(n_jobs=n_jobs, backend=backend)
    )
    return outcome, time.perf_counter() - start


def smoke_check(*, backend: str = "thread", n_jobs: int = 2):
    """Fast engine exercise: parallel grid outcome must equal serial.

    Returns the (serial, parallel) outcomes so callers can assert further.
    """
    serial = run_experiment(SMOKE_GRID)
    parallel = run_experiment(
        SMOKE_GRID, context=ExecutionContext(n_jobs=n_jobs, backend=backend)
    )
    assert scenario_accuracies(parallel) == scenario_accuracies(serial), (
        f"{backend} backend changed the experiment outcome"
    )
    assert serial.rankings(min_improvement=-100.0) == \
        parallel.rankings(min_improvement=-100.0)
    return serial, parallel


def test_parallel_speedup(once, artifact):
    n_workers = 4
    serial_outcome, serial_seconds = once(timed_grid, SPEEDUP_GRID)

    rows = [["serial", 1, serial_seconds, 1.0, "yes"]]
    for backend in ("thread", "process"):
        outcome, seconds = timed_grid(SPEEDUP_GRID, n_jobs=n_workers,
                                      backend=backend)
        identical = scenario_accuracies(outcome) == scenario_accuracies(serial_outcome)
        rows.append([backend, n_workers, seconds,
                     serial_seconds / max(seconds, 1e-9),
                     "yes" if identical else "NO"])
        # Hard requirement on every machine: parallel == serial, bit-for-bit.
        assert identical, f"{backend} backend changed the experiment outcome"

    artifact("parallel_speedup",
             format_table(["backend", "workers", "seconds", "speedup",
                           "identical"], rows))

    if (os.cpu_count() or 1) >= 2:
        process_speedup = rows[2][3]
        assert process_speedup > 1.5, (
            f"expected >1.5x speedup with {n_workers} process workers on "
            f"{len(SPEEDUP_GRID.datasets) * len(SPEEDUP_GRID.algorithms)} "
            f"cells, got {process_speedup:.2f}x"
        )


if __name__ == "__main__":
    smoke_check()
    print("smoke check passed: parallel outcome identical to serial")
    serial_outcome, serial_seconds = timed_grid(SPEEDUP_GRID)
    print(f"serial: {serial_seconds:.2f}s")
    for backend in ("thread", "process"):
        outcome, seconds = timed_grid(SPEEDUP_GRID, n_jobs=4, backend=backend)
        same = scenario_accuracies(outcome) == scenario_accuracies(serial_outcome)
        print(f"{backend} x4: {seconds:.2f}s "
              f"(speedup {serial_seconds / max(seconds, 1e-9):.2f}x, "
              f"identical={same})")
