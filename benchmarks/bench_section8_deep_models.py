"""E16 — Section 8: Auto-FP for deep recommendation models (DeepFM / DCN).

The paper's Section 8 reports that applying 200 random FP pipelines changed
the DeepFM validation AUC from 0.50 to 0.5875 on Tmall (preprocessing
helps) and from 0.7085 to 0.4756 on Instacart (preprocessing hurts).  The
mechanism is the feature encoding: Tmall-style CTR data carries its signal
in badly scaled numeric behaviour features that preprocessing repairs,
whereas Instacart-style basket data is purely binary and row-normalising /
re-thresholding preprocessors destroy the co-occurrence structure.

This harness reruns that contrast on the two synthetic stand-ins with the
DeepFM model: for each dataset it measures the no-preprocessing AUC and the
best / median AUC over a sample of random FP pipelines.  Expected shape:
random preprocessing lifts the Tmall AUC well above the raw baseline, while
on Instacart the median random pipeline falls below the raw baseline.
"""

from __future__ import annotations

import numpy as np

from repro.core import Pipeline, SearchSpace
from repro.deep import DeepFMClassifier, load_ctr_dataset
from repro.models import roc_auc_score, train_test_split

DATASETS = ("tmall", "instacart")
N_PIPELINES = 24
DATASET_SCALE = 0.4


def _auc_of(model: DeepFMClassifier, X_train, y_train, X_valid, y_valid) -> float:
    fitted = model.clone().fit(X_train, y_train)
    return roc_auc_score(y_valid, fitted.predict_proba(X_valid)[:, 1])


def _evaluate_dataset(name: str) -> dict:
    X, y = load_ctr_dataset(name, scale=DATASET_SCALE, random_state=0)
    X_train, X_valid, y_train, y_valid = train_test_split(
        X, y, test_size=0.2, random_state=0
    )
    model = DeepFMClassifier(max_iter=12, n_factors=4, hidden_layer_sizes=(16,),
                             random_state=0)
    baseline_auc = _auc_of(model, X_train, y_train, X_valid, y_valid)

    space = SearchSpace(max_length=4)
    rng = np.random.default_rng(0)
    fp_aucs = []
    for _ in range(N_PIPELINES):
        pipeline: Pipeline = space.sample_pipeline(rng)
        fitted = pipeline.fit(X_train)
        fp_aucs.append(
            _auc_of(model, fitted.transform(X_train), y_train,
                    fitted.transform(X_valid), y_valid)
        )
    fp_aucs = np.asarray(fp_aucs)
    return {
        "dataset": name,
        "baseline_auc": baseline_auc,
        "best_fp_auc": float(fp_aucs.max()),
        "median_fp_auc": float(np.median(fp_aucs)),
        "worst_fp_auc": float(fp_aucs.min()),
    }


def _run_experiment() -> list[dict]:
    return [_evaluate_dataset(name) for name in DATASETS]


def test_section8_deep_models_fp_effect(once, artifact):
    rows = once(_run_experiment)

    lines = [
        "Section 8 — Auto-FP for deep models (DeepFM on recommendation stand-ins)",
        "paper: Tmall AUC 0.50 -> 0.5875 with FP; Instacart AUC 0.7085 -> 0.4756 with FP",
        "",
        f"{'dataset':<12} {'no-FP AUC':>10} {'best FP':>10} {'median FP':>10} {'worst FP':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row['dataset']:<12} {row['baseline_auc']:>10.4f} "
            f"{row['best_fp_auc']:>10.4f} {row['median_fp_auc']:>10.4f} "
            f"{row['worst_fp_auc']:>10.4f}"
        )
    artifact("section8_deep_models", "\n".join(lines))

    by_name = {row["dataset"]: row for row in rows}
    # Tmall-style data: preprocessing recovers signal the raw encoding hides.
    assert by_name["tmall"]["best_fp_auc"] > by_name["tmall"]["baseline_auc"] + 0.05
    # Instacart-style data: the typical random pipeline damages the binary
    # co-occurrence structure, so the median FP AUC drops below the baseline.
    assert (by_name["instacart"]["median_fp_auc"]
            < by_name["instacart"]["baseline_auc"])
    assert (by_name["instacart"]["worst_fp_auc"]
            < by_name["instacart"]["baseline_auc"] - 0.05)
