"""A4 — Ablation: reducing the training data during search (Section 8).

The bottleneck analysis (Figure 7 / Table 5) shows that "Train" and "Prep"
dominate the search time and both scale with the training-set size, so the
paper's second research opportunity is to reduce the data used during the
search.  This ablation measures what that costs in accuracy: random search
runs against the full evaluator and against reduced evaluators (random,
stratified and k-means samplers at a fixed reduction), and the reduced
searches re-score their top pipelines on the full data.

Expected shape: the reduced searches evaluate pipelines measurably faster
(lower Prep+Train time per trial), and after full-data re-scoring their best
accuracy stays within a small gap of the full-data search.
"""

from __future__ import annotations

from repro import AutoFPProblem, make_search_algorithm
from repro.datasets import load_dataset
from repro.reduction import ReducedEvaluator, make_sampler

DATASETS = ("electricity", "gesture")
SAMPLERS = ("random", "stratified", "kmeans")
REDUCTION = 0.25
DATASET_SCALE = 2.5
MAX_TRIALS = 20


def _evaluation_seconds(result) -> float:
    return sum(t.prep_time + t.train_time for t in result.trials)


def _run_experiment() -> list[dict]:
    rows = []
    for dataset in DATASETS:
        X, y = load_dataset(dataset, scale=DATASET_SCALE)
        problem = AutoFPProblem.from_arrays(X, y, model="lr", random_state=0,
                                            name=f"{dataset}/lr")
        full_result = make_search_algorithm("rs", random_state=0).search(
            problem, max_trials=MAX_TRIALS
        )
        rows.append({
            "dataset": dataset,
            "evaluator": "full",
            "train_rows": int(problem.evaluator.X_train.shape[0]),
            "best_accuracy": full_result.best_accuracy,
            "rescored_accuracy": full_result.best_accuracy,
            "eval_seconds": _evaluation_seconds(full_result),
        })

        for sampler_name in SAMPLERS:
            reduced = ReducedEvaluator(
                problem.evaluator, sampler=make_sampler(sampler_name),
                reduction=REDUCTION, random_state=0,
            )
            reduced_problem = AutoFPProblem(evaluator=reduced, space=problem.space,
                                            name=f"{dataset}/{sampler_name}")
            result = make_search_algorithm("rs", random_state=0).search(
                reduced_problem, max_trials=MAX_TRIALS
            )
            rescored = reduced.rescore_result(result, top_k=3)
            rows.append({
                "dataset": dataset,
                "evaluator": sampler_name,
                "train_rows": int(reduced.X_train.shape[0]),
                "best_accuracy": result.best_accuracy,
                "rescored_accuracy": rescored.accuracy,
                "eval_seconds": _evaluation_seconds(result),
            })
    return rows


def test_ablation_data_reduction(once, artifact):
    rows = once(_run_experiment)

    lines = [
        "Ablation — searching on reduced training data (Section 8, opportunity 2)",
        f"reduction {REDUCTION:.0%} of training rows, {MAX_TRIALS} random-search trials, "
        "downstream model LR",
        "",
        f"{'dataset':<14} {'evaluator':<12} {'train rows':>10} {'best (search)':>14} "
        f"{'best (rescored)':>16} {'eval seconds':>13}",
    ]
    for row in rows:
        lines.append(
            f"{row['dataset']:<14} {row['evaluator']:<12} {row['train_rows']:>10d} "
            f"{row['best_accuracy']:>14.4f} "
            f"{row['rescored_accuracy']:>16.4f} {row['eval_seconds']:>13.3f}"
        )
    artifact("ablation_data_reduction", "\n".join(lines))

    by_key = {(r["dataset"], r["evaluator"]): r for r in rows}
    for dataset in DATASETS:
        full = by_key[(dataset, "full")]
        for sampler_name in SAMPLERS:
            reduced = by_key[(dataset, sampler_name)]
            # The reduced evaluator really does train on a fraction of the rows
            # and is faster across the same evaluation budget ...
            assert reduced["train_rows"] < full["train_rows"] // 2
            assert reduced["eval_seconds"] < full["eval_seconds"]
            # ... and after full-data re-scoring the accuracy gap stays small.
            assert reduced["rescored_accuracy"] >= full["best_accuracy"] - 0.10
