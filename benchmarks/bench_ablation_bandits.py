"""A1 — Ablation: classical bandits (UCB, Thompson) vs Hyperband / BOHB / RS.

Section 4.1.5 of the paper selects Hyperband and BOHB as the bandit-based
searchers because they are the bandit algorithms used for HPO in practice,
and notes that Thompson sampling and UCB address the classical multi-armed
bandit problem instead.  Section 5 then finds that the fidelity-trading
bandits do not beat random search for Auto-FP.

This ablation completes that picture: it runs random search, the two
fidelity-trading bandits and the two classical bandits (factored over
pipeline length and per-position preprocessors) under the same evaluation
budget.  Expected shape: every searcher finds a pipeline at least as good as
the no-preprocessing baseline on these FP-sensitive datasets, and the
classical bandits land in the same accuracy band as random search rather
than dominating it — reinforcing the paper's "RS is a strong baseline"
finding.
"""

from __future__ import annotations

from repro import AutoFPProblem, make_search_algorithm
from repro.datasets import load_dataset

DATASETS = ("forex", "wine")
ALGORITHMS = ("rs", "hyperband", "bohb", "ucb", "thompson")
MAX_TRIALS = 25


def _run_experiment() -> list[dict]:
    rows = []
    for dataset in DATASETS:
        X, y = load_dataset(dataset, scale=0.7)
        problem = AutoFPProblem.from_arrays(
            X, y, model="lr", random_state=0, name=f"{dataset}/lr"
        )
        baseline = problem.baseline_accuracy()
        for name in ALGORITHMS:
            result = make_search_algorithm(name, random_state=0).search(
                problem, max_trials=MAX_TRIALS
            )
            rows.append({
                "dataset": dataset,
                "algorithm": name,
                "baseline": baseline,
                "best_accuracy": result.best_accuracy,
                "n_trials": len(result),
            })
    return rows


def test_ablation_classical_bandits(once, artifact):
    rows = once(_run_experiment)

    lines = [
        "Ablation — classical bandits (UCB / Thompson) vs Hyperband / BOHB / RS",
        f"budget: {MAX_TRIALS} evaluations, downstream model LR",
        "",
        f"{'dataset':<10} {'algorithm':<12} {'no-FP':>8} {'best FP':>9} {'trials':>7}",
    ]
    for row in rows:
        lines.append(
            f"{row['dataset']:<10} {row['algorithm']:<12} {row['baseline']:>8.4f} "
            f"{row['best_accuracy']:>9.4f} {row['n_trials']:>7d}"
        )
    artifact("ablation_classical_bandits", "\n".join(lines))

    by_key = {(r["dataset"], r["algorithm"]): r for r in rows}
    for dataset in DATASETS:
        baseline = by_key[(dataset, "rs")]["baseline"]
        rs_best = by_key[(dataset, "rs")]["best_accuracy"]
        for algorithm in ALGORITHMS:
            row = by_key[(dataset, algorithm)]
            # Every searcher recovers at least the no-preprocessing accuracy.
            assert row["best_accuracy"] >= baseline - 1e-9
        for algorithm in ("ucb", "thompson"):
            # Classical bandits stay within a few points of random search —
            # they do not dominate it, mirroring the paper's bandit finding.
            assert by_key[(dataset, algorithm)]["best_accuracy"] >= rs_best - 0.05
