"""E1 — Figure 2 and Table 2: does feature preprocessing matter?

Figure 2 plots the distribution of LR validation accuracy over many
preprocessing pipelines on four datasets (Heart, Forex, Pd, Wine); the red
line is the accuracy without preprocessing.  Table 2 compares the pipeline
found by TPOT's FP module against the best pipeline in the enumerated set.

This harness samples a few hundred pipelines of length <= 3 per dataset
(the paper enumerates 2800 of length <= 4), prints the accuracy histogram
with the no-FP baseline, and reproduces the Table 2 comparison with the
GP-based TPOT-FP stand-in.  Expected shape: a wide accuracy spread, a best
pipeline well above the no-FP line, and the best sampled pipeline matching
or beating the TPOT-FP pipeline.
"""

from __future__ import annotations

from repro.automl import GeneticProgrammingFP
from repro.core import AutoFPProblem, SearchSpace
from repro.datasets import MOTIVATION_DATASETS, load_dataset
from repro.experiments import format_table, histogram

N_SAMPLED_PIPELINES = 120
MAX_PIPELINE_LENGTH = 3


def _distribution_for(dataset: str) -> dict:
    X, y = load_dataset(dataset)
    problem = AutoFPProblem.from_arrays(
        X, y, model="lr", space=SearchSpace(max_length=MAX_PIPELINE_LENGTH),
        random_state=0, name=dataset,
    )
    baseline = problem.baseline_accuracy()
    pipelines = problem.space.sample_pipelines(N_SAMPLED_PIPELINES, random_state=0)
    records = [problem.evaluator.evaluate(p) for p in pipelines]
    accuracies = [r.accuracy for r in records]
    best = max(records, key=lambda r: r.accuracy)

    tpot = GeneticProgrammingFP(random_state=0).search(problem, max_trials=40)

    return {
        "dataset": dataset,
        "baseline": baseline,
        "accuracies": accuracies,
        "best_accuracy": best.accuracy,
        "best_pipeline": best.pipeline.describe(),
        "tpot_accuracy": tpot.best_accuracy,
        "tpot_pipeline": tpot.best_pipeline.describe(),
    }


def _run_experiment() -> list[dict]:
    return [_distribution_for(dataset) for dataset in MOTIVATION_DATASETS]


def test_fig2_table2_fp_matters(once, artifact):
    rows = once(_run_experiment)

    # Figure 2: accuracy distributions.
    figure_lines = []
    for row in rows:
        figure_lines.append(
            f"--- {row['dataset']} (LR), no-FP accuracy = {row['baseline']:.4f} ---"
        )
        figure_lines.append(histogram(row["accuracies"], bins=10, value_range=(0.0, 1.0)))
    artifact("figure2_accuracy_distributions", "\n".join(figure_lines))

    # Table 2: TPOT-FP pipeline vs best sampled pipeline.
    table = format_table(
        ["dataset", "tpot_fp_pipeline", "tpot_acc", "best_pipeline", "best_acc"],
        [
            [r["dataset"], r["tpot_pipeline"], r["tpot_accuracy"],
             r["best_pipeline"], r["best_accuracy"]]
            for r in rows
        ],
    )
    artifact("table2_tpot_vs_best", table)

    # Shape checks mirroring the paper's conclusions.
    for row in rows:
        spread = max(row["accuracies"]) - min(row["accuracies"])
        assert spread > 0.02, f"{row['dataset']}: pipelines should differ in accuracy"
        assert row["best_accuracy"] >= row["baseline"] - 1e-9
        assert row["best_accuracy"] >= row["tpot_accuracy"] - 0.02
