"""A2 — Ablation: budget allocation between parameter and pipeline search.

Section 8 of the paper lists "allocate pipeline and parameter search time
budget reasonably" as an open research direction: giving every parameter
configuration the same short pipeline search (the plain Two-step scheme)
may waste budget on unpromising configurations, while concentrating budget
too early may miss good configurations.

This ablation runs the three allocation strategies shipped with the library
— fixed (plain Two-step), successive halving over configurations, and
greedy exploit-on-improvement — on the high-cardinality parameter space of
Table 7, where Two-step is the preferred extension.  Expected shape: every
strategy beats the no-preprocessing baseline, and the adaptive strategies
(halving / greedy) are competitive with — usually at least as good as — the
fixed split, because they redirect budget toward configurations that already
showed improvement.
"""

from __future__ import annotations

from repro import AutoFPProblem
from repro.datasets import load_dataset
from repro.extensions import compare_allocations, high_cardinality_space
from repro.search import TEVO_H

DATASETS = ("australian", "madeline")
MAX_TRIALS = 36


def _run_experiment() -> list[dict]:
    rows = []
    parameter_space = high_cardinality_space(max_length=4)
    for dataset in DATASETS:
        X, y = load_dataset(dataset, scale=0.7)
        problem = AutoFPProblem.from_arrays(
            X, y, model="lr", random_state=0, name=f"{dataset}/lr"
        )
        outcomes = compare_allocations(
            problem, parameter_space,
            lambda seed: TEVO_H(random_state=seed),
            max_trials=MAX_TRIALS, random_state=0,
        )
        for name, outcome in outcomes.items():
            rows.append({
                "dataset": dataset,
                "allocation": name,
                "baseline": problem.baseline_accuracy(),
                "best_accuracy": outcome.best_accuracy,
                "n_rounds": outcome.n_rounds,
            })
    return rows


def test_ablation_budget_allocation(once, artifact):
    rows = once(_run_experiment)

    lines = [
        "Ablation — budget allocation for Two-step parameter search "
        "(high-cardinality space, Table 7)",
        f"budget: {MAX_TRIALS} evaluations, inner searcher TEVO_H, downstream model LR",
        "",
        f"{'dataset':<12} {'allocation':<10} {'no-FP':>8} {'best FP':>9} {'rounds':>7}",
    ]
    for row in rows:
        lines.append(
            f"{row['dataset']:<12} {row['allocation']:<10} {row['baseline']:>8.4f} "
            f"{row['best_accuracy']:>9.4f} {row['n_rounds']:>7d}"
        )
    artifact("ablation_budget_allocation", "\n".join(lines))

    by_key = {(r["dataset"], r["allocation"]): r for r in rows}
    for dataset in DATASETS:
        fixed = by_key[(dataset, "fixed")]
        for allocation in ("fixed", "halving", "greedy"):
            row = by_key[(dataset, allocation)]
            # Preprocessing search always recovers at least the baseline.
            assert row["best_accuracy"] >= row["baseline"] - 1e-9
        for allocation in ("halving", "greedy"):
            # Adaptive allocation stays competitive with the fixed split.
            assert (by_key[(dataset, allocation)]["best_accuracy"]
                    >= fixed["best_accuracy"] - 0.08)
        # The adaptive strategies spend their budget over a different number
        # of rounds than the fixed split (they actually re-allocate).
        assert (by_key[(dataset, "greedy")]["n_rounds"]
                != by_key[(dataset, "fixed")]["n_rounds"]) or (
            by_key[(dataset, "halving")]["n_rounds"]
            != by_key[(dataset, "fixed")]["n_rounds"]
        )
