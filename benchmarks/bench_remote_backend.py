"""E-remote — what wire dispatch costs versus an in-process pool.

The ``"remote"`` backend trades process-pool IPC for a TCP round trip
per evaluation (JSON-line framing + pickled work item + pickled result
entry).  Against loopback workers that cost must stay a small, bounded
per-task tax — if it approached the evaluation time itself, scaling out
could never win.  Two measurements:

* ``test_remote_dispatch_smoke`` (CI smoke): the same 16-task batch on
  the serial engine, a 2-worker process pool, and a 2-worker loopback
  remote fleet — identical records required on all three, remote
  per-task dispatch overhead versus the process backend bounded.
* ``test_remote_crash_recovery`` (slow): the batch with a
  ``drop_worker`` fault mid-run — one worker dies with leases in
  flight, the survivor absorbs the resubmissions — measuring what a
  membership loss adds to the batch.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.evaluation import PipelineEvaluator
from repro.core.search_space import SearchSpace
from repro.datasets.synthetic import distort_features, make_classification
from repro.engine import ChaosBackend, EvalTask, ExecutionEngine, RetryPolicy
from repro.engine.backends import ProcessBackend
from repro.engine.remote import start_loopback
from repro.models.linear import LogisticRegression
from repro.telemetry.metrics import get_registry

#: retries without sleeps: the measurements isolate machinery, not backoff
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)

N_TASKS = 16


def make_evaluator() -> PipelineEvaluator:
    X, y = make_classification(n_samples=140, n_features=8, n_classes=2,
                               class_sep=2.0, random_state=5)
    X = distort_features(X, random_state=5)
    return PipelineEvaluator.from_dataset(
        X, y, LogisticRegression(max_iter=60), random_state=0
    )


def make_tasks(n: int = N_TASKS) -> list:
    space = SearchSpace(max_length=3)
    rng = np.random.default_rng(0)
    pipelines: list = []
    seen: set = set()
    while len(pipelines) < n:
        for pipeline in space.sample_pipelines(n, rng):
            if pipeline.spec() not in seen and len(pipelines) < n:
                seen.add(pipeline.spec())
                pipelines.append(pipeline)
    return [EvalTask(pipeline) for pipeline in pipelines]


def timed_batch(engine, n: int = N_TASKS):
    """Evaluate the reference batch on ``engine``; ``(rows, seconds)``."""
    evaluator = make_evaluator()
    tasks = make_tasks(n)
    start = time.perf_counter()
    records = engine.run(evaluator, tasks)
    seconds = time.perf_counter() - start
    engine.close()
    rows = [(r.pipeline.spec(), round(r.fidelity, 6), r.accuracy,
             r.failure_kind) for r in records]
    return rows, seconds


def timed_remote_batch(n: int = N_TASKS, chaos: str | None = None):
    backend, workers = start_loopback(2, retry_policy=FAST_RETRY)
    engine = ExecutionEngine(ChaosBackend(backend, chaos) if chaos
                             else backend)
    try:
        return timed_batch(engine, n)
    finally:
        for worker in workers:
            worker.stop()


def test_remote_dispatch_smoke(artifact):
    serial_rows, serial_s = timed_batch(ExecutionEngine("serial"))
    process_rows, process_s = timed_batch(
        ExecutionEngine(ProcessBackend(n_workers=2, retry_policy=FAST_RETRY))
    )
    remote_rows, remote_s = timed_remote_batch()

    assert process_rows == serial_rows, \
        "the process pool diverged from serial"
    assert remote_rows == serial_rows, \
        "wire dispatch changed evaluation results"
    # Per-task tax of the TCP round trip over the process pool's IPC.
    # Generous bound — CI machines are noisy, and the process pool
    # amortises its spawn cost over the batch while loopback workers
    # boot in milliseconds — plus absolute slack for sub-second runs.
    per_task_s = max(0.0, remote_s - process_s) / N_TASKS
    assert remote_s <= process_s * 3.0 + 2.0, (
        f"remote dispatch overhead too high: {remote_s:.3f}s vs "
        f"{process_s:.3f}s on the process pool"
    )

    artifact(
        "remote_dispatch_smoke",
        f"wire-dispatch overhead ({N_TASKS} tasks, 2 workers each)\n"
        f"  serial engine        : {serial_s * 1e3:8.1f} ms\n"
        f"  process pool         : {process_s * 1e3:8.1f} ms\n"
        f"  remote loopback fleet: {remote_s * 1e3:8.1f} ms  "
        f"(+{per_task_s * 1e3:.1f} ms/task vs process)\n"
        f"  records identical    : True",
        metrics={"serial_s": round(serial_s, 6),
                 "process_s": round(process_s, 6),
                 "remote_s": round(remote_s, 6),
                 "per_task_overhead_s": round(per_task_s, 6)},
    )


def test_remote_crash_recovery(once, artifact):
    """Full measurement: one mid-batch worker loss on the remote fleet."""
    clean_rows, clean_s = timed_remote_batch()
    get_registry().reset()
    crashed_rows, crashed_s = once(lambda: timed_remote_batch(
        chaos="delay@0:1.0,drop_worker@3"))

    assert crashed_rows == clean_rows, \
        "worker-loss recovery changed the surviving records"
    assert get_registry().counter("engine.worker_crashes").value >= 1, \
        "the planned worker drop never fired"
    recovery_s = crashed_s - clean_s
    assert recovery_s < 60.0, (
        f"worker-loss recovery took {recovery_s:.1f}s over the clean batch"
    )

    artifact(
        "remote_crash_recovery",
        f"remote fleet, 2 workers, {N_TASKS} tasks, one dropped mid-run\n"
        f"  clean batch          : {clean_s:7.2f} s\n"
        f"  drop + recover batch : {crashed_s:7.2f} s\n"
        f"  recovery overhead    : {recovery_s:7.2f} s "
        "(heartbeat detection + lease resubmission to the survivor)",
        metrics={"clean_s": round(clean_s, 6),
                 "crashed_s": round(crashed_s, 6),
                 "recovery_overhead_s": round(recovery_s, 6)},
    )
