"""E-async — completion-driven scheduling: async vs barrier speedup.

The synchronous search skeleton evaluates each iteration's proposals as
one barrier: with a parallel backend, every worker that finishes early
idles until the batch's straggler returns, and the Pick step idles while
anything at all is running.  The async driver
(:class:`repro.search.async_driver.AsyncSearchDriver`) refills each worker
slot the moment it frees and lets the algorithm propose while other
evaluations are still in flight — the ASHA scheduling model.

This harness makes the idle time visible by giving evaluations
deterministic, heterogeneous durations (a per-pipeline sleep derived from
the pipeline spec's hash, so both modes pay identical per-task costs) and
measuring wall-clock time for the same search in both modes on a thread
backend.  Expected shape: identical per-pipeline results, and — because
barriers always wait for the slowest task of each batch — a >1.1x async
speedup with 4 workers even on a single-core machine (the sleeps dominate
and release the GIL).

``smoke_check()`` is the fast variant exercised by the tier-1 test-suite
(see ``tests/engine/test_async_engine.py``): it verifies serial async is
bit-for-bit identical to serial sync and that async thread execution
completes a saturated ASHA run.
"""

from __future__ import annotations

import time
import zlib

from repro.core.problem import AutoFPProblem
from repro.core.evaluation import PipelineEvaluator
from repro.core.search_space import SearchSpace
from repro.datasets.synthetic import distort_features, make_classification
from repro.engine import ExecutionEngine
from repro.models.linear import LogisticRegression
from repro.search import make_search_algorithm


class SleepyEvaluator(PipelineEvaluator):
    """Evaluator whose evaluations take deterministic, heterogeneous time.

    Each uncached evaluation sleeps ``(crc32(spec) % levels) * delay``
    seconds on top of the real work.  The sleep depends only on the
    pipeline spec, so sync and async modes pay exactly the same per-task
    cost and any wall-clock difference is pure scheduling.
    """

    #: distinct duration levels (0 .. levels-1 times ``delay``)
    levels = 4
    #: seconds per duration level; class attribute so worker threads and
    #: pickled copies agree without extra constructor plumbing
    delay = 0.0

    def _evaluate_uncached(self, pipeline, fidelity):
        entry = super()._evaluate_uncached(pipeline, fidelity)
        token = repr((pipeline.spec(), round(fidelity, 6))).encode("utf-8")
        time.sleep((zlib.crc32(token) % self.levels) * self.delay)
        return entry


def make_problem(*, delay: float, engine=None, async_mode: bool = False,
                 cache: bool = True) -> AutoFPProblem:
    """A small problem whose evaluations sleep ``delay``-scaled durations."""
    X, y = make_classification(n_samples=140, n_features=8, n_classes=2,
                               class_sep=2.0, random_state=5)
    X = distort_features(X, random_state=5)
    SleepyEvaluator.delay = delay
    evaluator = SleepyEvaluator.from_dataset(
        X, y, LogisticRegression(max_iter=60), random_state=0, cache=cache,
    )
    evaluator.set_engine(engine)
    return AutoFPProblem(evaluator=evaluator, space=SearchSpace(max_length=3),
                         name="async-overlap/lr", async_mode=async_mode)


def timed_search(algorithm: str, *, delay: float, n_workers: int,
                 async_mode: bool, max_trials: int = 24,
                 algorithm_kwargs: dict | None = None):
    """Run one search and return ``(result, wall_seconds)``."""
    engine = ExecutionEngine("thread", n_workers=n_workers)
    problem = make_problem(delay=delay, engine=engine, async_mode=async_mode)
    searcher = make_search_algorithm(algorithm, random_state=0,
                                     **(algorithm_kwargs or {}))
    start = time.perf_counter()
    result = searcher.search(problem, max_trials=max_trials)
    seconds = time.perf_counter() - start
    engine.close()
    return result, seconds


def trial_values(result) -> dict:
    """Per-pipeline accuracies — identical across scheduling modes."""
    return {(t.pipeline.spec(), round(t.fidelity, 6)): t.accuracy
            for t in result.trials}


def smoke_check(*, n_workers: int = 3):
    """Fast async exercise for tier-1: correctness, not timing.

    Returns ``(sync_serial, async_serial, async_threaded)`` results so
    callers can assert further.
    """
    sync_serial = make_search_algorithm("rs", random_state=0, batch_size=4).search(
        make_problem(delay=0.0), max_trials=12
    )
    async_serial = make_search_algorithm("rs", random_state=0, batch_size=4).search(
        make_problem(delay=0.0, async_mode=True), max_trials=12
    )
    sync_set = [(t.pipeline.spec(), t.fidelity, t.accuracy, t.iteration)
                for t in sync_serial.trials]
    async_set = [(t.pipeline.spec(), t.fidelity, t.accuracy, t.iteration)
                 for t in async_serial.trials]
    assert async_set == sync_set, "serial async diverged from serial sync"

    async_threaded, _ = timed_search("asha", delay=0.002, n_workers=n_workers,
                                     async_mode=True, max_trials=10)
    assert len(async_threaded) > 0
    reference = make_problem(delay=0.0).evaluator
    for trial in async_threaded.trials:
        expected = reference.evaluate(trial.pipeline, fidelity=trial.fidelity)
        assert trial.accuracy == expected.accuracy, (
            "async thread evaluation changed a trial value"
        )
    return sync_serial, async_serial, async_threaded


def test_async_overlap(once, artifact):
    """Full measurement: async keeps workers busy through the barriers."""
    from repro.experiments import format_table

    n_workers = 4
    delay = 0.03
    sync_result, sync_seconds = once(
        timed_search, "rs", delay=delay, n_workers=n_workers,
        async_mode=False, algorithm_kwargs={"batch_size": 8},
    )
    async_result, async_seconds = timed_search(
        "rs", delay=delay, n_workers=n_workers, async_mode=True,
        algorithm_kwargs={"batch_size": 8},
    )
    speedup = sync_seconds / max(async_seconds, 1e-9)

    identical = trial_values(sync_result) == trial_values(async_result)
    rows = [
        ["sync (barrier)", n_workers, sync_seconds, 1.0, "yes"],
        ["async", n_workers, async_seconds, speedup,
         "yes" if identical else "NO"],
    ]
    artifact("async_overlap",
             format_table(["mode", "workers", "seconds", "speedup",
                           "identical values"], rows))

    # Hard requirement: scheduling must never change what a pipeline scores.
    assert identical, "async mode changed per-pipeline results"
    # The sleeps dominate and release the GIL, so the speedup is structural
    # (bounded idle time at each barrier), not hardware-dependent.
    assert speedup > 1.1, (
        f"expected >1.1x async speedup with {n_workers} workers, "
        f"got {speedup:.2f}x"
    )


if __name__ == "__main__":
    smoke_check()
    print("smoke check passed: async results match the serial reference")
    for mode, async_mode in (("sync", False), ("async", True)):
        result, seconds = timed_search("rs", delay=0.03, n_workers=4,
                                       async_mode=async_mode,
                                       algorithm_kwargs={"batch_size": 8})
        print(f"{mode:>5}: {seconds:.2f}s for {len(result)} trials")
