"""Prefix-transform reuse: warm-prefix Prep cost vs re-fitting from raw data.

The bottleneck analysis (``bench_fig7_table5_bottleneck.py``) shows Prep
dominating pipeline-search cost, and the registry algorithms overwhelmingly
propose pipelines sharing long step prefixes: evolution mutates or appends a
step of an existing member, progressive NAS grows its beam one position per
iteration.  With ``prefix_cache_bytes`` set, the evaluator resumes each
pipeline from its longest cached prefix and only pays Prep for the uncached
suffix — bit-for-bit identical accuracies, less Prep time.

This harness runs an evolution + progressive-NAS workload on a synthetic
dataset twice — prefix cache off, then on — and compares

* *total Prep seconds*: the summed ``prep_time`` of every unique
  evaluation (what the search actually paid), and
* *steps fitted vs steps reused*: the deterministic work counter behind
  the timing.

Expected shape: identical trial accuracies, a large reused-step fraction,
and a >=1.5x total-Prep speedup with the cache on.

``smoke_check()`` is the fast variant exercised by the tier-1 test-suite
(see ``tests/core/test_prefix_cache.py``); it asserts on the deterministic
counters so it cannot flake on machine speed.
"""

from __future__ import annotations

import time

import pytest

from repro.core.context import ExecutionContext
from repro.core.problem import AutoFPProblem
from repro.core.search_space import SearchSpace
from repro.datasets.synthetic import distort_features, make_classification
from repro.experiments import format_table
from repro.models.linear import LogisticRegression
from repro.search import make_search_algorithm

#: (algorithm, constructor kwargs): evolution mutates/appends existing
#: members, PNAS grows its beam one position at a time — the two
#: prefix-sharing proposal patterns the cache is built for
WORKLOAD = (
    ("tevo_h", {}),
    ("pmne", {"beam_width": 4}),
)


def _make_problem(n_samples: int, n_features: int, prefix_cache_bytes):
    X, y = make_classification(n_samples=n_samples, n_features=n_features,
                               n_classes=2, class_sep=1.5, random_state=7)
    X = distort_features(X, random_state=7)
    return AutoFPProblem.from_arrays(
        X, y, LogisticRegression(max_iter=40),
        space=SearchSpace(max_length=5), random_state=0,
        name="prefix-reuse/lr",
        context=ExecutionContext(prefix_cache_bytes=prefix_cache_bytes),
    )


def run_workload(*, n_samples: int, n_features: int, max_trials: int,
                 prefix_cache_bytes=None) -> dict:
    """Run the evolution+PNAS workload once; return timing and counters."""
    total_prep = 0.0
    wall_start = time.perf_counter()
    accuracies = []
    total_steps = 0
    steps_reused = 0
    for algorithm, kwargs in WORKLOAD:
        problem = _make_problem(n_samples, n_features, prefix_cache_bytes)
        searcher = make_search_algorithm(algorithm, random_state=0, **kwargs)
        result = searcher.search(problem, max_trials=max_trials)
        seen = set()
        for trial in result.trials:
            key = (trial.pipeline.spec(), round(trial.fidelity, 6))
            if key in seen:
                continue  # memoized repeat: its prep was paid once
            seen.add(key)
            total_prep += trial.prep_time
            total_steps += len(trial.pipeline)
        accuracies.append([(t.pipeline.spec(), t.accuracy)
                           for t in result.trials])
        if prefix_cache_bytes:
            steps_reused += problem.evaluator.cache_info()["steps_reused"]
    return {
        "wall_seconds": time.perf_counter() - wall_start,
        "prep_seconds": total_prep,
        "total_steps": total_steps,
        "steps_reused": steps_reused,
        "accuracies": accuracies,
    }


def smoke_check(*, n_samples: int = 400, n_features: int = 8,
                max_trials: int = 16) -> tuple[dict, dict]:
    """Fast prefix-reuse exercise on deterministic counters.

    Asserts the non-negotiable contract (identical accuracies) plus a
    meaningful reused-step fraction; returns the (off, on) measurements so
    callers can assert further.
    """
    off = run_workload(n_samples=n_samples, n_features=n_features,
                       max_trials=max_trials)
    on = run_workload(n_samples=n_samples, n_features=n_features,
                      max_trials=max_trials, prefix_cache_bytes=1 << 26)
    assert on["accuracies"] == off["accuracies"], (
        "prefix reuse changed trial outcomes"
    )
    assert on["steps_reused"] > 0, "workload never reused a prefix"
    fraction = on["steps_reused"] / max(on["total_steps"], 1)
    assert fraction >= 0.2, (
        f"only {fraction:.0%} of pipeline steps were served from the "
        "prefix cache on a prefix-heavy workload"
    )
    return off, on


def test_prefix_reuse_smoke():
    """Counter-based smoke (also run under tier-1): immune to machine speed."""
    smoke_check()


@pytest.mark.slow
def test_prefix_reuse(once, artifact):
    off = once(run_workload, n_samples=4000, n_features=24, max_trials=40)
    on = run_workload(n_samples=4000, n_features=24, max_trials=40,
                      prefix_cache_bytes=1 << 28)

    identical = on["accuracies"] == off["accuracies"]
    speedup = off["prep_seconds"] / max(on["prep_seconds"], 1e-9)
    rows = [
        ["prefix cache off", off["prep_seconds"], off["wall_seconds"],
         off["total_steps"], 0, "yes"],
        ["prefix cache on", on["prep_seconds"], on["wall_seconds"],
         on["total_steps"], on["steps_reused"],
         "yes" if identical else "NO"],
    ]
    artifact("prefix_reuse",
             format_table(["run", "prep_s", "wall_s", "steps",
                           "steps_reused", "identical"], rows)
             + f"\ntotal-Prep speedup: {speedup:.2f}x")

    assert identical
    assert on["steps_reused"] > 0
    assert speedup >= 1.5, (
        f"prefix cache delivered only {speedup:.2f}x total-Prep speedup "
        "(expected >= 1.5x on the evolution+PNAS workload)"
    )


if __name__ == "__main__":
    off, on = smoke_check()
    print("smoke check passed: identical accuracies, "
          f"{on['steps_reused']}/{on['total_steps']} steps reused")
    off = run_workload(n_samples=4000, n_features=24, max_trials=40)
    on = run_workload(n_samples=4000, n_features=24, max_trials=40,
                      prefix_cache_bytes=1 << 28)
    speedup = off["prep_seconds"] / max(on["prep_seconds"], 1e-9)
    print(f"cache off: prep {off['prep_seconds']:.2f}s "
          f"(wall {off['wall_seconds']:.2f}s)")
    print(f"cache on : prep {on['prep_seconds']:.2f}s "
          f"(wall {on['wall_seconds']:.2f}s, "
          f"{on['steps_reused']}/{on['total_steps']} steps reused)")
    print(f"total-Prep speedup: {speedup:.2f}x "
          f"(identical: {on['accuracies'] == off['accuracies']})")
