"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper at
laptop scale and prints the corresponding text artefact.  Run them with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag shows the regenerated tables; without it the artefacts are
still written to ``benchmarks/output/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

#: directory where every benchmark writes its regenerated artefact
OUTPUT_DIR = Path(__file__).parent / "output"


def emit_artifact(name: str, text: str) -> None:
    """Print a regenerated artefact and persist it under benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n===== {name} =====")
    print(text)


@pytest.fixture
def artifact():
    """Fixture exposing :func:`emit_artifact` to benchmark functions."""
    return emit_artifact


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are far too expensive for pytest-benchmark's default
    calibration loop, so every harness uses a single round.
    """

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
