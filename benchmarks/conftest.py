"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper at
laptop scale and prints the corresponding text artefact.  The full
measurements are marked ``slow`` (CI only smoke-runs the fast checks via
``pytest benchmarks -q -m "not slow"``), so opt in explicitly::

    pytest benchmarks/ -m "slow or not slow" --benchmark-only -s

The ``-s`` flag shows the regenerated tables; without it the artefacts are
still written to ``benchmarks/output/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

#: directory where every benchmark writes its regenerated artefact
OUTPUT_DIR = Path(__file__).parent / "output"

#: seconds-scale harnesses whose full run is cheap enough for the CI smoke
#: step; every other bench test is auto-marked ``slow`` below
FAST_MODULES = {"bench_table3_taxonomy", "bench_fig5_dataset_stats"}


def pytest_collection_modifyitems(items) -> None:
    """Fail-safe marking: bench measurements are ``slow`` unless opted out.

    The CI smoke step (``pytest benchmarks -q -m "not slow"``) must stay
    seconds-scale, so rather than trusting every new ``bench_*.py`` to
    remember a ``pytestmark``, minutes-scale measurements are marked here
    at collection time.  A test opts into the smoke run by carrying
    ``smoke`` in its name (e.g. ``test_prefix_reuse_smoke``) or living in
    one of the ``FAST_MODULES``.  Collection itself still imports every
    bench module, so API drift fails CI even for slow-marked harnesses.
    """
    for item in items:
        if "smoke" in item.name or item.module.__name__ in FAST_MODULES:
            continue
        item.add_marker(pytest.mark.slow)


def emit_artifact(name: str, text: str) -> None:
    """Print a regenerated artefact and persist it under benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n===== {name} =====")
    print(text)


@pytest.fixture
def artifact():
    """Fixture exposing :func:`emit_artifact` to benchmark functions."""
    return emit_artifact


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are far too expensive for pytest-benchmark's default
    calibration loop, so every harness uses a single round.
    """

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
