"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper at
laptop scale and prints the corresponding text artefact.  The full
measurements are marked ``slow`` (CI only smoke-runs the fast checks via
``pytest benchmarks -q -m "not slow"``), so opt in explicitly::

    pytest benchmarks/ -m "slow or not slow" --benchmark-only -s

The ``-s`` flag shows the regenerated tables; without it the artefacts are
still written to ``benchmarks/output/``.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

#: directory where every benchmark writes its regenerated artefact
OUTPUT_DIR = Path(__file__).parent / "output"

#: machine-readable result records, one per bench test, keyed by nodeid.
#: Each becomes a ``BENCH_<test>.json`` file in :data:`OUTPUT_DIR` so CI can
#: upload timings and derived metrics as artifacts and diff them across runs.
_BENCH_RECORDS: dict[str, dict] = {}

#: nodeid of the currently running test (stack, for safety under nesting)
_CURRENT_NODE: list[str] = []

#: seconds-scale harnesses whose full run is cheap enough for the CI smoke
#: step; every other bench test is auto-marked ``slow`` below
FAST_MODULES = {"bench_table3_taxonomy", "bench_fig5_dataset_stats"}


def pytest_collection_modifyitems(items) -> None:
    """Fail-safe marking: bench measurements are ``slow`` unless opted out.

    The CI smoke step (``pytest benchmarks -q -m "not slow"``) must stay
    seconds-scale, so rather than trusting every new ``bench_*.py`` to
    remember a ``pytestmark``, minutes-scale measurements are marked here
    at collection time.  A test opts into the smoke run by carrying
    ``smoke`` in its name (e.g. ``test_prefix_reuse_smoke``) or living in
    one of the ``FAST_MODULES``.  Collection itself still imports every
    bench module, so API drift fails CI even for slow-marked harnesses.
    """
    for item in items:
        if "smoke" in item.name or item.module.__name__ in FAST_MODULES:
            continue
        item.add_marker(pytest.mark.slow)


def _sanitize(name: str) -> str:
    """Make a test name safe as a filename component."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name)


@pytest.fixture(autouse=True)
def _bench_node(request):
    """Track the running test so :func:`emit_artifact` can attach metrics."""
    _CURRENT_NODE.append(request.node.nodeid)
    yield
    _CURRENT_NODE.pop()


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Write ``BENCH_<test>.json`` after each bench test's call phase.

    The record carries the test name, its parametrisation, the measured
    wall-clock and any derived metrics the test registered through
    ``emit_artifact(..., metrics=...)`` — the machine-readable counterpart
    of the printed tables, uploaded as a CI artifact.
    """
    outcome = yield
    report = outcome.get_result()
    if report.when != "call":
        return
    record = _BENCH_RECORDS.setdefault(item.nodeid, {})
    callspec = getattr(item, "callspec", None)
    record.update(
        name=item.name,
        nodeid=item.nodeid,
        outcome=report.outcome,
        wall_clock_s=round(report.duration, 6),
        params={key: repr(value) for key, value in callspec.params.items()}
        if callspec is not None else {},
    )
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"BENCH_{_sanitize(item.name)}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def emit_artifact(name: str, text: str, metrics: dict | None = None) -> None:
    """Print a regenerated artefact and persist it under benchmarks/output/.

    ``metrics`` (optional) attaches derived numbers to the running test's
    ``BENCH_<test>.json`` record — keep values JSON-serialisable.
    """
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    if _CURRENT_NODE:
        record = _BENCH_RECORDS.setdefault(_CURRENT_NODE[-1], {})
        record.setdefault("artifacts", []).append(path.name)
        if metrics:
            record.setdefault("metrics", {}).update(metrics)
    print(f"\n===== {name} =====")
    print(text)


@pytest.fixture
def artifact():
    """Fixture exposing :func:`emit_artifact` to benchmark functions."""
    return emit_artifact


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are far too expensive for pytest-benchmark's default
    calibration loop, so every harness uses a single round.
    """

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
