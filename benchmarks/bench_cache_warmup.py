"""E-cache — persistent evaluation cache: warm-run speedup vs a cold run.

The paper's experimental grid re-pays every pipeline's Prep+Train cost on
every invocation.  With a ``cache_dir``, the first (cold) run writes every
evaluation through to the persistent cache and a repeated (warm) run
answers all of them from disk: zero uncached evaluations, bit-for-bit
identical scenarios, and wall-clock dominated by I/O instead of training.

Expected shape: ``warm.uncached_evaluations == 0``, identical scenario
accuracies, and a large (>2x) wall-clock speedup for the warm run.

``smoke_check()`` is the fast variant exercised by the tier-1 test-suite on
every run (see ``tests/experiments/test_persistent_cache.py``).
"""

from __future__ import annotations

import tempfile
import time

from repro.core.context import ExecutionContext
from repro.experiments import ExperimentConfig, format_table, run_experiment

#: 3 datasets x 1 model x 2 algorithms = 6 grid cells, enough to matter
WARMUP_GRID = ExperimentConfig(
    datasets=("heart", "blood", "wine"),
    models=("lr",),
    algorithms=("rs", "tevo_h"),
    max_trials=12,
    random_state=0,
)

#: tiny grid for the tier-1 smoke mode (2 cells, ~seconds)
SMOKE_GRID = ExperimentConfig(
    datasets=("blood",),
    models=("lr",),
    algorithms=("rs", "tevo_h"),
    max_trials=6,
    dataset_scale=0.5,
    random_state=0,
)


def scenario_accuracies(outcome) -> list:
    """Canonical, comparable view of an outcome's scenario accuracies."""
    return [
        (scenario.dataset, scenario.model, scenario.baseline_accuracy,
         sorted(scenario.accuracies.items()))
        for scenario in outcome.scenarios
    ]


def timed_grid(config: ExperimentConfig, *, cache_dir=None):
    """Run the grid and return ``(outcome, wall_seconds)``."""
    start = time.perf_counter()
    outcome = run_experiment(
        config, context=ExecutionContext(cache_dir=cache_dir)
    )
    return outcome, time.perf_counter() - start


def smoke_check(config: ExperimentConfig = SMOKE_GRID, *, cache_dir=None):
    """Fast cache exercise: a warm run must do zero uncached evaluations.

    Returns the (cold, warm) outcomes so callers can assert further.
    """
    with tempfile.TemporaryDirectory() as fallback:
        root = fallback if cache_dir is None else cache_dir
        context = ExecutionContext(cache_dir=str(root))
        cold = run_experiment(config, context=context)
        warm = run_experiment(config, context=context)
    assert cold.uncached_evaluations > 0, "cold run executed nothing"
    assert warm.uncached_evaluations == 0, (
        f"warm run re-executed {warm.uncached_evaluations} evaluations "
        "instead of answering them from the persistent cache"
    )
    assert scenario_accuracies(warm) == scenario_accuracies(cold), (
        "the persistent cache changed the experiment outcome"
    )
    return cold, warm


def test_cache_warmup(once, artifact, tmp_path):
    cold, cold_seconds = once(timed_grid, WARMUP_GRID,
                              cache_dir=str(tmp_path / "evalcache"))
    warm, warm_seconds = timed_grid(WARMUP_GRID,
                                    cache_dir=str(tmp_path / "evalcache"))

    identical = scenario_accuracies(warm) == scenario_accuracies(cold)
    rows = [
        ["cold", cold_seconds, cold.uncached_evaluations, "yes"],
        ["warm", warm_seconds, warm.uncached_evaluations,
         "yes" if identical else "NO"],
    ]
    artifact("cache_warmup",
             format_table(["run", "seconds", "uncached_evals", "identical"],
                          rows))

    # Hard requirements on every machine: warm run hits the cache for every
    # evaluation and reproduces the cold outcome bit-for-bit.
    assert warm.uncached_evaluations == 0
    assert identical
    assert warm_seconds < cold_seconds, (
        f"warm run ({warm_seconds:.2f}s) not faster than cold "
        f"({cold_seconds:.2f}s)"
    )


if __name__ == "__main__":
    cold, warm = smoke_check()
    print("smoke check passed: warm run did zero uncached evaluations")
    with tempfile.TemporaryDirectory() as root:
        cold, cold_seconds = timed_grid(WARMUP_GRID, cache_dir=root)
        warm, warm_seconds = timed_grid(WARMUP_GRID, cache_dir=root)
        print(f"cold: {cold_seconds:.2f}s "
              f"({cold.uncached_evaluations} uncached evaluations)")
        print(f"warm: {warm_seconds:.2f}s "
              f"({warm.uncached_evaluations} uncached evaluations, "
              f"speedup {cold_seconds / max(warm_seconds, 1e-9):.2f}x)")
