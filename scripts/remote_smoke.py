"""CI smoke for distributed execution: real worker daemons, one killed.

Boots two ``repro worker`` subprocesses against an in-process
coordinator, runs a small search over the fleet, SIGTERMs one worker
mid-run, and requires that

* the search still finishes every trial,
* the coordinator counted the ungraceful death
  (``engine.worker_heartbeat_misses >= 1``), and
* the results are bit-for-bit identical to a serial run of the same
  search.

Run from the repository root with ``PYTHONPATH=src``::

    python scripts/remote_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

from repro.core.problem import AutoFPProblem
from repro.datasets.synthetic import distort_features, make_classification
from repro.engine import ExecutionEngine, RetryPolicy
from repro.engine.remote import RemoteBackend
from repro.search import make_search_algorithm
from repro.search.session import SearchSession
from repro.telemetry.metrics import get_registry

MAX_TRIALS = 16
KILL_AFTER_TRIALS = 4


def make_problem():
    X, y = make_classification(n_samples=140, n_features=8, n_classes=2,
                               class_sep=2.0, random_state=2)
    X = distort_features(X, random_state=2)
    return AutoFPProblem.from_arrays(X, y, model="lr", random_state=0,
                                     name="remote-smoke/lr")


def run_search(problem, on_trial=None):
    session = SearchSession(problem,
                            make_search_algorithm("rs", random_state=0),
                            on_trial=on_trial)
    return session.run(max_trials=MAX_TRIALS)


def main() -> int:
    serial = run_search(make_problem())
    expected = [trial.accuracy for trial in serial.trials]
    print(f"serial       : {len(expected)} trials, "
          f"best {serial.best_accuracy:.4f}")

    backend = RemoteBackend(
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0))
    address = backend.coordinator_address
    print(f"coordinator  : {address}")
    workers = [
        subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "worker",
             "--coordinator", address, "--cores", "1"],
            env={**os.environ, "PYTHONPATH": "src"},
        )
        for _ in range(2)
    ]
    try:
        if not backend.wait_for_workers(2, timeout=60.0):
            print(f"FAIL: only {backend.worker_count}/2 workers registered")
            return 1
        print(f"fleet        : {backend.worker_count} workers registered "
              f"(pids {[worker.pid for worker in workers]})")

        killed = []

        def kill_one_worker(session, record):
            if len(session.result) == KILL_AFTER_TRIALS and not killed:
                victim = workers[0]
                print(f"chaos        : SIGTERM worker pid {victim.pid} "
                      f"after trial {KILL_AFTER_TRIALS}")
                victim.send_signal(signal.SIGTERM)
                killed.append(victim)

        problem = make_problem()
        problem.evaluator.set_engine(ExecutionEngine(backend))
        remote = run_search(problem, on_trial=kill_one_worker)
        got = [trial.accuracy for trial in remote.trials]

        misses = get_registry().counter(
            "engine.worker_heartbeat_misses").value
        print(f"remote       : {len(got)} trials, "
              f"best {remote.best_accuracy:.4f}, "
              f"{backend.worker_count} worker(s) left, "
              f"{misses} ungraceful death(s) observed")

        if not killed:
            print("FAIL: the kill never fired (search too short?)")
            return 1
        if len(got) != MAX_TRIALS:
            print(f"FAIL: expected {MAX_TRIALS} trials, got {len(got)}")
            return 1
        if misses < 1:
            print("FAIL: the killed worker's death was never counted")
            return 1
        if got != expected:
            print("FAIL: remote run diverged from serial")
            print(f"  serial: {expected}")
            print(f"  remote: {got}")
            return 1
        print("OK           : identical to serial after losing a worker")
        return 0
    finally:
        backend.close()  # sends shutdown: the survivor exits gracefully
        deadline = time.monotonic() + 15.0
        for worker in workers:
            try:
                worker.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                worker.kill()


if __name__ == "__main__":
    sys.exit(main())
