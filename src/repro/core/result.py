"""Trial records and search results.

Every pipeline evaluation produces a :class:`TrialRecord` capturing the
pipeline, its validation accuracy, and the three timing components the
paper's bottleneck analysis uses ("Pick", "Prep", "Train").  A
:class:`SearchResult` aggregates all trials of one search run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.pipeline import Pipeline


@dataclass
class TrialRecord:
    """Outcome of evaluating one pipeline.

    Attributes
    ----------
    pipeline:
        The evaluated pipeline (specification, not fitted state).
    accuracy:
        Validation accuracy of the downstream model trained on the
        preprocessed data.
    error:
        ``1 - accuracy`` — the pipeline error of Equation 2.
    pick_time / prep_time / train_time:
        Seconds spent choosing the pipeline, preprocessing the data, and
        training + scoring the model.
    fidelity:
        Fraction of the training data / model capacity used (1.0 = full
        evaluation; bandit-based algorithms use lower fidelities).
    iteration:
        Index of the framework iteration that produced this trial.
    phase_timings:
        Optional per-phase wall-clock dict (``{"pick", "prep", "train"}``)
        populated only when telemetry is on.  Derived observability data:
        it never participates in result equality across backends, and
        checkpoints omit it when ``None``.
    failure_kind:
        ``None`` for a real evaluation (including pipelines that failed
        to fit — those simply score 0.0).  ``"worker_crash"`` when the
        trial was quarantined after repeatedly killing its worker,
        ``"timeout"`` when it exceeded the evaluation deadline; such
        records carry accuracy 0.0 and zero timings and are never
        persisted to the evaluation caches.
    """

    pipeline: Pipeline
    accuracy: float
    pick_time: float = 0.0
    prep_time: float = 0.0
    train_time: float = 0.0
    fidelity: float = 1.0
    iteration: int = 0
    phase_timings: dict | None = None
    failure_kind: str | None = None

    @property
    def error(self) -> float:
        return 1.0 - self.accuracy

    @property
    def total_time(self) -> float:
        return self.pick_time + self.prep_time + self.train_time


@dataclass
class SearchResult:
    """All trials of one search run plus convenience accessors."""

    algorithm: str
    trials: list[TrialRecord] = field(default_factory=list)
    baseline_accuracy: float | None = None

    def add(self, trial: TrialRecord) -> None:
        self.trials.append(trial)

    def extend(self, trials) -> None:
        self.trials.extend(trials)

    def __len__(self) -> int:
        return len(self.trials)

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    def best_trial(self) -> TrialRecord:
        """The full-fidelity trial with the highest accuracy (fallback: any trial)."""
        if not self.trials:
            from repro.exceptions import ValidationError

            raise ValidationError("search produced no trials")
        full = [t for t in self.trials if t.fidelity >= 1.0]
        pool = full if full else self.trials
        return max(pool, key=lambda t: t.accuracy)

    @property
    def best_pipeline(self) -> Pipeline:
        return self.best_trial().pipeline

    @property
    def best_accuracy(self) -> float:
        return self.best_trial().accuracy

    @property
    def best_error(self) -> float:
        return self.best_trial().error

    def improvement_over_baseline(self) -> float | None:
        """Accuracy improvement vs the no-preprocessing baseline (percentage points)."""
        if self.baseline_accuracy is None:
            return None
        return (self.best_accuracy - self.baseline_accuracy) * 100.0

    def accuracy_trajectory(self) -> np.ndarray:
        """Best-so-far accuracy after each trial (anytime performance curve)."""
        best = -np.inf
        trajectory = []
        for trial in self.trials:
            if trial.fidelity >= 1.0 and trial.accuracy > best:
                best = trial.accuracy
            trajectory.append(best if np.isfinite(best) else trial.accuracy)
        return np.asarray(trajectory)

    def time_breakdown(self) -> dict[str, float]:
        """Total Pick / Prep / Train seconds across all trials (Figure 7)."""
        return {
            "pick": float(sum(t.pick_time for t in self.trials)),
            "prep": float(sum(t.prep_time for t in self.trials)),
            "train": float(sum(t.train_time for t in self.trials)),
        }

    def time_breakdown_percent(self) -> dict[str, float]:
        """Pick / Prep / Train as percentages of the total time."""
        breakdown = self.time_breakdown()
        total = sum(breakdown.values())
        if total <= 0:
            return {key: 0.0 for key in breakdown}
        return {key: 100.0 * value / total for key, value in breakdown.items()}

    def bottleneck(self) -> str:
        """Name of the dominant time component ("pick", "prep" or "train")."""
        breakdown = self.time_breakdown()
        return max(breakdown, key=breakdown.get)
