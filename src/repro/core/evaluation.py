"""Pipeline evaluation: the "Prep" and "Train" steps of the unified framework.

The :class:`PipelineEvaluator` owns the train/validation split and a
downstream-model prototype.  ``evaluate(pipeline)`` transforms both splits
with the pipeline, trains a fresh model on the transformed training data and
returns the validation accuracy — the pipeline error of Equation 2 is just
``1 - accuracy``.  It also measures preprocessing and training time
separately so the bottleneck analysis (Section 5.3) can be reproduced, and
supports low-fidelity evaluations (a fraction of the training rows) for the
bandit-based algorithms.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.pipeline import Pipeline
from repro.core.result import TrialRecord
from repro.exceptions import ValidationError
from repro.models.base import Classifier
from repro.models.metrics import accuracy_score, train_test_split
from repro.utils.random import check_random_state
from repro.utils.validation import check_X_y


class PipelineEvaluator:
    """Evaluate feature-preprocessing pipelines on a fixed train/valid split.

    Parameters
    ----------
    X_train, y_train, X_valid, y_valid:
        The data split.  Use :meth:`from_dataset` to create the split with
        the paper's 80:20 proportion.
    model:
        Downstream classifier prototype; it is cloned for every evaluation.
    cache:
        When True (default) repeated evaluations of the same pipeline
        specification at the same fidelity return the cached result without
        re-training.
    random_state:
        Seed controlling low-fidelity subsampling.
    """

    def __init__(self, X_train, y_train, X_valid, y_valid, model: Classifier,
                 *, cache: bool = True, random_state=None) -> None:
        self.X_train, self.y_train = check_X_y(X_train, y_train)
        self.X_valid, self.y_valid = check_X_y(X_valid, y_valid)
        if self.X_train.shape[1] != self.X_valid.shape[1]:
            raise ValidationError("train and valid splits have different feature counts")
        self.model = model
        self.cache_enabled = cache
        self._cache: dict = {}
        self._rng = check_random_state(random_state)
        self.n_evaluations = 0

    # ----------------------------------------------------------- factories
    @classmethod
    def from_dataset(cls, X, y, model: Classifier, *, valid_size: float = 0.2,
                     cache: bool = True, random_state=0) -> "PipelineEvaluator":
        """Split ``(X, y)`` 80:20 (stratified) and build an evaluator."""
        X_train, X_valid, y_train, y_valid = train_test_split(
            X, y, test_size=valid_size, random_state=random_state
        )
        return cls(X_train, y_train, X_valid, y_valid, model,
                   cache=cache, random_state=random_state)

    # ----------------------------------------------------------- evaluation
    def baseline_accuracy(self) -> float:
        """Validation accuracy of the downstream model with no preprocessing."""
        return self.evaluate(Pipeline()).accuracy

    def evaluate(self, pipeline: Pipeline, *, fidelity: float = 1.0,
                 pick_time: float = 0.0, iteration: int = 0) -> TrialRecord:
        """Evaluate ``pipeline`` and return a :class:`TrialRecord`.

        Parameters
        ----------
        pipeline:
            The pipeline specification to evaluate.
        fidelity:
            Fraction of the training rows used (``(0, 1]``).  Low-fidelity
            evaluations are never cached as full results.
        pick_time:
            Seconds the search algorithm spent choosing this pipeline;
            stored in the record for the bottleneck analysis.
        iteration:
            Search-iteration index, stored for analysis.
        """
        if not 0.0 < fidelity <= 1.0:
            raise ValidationError(f"fidelity must be in (0, 1], got {fidelity}")

        key = (pipeline.spec(), round(fidelity, 6))
        if self.cache_enabled and key in self._cache:
            cached = self._cache[key]
            return TrialRecord(
                pipeline=pipeline,
                accuracy=cached["accuracy"],
                pick_time=pick_time,
                prep_time=cached["prep_time"],
                train_time=cached["train_time"],
                fidelity=fidelity,
                iteration=iteration,
            )

        X_train, y_train = self._training_subset(fidelity)

        prep_start = time.perf_counter()
        try:
            fitted, X_train_t = pipeline.fit_transform(X_train, y_train)
            X_valid_t = fitted.transform(self.X_valid)
        except (FloatingPointError, ValueError, ValidationError):
            # A numerically degenerate pipeline scores as bad as possible.
            prep_time = time.perf_counter() - prep_start
            record = TrialRecord(pipeline, accuracy=0.0, pick_time=pick_time,
                                 prep_time=prep_time, train_time=0.0,
                                 fidelity=fidelity, iteration=iteration)
            self.n_evaluations += 1
            return record
        prep_time = time.perf_counter() - prep_start

        train_start = time.perf_counter()
        model = self.model.clone()
        model.fit(self._sanitize(X_train_t), y_train)
        predictions = model.predict(self._sanitize(X_valid_t))
        accuracy = accuracy_score(self.y_valid, predictions)
        train_time = time.perf_counter() - train_start

        self.n_evaluations += 1
        if self.cache_enabled:
            self._cache[key] = {
                "accuracy": accuracy,
                "prep_time": prep_time,
                "train_time": train_time,
            }
        return TrialRecord(
            pipeline=pipeline,
            accuracy=accuracy,
            pick_time=pick_time,
            prep_time=prep_time,
            train_time=train_time,
            fidelity=fidelity,
            iteration=iteration,
        )

    def evaluate_many(self, pipelines, *, fidelity: float = 1.0,
                      iteration: int = 0) -> list[TrialRecord]:
        """Evaluate a batch of pipelines at the same fidelity."""
        return [
            self.evaluate(pipeline, fidelity=fidelity, iteration=iteration)
            for pipeline in pipelines
        ]

    # ------------------------------------------------------------ internals
    def _training_subset(self, fidelity: float):
        if fidelity >= 1.0:
            return self.X_train, self.y_train
        n_samples = self.X_train.shape[0]
        size = max(int(round(fidelity * n_samples)), 10)
        size = min(size, n_samples)
        indices = self._rng.choice(n_samples, size=size, replace=False)
        # Make sure at least two classes survive the subsample.
        if np.unique(self.y_train[indices]).shape[0] < 2:
            return self.X_train, self.y_train
        return self.X_train[indices], self.y_train[indices]

    @staticmethod
    def _sanitize(X: np.ndarray) -> np.ndarray:
        """Replace NaN / inf produced by extreme transformations with finite values."""
        return np.nan_to_num(X, nan=0.0, posinf=1e12, neginf=-1e12)

    def clear_cache(self) -> None:
        """Drop all cached evaluations."""
        self._cache.clear()

    def __repr__(self) -> str:
        return (
            f"PipelineEvaluator(model={type(self.model).__name__}, "
            f"n_train={self.X_train.shape[0]}, n_valid={self.X_valid.shape[0]}, "
            f"n_features={self.X_train.shape[1]})"
        )
