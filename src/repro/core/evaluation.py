"""Pipeline evaluation: the "Prep" and "Train" steps of the unified framework.

The :class:`PipelineEvaluator` owns the train/validation split and a
downstream-model prototype.  ``evaluate(pipeline)`` transforms both splits
with the pipeline, trains a fresh model on the transformed training data and
returns the validation accuracy — the pipeline error of Equation 2 is just
``1 - accuracy``.  It also measures preprocessing and training time
separately so the bottleneck analysis (Section 5.3) can be reproduced, and
supports low-fidelity evaluations (a fraction of the training rows) for the
bandit-based algorithms.

Evaluation is deterministic and memoized:

* results (including *failed* evaluations — degenerate pipelines would
  otherwise re-pay the full preprocessing cost on every retry) are cached
  in a bounded LRU keyed by ``(pipeline spec, fidelity)``, with hit/miss
  counters for the bottleneck analysis;
* with ``cache_dir`` set, a persistent, process-safe disk cache
  (:class:`~repro.io.evalcache.PersistentEvalCache`) sits below the LRU:
  it is keyed by the evaluator :meth:`fingerprint` — data split, model and
  subsample seed — plus the in-memory key, so repeated runs over the same
  problem answer every previously seen evaluation from disk;
* low-fidelity subsample seeds are derived from ``(random_state, pipeline
  spec, fidelity)`` rather than a shared RNG, so the result of a trial does
  not depend on evaluation order — the property that lets the execution
  engine (:mod:`repro.engine`) run batches on serial, thread or process
  backends with bit-for-bit identical outcomes;
* with ``prefix_cache_bytes`` set, evaluation is *incremental*: a
  byte-budgeted :class:`~repro.core.prefixcache.PrefixTransformCache`
  stores every fitted pipeline prefix with its transformed train/valid
  arrays, so a pipeline sharing a prefix with earlier work only pays Prep
  for its uncached suffix (and a prefix that already failed fails all its
  extensions without re-running Prep).  Cached prefixes hold the exact
  arrays the cold path would recompute, so results stay bit-for-bit
  identical to cache-off evaluation;
* ``evaluate_many`` / ``evaluate_tasks`` route whole batches through an
  optional :class:`~repro.engine.engine.ExecutionEngine` for parallel
  execution.
"""

from __future__ import annotations

import hashlib
import time
import zlib
from collections import OrderedDict

import numpy as np

from repro.core.pipeline import Pipeline
from repro.core.prefixcache import make_prefix_cache
from repro.core.result import TrialRecord
from repro.exceptions import ValidationError
from repro.models.base import Classifier
from repro.models.metrics import accuracy_score, train_test_split
from repro.telemetry.metrics import MetricSet, metric_property
from repro.telemetry.tracing import make_tracer, trace_span
from repro.utils.random import check_random_state
from repro.utils.validation import check_X_y

#: reserved cache-entry key carrying a worker's metric delta back to the
#: parent; stripped by ``PipelineEvaluator.absorb_worker_counters`` before
#: the entry is stored anywhere
METRICS_DELTA_KEY = "_metrics_delta"


def _is_readonly_write(error: BaseException) -> bool:
    """Whether ``error`` is numpy's write-to-read-only-array ValueError.

    Prefix-cache arrays are frozen (``writeable=False``); numpy rejects an
    in-place write with messages like "assignment destination is read-only"
    / "output array is read-only", which must be told apart from the
    genuinely numerical ValueErrors a degenerate pipeline raises.
    """
    return isinstance(error, ValueError) and "read-only" in str(error)


def _raise_if_copy_on_write(error: BaseException, culprit: str) -> None:
    """Surface a write to a frozen cached array as the cache contract error.

    Swallowing it (or letting a bare numpy ValueError escape) would either
    silently diverge from the cache-off baseline or leave the user without
    a hint of what went wrong; no-op for ordinary numerical errors.
    """
    if _is_readonly_write(error):
        from repro.exceptions import CopyOnWriteViolationError

        raise CopyOnWriteViolationError(
            f"{culprit} mutated its input matrix in place, which the "
            "prefix cache forbids (cached arrays are shared between "
            "pipelines); copy before writing, or disable prefix_cache_bytes"
        ) from error


class PipelineEvaluator:
    """Evaluate feature-preprocessing pipelines on a fixed train/valid split.

    Parameters
    ----------
    X_train, y_train, X_valid, y_valid:
        The data split.  Use :meth:`from_dataset` to create the split with
        the paper's 80:20 proportion.
    model:
        Downstream classifier prototype; it is cloned for every evaluation.
    cache:
        When True (default) repeated evaluations of the same pipeline
        specification at the same fidelity return the cached result without
        re-training.  Failed evaluations are cached too.
    cache_size:
        Optional bound on the number of cached entries.  When set, the
        least-recently-used entry is evicted once the bound is exceeded, so
        long-running grids don't grow memory without limit.  ``None``
        (default) keeps the cache unbounded.
    random_state:
        Seed controlling low-fidelity subsampling.  Each subsample is drawn
        from a generator seeded by ``(random_state, pipeline spec,
        fidelity)``, so results are identical regardless of evaluation
        order or execution backend.
    engine:
        Optional :class:`~repro.engine.engine.ExecutionEngine` used by
        :meth:`evaluate_many` / :meth:`evaluate_tasks` to run batches in
        parallel.  ``None`` evaluates batches serially.
    cache_dir:
        Optional directory for a persistent cross-run evaluation cache.
        Results are written through to disk (scoped by :meth:`fingerprint`)
        and read back on in-memory misses, so a second run over the same
        data/model/seed performs zero uncached evaluations.  Requires
        ``cache=True``; safe to share between concurrent processes.  The
        disk cache keeps its own small in-memory index, bounded by the
        same ``cache_size`` as the LRU (evicted index entries are
        re-found by re-scanning their shard file on demand), so long-lived
        cache roots cannot grow parent memory without limit; ``None``
        keeps the index unbounded (see :mod:`repro.io.evalcache`).
    prefix_cache_bytes:
        Optional byte budget for the prefix-transform cache
        (:mod:`repro.core.prefixcache`).  When set, pipelines are fitted
        *incrementally*: every fitted prefix (steps + transformed
        train/valid arrays) is cached, so a pipeline sharing a prefix with
        earlier work only pays Prep for its uncached suffix, and a prefix
        that already failed short-circuits all its extensions.  Results are
        bit-for-bit identical to cache-off evaluation; the budget trades
        memory for Prep time (the dominant search cost).  Thread workers
        share one locked cache; process workers each build their own,
        persisting across batches for the lifetime of the worker pool.
        ``None`` (default) disables prefix reuse.
    """

    #: metrics of the evaluator's own memoization layer, telemetry-backed;
    #: the classic attribute spellings remain as properties below
    COUNTER_NAMES: tuple[str, ...] = (
        "cache_hits", "cache_misses", "cache_evictions", "n_evaluations",
    )

    cache_hits = metric_property("cache_hits")
    cache_misses = metric_property("cache_misses")
    cache_evictions = metric_property("cache_evictions")
    n_evaluations = metric_property("n_evaluations")

    def __init__(self, X_train, y_train, X_valid, y_valid, model: Classifier,
                 *, cache: bool = True, cache_size: int | None = None,
                 random_state=None, engine=None, cache_dir=None,
                 prefix_cache_bytes: int | None = None,
                 telemetry_mode: str = "off", telemetry_dir=None) -> None:
        self.X_train, self.y_train = check_X_y(X_train, y_train)
        self.X_valid, self.y_valid = check_X_y(X_valid, y_valid)
        if self.X_train.shape[1] != self.X_valid.shape[1]:
            raise ValidationError("train and valid splits have different feature counts")
        self.model = model
        self.cache_enabled = cache
        if cache_size is not None:
            cache_size = int(cache_size)
            if cache_size < 1:
                raise ValidationError(f"cache_size must be at least 1, got {cache_size}")
        self.cache_size = cache_size
        self._cache: OrderedDict = OrderedDict()
        self.metrics = MetricSet(self.COUNTER_NAMES)
        self._rng = check_random_state(random_state)
        if isinstance(random_state, (int, np.integer)):
            self._subsample_seed = int(random_state)
        else:
            # Fix the subsample seed once so evaluation order never matters.
            self._subsample_seed = int(self._rng.integers(0, 2**32 - 1))
        self._engine = engine
        self.prefix_cache_bytes = prefix_cache_bytes
        self._prefix_cache = make_prefix_cache(prefix_cache_bytes)
        #: metric deltas merged back from process-pool workers (each worker
        #: attaches the delta its evaluation caused — prefix-cache reuse and
        #: anything else recorded in its address space — to the returned
        #: entry; see :meth:`absorb_worker_counters`)
        self._worker_metrics = MetricSet()
        self.telemetry_mode = telemetry_mode
        self.telemetry_dir = telemetry_dir
        #: the span sink; ``None`` unless telemetry_mode == "trace" with a
        #: telemetry_dir, so untraced runs pay only a None check per phase
        self._tracer = make_tracer(telemetry_mode, telemetry_dir)
        self._fingerprint: str | None = None
        self.cache_dir = cache_dir
        if cache and cache_dir is not None:
            # Guarded so the default (no cache_dir) path never pays the
            # fingerprint hash over the full train/valid arrays.
            from repro.io.evalcache import open_eval_cache

            self._disk_cache = open_eval_cache(
                cache_dir, self.fingerprint(), max_index_entries=cache_size,
            )
        else:
            self._disk_cache = None

    # ----------------------------------------------------------- factories
    @classmethod
    def from_dataset(cls, X, y, model: Classifier, *, valid_size: float = 0.2,
                     cache: bool = True, cache_size: int | None = None,
                     random_state=0, engine=None, cache_dir=None,
                     prefix_cache_bytes: int | None = None,
                     telemetry_mode: str = "off",
                     telemetry_dir=None) -> "PipelineEvaluator":
        """Split ``(X, y)`` 80:20 (stratified) and build an evaluator."""
        X_train, X_valid, y_train, y_valid = train_test_split(
            X, y, test_size=valid_size, random_state=random_state
        )
        return cls(X_train, y_train, X_valid, y_valid, model,
                   cache=cache, cache_size=cache_size,
                   random_state=random_state, engine=engine,
                   cache_dir=cache_dir, prefix_cache_bytes=prefix_cache_bytes,
                   telemetry_mode=telemetry_mode, telemetry_dir=telemetry_dir)

    # ------------------------------------------------------------- engine
    @property
    def engine(self):
        """The execution engine used for batch evaluation (``None`` = serial)."""
        return self._engine

    def set_engine(self, engine) -> None:
        """Attach (or detach, with ``None``) an execution engine."""
        self._engine = engine

    @property
    def disk_cache(self):
        """The persistent cross-run cache (``None`` when ``cache_dir`` unset)."""
        return self._disk_cache

    @property
    def prefix_cache(self):
        """The prefix-transform cache (``None`` when ``prefix_cache_bytes`` unset)."""
        return self._prefix_cache

    @property
    def tracer(self):
        """The span sink (``None`` unless telemetry tracing is enabled)."""
        return self._tracer

    def __getstate__(self) -> dict:
        # Workers evaluate serially and start with a cold cache: shipping
        # the parent's (potentially large) cache or its engine would only
        # inflate the pickle and risk nested worker pools.  The disk-cache
        # handle is dropped too — workers only run _evaluate_uncached, and
        # the parent merges their results back to disk after each batch.
        # The prefix cache is likewise dropped: __setstate__ rebuilds a
        # fresh one per process, and because the process backend ships the
        # evaluator once through the pool initializer, each worker's cache
        # then persists across batches for the lifetime of the pool.
        # The tracer *is* shipped: it pickles down to its path, and worker
        # spans append to the same O_APPEND sink as the parent's.
        state = self.__dict__.copy()
        state["_engine"] = None
        state["_cache"] = OrderedDict()
        state["_disk_cache"] = None
        state["_prefix_cache"] = None
        state["_worker_metrics"] = MetricSet()
        state["metrics"] = MetricSet(self.COUNTER_NAMES)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._prefix_cache = make_prefix_cache(self.prefix_cache_bytes)

    # -------------------------------------------------------------- identity
    def fingerprint(self) -> str:
        """Hex digest identifying this evaluation context.

        Covers the exact train/valid split (bytes, shapes, dtypes), the
        downstream model (class and parameters) and the subsample seed —
        everything a cache entry's validity depends on.  Two evaluators with
        the same fingerprint produce bit-for-bit identical results for every
        ``(pipeline spec, fidelity)``, which is what makes the persistent
        cache (``cache_dir``) safe to share across runs and processes, and
        what lets a session checkpoint verify on resume that it is being
        continued against the same problem.  The digest is memoized: the
        split and model prototype never change for the evaluator's lifetime.
        """
        if self._fingerprint is not None:
            return self._fingerprint
        digest = hashlib.sha256()
        for array in (self.X_train, self.y_train, self.X_valid, self.y_valid):
            array = np.ascontiguousarray(array)
            digest.update(repr((array.shape, str(array.dtype))).encode())
            digest.update(array.tobytes())
        model_spec = (type(self.model).__name__,
                      tuple(sorted(self.model.get_params().items())))
        digest.update(repr(model_spec).encode())
        digest.update(repr(self._subsample_seed).encode())
        self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # ----------------------------------------------------------- evaluation
    def baseline_accuracy(self) -> float:
        """Validation accuracy of the downstream model with no preprocessing."""
        return self.evaluate(Pipeline()).accuracy

    def evaluate(self, pipeline: Pipeline, *, fidelity: float = 1.0,
                 pick_time: float = 0.0, iteration: int = 0) -> TrialRecord:
        """Evaluate ``pipeline`` and return a :class:`TrialRecord`.

        Parameters
        ----------
        pipeline:
            The pipeline specification to evaluate.
        fidelity:
            Fraction of the training rows used (``(0, 1]``).  Low-fidelity
            evaluations are never cached as full results.
        pick_time:
            Seconds the search algorithm spent choosing this pipeline;
            stored in the record for the bottleneck analysis.
        iteration:
            Search-iteration index, stored for analysis.
        """
        if not 0.0 < fidelity <= 1.0:
            raise ValidationError(f"fidelity must be in (0, 1], got {fidelity}")

        key = self.cache_key(pipeline, fidelity)
        with trace_span(self._tracer, "cache_lookup"):
            entry = self.cache_lookup(key)
        if entry is None:
            entry = self._evaluate_uncached(pipeline, fidelity)
            self.n_evaluations += 1
            self.cache_store(key, entry)
        return self._make_record(pipeline, entry, fidelity=fidelity,
                                 pick_time=pick_time, iteration=iteration)

    def evaluate_many(self, pipelines, *, fidelity: float = 1.0,
                      iteration: int = 0) -> list[TrialRecord]:
        """Evaluate a batch of pipelines at the same fidelity.

        The batch is routed through the attached execution engine when one
        is set (see :meth:`set_engine`), running on its backend's workers;
        otherwise the pipelines are evaluated serially.  Either way the
        records come back in input order with identical contents.
        """
        from repro.engine.tasks import EvalTask

        tasks = [EvalTask(pipeline, fidelity=fidelity, iteration=iteration)
                 for pipeline in pipelines]
        return self.evaluate_tasks(tasks)

    def evaluate_tasks(self, tasks, *, budget=None) -> list[TrialRecord]:
        """Evaluate a batch of :class:`~repro.engine.tasks.EvalTask` objects.

        Records are returned in task order.  With no engine attached the
        tasks run serially through :meth:`evaluate`.

        When ``budget`` is given, dispatch is *budget-aware*: a wall-clock
        budget (:class:`~repro.core.budget.TimeBudget`) is consulted between
        tasks — or, with an engine attached, between chunks of
        ``engine.n_workers`` tasks, the granularity at which parallel work
        can stop — and the batch is cut short once it expires.  The returned
        list is then a prefix of the tasks; callers account for the
        undispatched remainder (see ``SearchAlgorithm._evaluate_proposals``).
        Count-based budgets never interrupt a batch: their admission is
        settled up front, so results stay bit-for-bit identical across
        backends and worker counts.
        """
        tasks = list(tasks)
        interruptible = budget is not None and budget.can_interrupt()
        if self._engine is None:
            records = []
            for task in tasks:
                if interruptible and records and budget.interrupted():
                    break
                records.append(
                    self.evaluate(task.pipeline, fidelity=task.fidelity,
                                  pick_time=task.pick_time,
                                  iteration=task.iteration)
                )
            return records
        if not interruptible:
            # Count-only budgets settle admission up front and can never
            # interrupt: dispatch the whole batch in one engine call rather
            # than paying per-chunk barriers that could not fire anyway.
            return self._engine.run(self, tasks)
        records = []
        chunk = max(1, self._engine.n_workers)
        for start in range(0, len(tasks), chunk):
            if start and budget.interrupted():
                break
            records.extend(self._engine.run(self, tasks[start:start + chunk]))
        return records

    # --------------------------------------------------------------- cache
    def cache_key(self, pipeline: Pipeline, fidelity: float) -> tuple:
        """Memoization key: ``(pipeline spec, rounded fidelity)``."""
        return (pipeline.spec(), round(fidelity, 6))

    def cache_lookup(self, key: tuple) -> dict | None:
        """Return the cached entry for ``key`` or ``None``.

        Looks in the in-memory LRU first, then (on a miss) in the
        persistent disk cache; a disk hit is promoted into the LRU so
        repeats stay memory-speed.  Both layers count as ``hits`` in
        :meth:`cache_info`; disk traffic is additionally itemised there.
        """
        if not self.cache_enabled:
            return None
        entry = self._cache.get(key)
        if entry is not None:
            self._cache.move_to_end(key)
            self.cache_hits += 1
            return entry
        if self._disk_cache is not None:
            entry = self._disk_cache.get(key)
            if entry is not None:
                self._memory_store(key, entry)
                self.cache_hits += 1
                return entry
        self.cache_misses += 1
        return None

    def cache_store(self, key: tuple, entry: dict) -> None:
        """Insert ``entry`` under ``key`` in the LRU and the disk cache.

        Entries carrying a ``failure_kind`` (worker crash, deadline
        expiry — see :mod:`repro.engine.faults`) are never cached: the
        fault describes *this run's* infrastructure, not the pipeline,
        and caching one would replay the fault into warm reruns and
        break their equivalence with a no-fault run.
        """
        if not self.cache_enabled or entry.get("failure_kind") is not None:
            return
        self._memory_store(key, entry)
        if self._disk_cache is not None:
            self._disk_cache.put(key, entry)

    def cache_store_batch(self, items) -> None:
        """Insert a batch of ``(key, entry)`` pairs (one disk append per shard).

        The execution engine merges every parallel batch back through this
        method, so results computed by thread or process workers land in the
        persistent cache in a handful of appends instead of one per task.
        Infrastructure-failure entries are skipped for the same reason as
        in :meth:`cache_store`.
        """
        if not self.cache_enabled:
            return
        items = [(key, entry) for key, entry in items
                 if entry.get("failure_kind") is None]
        for key, entry in items:
            self._memory_store(key, entry)
        if self._disk_cache is not None:
            self._disk_cache.put_many(items)

    def absorb_worker_counters(self, entry: dict) -> dict:
        """Strip a worker's metric delta from ``entry`` and merge it.

        Process-pool workers record metrics into *private* stores (their
        own prefix cache's counters, their own registry); each evaluation
        performed in a worker attaches the :class:`MetricsSnapshot` delta
        it caused to the returned cache entry under the reserved
        :data:`METRICS_DELTA_KEY`.  The engine routes every
        worker-computed entry through here before caching it, so the
        parent's :meth:`cache_info` reflects reuse that happened in the
        workers — and the delta never leaks into the memoization LRU or
        the persistent disk cache.  Idempotent: entries without a delta
        pass through untouched.
        """
        delta = entry.pop(METRICS_DELTA_KEY, None)
        if delta:
            self._worker_metrics.merge(delta)
        return entry

    def _memory_store(self, key: tuple, entry: dict) -> None:
        self._cache[key] = entry
        self._cache.move_to_end(key)
        if self.cache_size is not None:
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
                self.cache_evictions += 1

    def cache_info(self) -> dict:
        """Hit/miss/eviction counters and current size, for bottleneck reports.

        With a persistent cache attached (``cache_dir``), the disk layer's
        own counters are itemised under ``disk_*`` keys; ``disk_hits`` > 0
        with ``misses`` == 0 is the signature of a fully warm run.

        With a prefix cache attached (``prefix_cache_bytes``), its counters
        are itemised under ``prefix_*`` keys plus ``steps_reused`` (pipeline
        steps served from cache instead of re-fitted) and ``bytes_held``
        (current budget usage).  The monotonic counters include reuse that
        happened inside process-pool workers (each worker's private cache
        reports per-evaluation deltas, merged back with the results — see
        :meth:`absorb_worker_counters`); the gauges ``prefix_entries`` and
        ``bytes_held`` remain parent-process values, since worker caches
        live in other address spaces.
        """
        info = {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "evictions": self.cache_evictions,
            "size": len(self._cache),
            "maxsize": self.cache_size,
            "persistent": self._disk_cache is not None,
        }
        if self._disk_cache is not None:
            disk = self._disk_cache.info()
            info.update({
                "disk_hits": disk["hits"],
                "disk_misses": disk["misses"],
                "disk_writes": disk["writes"],
                "disk_entries": disk["entries"],
                "disk_path": disk["path"],
            })
        if self._prefix_cache is not None:
            prefix = self._prefix_cache.info()
            workers = self._worker_metrics
            info.update({
                "prefix_hits": prefix["hits"] + workers.get("prefix.hits"),
                "prefix_misses": (prefix["misses"]
                                  + workers.get("prefix.misses")),
                "prefix_evictions": (prefix["evictions"]
                                     + workers.get("prefix.evictions")),
                "prefix_entries": prefix["entries"],
                "prefix_short_circuits": (
                    prefix["failed_short_circuits"]
                    + workers.get("prefix.failed_short_circuits")
                ),
                "steps_reused": (prefix["steps_reused"]
                                 + workers.get("prefix.steps_reused")),
                "bytes_held": prefix["bytes_held"],
                "prefix_max_bytes": prefix["max_bytes"],
            })
        return info

    def clear_cache(self) -> None:
        """Drop the in-memory caches (counters accumulate; disk entries stay).

        Clears both the memoization LRU and, when enabled, the
        prefix-transform cache — releasing its byte budget — so subsequent
        evaluations are genuinely cold.
        """
        self._cache.clear()
        if self._prefix_cache is not None:
            self._prefix_cache.clear()

    # ------------------------------------------------------------ internals
    def _evaluate_uncached(self, pipeline: Pipeline, fidelity: float) -> dict:
        """Run one evaluation and return its cache entry.

        Pure with respect to the evaluator's *results*: reads the split and
        the model prototype and computes the same values regardless of what
        other evaluations ran before — which is what makes it safe to call
        concurrently from thread or process workers.  (The prefix cache, if
        enabled, is mutated, but it is internally locked and only ever
        changes *how fast* an entry is computed, never its value.)
        """
        X_train, y_train = self._training_subset(fidelity, pipeline)

        # Tracing reuses the durations this method measures anyway: phase
        # events are emitted from the wall-clock start plus the
        # perf_counter-measured duration, so untraced runs pay nothing and
        # traced runs pay only the JSONL append.
        tracer = self._tracer
        wall = time.time() if tracer is not None else 0.0

        # Prefix reuse applies only at full fidelity: a low-fidelity
        # training subset is derived from the *full* pipeline spec, so its
        # prefixes could only ever be re-hit by the exact same (spec,
        # fidelity) — which the memoization cache answers first.  Probing
        # the shared lock for a guaranteed miss would only add contention.
        if self._prefix_cache is not None and len(pipeline) > 0 \
                and fidelity >= 1.0:
            prep = self._prep_incremental(pipeline, fidelity, X_train, y_train)
        else:
            prep = self._prep_cold(pipeline, X_train, y_train)
        if tracer is not None:
            tracer.emit("prep", ts=wall, dur=prep["prep_time"],
                        steps=len(pipeline), failed=prep["failed"])
        if prep["failed"]:
            return {"accuracy": 0.0, "prep_time": prep["prep_time"],
                    "train_time": 0.0, "failed": True}
        X_train_t, X_valid_t = prep["X_train_t"], prep["X_valid_t"]
        # A zero-step pipeline passes the canonical split through unchanged,
        # and _sanitize no longer copies finite input — copy here so a
        # model that scribbles on its training matrix cannot corrupt the
        # split every later trial is scored against.  Transformed arrays
        # are per-evaluation scratch (or frozen cache entries) and need no
        # defensive copy.
        if X_train_t is self.X_train:
            X_train_t = X_train_t.copy()
        if X_valid_t is self.X_valid:
            X_valid_t = X_valid_t.copy()

        if tracer is not None:
            wall = time.time()
        train_start = time.perf_counter()
        model = self.model.clone()
        try:
            model.fit(self._sanitize(X_train_t), y_train)
            predictions = model.predict(self._sanitize(X_valid_t))
        except ValueError as error:
            if self._prefix_cache is not None:
                _raise_if_copy_on_write(error,
                                        f"model {type(self.model).__name__}")
            raise
        accuracy = accuracy_score(self.y_valid, predictions)
        train_time = time.perf_counter() - train_start
        if tracer is not None:
            tracer.emit("train", ts=wall, dur=train_time)

        return {"accuracy": accuracy, "prep_time": prep["prep_time"],
                "train_time": train_time, "failed": False}

    _PREP_ERRORS = (FloatingPointError, ValueError, ValidationError)

    def _prep_cold(self, pipeline: Pipeline, X_train, y_train) -> dict:
        """Fit ``pipeline`` from raw arrays (no prefix reuse)."""
        prep_start = time.perf_counter()
        try:
            fitted, X_train_t = pipeline.fit_transform(X_train, y_train)
            X_valid_t = fitted.transform(self.X_valid)
        except self._PREP_ERRORS:
            # A numerically degenerate pipeline scores as bad as possible.
            # The failure is cached like any result so repeat evaluations
            # don't re-pay the preprocessing cost.
            return {"failed": True,
                    "prep_time": time.perf_counter() - prep_start}
        return {"failed": False, "X_train_t": X_train_t, "X_valid_t": X_valid_t,
                "prep_time": time.perf_counter() - prep_start}

    def _prep_incremental(self, pipeline: Pipeline, fidelity: float,
                          X_train, y_train) -> dict:
        """Fit ``pipeline`` resuming from its longest cached prefix.

        Every intermediate prefix produced along the way is registered in
        the prefix cache (fitted steps + transformed train/valid arrays),
        and a failure at step ``k`` is recorded as a tombstone for
        ``spec[:k]`` so extensions of a failed prefix short-circuit without
        re-running Prep.  The arrays resumed from the cache are exactly the
        ones the cold path would recompute, so the returned transforms are
        bit-for-bit identical to :meth:`_prep_cold`.  Only called at full
        fidelity (see :meth:`_evaluate_uncached`), where the subsample
        token is ``None`` and prefixes are freely shareable.
        """
        cache = self._prefix_cache
        spec = pipeline.spec()
        token = cache.subsample_token(spec, fidelity)
        prep_start = time.perf_counter()
        hit_len, hit = cache.longest_prefix(spec, fidelity, token)
        if hit is not None and hit.failed:
            return {"failed": True,
                    "prep_time": time.perf_counter() - prep_start}
        if hit is None:
            fitted_so_far: list = []
            current_train = np.asarray(X_train, dtype=np.float64)
            current_valid = np.asarray(self.X_valid, dtype=np.float64)
        else:
            fitted_so_far = list(hit.fitted_steps)
            current_train = hit.X_train
            current_valid = hit.X_valid
        if hit_len == len(spec):
            return {"failed": False, "X_train_t": current_train,
                    "X_valid_t": current_valid,
                    "prep_time": time.perf_counter() - prep_start}

        def register(end_len, fitted_step, transformed_train):
            # Runs after each suffix step fits on the train side: transform
            # the validation split through the same step (exactly what the
            # cold path's fitted.transform would do) and cache the prefix.
            nonlocal current_valid
            current_valid = fitted_step.transform(current_valid)
            fitted_so_far.append(fitted_step)
            cache.store(spec[:end_len], fidelity, token, fitted_so_far,
                        transformed_train, current_valid)

        try:
            _, current_train = pipeline.fit_transform_from(
                hit_len, current_train, y_train, step_callback=register
            )
        except self._PREP_ERRORS as error:
            # A write to a frozen cached array is a contract violation, not
            # a numerically degenerate pipeline: without the cache that
            # pipeline would have *worked* (it mutated its own fresh copy),
            # so scoring it as failed would silently diverge from the
            # cache-off baseline.
            _raise_if_copy_on_write(
                error, f"a transformer in {pipeline.describe()!r}"
            )
            # The step after the last registered prefix raised (on either
            # the train or the valid side); tombstone it so every pipeline
            # extending this prefix fails without re-running Prep.
            cache.store_failure(spec[:len(fitted_so_far) + 1], fidelity, token)
            return {"failed": True,
                    "prep_time": time.perf_counter() - prep_start}
        return {"failed": False, "X_train_t": current_train,
                "X_valid_t": current_valid,
                "prep_time": time.perf_counter() - prep_start}

    def _make_record(self, pipeline: Pipeline, entry: dict, *, fidelity: float,
                     pick_time: float, iteration: int) -> TrialRecord:
        # phase_timings is derived, in-memory-only telemetry: it never
        # enters result comparison or checkpoint bytes unless telemetry is
        # on (see serialization.trial_to_dict).
        phase_timings = None
        if self.telemetry_mode != "off":
            phase_timings = {"pick": pick_time, "prep": entry["prep_time"],
                             "train": entry["train_time"]}
        return TrialRecord(
            pipeline=pipeline,
            accuracy=entry["accuracy"],
            pick_time=pick_time,
            prep_time=entry["prep_time"],
            train_time=entry["train_time"],
            fidelity=fidelity,
            iteration=iteration,
            phase_timings=phase_timings,
            failure_kind=entry.get("failure_kind"),
        )

    def record_from_entry(self, task, entry: dict) -> TrialRecord:
        """Build the trial record for ``task`` from a cache entry (engine API)."""
        return self._make_record(task.pipeline, entry, fidelity=task.fidelity,
                                 pick_time=task.pick_time, iteration=task.iteration)

    def _subsample_rng(self, pipeline: Pipeline | None,
                       fidelity: float) -> np.random.Generator:
        """Generator seeded by ``(random_state, pipeline spec, fidelity)``."""
        spec = () if pipeline is None else pipeline.spec()
        token = repr((spec, round(fidelity, 6))).encode("utf-8")
        seed = (self._subsample_seed * 0x9E3779B1 + zlib.crc32(token)) % 2**32
        return np.random.default_rng(seed)

    def _training_subset(self, fidelity: float, pipeline: Pipeline | None = None):
        if fidelity >= 1.0:
            return self.X_train, self.y_train
        n_samples = self.X_train.shape[0]
        size = max(int(round(fidelity * n_samples)), 10)
        size = min(size, n_samples)
        rng = self._subsample_rng(pipeline, fidelity)
        indices = rng.choice(n_samples, size=size, replace=False)
        # Make sure at least two classes survive the subsample.
        if np.unique(self.y_train[indices]).shape[0] < 2:
            return self.X_train, self.y_train
        return self.X_train[indices], self.y_train[indices]

    @staticmethod
    def _sanitize(X: np.ndarray) -> np.ndarray:
        """Replace NaN / inf produced by extreme transformations with finite values.

        Already-finite input (the common case) is returned as-is:
        ``np.nan_to_num`` always copies, and that copy of the full
        transformed training set costs more than the finiteness check.
        """
        if np.isfinite(X).all():
            return X
        return np.nan_to_num(X, nan=0.0, posinf=1e12, neginf=-1e12)

    def __repr__(self) -> str:
        return (
            f"PipelineEvaluator(model={type(self.model).__name__}, "
            f"n_train={self.X_train.shape[0]}, n_valid={self.X_valid.shape[0]}, "
            f"n_features={self.X_train.shape[1]})"
        )
