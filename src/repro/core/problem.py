"""The Auto-FP problem: data + downstream model + search space bundled together.

``AutoFPProblem`` is the object users hand to a search algorithm.  It wires a
dataset (or a named registry dataset), a downstream model and a search space
into a :class:`~repro.core.evaluation.PipelineEvaluator`, and exposes the
no-preprocessing baseline that the paper uses as its reference point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.evaluation import PipelineEvaluator
from repro.core.search_space import SearchSpace
from repro.models.base import Classifier
from repro.models.registry import make_classifier


@dataclass
class AutoFPProblem:
    """An automated-feature-preprocessing problem instance.

    Attributes
    ----------
    evaluator:
        The pipeline evaluator holding the train/valid split and the
        downstream model.
    space:
        The pipeline search space.
    name:
        Optional human-readable name (dataset + model) used in reports.
    """

    evaluator: PipelineEvaluator
    space: SearchSpace
    name: str = "auto-fp"
    #: when True, ``SearchAlgorithm.search`` hands runs on this problem to
    #: the completion-driven :class:`~repro.search.async_driver.AsyncSearchDriver`
    #: (overlapping Pick with Prep/Train) instead of the barrier loop
    async_mode: bool = False

    @classmethod
    def from_arrays(cls, X, y, model: Classifier | str, *,
                    space: SearchSpace | None = None, valid_size: float = 0.2,
                    fast_model: bool = True, random_state=0,
                    name: str = "auto-fp", n_jobs: int | None = None,
                    backend: str | None = None,
                    cache_dir=None, async_mode: bool = False,
                    prefix_cache_bytes: int | None = None) -> "AutoFPProblem":
        """Build a problem from raw arrays.

        ``model`` may be a classifier instance or a registry name
        (``"lr"``, ``"xgb"``, ``"mlp"``).  ``n_jobs`` / ``backend`` attach a
        parallel execution engine to the evaluator (see
        :func:`repro.engine.resolve_engine`); by default evaluation is
        serial.  A process-backed engine keeps a worker pool alive between
        batches — call ``problem.evaluator.engine.close()`` when done with
        the problem to release it eagerly (it is also released at
        interpreter exit).  ``cache_dir`` enables the persistent cross-run
        evaluation cache: repeated searches over the same data/model/seed
        answer previously seen pipelines from disk instead of re-training.
        ``async_mode=True`` schedules searches completion-driven: the
        algorithm proposes the next pipeline while earlier evaluations are
        still in flight, keeping all ``n_jobs`` workers saturated
        (identical results under serial evaluation).  ``prefix_cache_bytes``
        turns on incremental evaluation: fitted pipeline prefixes are cached
        (up to the byte budget) so pipelines sharing a step prefix only pay
        Prep for their uncached suffix — bit-for-bit identical results,
        trading memory for the dominant Prep cost.
        """
        from repro.engine import resolve_engine

        if isinstance(model, str):
            model = make_classifier(model, fast=fast_model)
        evaluator = PipelineEvaluator.from_dataset(
            X, y, model, valid_size=valid_size, random_state=random_state,
            engine=resolve_engine(n_jobs, backend), cache_dir=cache_dir,
            prefix_cache_bytes=prefix_cache_bytes,
        )
        return cls(evaluator=evaluator, space=space or SearchSpace(),
                   name=name, async_mode=bool(async_mode))

    @classmethod
    def from_registry(cls, dataset_name: str, model: Classifier | str, *,
                      space: SearchSpace | None = None, scale: float = 1.0,
                      fast_model: bool = True, random_state=0,
                      n_jobs: int | None = None,
                      backend: str | None = None,
                      cache_dir=None, async_mode: bool = False,
                      prefix_cache_bytes: int | None = None) -> "AutoFPProblem":
        """Build a problem from a named dataset of the benchmark registry."""
        from repro.datasets.registry import load_dataset

        X, y = load_dataset(dataset_name, scale=scale)
        model_name = model if isinstance(model, str) else type(model).__name__
        return cls.from_arrays(
            X, y, model,
            space=space,
            fast_model=fast_model,
            random_state=random_state,
            name=f"{dataset_name}/{model_name}",
            n_jobs=n_jobs,
            backend=backend,
            cache_dir=cache_dir,
            async_mode=async_mode,
            prefix_cache_bytes=prefix_cache_bytes,
        )

    def baseline_accuracy(self) -> float:
        """Validation accuracy of the downstream model without preprocessing."""
        return self.evaluator.baseline_accuracy()

    def __repr__(self) -> str:
        return f"AutoFPProblem(name={self.name!r}, space={self.space!r})"
