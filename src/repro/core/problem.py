"""The Auto-FP problem: data + downstream model + search space bundled together.

``AutoFPProblem`` is the object users hand to a search algorithm.  It wires a
dataset (or a named registry dataset), a downstream model and a search space
into a :class:`~repro.core.evaluation.PipelineEvaluator`, and exposes the
no-preprocessing baseline that the paper uses as its reference point.

Runtime configuration — parallel backend, caches, async scheduling — comes
from one :class:`~repro.core.context.ExecutionContext` (``context=``); the
per-knob keywords of earlier releases (``n_jobs=``/``backend=``/
``cache_dir=``/``prefix_cache_bytes=``/``async_mode=``) still work through
the deprecation shim, which folds them into a context.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.context import _UNSET, ExecutionContext, fold_legacy_kwargs
from repro.core.evaluation import PipelineEvaluator
from repro.core.search_space import SearchSpace
from repro.models.base import Classifier
from repro.models.registry import make_classifier


@dataclass
class AutoFPProblem:
    """An automated-feature-preprocessing problem instance.

    Attributes
    ----------
    evaluator:
        The pipeline evaluator holding the train/valid split and the
        downstream model.
    space:
        The pipeline search space.
    name:
        Optional human-readable name (dataset + model) used in reports.
    """

    evaluator: PipelineEvaluator
    space: SearchSpace
    name: str = "auto-fp"
    #: when True, ``SearchAlgorithm.search`` hands runs on this problem to
    #: the completion-driven :class:`~repro.search.async_driver.AsyncSearchDriver`
    #: (overlapping Pick with Prep/Train) instead of the barrier loop
    async_mode: bool = False
    #: the runtime configuration the problem was built with; searches and
    #: :class:`~repro.search.session.SearchSession` default to it
    context: ExecutionContext | None = None
    #: how to rebuild this problem from scratch (registry dataset name,
    #: model name, scale, seed) — recorded by :meth:`from_registry` so a
    #: session checkpoint can resume in a fresh process without the caller
    #: re-supplying the problem; ``None`` for problems built from raw arrays
    provenance: dict | None = field(default=None, repr=False)

    @classmethod
    def from_arrays(cls, X, y, model: Classifier | str, *,
                    space: SearchSpace | None = None, valid_size: float = 0.2,
                    fast_model: bool = True, random_state=_UNSET,
                    name: str = "auto-fp",
                    context: ExecutionContext | None = None,
                    n_jobs=_UNSET, backend=_UNSET, cache_dir=_UNSET,
                    async_mode=_UNSET, prefix_cache_bytes=_UNSET,
                    ) -> "AutoFPProblem":
        """Build a problem from raw arrays.

        ``model`` may be a classifier instance or a registry name
        (``"lr"``, ``"xgb"``, ``"mlp"``).  ``context`` carries every
        runtime knob (see :class:`~repro.core.context.ExecutionContext`):
        its engine runs evaluation batches in parallel, ``cache_dir``
        enables the persistent cross-run evaluation cache,
        ``prefix_cache_bytes`` turns on incremental (prefix-reusing)
        evaluation and ``async_mode`` schedules searches
        completion-driven.  A process-backed engine keeps a worker pool
        alive between batches — call ``problem.evaluator.engine.close()``
        when done with the problem to release it eagerly (it is also
        released at interpreter exit).  ``random_state`` defaults to the
        context's ``seed`` (0 when neither is set).  The per-knob
        keywords are deprecated spellings folded into the context.
        """
        context = fold_legacy_kwargs(
            context, where="AutoFPProblem.from_arrays",
            n_jobs=n_jobs, backend=backend, cache_dir=cache_dir,
            async_mode=async_mode, prefix_cache_bytes=prefix_cache_bytes,
        )
        if random_state is _UNSET:
            random_state = context.seed_or(0)
        if isinstance(model, str):
            model = make_classifier(model, fast=fast_model)
        evaluator = PipelineEvaluator.from_dataset(
            X, y, model, valid_size=valid_size, random_state=random_state,
            **context.evaluator_options(),
        )
        return cls(evaluator=evaluator, space=space or SearchSpace(),
                   name=name, async_mode=context.async_mode, context=context)

    @classmethod
    def from_registry(cls, dataset_name: str, model: Classifier | str, *,
                      space: SearchSpace | None = None, scale: float = 1.0,
                      fast_model: bool = True, random_state=_UNSET,
                      context: ExecutionContext | None = None,
                      n_jobs=_UNSET, backend=_UNSET, cache_dir=_UNSET,
                      async_mode=_UNSET, prefix_cache_bytes=_UNSET,
                      ) -> "AutoFPProblem":
        """Build a problem from a named dataset of the benchmark registry."""
        from repro.datasets.registry import load_dataset

        context = fold_legacy_kwargs(
            context, where="AutoFPProblem.from_registry",
            n_jobs=n_jobs, backend=backend, cache_dir=cache_dir,
            async_mode=async_mode, prefix_cache_bytes=prefix_cache_bytes,
        )
        if random_state is _UNSET:
            random_state = context.seed_or(0)
        X, y = load_dataset(dataset_name, scale=scale)
        model_name = model if isinstance(model, str) else type(model).__name__
        problem = cls.from_arrays(
            X, y, model,
            space=space,
            fast_model=fast_model,
            random_state=random_state,
            name=f"{dataset_name}/{model_name}",
            context=context,
        )
        if isinstance(model, str):
            # Only registry models are rebuildable from a name; a problem
            # with a custom classifier instance must be re-supplied by the
            # caller on resume.
            problem.provenance = {
                "dataset": dataset_name,
                "model": model,
                "scale": float(scale),
                "fast_model": bool(fast_model),
                "random_state": int(random_state),
            }
        return problem

    @classmethod
    def from_provenance(cls, provenance: dict,
                        context: ExecutionContext | None = None,
                        ) -> "AutoFPProblem":
        """Rebuild a registry-backed problem from its recorded provenance.

        The inverse of the record :meth:`from_registry` leaves in
        :attr:`provenance`; used by ``SearchSession.resume`` to restore an
        interrupted run in a fresh process.
        """
        from repro.exceptions import ValidationError

        required = {"dataset", "model", "scale", "fast_model", "random_state"}
        if not isinstance(provenance, dict) or not required <= set(provenance):
            raise ValidationError(
                "problem provenance must carry "
                f"{sorted(required)}, got {provenance!r}"
            )
        return cls.from_registry(
            provenance["dataset"], provenance["model"],
            scale=provenance["scale"], fast_model=provenance["fast_model"],
            random_state=provenance["random_state"], context=context,
        )

    def baseline_accuracy(self) -> float:
        """Validation accuracy of the downstream model without preprocessing."""
        return self.evaluator.baseline_accuracy()

    def __repr__(self) -> str:
        return f"AutoFPProblem(name={self.name!r}, space={self.space!r})"
