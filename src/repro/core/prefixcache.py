"""Prefix-transform reuse: the cache behind incremental pipeline evaluation.

The bottleneck analysis (Section 5.3) shows Prep dominating pipeline-search
cost, yet the registry algorithms overwhelmingly propose pipelines that
share long step prefixes: evolution mutates or appends a step of an existing
member, progressive NAS grows its beam one position at a time, and bandits
refine pipelines step by step.  Re-fitting every pipeline from raw
``X_train`` therefore re-pays the cost of steps whose inputs — and hence
whose fitted state and outputs — are bit-for-bit identical to work already
done.

:class:`PrefixTransformCache` stores, for each evaluated pipeline *prefix*,
the fitted steps plus the transformed train and validation arrays, so
evaluating a new pipeline costs only its uncached suffix.  Keys are
``(prefix spec, fidelity, subsample token)``:

* the *prefix spec* is the :meth:`~repro.core.pipeline.Pipeline.spec` of the
  first ``k`` steps;
* the *fidelity* scopes entries to one training-row fraction;
* the *subsample token* pins low-fidelity entries to the exact training
  subset they were fitted on.  Subsample seeds derive from the **full**
  pipeline spec (see ``PipelineEvaluator._subsample_rng``), so two pipelines
  sharing a prefix at ``fidelity < 1`` were fitted on *different* rows and
  must never share prefix outputs; at full fidelity the token is ``None``
  and sharing is unrestricted.

Correctness contract (enforced by the determinism matrix in
``tests/engine/test_determinism.py``): a cached prefix stores the exact
arrays the cold path would recompute, so every evaluation with the cache on
is bit-for-bit identical to the cache-off baseline.  That requires
copy-on-write discipline — no transformer or model may mutate a cached
array in place — which the cache *enforces* by marking every stored array
read-only (``writeable=False``): an in-place write raises instead of
silently corrupting later evaluations.

Memory is bounded by a byte budget over the stored arrays: the
least-recently-used entry is evicted once ``bytes_held`` exceeds the
budget.  Failed prefixes are stored as array-less tombstones (a prefix that
raised once raises for every extension, so extensions short-circuit without
re-running Prep); tombstones cost no budget.  All operations take an
internal lock, so one cache can be shared by the thread backend's workers.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.telemetry.metrics import MetricSet, metric_property
from repro.utils.log import get_logger

log = get_logger("core.prefixcache")

#: fallback budget when the available-memory probe is unavailable:
#: 256 MiB, roughly a few thousand laptop-scale split copies
DEFAULT_PREFIX_CACHE_BYTES = 256 * 1024 * 1024

#: an adaptive budget takes this fraction of available physical memory ...
ADAPTIVE_MEMORY_FRACTION = 1 / 8
#: ... clamped to [64 MiB, 2 GiB]: enough to be useful on small boxes
#: without starving the evaluations the cache exists to speed up
ADAPTIVE_MIN_BYTES = 64 * 1024 * 1024
ADAPTIVE_MAX_BYTES = 2 * 1024 * 1024 * 1024


def available_memory_bytes() -> int | None:
    """Available physical memory right now, or ``None`` if unknowable.

    POSIX ``sysconf`` only — no psutil dependency.  ``SC_AVPHYS_PAGES``
    (pages not in use) underestimates what the OS could reclaim from its
    page cache, which errs on the safe side for a budget.
    """
    try:
        pages = os.sysconf("SC_AVPHYS_PAGES")
        page_size = os.sysconf("SC_PAGE_SIZE")
    except (AttributeError, OSError, ValueError):
        return None  # non-POSIX platform or unsupported sysconf name
    if pages <= 0 or page_size <= 0:
        return None
    return int(pages) * int(page_size)


def adaptive_prefix_cache_bytes(available: int | None = None) -> int:
    """Size an unspecified prefix-cache budget from available memory.

    A fixed default is wrong at both ends of the hardware range: 256 MiB
    thrashes a 64-core box evaluating wide datasets and crowds a 1 GiB
    container.  Taking :data:`ADAPTIVE_MEMORY_FRACTION` of available
    memory, clamped to [:data:`ADAPTIVE_MIN_BYTES`,
    :data:`ADAPTIVE_MAX_BYTES`], scales with the machine; the budget
    only bounds eviction, so results stay bit-for-bit identical whatever
    this returns.  ``available=None`` probes the OS; an unanswerable
    probe falls back to :data:`DEFAULT_PREFIX_CACHE_BYTES`.
    """
    if available is None:
        available = available_memory_bytes()
    if available is None:
        log.info("prefix cache: memory probe unavailable, using the "
                 "%d MiB default", DEFAULT_PREFIX_CACHE_BYTES >> 20)
        return DEFAULT_PREFIX_CACHE_BYTES
    budget = int(available * ADAPTIVE_MEMORY_FRACTION)
    budget = max(ADAPTIVE_MIN_BYTES, min(ADAPTIVE_MAX_BYTES, budget))
    log.info("prefix cache: adaptive budget %d MiB (%d MiB available)",
             budget >> 20, int(available) >> 20)
    return budget


@dataclass(frozen=True)
class PrefixEntry:
    """One cached prefix: fitted steps plus their train/valid outputs.

    ``failed=True`` marks a tombstone: the prefix raised during Prep, so
    every pipeline extending it fails too.  Tombstones carry no arrays.
    """

    fitted_steps: tuple
    X_train: np.ndarray | None
    X_valid: np.ndarray | None
    failed: bool = False
    nbytes: int = 0


def _freeze(array: np.ndarray) -> np.ndarray:
    """Mark ``array`` read-only so cached data cannot be mutated in place."""
    array = np.asarray(array)
    array.flags.writeable = False
    return array


class PrefixTransformCache:
    """Byte-budgeted, thread-safe LRU of fitted pipeline prefixes.

    Parameters
    ----------
    max_bytes:
        Budget over the stored transformed arrays.  Once exceeded, the
        least-recently-used entries are evicted.  An entry larger than the
        whole budget is not stored at all.  ``None`` (the default) sizes
        the budget adaptively from available memory — see
        :func:`adaptive_prefix_cache_bytes`.
    """

    def __init__(self, max_bytes: int | None = None) -> None:
        if max_bytes is None:
            max_bytes = adaptive_prefix_cache_bytes()
        max_bytes = int(max_bytes)
        if max_bytes < 1:
            raise ValidationError(
                f"max_bytes must be at least 1, got {max_bytes}"
            )
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, PrefixEntry]" = OrderedDict()
        self.bytes_held = 0
        #: monotonic counters, telemetry-backed; the classic attribute
        #: spellings (``cache.hits`` etc.) remain as properties below
        self.metrics = MetricSet(self.COUNTER_NAMES)

    # ------------------------------------------------------------------- API
    @staticmethod
    def subsample_token(spec: tuple, fidelity: float):
        """The token pinning an entry to its training subset.

        Full-fidelity evaluations all see the same training rows, so their
        prefixes are freely shareable (token ``None``).  A low-fidelity
        subsample is determined by the *full* pipeline spec, so the spec
        itself is the exact subset identity — no hash collisions.
        """
        return None if fidelity >= 1.0 else spec

    def longest_prefix(self, spec: tuple, fidelity: float,
                       token) -> tuple[int, PrefixEntry | None]:
        """Return ``(length, entry)`` of the longest cached prefix of ``spec``.

        Probes ``spec[:n], spec[:n-1], ... spec[:1]`` and returns the first
        hit — which may be a failure tombstone (the caller short-circuits).
        ``(0, None)`` means no prefix is cached.  A hit counts every reused
        step into ``steps_reused`` and refreshes the entry's LRU position.
        """
        fidelity = round(fidelity, 6)
        with self._lock:
            for length in range(len(spec), 0, -1):
                key = (spec[:length], fidelity, token)
                entry = self._entries.get(key)
                if entry is None:
                    continue
                self._entries.move_to_end(key)
                self.hits += 1
                if entry.failed:
                    self.failed_short_circuits += 1
                else:
                    self.steps_reused += length
                return length, entry
            self.misses += 1
            return 0, None

    def store(self, prefix_spec: tuple, fidelity: float, token,
              fitted_steps, X_train, X_valid) -> None:
        """Insert a fitted prefix (no-op if an entry already exists).

        The arrays are stored as-is but marked read-only; callers keep using
        the same objects, so any later in-place mutation raises immediately
        instead of corrupting the cache.
        """
        entry = PrefixEntry(
            fitted_steps=tuple(fitted_steps),
            X_train=_freeze(X_train),
            X_valid=_freeze(X_valid),
            nbytes=int(X_train.nbytes) + int(X_valid.nbytes),
        )
        self._insert((prefix_spec, round(fidelity, 6), token), entry)

    def store_failure(self, prefix_spec: tuple, fidelity: float, token) -> None:
        """Insert a failure tombstone: every extension of this prefix fails."""
        entry = PrefixEntry(fitted_steps=(), X_train=None, X_valid=None,
                            failed=True, nbytes=0)
        self._insert((prefix_spec, round(fidelity, 6), token), entry)

    def clear(self) -> None:
        """Drop every entry (counters accumulate)."""
        with self._lock:
            self._entries.clear()
            self.bytes_held = 0

    #: the monotonic counters that are meaningful to merge across processes
    #: (gauges like ``bytes_held``/``entries`` describe one address space
    #: and are deliberately excluded)
    COUNTER_NAMES: tuple[str, ...] = (
        "hits", "misses", "insertions", "evictions", "steps_reused",
        "failed_short_circuits",
    )

    hits = metric_property("hits")
    misses = metric_property("misses")
    insertions = metric_property("insertions")
    evictions = metric_property("evictions")
    steps_reused = metric_property("steps_reused")
    failed_short_circuits = metric_property("failed_short_circuits")

    def counters(self) -> dict:
        """Snapshot of the monotonic counters (one consistent read).

        Process-pool workers snapshot before and after each evaluation and
        ship the difference (:meth:`counters_since`) back with the result,
        so the parent evaluator can report reuse that happened in worker
        address spaces.
        """
        with self._lock:
            return self.metrics.snapshot()

    def counters_since(self, before: dict) -> dict:
        """Counter delta since a :meth:`counters` snapshot (non-zero only)."""
        return self.counters().diff(before)

    def info(self) -> dict:
        """Counters for ``PipelineEvaluator.cache_info()`` and reports."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "insertions": self.insertions,
                "evictions": self.evictions,
                "steps_reused": self.steps_reused,
                "failed_short_circuits": self.failed_short_circuits,
                "entries": len(self._entries),
                "bytes_held": self.bytes_held,
                "max_bytes": self.max_bytes,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------- internals
    def _insert(self, key: tuple, entry: PrefixEntry) -> None:
        if entry.nbytes > self.max_bytes:
            return  # would evict everything else and then itself
        with self._lock:
            if key in self._entries:
                # Deterministic evaluations: a concurrent worker stored the
                # identical entry first; refreshing LRU position is enough.
                self._entries.move_to_end(key)
                return
            self._entries[key] = entry
            self.bytes_held += entry.nbytes
            self.insertions += 1
            while self.bytes_held > self.max_bytes:
                _, evicted = self._entries.popitem(last=False)
                self.bytes_held -= evicted.nbytes
                self.evictions += 1

    def __repr__(self) -> str:
        return (
            f"PrefixTransformCache(entries={len(self._entries)}, "
            f"bytes_held={self.bytes_held}, max_bytes={self.max_bytes})"
        )


def make_prefix_cache(prefix_cache_bytes) -> PrefixTransformCache | None:
    """Build a cache from an evaluator-style option (``None``/0 disables)."""
    if not prefix_cache_bytes:
        return None
    return PrefixTransformCache(max_bytes=int(prefix_cache_bytes))
