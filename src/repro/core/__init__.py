"""Core Auto-FP abstractions: pipelines, search space, evaluation, budgets."""

from repro.core.budget import Budget, CompositeBudget, TimeBudget, TrialBudget
from repro.core.context import ExecutionContext
from repro.core.evaluation import PipelineEvaluator
from repro.core.pipeline import FittedPipeline, Pipeline
from repro.core.problem import AutoFPProblem
from repro.core.result import SearchResult, TrialRecord
from repro.core.search_space import SearchSpace

__all__ = [
    "ExecutionContext",
    "Pipeline",
    "FittedPipeline",
    "SearchSpace",
    "PipelineEvaluator",
    "AutoFPProblem",
    "SearchResult",
    "TrialRecord",
    "Budget",
    "TrialBudget",
    "TimeBudget",
    "CompositeBudget",
]
