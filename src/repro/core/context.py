"""The unified runtime-configuration surface: :class:`ExecutionContext`.

Four PRs of scaling work each added their own keyword argument to every
layer of the public API: ``n_jobs``/``backend`` (parallel engine),
``cache_dir`` (persistent evaluation cache), ``async_mode``
(completion-driven scheduling) and ``prefix_cache_bytes``
(prefix-transform reuse) were threaded separately through
``AutoFPProblem``, ``SearchAlgorithm.search``, ``ExperimentConfig``,
``run_experiment``/``run_single`` and the CLI.  ``ExecutionContext``
collapses that sprawl into one frozen, serializable object: every runtime
knob lives here, every entry point accepts ``context=``, and the old
per-kwarg spellings keep working through a deprecation shim
(:func:`fold_legacy_kwargs`) that folds them into a context.

Because the context is a frozen dataclass of plain scalars it is

* **hashable** — usable as a memo key (the experiment runner's per-cell
  problem memo),
* **picklable** — shipped to process-pool grid workers inside
  ``ExperimentConfig``,
* **JSON-round-trippable** — ``to_dict``/``from_dict`` put it in session
  checkpoints and config files, and :meth:`from_env` reads the same knobs
  from ``REPRO_*`` environment variables for container deployments.

The context is *declarative*: it never holds live resources.
:meth:`build_engine` constructs the execution engine it describes, and
:meth:`evaluator_options` yields the constructor options of a
:class:`~repro.core.evaluation.PipelineEvaluator`, so one context can
configure any number of problems/evaluators.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import asdict, dataclass, fields, replace

from repro.exceptions import ReproDeprecationWarning, ValidationError

#: sentinel distinguishing "kwarg not passed" from an explicit None/False,
#: so the deprecation shim only warns about spellings the caller actually
#: used
_UNSET = object()

#: environment variables read by :meth:`ExecutionContext.from_env`
_ENV_PREFIX = "REPRO_"


@dataclass(frozen=True)
class ExecutionContext:
    """Every runtime knob of a run, bundled into one immutable object.

    Attributes
    ----------
    backend:
        Execution backend name (``"serial"``/``"thread"``/``"process"``/
        ``"remote"``) or ``None`` to auto-select from ``n_jobs`` (process
        when parallel, serial otherwise — see
        :func:`repro.engine.resolve_backend_name`).
    n_jobs:
        Parallel workers (``-1`` = one per CPU core, ``None``/``1`` =
        serial).
    cache_dir:
        Root of the persistent cross-run evaluation cache
        (:mod:`repro.io.evalcache`); ``None`` disables persistence.
    prefix_cache_bytes:
        Byte budget of the prefix-transform cache
        (:mod:`repro.core.prefixcache`); ``None`` disables prefix reuse.
    async_mode:
        When True, searches run under the completion-driven
        :class:`~repro.search.async_driver.AsyncSearchDriver` instead of
        the synchronous barrier loop.
    default_budget:
        Default number of trials when a search is started without an
        explicit budget (``None`` falls back to the entry point's own
        default, currently 50).
    seed:
        Default random seed used by entry points whose caller did not pass
        ``random_state`` explicitly; ``None`` keeps each entry point's own
        default.
    telemetry_mode:
        Observability level: ``"off"`` (default, no overhead),
        ``"counters"`` (metrics snapshots + heartbeat files) or
        ``"trace"`` (counters plus per-phase span events written to a
        JSONL sink under ``telemetry_dir``).  Telemetry never changes
        search results — only what is observed about them.
    telemetry_dir:
        Directory receiving telemetry artifacts (``trace.jsonl``,
        ``heartbeat.json``).  Required for span tracing; ``None`` keeps
        counters in-memory only.
    eval_timeout:
        Optional per-evaluation deadline in seconds.  Enforced by a
        watchdog on the process backend (a hung worker is killed and its
        trial recorded with ``failure_kind="timeout"``) and as a soft
        deadline on serial/thread backends.  Applies to engine-backed
        runs; ``None`` disables deadlines.
    chaos:
        Optional :class:`~repro.engine.chaos.FaultPlan` spec string
        (e.g. ``"crash@1,delay@4:30"``) — deterministic fault injection
        for testing recovery paths.  :meth:`build_engine` wraps the
        backend in a :class:`~repro.engine.chaos.ChaosBackend` (forcing
        an engine even for serial runs, so faults have an envelope to
        land in).  ``None`` (the default) injects nothing.
    remote_coordinator:
        ``"host:port"`` the ``"remote"`` backend binds its coordinator
        on (workers connect there with ``repro worker``).  ``None``
        binds loopback on an ephemeral port.  Only meaningful with
        ``backend="remote"``; ignored otherwise, so the env var can be
        exported fleet-wide.
    worker_timeout:
        Seconds of heartbeat silence before the remote coordinator
        declares a worker dead and recovers its in-flight tasks.
        ``None`` uses the coordinator default (10s).
    """

    backend: str | None = None
    n_jobs: int | None = None
    cache_dir: str | None = None
    prefix_cache_bytes: int | None = None
    async_mode: bool = False
    default_budget: int | None = None
    seed: int | None = None
    telemetry_mode: str = "off"
    telemetry_dir: str | None = None
    eval_timeout: float | None = None
    chaos: str | None = None
    remote_coordinator: str | None = None
    worker_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.backend is not None:
            from repro.engine.backends import BACKEND_NAMES

            if self.backend not in BACKEND_NAMES:
                raise ValidationError(
                    f"backend must be one of {sorted(BACKEND_NAMES)} or None, "
                    f"got {self.backend!r}"
                )
        if self.n_jobs is not None:
            n_jobs = int(self.n_jobs)
            if n_jobs == 0 or n_jobs < -1:
                raise ValidationError(
                    f"n_jobs must be a positive worker count, -1 (all cores) "
                    f"or None, got {self.n_jobs!r}"
                )
            object.__setattr__(self, "n_jobs", n_jobs)
        if self.cache_dir is not None:
            # Normalise Path-likes to str so the context stays hashable and
            # JSON-serializable.
            object.__setattr__(self, "cache_dir", os.fspath(self.cache_dir))
        if self.prefix_cache_bytes is not None:
            prefix_bytes = int(self.prefix_cache_bytes)
            if prefix_bytes < 0:
                raise ValidationError(
                    f"prefix_cache_bytes must be >= 0 or None, "
                    f"got {self.prefix_cache_bytes!r}"
                )
            object.__setattr__(self, "prefix_cache_bytes",
                               prefix_bytes or None)
        if self.default_budget is not None:
            budget = int(self.default_budget)
            if budget < 1:
                raise ValidationError(
                    f"default_budget must be at least 1, got {budget}"
                )
            object.__setattr__(self, "default_budget", budget)
        if self.seed is not None:
            object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "async_mode", bool(self.async_mode))
        from repro.telemetry import TELEMETRY_MODES

        if self.telemetry_mode not in TELEMETRY_MODES:
            raise ValidationError(
                f"telemetry_mode must be one of {list(TELEMETRY_MODES)}, "
                f"got {self.telemetry_mode!r}"
            )
        if self.telemetry_dir is not None:
            object.__setattr__(self, "telemetry_dir",
                               os.fspath(self.telemetry_dir))
        if self.eval_timeout is not None:
            eval_timeout = float(self.eval_timeout)
            if eval_timeout <= 0:
                raise ValidationError(
                    f"eval_timeout must be a positive number of seconds or "
                    f"None, got {self.eval_timeout!r}"
                )
            object.__setattr__(self, "eval_timeout", eval_timeout)
        if self.chaos is not None:
            from repro.engine.chaos import FaultPlan

            # Validate eagerly and normalise to the canonical spelling so
            # equal plans compare/hash equal as contexts.
            object.__setattr__(self, "chaos",
                               FaultPlan.from_spec(self.chaos).to_spec())
        if self.remote_coordinator is not None:
            from repro.engine.remote import format_address, parse_address

            # Validate eagerly and normalise ("8125" -> "127.0.0.1:8125")
            # so equal addresses compare/hash equal as contexts.
            object.__setattr__(
                self, "remote_coordinator",
                format_address(parse_address(self.remote_coordinator)))
        if self.worker_timeout is not None:
            worker_timeout = float(self.worker_timeout)
            if worker_timeout <= 0:
                raise ValidationError(
                    f"worker_timeout must be a positive number of seconds "
                    f"or None, got {self.worker_timeout!r}"
                )
            object.__setattr__(self, "worker_timeout", worker_timeout)

    # -------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """Plain-scalar dictionary form (JSON-ready, stable key order)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data) -> "ExecutionContext":
        """Rebuild a context from :meth:`to_dict` output.

        Unknown keys are refused rather than silently dropped: a typo in a
        config file must not quietly run with defaults.
        """
        if not isinstance(data, dict):
            raise ValidationError(
                f"ExecutionContext.from_dict expects a dict, "
                f"got {type(data).__name__}"
            )
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValidationError(
                f"unknown ExecutionContext field(s) {unknown}; "
                f"known fields: {sorted(known)}"
            )
        return cls(**data)

    @classmethod
    def from_env(cls, environ=None, *,
                 base: "ExecutionContext | None" = None) -> "ExecutionContext":
        """Read the context from ``REPRO_*`` environment variables.

        Recognised variables (unset ones keep ``base``'s value, or the
        field default): ``REPRO_BACKEND``, ``REPRO_N_JOBS``,
        ``REPRO_CACHE_DIR``, ``REPRO_PREFIX_CACHE_MB`` (MiB, converted to
        bytes), ``REPRO_ASYNC`` (``1``/``true``/``yes`` enable),
        ``REPRO_MAX_TRIALS`` (``default_budget``), ``REPRO_SEED``,
        ``REPRO_TELEMETRY`` (``off``/``counters``/``trace``),
        ``REPRO_TELEMETRY_DIR``, ``REPRO_EVAL_TIMEOUT`` (seconds),
        ``REPRO_CHAOS`` (fault-plan spec), ``REPRO_REMOTE_COORDINATOR``
        (``host:port``) and ``REPRO_WORKER_TIMEOUT`` (seconds).
        """
        environ = os.environ if environ is None else environ
        overrides: dict = {}

        def read(name: str):
            value = environ.get(_ENV_PREFIX + name, "")
            return value if value.strip() else None

        if read("BACKEND") is not None:
            overrides["backend"] = read("BACKEND").strip()
        for name, field_name in (("N_JOBS", "n_jobs"),
                                 ("MAX_TRIALS", "default_budget"),
                                 ("SEED", "seed")):
            raw = read(name)
            if raw is not None:
                try:
                    overrides[field_name] = int(raw)
                except ValueError:
                    raise ValidationError(
                        f"{_ENV_PREFIX}{name} must be an integer, got {raw!r}"
                    ) from None
        if read("CACHE_DIR") is not None:
            overrides["cache_dir"] = read("CACHE_DIR").strip()
        raw = read("PREFIX_CACHE_MB")
        if raw is not None:
            try:
                overrides["prefix_cache_bytes"] = int(float(raw) * 1024 * 1024)
            except ValueError:
                raise ValidationError(
                    f"{_ENV_PREFIX}PREFIX_CACHE_MB must be a number, "
                    f"got {raw!r}"
                ) from None
        raw = read("ASYNC")
        if raw is not None:
            overrides["async_mode"] = raw.strip().lower() in ("1", "true",
                                                              "yes", "on")
        if read("TELEMETRY") is not None:
            overrides["telemetry_mode"] = read("TELEMETRY").strip().lower()
        if read("TELEMETRY_DIR") is not None:
            overrides["telemetry_dir"] = read("TELEMETRY_DIR").strip()
        raw = read("EVAL_TIMEOUT")
        if raw is not None:
            try:
                overrides["eval_timeout"] = float(raw)
            except ValueError:
                raise ValidationError(
                    f"{_ENV_PREFIX}EVAL_TIMEOUT must be a number of seconds, "
                    f"got {raw!r}"
                ) from None
        if read("CHAOS") is not None:
            overrides["chaos"] = read("CHAOS").strip()
        if read("REMOTE_COORDINATOR") is not None:
            overrides["remote_coordinator"] = read("REMOTE_COORDINATOR").strip()
        raw = read("WORKER_TIMEOUT")
        if raw is not None:
            try:
                overrides["worker_timeout"] = float(raw)
            except ValueError:
                raise ValidationError(
                    f"{_ENV_PREFIX}WORKER_TIMEOUT must be a number of "
                    f"seconds, got {raw!r}"
                ) from None
        base = base if base is not None else cls()
        return base.replace(**overrides) if overrides else base

    def replace(self, **changes) -> "ExecutionContext":
        """A copy with ``changes`` applied (contexts are immutable)."""
        return replace(self, **changes)

    def layer(self, overrides) -> "ExecutionContext":
        """This context with a *partial* dict of fields layered on top.

        The dict-shaped sibling of :meth:`replace`, for overrides that
        arrive as data rather than keywords — a ``--context FILE``
        document layered over the environment, or the context fragment a
        serve client submits over HTTP layered over the server's base
        context.  Unknown keys are refused exactly like
        :meth:`from_dict`; an empty/None ``overrides`` returns ``self``.
        """
        if not overrides:
            return self
        if not isinstance(overrides, dict):
            raise ValidationError(
                f"ExecutionContext.layer expects a dict of fields, "
                f"got {type(overrides).__name__}"
            )
        return ExecutionContext.from_dict({**self.to_dict(), **overrides})

    # ------------------------------------------------------------ resources
    def backend_name(self) -> str:
        """The effective backend name after ``n_jobs`` defaulting."""
        from repro.engine import resolve_backend_name

        return resolve_backend_name(self.n_jobs, self.backend)

    def build_engine(self):
        """Build the execution engine this context describes.

        Returns ``None`` when the context resolves to plain single-worker
        serial evaluation (no engine overhead) — the same rule as
        :func:`repro.engine.resolve_engine`.  Each call builds a fresh
        engine; the caller owns it (``engine.close()``).

        With ``chaos`` set, the engine's backend is wrapped in a
        :class:`~repro.engine.chaos.ChaosBackend` carrying this context's
        fault plan — and an engine is built even for serial contexts, so
        the injected faults always have a guarded envelope to land in.
        """
        from repro.engine import resolve_engine

        engine = resolve_engine(self.n_jobs, self.backend,
                                eval_timeout=self.eval_timeout,
                                remote_coordinator=self.remote_coordinator,
                                worker_timeout=self.worker_timeout)
        if self.chaos is not None:
            from repro.engine import ExecutionEngine
            from repro.engine.chaos import ChaosBackend, FaultPlan

            if engine is None:
                engine = ExecutionEngine("serial",
                                         eval_timeout=self.eval_timeout)
            engine.backend = ChaosBackend(engine.backend,
                                          FaultPlan.from_spec(self.chaos))
        return engine

    def evaluator_options(self) -> dict:
        """Constructor options for a :class:`PipelineEvaluator`.

        The single path through which a context configures evaluation:
        ``PipelineEvaluator.from_dataset(..., **context.evaluator_options())``
        attaches the engine and both cache layers in one go.
        """
        return {
            "engine": self.build_engine(),
            "cache_dir": self.cache_dir,
            "prefix_cache_bytes": self.prefix_cache_bytes,
            "telemetry_mode": self.telemetry_mode,
            "telemetry_dir": self.telemetry_dir,
        }

    def configure_evaluator(self, evaluator) -> None:
        """Attach this context's engine to an existing ``evaluator``.

        Cache knobs (``cache_dir``, ``prefix_cache_bytes``) are
        construction-time options of the evaluator and cannot be changed
        here; build the evaluator through :meth:`evaluator_options` to
        apply them.
        """
        evaluator.set_engine(self.build_engine())

    # ------------------------------------------------------------- defaults
    def seed_or(self, default):
        """This context's default seed, or ``default`` when unset."""
        return self.seed if self.seed is not None else default

    def trial_budget(self, max_trials: int | None = None):
        """A :class:`~repro.core.budget.TrialBudget` for one search run.

        ``max_trials`` (when given) wins over the context's
        ``default_budget``; with neither set, 50 trials — the historical
        ``SearchAlgorithm.search`` default.
        """
        from repro.core.budget import TrialBudget

        if max_trials is None:
            max_trials = self.default_budget if self.default_budget else 50
        return TrialBudget(max_trials)

    def describe(self) -> str:
        """One-line human-readable summary (CLI banners, logs)."""
        parts = [f"backend={self.backend_name()}",
                 f"n_jobs={self.n_jobs if self.n_jobs is not None else 1}",
                 f"driver={'async' if self.async_mode else 'sync'}"]
        if self.cache_dir is not None:
            parts.append(f"cache_dir={self.cache_dir}")
        if self.prefix_cache_bytes is not None:
            parts.append(f"prefix_cache={self.prefix_cache_bytes}B")
        if self.default_budget is not None:
            parts.append(f"default_budget={self.default_budget}")
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        if self.telemetry_mode != "off":
            telemetry = f"telemetry={self.telemetry_mode}"
            if self.telemetry_dir is not None:
                telemetry += f":{self.telemetry_dir}"
            parts.append(telemetry)
        if self.eval_timeout is not None:
            parts.append(f"eval_timeout={self.eval_timeout:g}s")
        if self.chaos is not None:
            parts.append(f"chaos={self.chaos}")
        if self.remote_coordinator is not None:
            parts.append(f"coordinator={self.remote_coordinator}")
        if self.worker_timeout is not None:
            parts.append(f"worker_timeout={self.worker_timeout:g}s")
        return " ".join(parts)


#: the per-knob keywords the context replaced, mapped to their context field
LEGACY_CONTEXT_KWARGS: tuple[str, ...] = (
    "n_jobs", "backend", "cache_dir", "prefix_cache_bytes", "async_mode",
)


def fold_legacy_kwargs(context: ExecutionContext | None, *, where: str,
                       stacklevel: int = 3, **legacy) -> ExecutionContext:
    """The deprecation shim: fold per-knob keywords into a context.

    ``legacy`` values equal to :data:`_UNSET` were not passed by the
    caller and are ignored — as are explicit ``None``/``False``, the
    historical "off" defaults, which change nothing when folded; each
    *meaningful* value the caller passed emits a single
    :class:`~repro.exceptions.ReproDeprecationWarning` (naming ``where``,
    the entry point) and overrides the corresponding field of ``context``.
    With no legacy keywords this is a plain ``context or
    ExecutionContext()`` defaulting step, so modern callers pay nothing.
    """
    passed = {name: value for name, value in legacy.items()
              if value is not _UNSET and value is not None
              and value is not False}
    context = context if context is not None else ExecutionContext()
    if not passed:
        return context
    names = ", ".join(f"{name}=" for name in sorted(passed))
    warnings.warn(
        f"{where}: the keyword argument(s) {names} are deprecated; pass "
        f"context=ExecutionContext({', '.join(sorted(passed))}, ...) instead",
        ReproDeprecationWarning, stacklevel=stacklevel,
    )
    return context.replace(**passed)
