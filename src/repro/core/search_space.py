"""The Auto-FP search space (Definition 3 of the paper).

The search space is the set of all pipelines of length 1..max_length built
from a candidate list of preprocessors (order matters and repetition is
allowed, so there are ``sum_{i=1..N} n^i`` pipelines for ``n`` candidates).
The space supports the operations the 15 search algorithms need:

* uniform random sampling (traditional / initialisation),
* neighbourhood generation (simulated annealing),
* mutation (evolution-based algorithms),
* progressive expansion by one position (Progressive NAS / ENAS),
* a fixed-length integer / one-hot encoding (surrogate models, REINFORCE),
* full enumeration for small lengths (the motivating experiment, Figure 2).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

import numpy as np

from repro.core.pipeline import Pipeline
from repro.exceptions import SearchSpaceError
from repro.preprocessing.base import Preprocessor
from repro.preprocessing.registry import default_preprocessors
from repro.utils.random import check_random_state


class SearchSpace:
    """Search space over preprocessor pipelines.

    Parameters
    ----------
    candidates:
        The candidate preprocessors (prototypes; they are cloned whenever a
        pipeline is built).  Defaults to the seven paper preprocessors.
    max_length:
        Maximum pipeline length ``N``.  The paper's default space uses
        ``N = 7`` (length up to the number of preprocessors); the motivating
        experiment uses smaller values.
    """

    def __init__(self, candidates: Iterable[Preprocessor] | None = None,
                 max_length: int = 7) -> None:
        self.candidates: tuple[Preprocessor, ...] = tuple(
            candidates if candidates is not None else default_preprocessors()
        )
        if not self.candidates:
            raise SearchSpaceError("search space needs at least one candidate preprocessor")
        if max_length < 1:
            raise SearchSpaceError("max_length must be at least 1")
        self.max_length = int(max_length)

    # ------------------------------------------------------------ basic info
    @property
    def n_candidates(self) -> int:
        return len(self.candidates)

    def size(self) -> int:
        """Total number of pipelines: ``sum_{i=1}^{N} n^i``."""
        n = self.n_candidates
        return sum(n ** i for i in range(1, self.max_length + 1))

    def candidate_index(self, step: Preprocessor) -> int:
        """Index of a candidate matching ``step`` (same class and params)."""
        for i, candidate in enumerate(self.candidates):
            if candidate == step:
                return i
        raise SearchSpaceError(f"step {step!r} is not one of the space's candidates")

    # ------------------------------------------------------------- sampling
    def sample_length(self, rng: np.random.Generator) -> int:
        """Sample a pipeline length uniformly from ``1..max_length``."""
        return int(rng.integers(1, self.max_length + 1))

    def sample_pipeline(self, random_state=None, length: int | None = None) -> Pipeline:
        """Sample a pipeline uniformly (first a length, then each position)."""
        rng = check_random_state(random_state)
        length = self.sample_length(rng) if length is None else int(length)
        if not 1 <= length <= self.max_length:
            raise SearchSpaceError(
                f"length must be in [1, {self.max_length}], got {length}"
            )
        indices = rng.integers(0, self.n_candidates, size=length)
        return self.pipeline_from_indices(indices)

    def sample_pipelines(self, n: int, random_state=None) -> list[Pipeline]:
        """Sample ``n`` pipelines independently."""
        rng = check_random_state(random_state)
        return [self.sample_pipeline(rng) for _ in range(n)]

    def pipeline_from_indices(self, indices: Sequence[int]) -> Pipeline:
        """Build a pipeline from candidate indices (one per position)."""
        return Pipeline([self.candidates[int(i)] for i in indices])

    def indices_of(self, pipeline: Pipeline) -> list[int]:
        """Inverse of :meth:`pipeline_from_indices`."""
        return [self.candidate_index(step) for step in pipeline]

    # ----------------------------------------------------------- neighbours
    def neighbors(self, pipeline: Pipeline, random_state=None,
                  n_neighbors: int = 1) -> list[Pipeline]:
        """Random neighbours of ``pipeline`` for local-search algorithms.

        A neighbour differs by exactly one edit: replace one position,
        append a preprocessor (if below ``max_length``) or drop the last
        position (if longer than one step).
        """
        rng = check_random_state(random_state)
        result = [self.mutate(pipeline, rng) for _ in range(n_neighbors)]
        return result

    def mutate(self, pipeline: Pipeline, random_state=None) -> Pipeline:
        """Return a single random one-edit mutation of ``pipeline``."""
        rng = check_random_state(random_state)
        moves = ["replace"]
        if len(pipeline) < self.max_length:
            moves.append("append")
        if len(pipeline) > 1:
            moves.append("drop")
        move = moves[int(rng.integers(0, len(moves)))]

        if move == "append" or len(pipeline) == 0:
            new_step = self.candidates[int(rng.integers(0, self.n_candidates))]
            return pipeline.append(new_step)
        if move == "drop":
            return pipeline.truncate(len(pipeline) - 1)
        position = int(rng.integers(0, len(pipeline)))
        new_step = self.candidates[int(rng.integers(0, self.n_candidates))]
        return pipeline.replace(position, new_step)

    def crossover(self, first: Pipeline, second: Pipeline, random_state=None) -> Pipeline:
        """Single-point crossover used by the genetic-programming baseline."""
        rng = check_random_state(random_state)
        cut_first = int(rng.integers(0, len(first) + 1))
        cut_second = int(rng.integers(0, len(second) + 1))
        steps = [*first[:cut_first], *second[cut_second:]]
        if not steps:
            return self.sample_pipeline(rng, length=1)
        return Pipeline(steps[: self.max_length])

    # -------------------------------------------------------- progressive
    def single_step_pipelines(self) -> list[Pipeline]:
        """All pipelines of length one (Progressive NAS starting points)."""
        return [Pipeline([candidate]) for candidate in self.candidates]

    def expand(self, pipeline: Pipeline) -> list[Pipeline]:
        """All one-step extensions of ``pipeline`` (empty if at max length)."""
        if len(pipeline) >= self.max_length:
            return []
        return [pipeline.append(candidate) for candidate in self.candidates]

    def enumerate_pipelines(self, max_length: int | None = None):
        """Yield every pipeline up to ``max_length`` (default: the space's max).

        Only intended for small spaces (the paper's motivating experiment
        enumerates 2800 pipelines of length <= 4 over 7 preprocessors).
        """
        limit = self.max_length if max_length is None else min(max_length, self.max_length)
        for length in range(1, limit + 1):
            for combo in itertools.product(range(self.n_candidates), repeat=length):
                yield self.pipeline_from_indices(combo)

    # ------------------------------------------------------------ encoding
    def encode(self, pipeline: Pipeline) -> np.ndarray:
        """Fixed-length one-hot encoding used by surrogate models.

        The encoding has ``max_length`` blocks of ``n_candidates + 1``
        entries; each block one-hot encodes the candidate at that position,
        with the extra entry meaning "empty" (pipeline shorter than the
        position).
        """
        block = self.n_candidates + 1
        vector = np.zeros(self.max_length * block, dtype=np.float64)
        indices = self.indices_of(pipeline)
        for position in range(self.max_length):
            if position < len(indices):
                vector[position * block + indices[position]] = 1.0
            else:
                vector[position * block + self.n_candidates] = 1.0
        return vector

    def encoding_dim(self) -> int:
        """Dimensionality of :meth:`encode`'s output."""
        return self.max_length * (self.n_candidates + 1)

    def encode_many(self, pipelines: Sequence[Pipeline]) -> np.ndarray:
        """Encode a list of pipelines into a 2-D design matrix."""
        if not pipelines:
            return np.zeros((0, self.encoding_dim()))
        return np.stack([self.encode(p) for p in pipelines])

    def __repr__(self) -> str:
        names = [candidate.name for candidate in self.candidates]
        return f"SearchSpace(n_candidates={len(names)}, max_length={self.max_length})"
