"""Feature-preprocessing pipelines (Definition 2 of the paper).

A :class:`Pipeline` is an ordered sequence of preprocessors
``P1 -> P2 -> ... -> Pn``.  Applying it to a dataset means fitting and
applying each preprocessor in turn, each one consuming the previous one's
output.  Pipelines are hashable by their *specification* (preprocessor names
and parameters), which is what search algorithms manipulate; the fitted
state lives in a separate :class:`FittedPipeline` so a single specification
can be evaluated many times without sharing state.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.preprocessing.base import Preprocessor
from repro.preprocessing.registry import make_preprocessor


class Pipeline:
    """An ordered, immutable sequence of (unfitted) preprocessors.

    Parameters
    ----------
    steps:
        Iterable of :class:`~repro.preprocessing.base.Preprocessor`
        instances.  They are cloned on construction so the pipeline owns
        its prototypes.  The empty pipeline represents "no preprocessing".
    """

    def __init__(self, steps: Iterable[Preprocessor] = ()) -> None:
        cloned = []
        for step in steps:
            if not isinstance(step, Preprocessor):
                raise ValidationError(
                    f"pipeline steps must be Preprocessor instances, got {type(step)!r}"
                )
            cloned.append(step.clone())
        self._steps: tuple[Preprocessor, ...] = tuple(cloned)

    # ----------------------------------------------------------- properties
    @property
    def steps(self) -> tuple[Preprocessor, ...]:
        """The (unfitted) preprocessor prototypes in order."""
        return self._steps

    def __len__(self) -> int:
        return len(self._steps)

    def __iter__(self):
        return iter(self._steps)

    def __getitem__(self, index):
        return self._steps[index]

    def is_empty(self) -> bool:
        """True for the no-preprocessing pipeline."""
        return not self._steps

    # ----------------------------------------------------------- identity
    def spec(self) -> tuple:
        """Hashable specification: tuple of (name, sorted params) pairs."""
        return tuple(
            (step.name, tuple(sorted(step.get_params().items())))
            for step in self._steps
        )

    def names(self) -> tuple[str, ...]:
        """Preprocessor names in order (without parameters)."""
        return tuple(step.name for step in self._steps)

    def describe(self) -> str:
        """Human-readable ``A -> B -> C`` description."""
        if not self._steps:
            return "<no preprocessing>"
        parts = []
        for step in self._steps:
            params = step.get_params()
            if params:
                inner = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
                parts.append(f"{step.name}({inner})")
            else:
                parts.append(step.name)
        return " -> ".join(parts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pipeline):
            return NotImplemented
        return self.spec() == other.spec()

    def __hash__(self) -> int:
        return hash(self.spec())

    def __repr__(self) -> str:
        return f"Pipeline({self.describe()})"

    # ----------------------------------------------------------- operations
    def fit(self, X, y=None) -> "FittedPipeline":
        """Fit every step on (progressively transformed) ``X``; return fitted pipeline."""
        fitted, _ = self.fit_transform(X, y)
        return fitted

    def fit_transform(self, X, y=None):
        """Fit the pipeline on ``X`` and return ``(fitted_pipeline, transformed_X)``."""
        fitted_steps = []
        current = np.asarray(X, dtype=np.float64)
        for step in self._steps:
            fitted_step = step.clone()
            current = fitted_step.fit_transform(current, y)
            fitted_steps.append(fitted_step)
        return FittedPipeline(self, fitted_steps), current

    def append(self, step: Preprocessor) -> "Pipeline":
        """Return a new pipeline with ``step`` appended."""
        return Pipeline([*self._steps, step])

    def replace(self, index: int, step: Preprocessor) -> "Pipeline":
        """Return a new pipeline with the step at ``index`` replaced."""
        steps = list(self._steps)
        steps[index] = step
        return Pipeline(steps)

    def truncate(self, length: int) -> "Pipeline":
        """Return a new pipeline keeping only the first ``length`` steps."""
        return Pipeline(self._steps[:length])

    @classmethod
    def from_names(cls, names: Sequence[str], params: Sequence[dict] | None = None) -> "Pipeline":
        """Build a pipeline from preprocessor names (and optional parameter dicts)."""
        params = params or [{} for _ in names]
        if len(params) != len(names):
            raise ValidationError("params must have the same length as names")
        return cls([make_preprocessor(name, **p) for name, p in zip(names, params)])

    @classmethod
    def from_spec(cls, spec: Sequence[tuple]) -> "Pipeline":
        """Rebuild a pipeline from the output of :meth:`spec`."""
        steps = [make_preprocessor(name, **dict(items)) for name, items in spec]
        return cls(steps)


class FittedPipeline:
    """A pipeline whose steps have been fitted on a training set."""

    def __init__(self, pipeline: Pipeline, fitted_steps: list[Preprocessor]) -> None:
        self.pipeline = pipeline
        self.fitted_steps = fitted_steps

    def transform(self, X) -> np.ndarray:
        """Apply every fitted step in order to ``X``."""
        current = np.asarray(X, dtype=np.float64)
        for step in self.fitted_steps:
            current = step.transform(current)
        return current

    def __len__(self) -> int:
        return len(self.fitted_steps)

    def __repr__(self) -> str:
        return f"FittedPipeline({self.pipeline.describe()})"
