"""Feature-preprocessing pipelines (Definition 2 of the paper).

A :class:`Pipeline` is an ordered sequence of preprocessors
``P1 -> P2 -> ... -> Pn``.  Applying it to a dataset means fitting and
applying each preprocessor in turn, each one consuming the previous one's
output.  Pipelines are hashable by their *specification* (preprocessor names
and parameters), which is what search algorithms manipulate; the fitted
state lives in a separate :class:`FittedPipeline` so a single specification
can be evaluated many times without sharing state.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.preprocessing.base import Preprocessor
from repro.preprocessing.registry import make_preprocessor


class Pipeline:
    """An ordered, immutable sequence of (unfitted) preprocessors.

    Parameters
    ----------
    steps:
        Iterable of :class:`~repro.preprocessing.base.Preprocessor`
        instances.  They are cloned on construction so the pipeline owns
        its prototypes.  The empty pipeline represents "no preprocessing".
    """

    def __init__(self, steps: Iterable[Preprocessor] = ()) -> None:
        cloned = []
        for step in steps:
            if not isinstance(step, Preprocessor):
                raise ValidationError(
                    f"pipeline steps must be Preprocessor instances, got {type(step)!r}"
                )
            cloned.append(step.clone())
        self._steps: tuple[Preprocessor, ...] = tuple(cloned)

    # ----------------------------------------------------------- properties
    @property
    def steps(self) -> tuple[Preprocessor, ...]:
        """The (unfitted) preprocessor prototypes in order."""
        return self._steps

    def __len__(self) -> int:
        return len(self._steps)

    def __iter__(self):
        return iter(self._steps)

    def __getitem__(self, index):
        return self._steps[index]

    def is_empty(self) -> bool:
        """True for the no-preprocessing pipeline."""
        return not self._steps

    # ----------------------------------------------------------- identity
    def spec(self) -> tuple:
        """Hashable specification: tuple of (name, sorted params) pairs."""
        return tuple(
            (step.name, tuple(sorted(step.get_params().items())))
            for step in self._steps
        )

    def names(self) -> tuple[str, ...]:
        """Preprocessor names in order (without parameters)."""
        return tuple(step.name for step in self._steps)

    def describe(self) -> str:
        """Human-readable ``A -> B -> C`` description."""
        if not self._steps:
            return "<no preprocessing>"
        parts = []
        for step in self._steps:
            params = step.get_params()
            if params:
                inner = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
                parts.append(f"{step.name}({inner})")
            else:
                parts.append(step.name)
        return " -> ".join(parts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pipeline):
            return NotImplemented
        return self.spec() == other.spec()

    def __hash__(self) -> int:
        return hash(self.spec())

    def __repr__(self) -> str:
        return f"Pipeline({self.describe()})"

    # ----------------------------------------------------------- operations
    def fit(self, X, y=None) -> "FittedPipeline":
        """Fit every step on (progressively transformed) ``X``; return fitted pipeline."""
        fitted, _ = self.fit_transform(X, y)
        return fitted

    def fit_transform(self, X, y=None):
        """Fit the pipeline on ``X`` and return ``(fitted_pipeline, transformed_X)``."""
        fitted_steps, current = self.fit_transform_from(0, X, y)
        return FittedPipeline(self, fitted_steps), current

    def fit_transform_from(self, prefix_len: int, X_t, y=None, *,
                           step_callback=None):
        """Resume fitting after ``prefix_len`` already-fitted steps.

        ``X_t`` must be the training data as transformed by the first
        ``prefix_len`` steps (for ``prefix_len == 0``, the raw training
        data).  Returns ``(suffix_fitted_steps, transformed_X)`` — combine
        the suffix with the prefix's fitted steps via
        :meth:`FittedPipeline.compose` to obtain the full fitted pipeline.

        ``step_callback(end_len, fitted_step, current)`` is invoked after
        each suffix step is fitted, where ``end_len`` is the total number of
        fitted steps so far (prefix included) and ``current`` the training
        data transformed through them.  This is the hook the evaluator's
        prefix cache uses to register every intermediate prefix as it is
        produced; an exception raised by the callback aborts the fit.
        """
        if not 0 <= prefix_len <= len(self._steps):
            raise ValidationError(
                f"prefix_len must be in [0, {len(self._steps)}], got {prefix_len}"
            )
        fitted_steps = []
        current = np.asarray(X_t, dtype=np.float64)
        for end_len, step in enumerate(self._steps[prefix_len:],
                                       start=prefix_len + 1):
            fitted_step = step.clone()
            current = fitted_step.fit_transform(current, y)
            fitted_steps.append(fitted_step)
            if step_callback is not None:
                step_callback(end_len, fitted_step, current)
        return fitted_steps, current

    def append(self, step: Preprocessor) -> "Pipeline":
        """Return a new pipeline with ``step`` appended."""
        return Pipeline([*self._steps, step])

    def replace(self, index: int, step: Preprocessor) -> "Pipeline":
        """Return a new pipeline with the step at ``index`` replaced."""
        steps = list(self._steps)
        steps[index] = step
        return Pipeline(steps)

    def truncate(self, length: int) -> "Pipeline":
        """Return a new pipeline keeping only the first ``length`` steps."""
        return Pipeline(self._steps[:length])

    @classmethod
    def from_names(cls, names: Sequence[str], params: Sequence[dict] | None = None) -> "Pipeline":
        """Build a pipeline from preprocessor names (and optional parameter dicts)."""
        params = params or [{} for _ in names]
        if len(params) != len(names):
            raise ValidationError("params must have the same length as names")
        return cls([make_preprocessor(name, **p) for name, p in zip(names, params)])

    @classmethod
    def from_spec(cls, spec: Sequence[tuple]) -> "Pipeline":
        """Rebuild a pipeline from the output of :meth:`spec`."""
        steps = [make_preprocessor(name, **dict(items)) for name, items in spec]
        return cls(steps)


class FittedPipeline:
    """A pipeline whose steps have been fitted on a training set."""

    def __init__(self, pipeline: Pipeline, fitted_steps: list[Preprocessor]) -> None:
        self.pipeline = pipeline
        self.fitted_steps = fitted_steps

    @classmethod
    def compose(cls, pipeline: Pipeline, *fitted_step_groups) -> "FittedPipeline":
        """Assemble a fitted pipeline from fitted-step groups in order.

        The partial-composition counterpart of
        :meth:`Pipeline.fit_transform_from`: a cached fitted prefix plus the
        freshly fitted suffix become one fitted pipeline.  The groups must
        cover ``pipeline``'s steps exactly.
        """
        fitted_steps = [step for group in fitted_step_groups for step in group]
        if len(fitted_steps) != len(pipeline):
            raise ValidationError(
                f"composed {len(fitted_steps)} fitted steps for a pipeline "
                f"of {len(pipeline)} steps"
            )
        return cls(pipeline, fitted_steps)

    def transform(self, X) -> np.ndarray:
        """Apply every fitted step in order to ``X``."""
        return self.transform_from(0, X)

    def transform_from(self, prefix_len: int, X_t) -> np.ndarray:
        """Apply only the steps after ``prefix_len`` to already-transformed ``X_t``."""
        if not 0 <= prefix_len <= len(self.fitted_steps):
            raise ValidationError(
                f"prefix_len must be in [0, {len(self.fitted_steps)}], "
                f"got {prefix_len}"
            )
        current = np.asarray(X_t, dtype=np.float64)
        for step in self.fitted_steps[prefix_len:]:
            current = step.transform(current)
        return current

    def __len__(self) -> int:
        return len(self.fitted_steps)

    def __repr__(self) -> str:
        return f"FittedPipeline({self.pipeline.describe()})"
