"""Search budgets.

The paper constrains every search run by wall-clock time (60 s .. 3600 s).
For a deterministic, laptop-scale reproduction the primary budget here is
the *number of pipeline evaluations* (``TrialBudget``), which is what
actually differentiates the algorithms once the evaluation cost per pipeline
is fixed.  ``TimeBudget`` is also provided for wall-clock runs, and
``CompositeBudget`` stops when any member budget is exhausted.
"""

from __future__ import annotations

import time


class Budget:
    """Budget protocol: ``remaining()``, ``exhausted()``, ``consume()``."""

    def exhausted(self) -> bool:
        raise NotImplementedError

    def consume(self, amount: float = 1.0) -> None:
        """Record that ``amount`` of budget was used (evaluations or seconds)."""
        raise NotImplementedError

    def remaining(self) -> float:
        raise NotImplementedError

    def check(self) -> None:
        """Raise :class:`BudgetExhaustedError` if the budget is spent."""
        from repro.exceptions import BudgetExhaustedError

        if self.exhausted():
            raise BudgetExhaustedError(f"{self!r} is exhausted")


class TrialBudget(Budget):
    """Budget measured in number of pipeline evaluations.

    Partial evaluations (Hyperband's low-fidelity rungs) may consume
    fractional amounts.
    """

    def __init__(self, max_trials: int) -> None:
        if max_trials < 1:
            from repro.exceptions import ValidationError

            raise ValidationError("max_trials must be at least 1")
        self.max_trials = float(max_trials)
        self.used = 0.0

    def exhausted(self) -> bool:
        return self.used >= self.max_trials

    def consume(self, amount: float = 1.0) -> None:
        self.used += float(amount)

    def remaining(self) -> float:
        return max(0.0, self.max_trials - self.used)

    def __repr__(self) -> str:
        return f"TrialBudget(used={self.used:g}, max={self.max_trials:g})"


class TimeBudget(Budget):
    """Wall-clock budget in seconds, mirroring the paper's time limits."""

    def __init__(self, max_seconds: float, clock=time.monotonic) -> None:
        if max_seconds <= 0:
            from repro.exceptions import ValidationError

            raise ValidationError("max_seconds must be positive")
        self.max_seconds = float(max_seconds)
        self._clock = clock
        self._start = clock()

    def elapsed(self) -> float:
        return self._clock() - self._start

    def exhausted(self) -> bool:
        return self.elapsed() >= self.max_seconds

    def consume(self, amount: float = 0.0) -> None:
        # Time passes on its own; consume is a no-op kept for protocol parity.
        return None

    def remaining(self) -> float:
        return max(0.0, self.max_seconds - self.elapsed())

    def __repr__(self) -> str:
        return f"TimeBudget(elapsed={self.elapsed():.2f}s, max={self.max_seconds:g}s)"


class CompositeBudget(Budget):
    """Budget exhausted as soon as any member budget is exhausted."""

    def __init__(self, *budgets: Budget) -> None:
        if not budgets:
            from repro.exceptions import ValidationError

            raise ValidationError("CompositeBudget needs at least one budget")
        self.budgets = budgets

    def exhausted(self) -> bool:
        return any(budget.exhausted() for budget in self.budgets)

    def consume(self, amount: float = 1.0) -> None:
        for budget in self.budgets:
            budget.consume(amount)

    def remaining(self) -> float:
        return min(budget.remaining() for budget in self.budgets)

    def __repr__(self) -> str:
        return f"CompositeBudget({', '.join(repr(b) for b in self.budgets)})"
