"""Search budgets.

The paper constrains every search run by wall-clock time (60 s .. 3600 s).
For a deterministic, laptop-scale reproduction the primary budget here is
the *number of pipeline evaluations* (``TrialBudget``), which is what
actually differentiates the algorithms once the evaluation cost per pipeline
is fixed.  ``TimeBudget`` is also provided for wall-clock runs, and
``CompositeBudget`` stops when any member budget is exhausted.
"""

from __future__ import annotations

import time


class Budget:
    """Budget protocol: ``remaining()``, ``exhausted()``, ``consume()``.

    Two batch-admission hooks make budgets *engine-aware* (the execution
    engine dispatches whole batches, so per-trial checks alone would let a
    batch overshoot): :meth:`admits` answers "does one more task of this
    size fit?" at admission time, and :meth:`interrupted` answers "should
    already-admitted work stop?" between dispatch chunks.  Count-based
    budgets clip at admission and never interrupt (keeping results
    bit-for-bit identical across backends); wall-clock budgets admit freely
    while time remains and interrupt once it runs out.
    """

    def exhausted(self) -> bool:
        raise NotImplementedError

    def consume(self, amount: float = 1.0) -> None:
        """Record that ``amount`` of budget was used (evaluations or seconds)."""
        raise NotImplementedError

    def remaining(self) -> float:
        raise NotImplementedError

    def admits(self, amount: float = 1.0) -> bool:
        """Whether ``amount`` more trial-units fit in the remaining budget.

        The default admits anything while the budget is not exhausted —
        right for wall-clock budgets, whose cost per task is unknowable in
        advance.  Count-based budgets override this to clip batch admission
        to ``remaining()`` so a batch of k proposals can never over-admit.
        """
        return not self.exhausted()

    def admissible(self, amount: float = 1.0) -> float:
        """How much of ``amount`` trial-units may actually be charged.

        Equals ``amount`` when the work fits outright (and always for
        wall-clock budgets, which have no trial dimension); count-based
        budgets cap it at their remaining trial count.  This is the charge
        for the fractional-leftover case: it stays in trial units even
        inside a :class:`CompositeBudget`, where ``remaining()`` may be
        measured in seconds.
        """
        return float(amount)

    def interrupted(self) -> bool:
        """Whether already-admitted batch work should stop early.

        Checked between tasks (serial) or dispatch chunks (engine).  Only
        wall-clock budgets interrupt: a count-based budget's admission is
        settled up front, and cutting a dispatched batch short would make
        results depend on timing.
        """
        return False

    def can_interrupt(self) -> bool:
        """Whether :meth:`interrupted` can ever become True for this budget.

        ``False`` (count-only budgets) lets the evaluator dispatch an
        admitted batch to the engine whole, instead of splitting it into
        chunks whose between-chunk checks could never fire.
        """
        return False

    def check(self) -> None:
        """Raise :class:`BudgetExhaustedError` if the budget is spent."""
        from repro.exceptions import BudgetExhaustedError

        if self.exhausted():
            raise BudgetExhaustedError(f"{self!r} is exhausted")


class TrialBudget(Budget):
    """Budget measured in number of pipeline evaluations.

    Partial evaluations (Hyperband's low-fidelity rungs) may consume
    fractional amounts.
    """

    #: float tolerance shared by exhausted() and admits(): fractional-fidelity
    #: sums (e.g. ten 0.1 rungs) may land one ulp short of max_trials, and a
    #: crumb that small must neither keep the budget alive nor buy a trial
    TOLERANCE = 1e-9

    def __init__(self, max_trials: int) -> None:
        if max_trials < 1:
            from repro.exceptions import ValidationError

            raise ValidationError("max_trials must be at least 1")
        self.max_trials = float(max_trials)
        self.used = 0.0

    def exhausted(self) -> bool:
        return self.used + self.TOLERANCE >= self.max_trials

    def consume(self, amount: float = 1.0) -> None:
        self.used += float(amount)

    def remaining(self) -> float:
        return max(0.0, self.max_trials - self.used)

    def admits(self, amount: float = 1.0) -> bool:
        """Clip admission to the remaining trial count (no over-admission).

        The tolerance absorbs float error from fractional-fidelity sums
        (e.g. three 1/3-fidelity rungs must still admit a full trial).
        """
        return float(amount) <= self.remaining() + self.TOLERANCE

    def admissible(self, amount: float = 1.0) -> float:
        return min(float(amount), self.remaining())

    def __repr__(self) -> str:
        return f"TrialBudget(used={self.used:g}, max={self.max_trials:g})"


class TimeBudget(Budget):
    """Wall-clock budget in seconds, mirroring the paper's time limits."""

    def __init__(self, max_seconds: float, clock=time.monotonic) -> None:
        if max_seconds <= 0:
            from repro.exceptions import ValidationError

            raise ValidationError("max_seconds must be positive")
        self.max_seconds = float(max_seconds)
        self._clock = clock
        self._start = clock()

    def elapsed(self) -> float:
        return self._clock() - self._start

    def exhausted(self) -> bool:
        return self.elapsed() >= self.max_seconds

    def consume(self, amount: float = 0.0) -> None:
        # Time passes on its own; consume is a no-op kept for protocol parity.
        return None

    def remaining(self) -> float:
        return max(0.0, self.max_seconds - self.elapsed())

    def interrupted(self) -> bool:
        """Stop in-flight batch work as soon as the wall clock expires."""
        return self.exhausted()

    def can_interrupt(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"TimeBudget(elapsed={self.elapsed():.2f}s, max={self.max_seconds:g}s)"


class CompositeBudget(Budget):
    """Budget exhausted as soon as any member budget is exhausted."""

    def __init__(self, *budgets: Budget) -> None:
        if not budgets:
            from repro.exceptions import ValidationError

            raise ValidationError("CompositeBudget needs at least one budget")
        self.budgets = budgets

    def exhausted(self) -> bool:
        return any(budget.exhausted() for budget in self.budgets)

    def consume(self, amount: float = 1.0) -> None:
        for budget in self.budgets:
            budget.consume(amount)

    def remaining(self) -> float:
        return min(budget.remaining() for budget in self.budgets)

    def admits(self, amount: float = 1.0) -> bool:
        return all(budget.admits(amount) for budget in self.budgets)

    def admissible(self, amount: float = 1.0) -> float:
        return min(budget.admissible(amount) for budget in self.budgets)

    def interrupted(self) -> bool:
        return any(budget.interrupted() for budget in self.budgets)

    def can_interrupt(self) -> bool:
        return any(budget.can_interrupt() for budget in self.budgets)

    def __repr__(self) -> str:
        return f"CompositeBudget({', '.join(repr(b) for b in self.budgets)})"
