"""Performance-bottleneck analysis (Section 5.3, Figure 7 and Table 5).

Every trial records how long the search algorithm spent picking the pipeline
("Pick"), how long preprocessing took ("Prep") and how long model training
and scoring took ("Train").  The analysis aggregates these per search run,
expresses them as percentages, and classifies the dominant component per
scenario the way Table 5 does (by dataset dimensionality / size and
downstream model).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import SearchResult
from repro.datasets.registry import DatasetInfo


@dataclass
class BottleneckReport:
    """Pick/Prep/Train percentages and the dominant component for one run."""

    algorithm: str
    dataset: str
    model: str
    pick_percent: float
    prep_percent: float
    train_percent: float

    @property
    def bottleneck(self) -> str:
        components = {
            "pick": self.pick_percent,
            "prep": self.prep_percent,
            "train": self.train_percent,
        }
        return max(components, key=components.get)

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "model": self.model,
            "pick": self.pick_percent,
            "prep": self.prep_percent,
            "train": self.train_percent,
            "bottleneck": self.bottleneck,
        }


def analyze_result(result: SearchResult, *, dataset: str = "",
                   model: str = "") -> BottleneckReport:
    """Summarise one search run's time breakdown into a report."""
    percentages = result.time_breakdown_percent()
    return BottleneckReport(
        algorithm=result.algorithm,
        dataset=dataset,
        model=model,
        pick_percent=percentages["pick"],
        prep_percent=percentages["prep"],
        train_percent=percentages["train"],
    )


def scenario_group(info: DatasetInfo) -> str:
    """Dataset grouping used by Table 5 (high-dimensional vs small/medium/large)."""
    return info.size_category


def bottleneck_table(reports, dataset_infos: dict[str, DatasetInfo]) -> dict:
    """Aggregate reports into the Table 5 layout.

    Returns a mapping ``(dataset_group, model) -> {algorithm: bottleneck}``
    where ``bottleneck`` is the most common dominant component across the
    group's datasets (ties reported as "prep/train" style composites).
    """
    buckets: dict[tuple[str, str], dict[str, list[str]]] = {}
    for report in reports:
        info = dataset_infos.get(report.dataset)
        group = scenario_group(info) if info is not None else "unknown"
        key = (group, report.model)
        bucket = buckets.setdefault(key, {})
        bucket.setdefault(report.algorithm, []).append(report.bottleneck)

    table: dict[tuple[str, str], dict[str, str]] = {}
    for key, algorithms in buckets.items():
        table[key] = {}
        for algorithm, bottlenecks in algorithms.items():
            counts: dict[str, int] = {}
            for name in bottlenecks:
                counts[name] = counts.get(name, 0) + 1
            top = max(counts.values())
            winners = sorted(name for name, count in counts.items() if count == top)
            table[key][algorithm] = "/".join(winners)
    return table
