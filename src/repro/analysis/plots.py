"""Plain-text charts for benchmark artefacts.

The paper communicates most of its findings through figures (accuracy
distributions, anytime curves, overhead breakdowns).  The reproduction runs
in terminals and CI logs, so this module renders the same shapes as ASCII:
histograms for Figure 2, horizontal bar charts for rankings and overhead
percentages, and line charts for the accuracy-versus-budget trajectories of
Figures 17-19.  Every function returns a string so benchmark harnesses can
embed the charts in their artefact files.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ValidationError


def ascii_histogram(values: Sequence[float], *, bins: int = 10, width: int = 40,
                    title: str | None = None,
                    value_format: str = "{:.3f}") -> str:
    """Render a histogram of ``values`` with one text row per bin.

    Parameters
    ----------
    values:
        The sample to histogram (e.g. accuracies of 2800 pipelines).
    bins:
        Number of equal-width bins.
    width:
        Width in characters of the largest bar.
    title:
        Optional first line of the chart.
    value_format:
        Format applied to the bin edges.
    """
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ValidationError("ascii_histogram needs at least one value")
    if bins < 1:
        raise ValidationError("bins must be at least 1")
    if width < 1:
        raise ValidationError("width must be at least 1")
    counts, edges = np.histogram(values, bins=bins)
    peak = max(int(counts.max()), 1)
    lines = [] if title is None else [title]
    for i, count in enumerate(counts):
        low = value_format.format(edges[i])
        high = value_format.format(edges[i + 1])
        bar = "#" * int(round(width * count / peak))
        lines.append(f"[{low}, {high}) {bar} {int(count)}")
    return "\n".join(lines)


def ascii_bar_chart(items: Mapping[str, float], *, width: int = 40,
                    title: str | None = None,
                    value_format: str = "{:.3f}") -> str:
    """Render a horizontal bar chart, one row per labelled value.

    Values must be non-negative; bars are scaled so the maximum fills
    ``width`` characters.
    """
    if not items:
        raise ValidationError("ascii_bar_chart needs at least one item")
    values = {str(k): float(v) for k, v in items.items()}
    if any(v < 0 for v in values.values()):
        raise ValidationError("ascii_bar_chart requires non-negative values")
    peak = max(values.values()) or 1.0
    label_width = max(len(label) for label in values)
    lines = [] if title is None else [title]
    for label, value in values.items():
        bar = "#" * int(round(width * value / peak))
        lines.append(f"{label:<{label_width}} | {bar} {value_format.format(value)}")
    return "\n".join(lines)


def ascii_line_chart(series: Mapping[str, Sequence[float]], *, height: int = 12,
                     width: int = 60, title: str | None = None,
                     y_format: str = "{:.3f}") -> str:
    """Render one or more numeric series as an ASCII line chart.

    Each series is resampled onto ``width`` columns and drawn with its own
    marker character; the y-axis spans the joint range of all series.  Useful
    for best-so-far accuracy trajectories.
    """
    if not series:
        raise ValidationError("ascii_line_chart needs at least one series")
    if height < 2 or width < 2:
        raise ValidationError("height and width must both be at least 2")
    markers = "*o+x@%&$"
    arrays = {}
    for index, (label, values) in enumerate(series.items()):
        data = np.asarray(list(values), dtype=np.float64)
        if data.size == 0:
            raise ValidationError(f"series {label!r} is empty")
        arrays[str(label)] = (markers[index % len(markers)], data)

    y_min = min(float(data.min()) for _, data in arrays.values())
    y_max = max(float(data.max()) for _, data in arrays.values())
    if y_max <= y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for label, (marker, data) in arrays.items():
        positions = np.linspace(0, data.size - 1, width)
        resampled = np.interp(positions, np.arange(data.size), data)
        for column, value in enumerate(resampled):
            row = int(round((value - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][column] = marker

    lines = [] if title is None else [title]
    top_label = y_format.format(y_max)
    bottom_label = y_format.format(y_min)
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = f"{top_label:>{label_width}} |"
        elif row_index == height - 1:
            prefix = f"{bottom_label:>{label_width}} |"
        else:
            prefix = f"{'':>{label_width}} |"
        lines.append(prefix + "".join(row))
    lines.append(f"{'':>{label_width}} +" + "-" * width)
    legend = "  ".join(f"{marker}={label}" for label, (marker, _) in arrays.items())
    lines.append(f"{'':>{label_width}}  {legend}")
    return "\n".join(lines)


def format_ranking_table(rankings: Mapping[str, float], *,
                         title: str | None = None) -> str:
    """Format an algorithm -> average-rank mapping as a sorted two-column table."""
    if not rankings:
        raise ValidationError("format_ranking_table needs at least one entry")
    ordered = sorted(rankings.items(), key=lambda item: item[1])
    label_width = max(len(str(label)) for label, _ in ordered)
    lines = [] if title is None else [title]
    for position, (label, rank) in enumerate(ordered, start=1):
        lines.append(f"{position:>2}. {str(label):<{label_width}}  avg rank {rank:.2f}")
    return "\n".join(lines)
