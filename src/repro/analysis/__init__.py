"""Result analysis: rankings, bottleneck breakdowns, frequent patterns, charts."""

from repro.analysis.plots import (
    ascii_bar_chart,
    ascii_histogram,
    ascii_line_chart,
    format_ranking_table,
)
from repro.analysis.bottleneck import (
    BottleneckReport,
    analyze_result,
    bottleneck_table,
    scenario_group,
)
from repro.analysis.frequent_patterns import (
    FPNode,
    FPTree,
    fp_growth,
    max_pattern_support,
    mine_pipeline_patterns,
)
from repro.analysis.ranking import (
    Scenario,
    average_rankings,
    category_average_ranks,
    rank_with_ties,
    ranking_order,
)

__all__ = [
    "ascii_histogram",
    "ascii_bar_chart",
    "ascii_line_chart",
    "format_ranking_table",
    "Scenario",
    "rank_with_ties",
    "average_rankings",
    "ranking_order",
    "category_average_ranks",
    "BottleneckReport",
    "analyze_result",
    "bottleneck_table",
    "scenario_group",
    "FPTree",
    "FPNode",
    "fp_growth",
    "mine_pipeline_patterns",
    "max_pattern_support",
]
