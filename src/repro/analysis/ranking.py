"""Average-ranking analysis of search algorithms (Table 4 of the paper).

A *scenario* is one (dataset, downstream model, time/trial budget)
combination.  The paper ranks all 15 algorithms within each scenario by the
validation accuracy of their best pipeline (ties share the same rank), keeps
only scenarios where feature preprocessing improved over the no-FP baseline
by at least 1.5 percentage points, and reports the per-model and overall
average rank of each algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError


@dataclass
class Scenario:
    """Results of all algorithms on one (dataset, model) combination."""

    dataset: str
    model: str
    baseline_accuracy: float
    accuracies: dict[str, float] = field(default_factory=dict)

    def best_accuracy(self) -> float:
        if not self.accuracies:
            raise ValidationError("scenario has no algorithm results")
        return max(self.accuracies.values())

    def improvement(self) -> float:
        """Best improvement over the no-FP baseline, in percentage points."""
        return (self.best_accuracy() - self.baseline_accuracy) * 100.0

    def qualifies(self, min_improvement: float = 1.5) -> bool:
        """Whether the scenario enters the ranking (paper's >= 1.5% filter)."""
        return self.improvement() >= min_improvement


def rank_with_ties(values: dict[str, float]) -> dict[str, float]:
    """Rank algorithms by value (higher is better); ties share the best rank.

    This matches the paper's convention ("If there is a tie, we give the
    same ranking value"): an algorithm's rank is 1 plus the number of
    algorithms with strictly higher accuracy.
    """
    if not values:
        return {}
    ranks = {}
    for name, value in values.items():
        better = sum(1 for other in values.values() if other > value)
        ranks[name] = float(better + 1)
    return ranks


def average_rankings(scenarios, *, min_improvement: float = 1.5,
                     algorithms=None) -> dict:
    """Compute per-model and overall average rankings.

    Parameters
    ----------
    scenarios:
        Iterable of :class:`Scenario`.
    min_improvement:
        Minimum improvement (percentage points) over the no-FP baseline for
        a scenario to be counted.
    algorithms:
        Optional explicit algorithm list; defaults to the union found in the
        scenarios.

    Returns
    -------
    dict with keys ``overall`` (algorithm -> average rank), ``per_model``
    (model -> algorithm -> average rank), and ``n_scenarios`` counts.
    """
    scenarios = [s for s in scenarios if s.qualifies(min_improvement)]
    if algorithms is None:
        names: set[str] = set()
        for scenario in scenarios:
            names.update(scenario.accuracies)
        algorithms = sorted(names)

    per_model_ranks: dict[str, dict[str, list[float]]] = {}
    overall_ranks: dict[str, list[float]] = {name: [] for name in algorithms}

    for scenario in scenarios:
        ranks = rank_with_ties(scenario.accuracies)
        model_bucket = per_model_ranks.setdefault(
            scenario.model, {name: [] for name in algorithms}
        )
        for name in algorithms:
            if name not in ranks:
                continue
            overall_ranks[name].append(ranks[name])
            model_bucket[name].append(ranks[name])

    def summarize(bucket: dict[str, list[float]]) -> dict[str, float]:
        return {
            name: float(np.mean(values)) if values else float("nan")
            for name, values in bucket.items()
        }

    return {
        "overall": summarize(overall_ranks),
        "per_model": {
            model: summarize(bucket) for model, bucket in per_model_ranks.items()
        },
        "n_scenarios": len(scenarios),
        "n_scenarios_per_model": {
            model: len(next(iter(bucket.values()), []))
            for model, bucket in per_model_ranks.items()
        },
    }


def ranking_order(average_ranks: dict[str, float]) -> list[str]:
    """Algorithm names sorted from best (lowest) to worst average rank."""
    finite = {k: v for k, v in average_ranks.items() if np.isfinite(v)}
    return sorted(finite, key=finite.get)


def category_average_ranks(average_ranks: dict[str, float],
                           categories: dict[str, tuple]) -> dict[str, float]:
    """Average the per-algorithm ranks within each category."""
    result = {}
    for category, members in categories.items():
        values = [average_ranks[m] for m in members
                  if m in average_ranks and np.isfinite(average_ranks[m])]
        result[category] = float(np.mean(values)) if values else float("nan")
    return result
