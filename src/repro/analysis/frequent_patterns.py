"""FP-growth frequent-pattern mining over best pipelines (Section 5.2).

The paper asks whether the best pipelines found across datasets share
"frequent excellent preprocessor patterns".  It mines the preprocessor sets
of the per-dataset best pipelines with FP-growth and finds no high-support
patterns.  This module implements FP-growth (Han et al., SIGMOD 2000) from
scratch so the same analysis can be reproduced.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence


@dataclass
class FPNode:
    """One node of the FP-tree: an item, its count, parent and children."""

    item: Hashable | None
    count: int = 0
    parent: "FPNode | None" = None
    children: dict = field(default_factory=dict)
    link: "FPNode | None" = None  # next node with the same item (header chain)


class FPTree:
    """FP-tree with a header table for item-chain traversal."""

    def __init__(self) -> None:
        self.root = FPNode(item=None)
        self.header: dict[Hashable, FPNode] = {}

    def insert(self, items: Sequence[Hashable], count: int = 1) -> None:
        """Insert one (ordered) transaction with multiplicity ``count``."""
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = FPNode(item=item, parent=node)
                node.children[item] = child
                # Append to the header chain for this item.
                if item in self.header:
                    tail = self.header[item]
                    while tail.link is not None:
                        tail = tail.link
                    tail.link = child
                else:
                    self.header[item] = child
            child.count += count
            node = child

    def prefix_paths(self, item: Hashable) -> list[tuple[list[Hashable], int]]:
        """Conditional pattern base: prefix paths ending at ``item``."""
        paths = []
        node = self.header.get(item)
        while node is not None:
            path = []
            parent = node.parent
            while parent is not None and parent.item is not None:
                path.append(parent.item)
                parent = parent.parent
            if path:
                paths.append((list(reversed(path)), node.count))
            node = node.link
        return paths

    def is_empty(self) -> bool:
        return not self.root.children


def _build_tree(transactions: Iterable[tuple[Sequence[Hashable], int]],
                min_count: int) -> tuple[FPTree, dict[Hashable, int]]:
    counts: dict[Hashable, int] = defaultdict(int)
    materialized = [(list(items), count) for items, count in transactions]
    for items, count in materialized:
        for item in set(items):
            counts[item] += count
    frequent = {item: c for item, c in counts.items() if c >= min_count}

    tree = FPTree()
    for items, count in materialized:
        filtered = [item for item in items if item in frequent]
        # Sort by global frequency (descending), ties broken deterministically.
        filtered.sort(key=lambda item: (-frequent[item], str(item)))
        if filtered:
            tree.insert(filtered, count)
    return tree, frequent


def _mine(tree: FPTree, frequent: dict[Hashable, int], suffix: frozenset,
          min_count: int, results: dict[frozenset, int]) -> None:
    # Process items from least to most frequent (standard FP-growth order).
    for item in sorted(frequent, key=lambda i: (frequent[i], str(i))):
        new_pattern = suffix | {item}
        results[frozenset(new_pattern)] = frequent[item]
        conditional = tree.prefix_paths(item)
        sub_tree, sub_frequent = _build_tree(conditional, min_count)
        if sub_frequent and not sub_tree.is_empty():
            _mine(sub_tree, sub_frequent, frozenset(new_pattern), min_count, results)


def fp_growth(transactions: Iterable[Iterable[Hashable]],
              min_support: float = 0.3) -> dict[frozenset, float]:
    """Mine frequent itemsets with FP-growth.

    Parameters
    ----------
    transactions:
        Iterable of item collections (duplicates within a transaction are
        ignored, matching the classical itemset setting).
    min_support:
        Minimum support as a fraction of the number of transactions.

    Returns
    -------
    Mapping from frozenset of items to support (fraction of transactions).
    """
    materialized = [list(dict.fromkeys(t)) for t in transactions]
    n_transactions = len(materialized)
    if n_transactions == 0:
        return {}
    min_count = max(1, int(np_ceil(min_support * n_transactions)))

    tree, frequent = _build_tree(((t, 1) for t in materialized), min_count)
    results: dict[frozenset, int] = {}
    if frequent:
        _mine(tree, frequent, frozenset(), min_count, results)
    return {pattern: count / n_transactions for pattern, count in results.items()}


def np_ceil(value: float) -> int:
    """Integer ceiling without importing numpy for one call."""
    integer = int(value)
    return integer if value == integer else integer + 1


def mine_pipeline_patterns(pipelines, *, min_support: float = 0.3) -> dict[frozenset, float]:
    """Mine frequent preprocessor sets from a collection of pipelines."""
    transactions = [pipeline.names() for pipeline in pipelines]
    return fp_growth(transactions, min_support=min_support)


def max_pattern_support(patterns: dict[frozenset, float], *, min_size: int = 2) -> float:
    """Highest support among patterns with at least ``min_size`` items.

    The paper's conclusion ("the support of discovered patterns is very
    low") is about multi-preprocessor patterns, hence the size filter.
    """
    supports = [s for pattern, s in patterns.items() if len(pattern) >= min_size]
    return max(supports) if supports else 0.0
