"""Surrogate-model protocol and ensemble wrapper.

Surrogate-model-based search algorithms (SMAC, TPE, Progressive NAS, BOHB)
learn a model of ``p(accuracy | pipeline)`` from the trials evaluated so
far and use it to pick the next pipeline.  The regression surrogates here
operate on the fixed-length one-hot encoding produced by
:meth:`repro.core.search_space.SearchSpace.encode`; TPE/BOHB use the
density-based :class:`~repro.surrogates.kde.CategoricalParzenEstimator`
instead.
"""

from __future__ import annotations

import numpy as np


class SurrogateRegressor:
    """Protocol for regression surrogates: ``fit(X, y)`` then ``predict(X)``."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SurrogateRegressor":
        raise NotImplementedError

    def predict(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def predict_with_std(self, X: np.ndarray):
        """Return ``(mean, std)``; the default reports zero uncertainty."""
        mean = self.predict(X)
        return mean, np.zeros_like(mean)


class EnsembleRegressor(SurrogateRegressor):
    """Average of independently trained base surrogates.

    Progressive NAS's "ensemble" variants (PME, PLE) train five surrogate
    copies on bootstrap resamples and average their predictions; the spread
    across members doubles as an uncertainty estimate.
    """

    def __init__(self, base_factory, n_members: int = 5, random_state: int = 0) -> None:
        self.base_factory = base_factory
        self.n_members = int(n_members)
        self.random_state = random_state
        self.members_: list[SurrogateRegressor] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "EnsembleRegressor":
        rng = np.random.default_rng(self.random_state)
        n_samples = X.shape[0]
        self.members_ = []
        for member_index in range(self.n_members):
            member = self.base_factory(member_index)
            if n_samples > 1:
                indices = rng.integers(0, n_samples, size=n_samples)
            else:
                indices = np.arange(n_samples)
            member.fit(X[indices], y[indices])
            self.members_.append(member)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_with_std(X)[0]

    def predict_with_std(self, X: np.ndarray):
        predictions = np.stack([member.predict(X) for member in self.members_])
        return predictions.mean(axis=0), predictions.std(axis=0)
