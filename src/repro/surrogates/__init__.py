"""Surrogate models used by the surrogate-model-based search algorithms."""

from repro.surrogates.base import EnsembleRegressor, SurrogateRegressor
from repro.surrogates.kde import CategoricalParzenEstimator, TwoDensityModel
from repro.surrogates.lstm_regressor import LSTMCell, LSTMRegressor
from repro.surrogates.mlp_regressor import MLPRegressor

__all__ = [
    "SurrogateRegressor",
    "EnsembleRegressor",
    "MLPRegressor",
    "LSTMRegressor",
    "LSTMCell",
    "CategoricalParzenEstimator",
    "TwoDensityModel",
]
