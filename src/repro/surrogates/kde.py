"""Parzen-style density estimators over the pipeline space (TPE / BOHB).

The Tree-structured Parzen Estimator does not regress accuracy on pipeline
encodings; it models two densities, ``l(x)`` over the *good* trials and
``g(x)`` over the *bad* trials, and prefers candidates maximising
``l(x) / g(x)``.  Because an Auto-FP pipeline is a variable-length sequence
of categorical choices, the densities here are products of per-position
categorical distributions (with Laplace-style smoothing towards the uniform
prior), plus a categorical distribution over the pipeline length.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import Pipeline
from repro.core.search_space import SearchSpace
from repro.exceptions import ValidationError
from repro.utils.random import check_random_state


class CategoricalParzenEstimator:
    """Smoothed per-position categorical density over pipelines.

    Parameters
    ----------
    space:
        The search space defining candidate count and maximum length.
    prior_weight:
        Weight of the uniform prior mixed into every categorical
        distribution; prevents zero probabilities when few trials exist.
    """

    def __init__(self, space: SearchSpace, prior_weight: float = 1.0) -> None:
        self.space = space
        self.prior_weight = float(prior_weight)
        self._length_counts = np.full(space.max_length, prior_weight)
        self._position_counts = np.full(
            (space.max_length, space.n_candidates), prior_weight
        )

    # ------------------------------------------------------------------ fit
    def fit(self, pipelines) -> "CategoricalParzenEstimator":
        """Re-estimate the densities from an iterable of pipelines."""
        self._length_counts = np.full(self.space.max_length, self.prior_weight)
        self._position_counts = np.full(
            (self.space.max_length, self.space.n_candidates), self.prior_weight
        )
        for pipeline in pipelines:
            self.update(pipeline)
        return self

    def update(self, pipeline: Pipeline) -> None:
        """Add one pipeline's counts to the density."""
        indices = self.space.indices_of(pipeline)
        if not 1 <= len(indices) <= self.space.max_length:
            raise ValidationError("pipeline length outside the search space bounds")
        self._length_counts[len(indices) - 1] += 1.0
        for position, candidate in enumerate(indices):
            self._position_counts[position, candidate] += 1.0

    # ------------------------------------------------------------- density
    def log_probability(self, pipeline: Pipeline) -> float:
        """Log density of ``pipeline`` under the estimator."""
        indices = self.space.indices_of(pipeline)
        length_probs = self._length_counts / self._length_counts.sum()
        log_prob = float(np.log(length_probs[len(indices) - 1]))
        for position, candidate in enumerate(indices):
            row = self._position_counts[position]
            log_prob += float(np.log(row[candidate] / row.sum()))
        return log_prob

    def sample(self, random_state=None) -> Pipeline:
        """Sample a pipeline from the estimated density."""
        rng = check_random_state(random_state)
        length_probs = self._length_counts / self._length_counts.sum()
        length = int(rng.choice(self.space.max_length, p=length_probs)) + 1
        indices = []
        for position in range(length):
            row = self._position_counts[position]
            indices.append(int(rng.choice(self.space.n_candidates, p=row / row.sum())))
        return self.space.pipeline_from_indices(indices)


class TwoDensityModel:
    """The good/bad density pair used by TPE and BOHB.

    ``refit(trials)`` splits the observed trials at the ``gamma`` quantile of
    accuracy (best ``gamma`` fraction is "good"), fits one Parzen estimator
    per group and scores candidates by ``log l(x) - log g(x)``.
    """

    def __init__(self, space: SearchSpace, gamma: float = 0.25,
                 prior_weight: float = 1.0, min_trials: int = 8) -> None:
        if not 0.0 < gamma < 1.0:
            raise ValidationError("gamma must be in (0, 1)")
        self.space = space
        self.gamma = gamma
        self.prior_weight = prior_weight
        self.min_trials = int(min_trials)
        self.good_ = CategoricalParzenEstimator(space, prior_weight)
        self.bad_ = CategoricalParzenEstimator(space, prior_weight)
        self.ready_ = False

    def refit(self, trials) -> "TwoDensityModel":
        """Refit both densities from an iterable of TrialRecords."""
        trials = list(trials)
        if len(trials) < self.min_trials:
            self.ready_ = False
            return self
        trials_sorted = sorted(trials, key=lambda t: t.accuracy, reverse=True)
        n_good = max(1, int(round(self.gamma * len(trials_sorted))))
        good = [t.pipeline for t in trials_sorted[:n_good]]
        bad = [t.pipeline for t in trials_sorted[n_good:]] or good
        self.good_ = CategoricalParzenEstimator(self.space, self.prior_weight).fit(good)
        self.bad_ = CategoricalParzenEstimator(self.space, self.prior_weight).fit(bad)
        self.ready_ = True
        return self

    def score(self, pipeline: Pipeline) -> float:
        """Expected-improvement proxy: ``log l(x) - log g(x)``."""
        return self.good_.log_probability(pipeline) - self.bad_.log_probability(pipeline)

    def suggest(self, n_candidates: int = 24, random_state=None) -> Pipeline:
        """Sample candidates from the good density and return the best-scoring one."""
        rng = check_random_state(random_state)
        if not self.ready_:
            return self.space.sample_pipeline(rng)
        candidates = [self.good_.sample(rng) for _ in range(n_candidates)]
        return max(candidates, key=self.score)
