"""LSTM regression surrogate (Progressive NAS "LSTM" variants, ENAS controller core).

A single-layer LSTM consumes the pipeline as a sequence of one-hot
preprocessor tokens and regresses the final hidden state onto the observed
validation accuracy.  Training uses truncated-free full backpropagation
through time with Adam — feasible because Auto-FP pipelines are at most a
handful of steps long.
"""

from __future__ import annotations

import numpy as np

from repro.surrogates.base import SurrogateRegressor
from repro.utils.random import check_random_state


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class LSTMCell:
    """Minimal LSTM cell with combined gate weights.

    The gate order in the stacked weight matrices is (input, forget, cell,
    output).  Exposed separately so both the LSTM regression surrogate and
    the ENAS controller can reuse it.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        self.input_size = input_size
        self.hidden_size = hidden_size
        scale = 1.0 / np.sqrt(hidden_size)
        self.W = rng.uniform(-scale, scale, size=(input_size + hidden_size, 4 * hidden_size))
        self.b = np.zeros(4 * hidden_size)
        # Forget-gate bias initialised to 1 (standard trick for stable training).
        self.b[hidden_size:2 * hidden_size] = 1.0

    def parameters(self):
        return [self.W, self.b]

    def forward(self, x: np.ndarray, h: np.ndarray, c: np.ndarray):
        """One step. Returns ``(h_new, c_new, cache)`` where cache feeds backward."""
        concat = np.concatenate([x, h])
        gates = concat @ self.W + self.b
        H = self.hidden_size
        i = _sigmoid(gates[:H])
        f = _sigmoid(gates[H:2 * H])
        g = np.tanh(gates[2 * H:3 * H])
        o = _sigmoid(gates[3 * H:])
        c_new = f * c + i * g
        h_new = o * np.tanh(c_new)
        cache = (concat, i, f, g, o, c, c_new)
        return h_new, c_new, cache

    def backward(self, dh: np.ndarray, dc: np.ndarray, cache):
        """Backprop one step.  Returns ``(dx, dh_prev, dc_prev, dW, db)``."""
        concat, i, f, g, o, c_prev, c_new = cache
        H = self.hidden_size
        tanh_c = np.tanh(c_new)
        do = dh * tanh_c
        dc_total = dc + dh * o * (1.0 - tanh_c ** 2)
        di = dc_total * g
        df = dc_total * c_prev
        dg = dc_total * i
        dc_prev = dc_total * f

        d_gates = np.empty(4 * H)
        d_gates[:H] = di * i * (1.0 - i)
        d_gates[H:2 * H] = df * f * (1.0 - f)
        d_gates[2 * H:3 * H] = dg * (1.0 - g ** 2)
        d_gates[3 * H:] = do * o * (1.0 - o)

        dW = np.outer(concat, d_gates)
        db = d_gates
        d_concat = self.W @ d_gates
        dx = d_concat[: self.input_size]
        dh_prev = d_concat[self.input_size:]
        return dx, dh_prev, dc_prev, dW, db


class LSTMRegressor(SurrogateRegressor):
    """Sequence-to-scalar LSTM surrogate.

    ``fit`` expects the inputs as *sequences of token indices* produced by
    :meth:`set_vocabulary` / :meth:`encode_sequences`, but for drop-in
    compatibility with the other surrogates it also accepts the flat one-hot
    encoding of the search space and reshapes it back into a sequence.

    Parameters
    ----------
    hidden_size:
        LSTM hidden width.
    epochs:
        Training epochs over the trial set.
    learning_rate:
        Adam step size.
    random_state:
        Seed for initialisation and shuffling.
    """

    def __init__(self, hidden_size: int = 16, epochs: int = 40,
                 learning_rate: float = 2e-2, random_state: int = 0) -> None:
        self.hidden_size = int(hidden_size)
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self.random_state = random_state
        self._block_size: int | None = None

    def set_encoding_block(self, block_size: int) -> None:
        """Tell the surrogate the per-position block width of the flat encoding."""
        self._block_size = int(block_size)

    # ------------------------------------------------------------- training
    def fit(self, X: np.ndarray, y: np.ndarray) -> "LSTMRegressor":
        sequences = self._to_sequences(np.asarray(X, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        rng = check_random_state(self.random_state)
        token_dim = sequences[0].shape[1]

        self.cell_ = LSTMCell(token_dim, self.hidden_size, rng)
        scale = 1.0 / np.sqrt(self.hidden_size)
        self.W_out_ = rng.uniform(-scale, scale, size=(self.hidden_size, 1))
        self.b_out_ = np.zeros(1)

        params = [self.cell_.W, self.cell_.b, self.W_out_, self.b_out_]
        moments = [np.zeros_like(p) for p in params]
        velocities = [np.zeros_like(p) for p in params]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        for _ in range(self.epochs):
            order = rng.permutation(len(sequences))
            for index in order:
                sequence = sequences[index]
                target = y[index]
                prediction, caches, final_h = self._forward_one(sequence)
                grad_pred = prediction - target

                dW_out = np.outer(final_h, grad_pred)
                db_out = np.array([grad_pred])
                dh = (self.W_out_ @ np.array([grad_pred])).ravel()
                dc = np.zeros(self.hidden_size)
                dW_cell = np.zeros_like(self.cell_.W)
                db_cell = np.zeros_like(self.cell_.b)
                for cache in reversed(caches):
                    _, dh, dc, dW_step, db_step = self.cell_.backward(dh, dc, cache)
                    dW_cell += dW_step
                    db_cell += db_step

                grads = [dW_cell, db_cell, dW_out, db_out]
                step += 1
                for i, param in enumerate(params):
                    grad = np.clip(grads[i], -5.0, 5.0)
                    moments[i] = beta1 * moments[i] + (1 - beta1) * grad
                    velocities[i] = beta2 * velocities[i] + (1 - beta2) * grad ** 2
                    m_hat = moments[i] / (1 - beta1 ** step)
                    v_hat = velocities[i] / (1 - beta2 ** step)
                    param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
        return self

    def _forward_one(self, sequence: np.ndarray):
        h = np.zeros(self.hidden_size)
        c = np.zeros(self.hidden_size)
        caches = []
        for token in sequence:
            h, c, cache = self.cell_.forward(token, h, c)
            caches.append(cache)
        prediction = float((h @ self.W_out_ + self.b_out_)[0])
        return prediction, caches, h

    # ------------------------------------------------------------ inference
    def predict(self, X: np.ndarray) -> np.ndarray:
        sequences = self._to_sequences(np.asarray(X, dtype=np.float64))
        return np.asarray([self._forward_one(seq)[0] for seq in sequences])

    # ------------------------------------------------------------ internals
    def _to_sequences(self, X: np.ndarray) -> list[np.ndarray]:
        """Reshape the flat per-position one-hot encoding into token sequences."""
        if X.ndim != 2:
            raise ValueError("LSTMRegressor expects a 2-D encoded design matrix")
        block = self._block_size or self._infer_block(X.shape[1])
        n_positions = X.shape[1] // block
        sequences = []
        for row in X:
            tokens = row.reshape(n_positions, block)
            # Drop trailing "empty" positions so sequence length equals pipeline length.
            lengths = [i + 1 for i in range(n_positions) if tokens[i, :-1].any()]
            length = max(lengths) if lengths else 1
            sequences.append(tokens[:length])
        return sequences

    @staticmethod
    def _infer_block(width: int) -> int:
        """Guess the per-position block size (candidates + empty marker)."""
        for block in range(2, width + 1):
            if width % block == 0:
                return block
        return width
