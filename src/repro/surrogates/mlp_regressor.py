"""Small MLP regression surrogate (Progressive NAS "MLP" variants)."""

from __future__ import annotations

import numpy as np

from repro.surrogates.base import SurrogateRegressor
from repro.utils.random import check_random_state


class MLPRegressor(SurrogateRegressor):
    """One-hidden-layer ReLU network trained with Adam on squared error.

    Deliberately tiny: the paper notes that the MLP surrogate's fitting
    overhead is "approximate to RS", which is what lets PMNE/PME evaluate
    many pipelines and rank well for the MLP downstream model.

    Parameters
    ----------
    hidden_size:
        Width of the single hidden layer.
    epochs:
        Number of full passes over the training trials.
    learning_rate:
        Adam step size.
    random_state:
        Seed for weight initialisation and shuffling.
    """

    def __init__(self, hidden_size: int = 32, epochs: int = 100,
                 learning_rate: float = 1e-2, random_state: int = 0) -> None:
        self.hidden_size = int(hidden_size)
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self.random_state = random_state

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPRegressor":
        rng = check_random_state(self.random_state)
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        n_samples, n_features = X.shape

        limit1 = np.sqrt(6.0 / (n_features + self.hidden_size))
        limit2 = np.sqrt(6.0 / (self.hidden_size + 1))
        self.W1_ = rng.uniform(-limit1, limit1, size=(n_features, self.hidden_size))
        self.b1_ = np.zeros(self.hidden_size)
        self.W2_ = rng.uniform(-limit2, limit2, size=(self.hidden_size, 1))
        self.b2_ = np.zeros(1)

        params = [self.W1_, self.b1_, self.W2_, self.b2_]
        moments = [np.zeros_like(p) for p in params]
        velocities = [np.zeros_like(p) for p in params]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        for _ in range(self.epochs):
            order = rng.permutation(n_samples)
            hidden = np.maximum(X[order] @ self.W1_ + self.b1_, 0.0)
            predictions = (hidden @ self.W2_ + self.b2_).ravel()
            residuals = predictions - y[order]

            grad_out = residuals[:, None] / n_samples
            grads = [None, None, None, None]
            grads[2] = hidden.T @ grad_out
            grads[3] = grad_out.sum(axis=0)
            delta_hidden = (grad_out @ self.W2_.T) * (hidden > 0.0)
            grads[0] = X[order].T @ delta_hidden
            grads[1] = delta_hidden.sum(axis=0)

            step += 1
            for i, param in enumerate(params):
                moments[i] = beta1 * moments[i] + (1 - beta1) * grads[i]
                velocities[i] = beta2 * velocities[i] + (1 - beta2) * grads[i] ** 2
                m_hat = moments[i] / (1 - beta1 ** step)
                v_hat = velocities[i] / (1 - beta2 ** step)
                param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        hidden = np.maximum(X @ self.W1_ + self.b1_, 0.0)
        return (hidden @ self.W2_ + self.b2_).ravel()
