"""Evaluation tasks: the unit of work the execution engine dispatches.

An :class:`EvalTask` bundles everything one pipeline evaluation needs —
the pipeline specification, the fidelity, and the bookkeeping fields
(``pick_time``, ``iteration``) that end up verbatim in the resulting
:class:`~repro.core.result.TrialRecord`.  Tasks are immutable and
picklable so every backend (threads, processes) can ship them to workers
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import Pipeline
from repro.exceptions import ValidationError


@dataclass(frozen=True)
class EvalTask:
    """One pipeline evaluation request.

    Attributes
    ----------
    pipeline:
        The pipeline specification to evaluate.
    fidelity:
        Fraction of the training rows used, in ``(0, 1]``.
    pick_time:
        Seconds the search algorithm spent choosing this pipeline; copied
        into the resulting trial record for the bottleneck analysis.
    iteration:
        Search-iteration index, copied into the resulting trial record.
    """

    pipeline: Pipeline
    fidelity: float = 1.0
    pick_time: float = 0.0
    iteration: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.fidelity <= 1.0:
            raise ValidationError(
                f"fidelity must be in (0, 1], got {self.fidelity}"
            )
