"""Parallel execution engine: pluggable backends for batch evaluation.

The paper's bottleneck analysis (Section 5.3) shows Auto-FP search is
evaluation-bound, and most search algorithms produce whole batches of
independent evaluations (population generations, successive-halving rungs,
random batches).  This subsystem executes such batches — and whole
experiment grids — on a pluggable backend:

* :class:`~repro.engine.backends.SerialBackend` — inline execution, the
  deterministic reference;
* :class:`~repro.engine.backends.ThreadBackend` — a thread pool, sharing
  the evaluator's memory;
* :class:`~repro.engine.backends.ProcessBackend` — a process pool for true
  CPU parallelism;
* :class:`~repro.engine.remote.RemoteBackend` — a coordinator serving
  registered ``repro worker`` daemons, possibly on other machines, with
  heartbeat failure detection and the shared persistent eval cache as
  the cross-machine result substrate.

All backends preserve task order and the engine merges results back into
the evaluator's memoization cache, so every backend produces bit-for-bit
identical search results.  Besides the batch API (:meth:`ExecutionEngine.run`),
a futures layer (:meth:`ExecutionEngine.submit_tasks` /
:meth:`ExecutionEngine.as_completed`) yields results per *completion* —
the substrate of the completion-driven search driver
(:mod:`repro.search.async_driver`).  See :mod:`repro.engine.engine` for
the dispatch logic and :func:`resolve_engine` for CLI-style option
handling.

Execution is fault tolerant: :mod:`repro.engine.faults` defines the
failure taxonomy and :class:`~repro.engine.faults.RetryPolicy`, the
backends recover from worker crashes and enforce evaluation deadlines,
and :mod:`repro.engine.chaos` provides a deterministic fault-injection
harness (:class:`~repro.engine.chaos.ChaosBackend` +
:class:`~repro.engine.chaos.FaultPlan`) that makes every recovery path
reproducibly testable.
"""

from repro.engine.backends import (
    BACKEND_CLASSES,
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    SerialFuture,
    ThreadBackend,
    default_worker_count,
    make_backend,
)
from repro.engine.chaos import ChaosBackend, FaultPlan
from repro.engine.engine import (
    ExecutionEngine,
    PendingTask,
    resolve_backend_name,
    resolve_engine,
)
from repro.engine.remote import (
    Coordinator,
    RemoteBackend,
    RemoteWorker,
    start_loopback,
)
from repro.engine.faults import (
    FAILURE_KIND_CRASH,
    FAILURE_KIND_TIMEOUT,
    EvaluationTimeoutError,
    InjectedFault,
    RetryPolicy,
    TransientEvaluationError,
    WorkerCrashError,
    classify_failure,
    is_transient,
)
from repro.engine.tasks import EvalTask

__all__ = [
    "EvalTask",
    "ExecutionBackend",
    "SerialBackend",
    "SerialFuture",
    "ThreadBackend",
    "ProcessBackend",
    "RemoteBackend",
    "RemoteWorker",
    "Coordinator",
    "start_loopback",
    "ChaosBackend",
    "PendingTask",
    "BACKEND_CLASSES",
    "BACKEND_NAMES",
    "default_worker_count",
    "make_backend",
    "ExecutionEngine",
    "resolve_backend_name",
    "resolve_engine",
    "FaultPlan",
    "InjectedFault",
    "RetryPolicy",
    "WorkerCrashError",
    "TransientEvaluationError",
    "EvaluationTimeoutError",
    "FAILURE_KIND_CRASH",
    "FAILURE_KIND_TIMEOUT",
    "classify_failure",
    "is_transient",
]
