"""Worker side of the remote backend: lease, evaluate, stream back.

A :class:`RemoteWorker` connects to a coordinator, registers its core
count, then serves ``task`` messages on a local thread pool while a
daemon thread emits heartbeats.  Evaluation mirrors the process
backend's worker function: unwrap chaos faults, apply them
(:func:`~repro.engine.faults.apply_fault_in_worker`), evaluate
uncached, and attach the prefix-cache counter delta under
``METRICS_DELTA_KEY`` so the coordinator-side evaluator can absorb
worker counters exactly as it does for process pools.

Two behaviours are remote-specific:

* **Shared result substrate** — the worker re-opens the evaluator's
  ``PersistentEvalCache`` (same root, same fingerprint) after
  unpickling, checks it before evaluating and publishes entries after,
  so results are deduplicated across every machine that mounts the
  cache root.
* **Crash faults** — a chaos ``crash`` fault normally calls
  ``os._exit`` like a process-pool worker; in-thread loopback workers
  (tests) set ``crash_mode="disconnect"`` and instead slam the socket
  shut without a goodbye, which the coordinator observes as the same
  ungraceful death.
"""

from __future__ import annotations

import logging
import os
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.evaluation import METRICS_DELTA_KEY
from repro.engine.faults import (
    CRASH_EXIT_CODE,
    WorkerCrashError,
    apply_fault_in_worker,
    is_transient,
    unwrap_work_item,
)
from repro.engine.remote.protocol import (
    PROTOCOL_VERSION,
    RemoteProtocolError,
    dump_blob,
    load_blob,
    parse_address,
    read_message,
    send_message,
)
from repro.io.evalcache import open_eval_cache

log = logging.getLogger(__name__)


class RemoteWorker:
    """One worker daemon serving evaluations for a coordinator.

    Parameters
    ----------
    address:
        Coordinator ``"host:port"`` spec (or ``(host, port)`` pair).
    cores:
        Concurrent evaluation slots to advertise and serve (>= 1).
    connect_timeout:
        Total seconds to keep retrying the initial connection — workers
        routinely boot before their coordinator.
    crash_mode:
        ``"exit"`` (default, subprocess daemons): a chaos crash fault
        calls ``os._exit(CRASH_EXIT_CODE)``.  ``"disconnect"``
        (in-thread loopback workers): the fault abruptly closes the
        socket instead, producing the identical ungraceful-death
        observation coordinator-side without killing the test process.
    """

    def __init__(self, address, *, cores=1, connect_timeout=10.0,
                 crash_mode="exit"):
        if crash_mode not in ("exit", "disconnect"):
            raise ValueError(
                f"crash_mode must be 'exit' or 'disconnect', "
                f"got {crash_mode!r}")
        self.address = parse_address(address)
        self.cores = max(1, int(cores))
        self.connect_timeout = float(connect_timeout)
        self.crash_mode = crash_mode
        self.worker_id = None
        self._sock = None
        self._send_lock = threading.Lock()
        self._stop = threading.Event()
        self._evaluators: dict = {}
        self._disk_caches: dict = {}
        self._thread = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> threading.Thread:
        """Run :meth:`run` on a daemon thread (loopback/test workers)."""
        thread = threading.Thread(target=self.run, daemon=True,
                                  name="repro-remote-worker")
        self._thread = thread
        thread.start()
        return thread

    def stop(self, timeout: float = 5.0) -> None:
        """Ask a started worker to exit and wait for its thread."""
        self._stop.set()
        sock = self._sock
        if sock is not None:
            _close_quietly(sock)
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def run(self) -> int:
        """Serve until shutdown/EOF/stop; returns a process exit code."""
        try:
            sock = self._connect()
        except OSError as error:
            log.error("could not reach coordinator at %s:%d: %s",
                      self.address[0], self.address[1], error)
            return 1
        self._sock = sock
        rfile = sock.makefile("rb")
        graceful = False
        pool = ThreadPoolExecutor(
            max_workers=self.cores, thread_name_prefix="repro-remote-eval")
        try:
            self._send({"type": "register", "cores": self.cores,
                        "pid": os.getpid(), "version": PROTOCOL_VERSION})
            reply = read_message(rfile)
            if reply is None or reply.get("type") != "registered":
                log.error("coordinator refused registration: %r", reply)
                return 1
            self.worker_id = reply.get("worker_id")
            interval = float(reply.get("heartbeat_interval", 1.0))
            heartbeat = threading.Thread(
                target=self._heartbeat_loop, args=(interval,), daemon=True,
                name="repro-remote-heartbeat")
            heartbeat.start()
            log.info("worker %s registered with %s:%d (%d core(s))",
                     self.worker_id, self.address[0], self.address[1],
                     self.cores)
            while not self._stop.is_set():
                try:
                    message = read_message(rfile)
                except RemoteProtocolError as error:
                    log.error("coordinator sent garbage: %s", error)
                    break
                if message is None:
                    break  # coordinator gone
                kind = message.get("type")
                if kind == "evaluator":
                    self._install_evaluator(message)
                elif kind == "task":
                    pool.submit(self._run_task, message)
                elif kind == "shutdown":
                    graceful = True
                    break
                else:
                    log.warning("unknown message type %r from coordinator",
                                kind)
        except OSError as error:
            log.warning("connection to coordinator lost: %s", error)
        finally:
            self._stop.set()
            pool.shutdown(wait=True)
            if graceful:
                try:
                    self._send({"type": "goodbye"})
                except OSError:
                    log.debug("goodbye send failed", exc_info=True)
            _close_quietly(sock, rfile)
        return 0

    def _connect(self) -> socket.socket:
        """Bounded connection retry: workers may boot first."""
        host, port = self.address
        poll = 0.2
        attempts = max(1, int(self.connect_timeout / poll))
        last_error = None
        for attempt in range(attempts):
            try:
                sock = socket.create_connection((host, port), timeout=5.0)
            except OSError as error:
                last_error = error
            else:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                sock.settimeout(None)
                return sock
            if attempt + 1 < attempts and self._stop.wait(poll):
                break
        raise OSError(
            f"coordinator at {host}:{port} unreachable after "
            f"{self.connect_timeout:.1f}s"
        ) from last_error

    def _heartbeat_loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            try:
                self._send({"type": "heartbeat"})
            except OSError:
                log.debug("heartbeat send failed; connection is gone")
                return

    def _send(self, payload: dict) -> None:
        with self._send_lock:
            send_message(self._sock, payload)

    # -- evaluation ------------------------------------------------------

    def _install_evaluator(self, message: dict) -> None:
        fingerprint = message["fingerprint"]
        evaluator = load_blob(message["blob"])
        disk = None
        if evaluator.cache_enabled and evaluator.cache_dir is not None:
            # attach to the shared result substrate: same root + same
            # fingerprint as every other worker and the coordinator
            disk = open_eval_cache(evaluator.cache_dir,
                                   evaluator.fingerprint(),
                                   max_index_entries=evaluator.cache_size)
        self._evaluators[fingerprint] = evaluator
        self._disk_caches[fingerprint] = disk
        log.info("installed evaluator %s (shared cache: %s)",
                 fingerprint[:12], "yes" if disk is not None else "no")

    def _run_task(self, message: dict) -> None:
        task_id = message.get("task_id")
        try:
            evaluator = self._evaluators.get(message.get("fingerprint"))
            if evaluator is None:
                raise WorkerCrashError(
                    "task arrived before its evaluator snapshot")
            item = load_blob(message["item"])
            pair, fault = unwrap_work_item(item)
            if fault is not None:
                self._apply_fault(fault)
            start = time.monotonic()
            entry = self._evaluate(evaluator, message.get("fingerprint"),
                                   pair)
            deadline = message.get("eval_timeout")
            if deadline is not None and time.monotonic() - start > deadline:
                # soft deadline, same semantics as the local backends:
                # the work completed but took too long to count
                self._send({"type": "error", "task_id": task_id,
                            "error": "EvaluationTimeoutError",
                            "message": f"evaluation exceeded soft deadline "
                                       f"of {deadline}s",
                            "transient": False})
                return
            self._send({"type": "result", "task_id": task_id,
                        "entry": dump_blob(entry)})
        except Exception as error:  # relayed, never silently dropped
            try:
                self._send({"type": "error", "task_id": task_id,
                            "error": type(error).__name__,
                            "message": str(error),
                            "transient": bool(is_transient(error))})
            except OSError:
                # socket already gone (chaos disconnect / coordinator
                # death): nothing to report to, the coordinator's
                # heartbeat machinery owns this failure now
                log.debug("error relay for task %r failed", task_id)

    def _apply_fault(self, fault) -> None:
        if fault.kind == "crash":
            if self.crash_mode == "exit":
                os._exit(CRASH_EXIT_CODE)
            log.info("chaos: worker %s dropping its connection",
                     self.worker_id)
            self._stop.set()
            _close_quietly(self._sock)
            raise WorkerCrashError("chaos: worker dropped its connection")
        apply_fault_in_worker(fault)

    def _evaluate(self, evaluator, fingerprint, pair) -> dict:
        pipeline, fidelity = pair
        disk = self._disk_caches.get(fingerprint)
        key = evaluator.cache_key(pipeline, fidelity)
        if disk is not None:
            cached = disk.get(key)
            if cached is not None:
                return cached
        cache = evaluator.prefix_cache
        if cache is None:
            entry = evaluator._evaluate_uncached(pipeline, fidelity)
            published = entry
        else:
            before = cache.counters()
            entry = dict(evaluator._evaluate_uncached(pipeline, fidelity))
            published = dict(entry)
            delta = cache.counters_since(before)
            if delta:
                entry[METRICS_DELTA_KEY] = {
                    f"prefix.{name}": value for name, value in delta.items()
                }
        if disk is not None and published.get("failure_kind") is None:
            # publish without the per-run metrics delta: the substrate
            # stores results, counters belong to whoever evaluated
            disk.put(key, published)
        return entry


def _close_quietly(sock, rfile=None) -> None:
    if rfile is not None:
        try:
            rfile.close()
        except OSError:
            log.debug("rfile close failed", exc_info=True)
    if sock is None:
        return
    try:
        sock.close()
    except OSError:
        log.debug("socket close failed", exc_info=True)
