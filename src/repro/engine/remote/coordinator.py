"""Coordinator side of the remote backend: membership, leases, liveness.

The :class:`Coordinator` is pure transport and membership — it accepts
worker connections, ships pickled evaluator snapshots once per
(worker, fingerprint), leases work items up to each worker's advertised
core count, and resolves one :class:`concurrent.futures.Future` per
task.  It deliberately contains **no retry logic**: a dead worker's
in-flight tasks fail with :class:`WorkerCrashError`, and the
:class:`~repro.engine.remote.backend.RemoteBackend` wrapper feeds those
through the exact PR-9 ``RetryPolicy`` / quarantine machinery that the
process backend uses, so recovery semantics (poison-task isolation,
budget refunds, bit-for-bit surviving records) are shared, not
reimplemented.

Death detection is two-channel: a monitor thread declares any worker
dead whose last message is older than ``worker_timeout`` (missed
heartbeats), and a reader thread declares death on EOF without a
``goodbye``.  Both channels funnel into one handler that increments
``engine.worker_heartbeat_misses`` and ``engine.worker_crashes`` once
per death event, fails the worker's leased tasks, and re-pumps the
queue onto the survivors.
"""

from __future__ import annotations

import logging
import socket
import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError

from repro.engine.faults import (
    EvaluationTimeoutError,
    TransientEvaluationError,
    WorkerCrashError,
)
from repro.engine.remote.protocol import (
    PROTOCOL_VERSION,
    RemoteProtocolError,
    dump_blob,
    load_blob,
    read_message,
    send_message,
)
from repro.exceptions import ReproError, ValidationError
from repro.telemetry.metrics import get_registry

log = logging.getLogger(__name__)

#: seconds without any message before a worker is declared dead
DEFAULT_WORKER_TIMEOUT = 10.0

#: worker-raised exception types reconstructed coordinator-side by name,
#: so the backend's retry envelope sees the same taxonomy as local pools
_ERROR_TYPES = {
    "WorkerCrashError": WorkerCrashError,
    "TransientEvaluationError": TransientEvaluationError,
    "EvaluationTimeoutError": EvaluationTimeoutError,
}


class RemoteTaskError(ReproError):
    """A non-transient evaluation failure relayed from a remote worker.

    The original exception type lives in the worker process; its name
    and message are carried in the error text.  Non-transient means the
    retry machinery must *not* touch it — it propagates to the caller
    exactly like the original exception would from a local backend.
    """


class _WorkerLink:
    """Coordinator-side state of one connected worker."""

    __slots__ = ("worker_id", "sock", "rfile", "send_lock", "cores", "pid",
                 "address", "last_seen", "leased", "fingerprints")

    def __init__(self, worker_id, sock, rfile, *, cores, pid, address):
        self.worker_id = worker_id
        self.sock = sock
        self.rfile = rfile
        # named send_lock, not _lock: it serialises socket writes only
        self.send_lock = threading.Lock()
        self.cores = cores
        self.pid = pid
        self.address = address
        self.last_seen = time.monotonic()
        self.leased: set = set()
        self.fingerprints: set = set()


class _TaskState:
    """One submitted work item: queue entry, lease owner, result future."""

    __slots__ = ("task_id", "fingerprint", "item", "future", "worker_id",
                 "eval_timeout")

    def __init__(self, task_id, fingerprint, item, future, eval_timeout):
        self.task_id = task_id
        self.fingerprint = fingerprint
        self.item = item
        self.future = future
        self.worker_id = None
        self.eval_timeout = eval_timeout


class Coordinator:
    """Accepts workers, leases tasks, detects death, resolves futures.

    Parameters
    ----------
    bind:
        ``(host, port)`` to listen on; port 0 picks an ephemeral port
        (read the final address back from :attr:`address`).
    worker_timeout:
        Seconds of silence after which a worker is declared dead and its
        in-flight tasks fail with :class:`WorkerCrashError`.
    on_worker_death:
        Optional callback ``(worker_id, lost_fingerprints)`` invoked on
        every *ungraceful* death — the backend uses it for `last_crash`.
    """

    def __init__(self, bind=("127.0.0.1", 0), *, worker_timeout=None,
                 on_worker_death=None):
        timeout = (DEFAULT_WORKER_TIMEOUT if worker_timeout is None
                   else float(worker_timeout))
        if timeout <= 0:
            raise ValidationError(
                f"worker_timeout must be positive, got {worker_timeout!r}"
            )
        self.worker_timeout = timeout
        self._on_worker_death = on_worker_death
        self._lock = threading.Lock()
        self._membership = threading.Condition(self._lock)
        self._workers: dict = {}
        self._tasks: dict = {}
        self._queue: deque = deque()
        self._evaluator_blobs: dict = {}
        self._next_worker_id = 0
        self._next_task_id = 0
        self._closing = False
        self._stop = threading.Event()
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(tuple(bind))
        server.listen(64)
        self._server = server
        self._address = server.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="repro-remote-accept"
        )
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, daemon=True, name="repro-remote-monitor"
        )
        self._accept_thread.start()
        self._monitor_thread.start()

    # -- public surface -------------------------------------------------

    @property
    def address(self) -> tuple:
        """``(host, port)`` the coordinator is actually listening on."""
        return self._address

    @property
    def worker_count(self) -> int:
        """Number of live registered workers."""
        with self._lock:
            return len(self._workers)

    @property
    def total_cores(self) -> int:
        """Sum of advertised core counts over the live worker pool."""
        with self._lock:
            return sum(link.cores for link in self._workers.values())

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> bool:
        """Block until ``count`` workers are registered; False on timeout."""
        deadline = time.monotonic() + timeout
        with self._membership:
            while len(self._workers) < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._membership.wait(remaining)
        return True

    def submit(self, evaluator, item, *, eval_timeout=None) -> _TaskState:
        """Queue one work item; the returned state's ``.future`` resolves
        to the entry dict, or to an exception from ``_ERROR_TYPES`` /
        :class:`RemoteTaskError`.  Tasks queue while no worker is
        connected and dispatch as soon as one registers (elasticity)."""
        fingerprint = evaluator.fingerprint()
        blob = None
        if fingerprint not in self._evaluator_blobs:
            # pickle outside the lock: snapshots can be large
            blob = dump_blob(evaluator)
        future: Future = Future()
        with self._lock:
            if self._closing:
                raise WorkerCrashError("coordinator is closed")
            if blob is not None and fingerprint not in self._evaluator_blobs:
                self._evaluator_blobs[fingerprint] = blob
            task_id = self._next_task_id
            self._next_task_id += 1
            state = _TaskState(task_id, fingerprint, item, future, eval_timeout)
            self._tasks[task_id] = state
            self._queue.append(state)
        self._pump()
        return state

    def discard(self, state: _TaskState) -> None:
        """Forget a task (deadline expiry): a late result is dropped."""
        with self._lock:
            removed = self._tasks.pop(state.task_id, None)
            if removed is None:
                return
            if state in self._queue:
                self._queue.remove(state)
            link = self._workers.get(state.worker_id)
            if link is not None:
                link.leased.discard(state.task_id)

    def drop_worker(self, worker_id=None):
        """Forcibly disconnect a worker (chaos ``drop_worker`` fault).

        Picks the lowest live ``worker_id`` when none is given so a
        seeded fault plan is deterministic.  The worker sees its socket
        close; the coordinator runs the full ungraceful-death path
        (crash counters, leased-task failure, re-pump).  Returns the
        dropped id, or None (with a warning) when the pool is empty.
        """
        with self._lock:
            if worker_id is None:
                worker_id = min(self._workers) if self._workers else None
            victim = self._workers.get(worker_id)
        if victim is None:
            log.warning("drop_worker: no live worker to drop")
            return None
        log.info("chaos: dropping worker %d", victim.worker_id)
        self._remove_worker(victim, graceful=False)
        return victim.worker_id

    def close(self) -> None:
        """Shut down: signal workers, fail the queue, stop all threads."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            links = list(self._workers.values())
            pending = list(self._queue)
            self._queue.clear()
        self._stop.set()
        try:
            self._server.close()
        except OSError:  # pragma: no cover - close on a dead socket
            log.debug("server socket close failed", exc_info=True)
        for link in links:
            try:
                with link.send_lock:
                    send_message(link.sock, {"type": "shutdown"})
            except OSError:
                log.debug("shutdown notice to worker %d failed",
                          link.worker_id)
        for state in pending:
            if not state.future.cancel():
                self._fail_task(state, WorkerCrashError(
                    "coordinator closed with this task queued"))
        for link in links:
            self._remove_worker(link, graceful=True)
        self._monitor_thread.join(timeout=1.0)

    # -- dispatch --------------------------------------------------------

    def _pump(self) -> None:
        """Lease queued tasks onto free capacity until neither remains."""
        while True:
            with self._lock:
                assignment = self._next_assignment_locked()
                if assignment is None:
                    return
                link, state, need_evaluator = assignment
                blob = (self._evaluator_blobs[state.fingerprint]
                        if need_evaluator else None)
            messages = []
            if blob is not None:
                messages.append({"type": "evaluator",
                                 "fingerprint": state.fingerprint,
                                 "blob": blob})
            task_message = {"type": "task", "task_id": state.task_id,
                            "fingerprint": state.fingerprint,
                            "item": dump_blob(state.item)}
            if state.eval_timeout is not None:
                task_message["eval_timeout"] = state.eval_timeout
            messages.append(task_message)
            try:
                with link.send_lock:
                    for message in messages:
                        send_message(link.sock, message)
            except OSError:
                # the dead-worker path fails this lease with a
                # WorkerCrashError, which the backend retries elsewhere
                self._remove_worker(link, graceful=False)

    def _next_assignment_locked(self):
        """Pop the next (worker, task) pair, or None when nothing fits.

        Least-loaded worker first, ties to the lowest worker_id, so
        dispatch order is a pure function of membership + queue state.
        """
        while self._queue:
            candidates = [link for link in self._workers.values()
                          if len(link.leased) < link.cores]
            if not candidates:
                return None
            link = min(candidates,
                       key=lambda l: (len(l.leased), l.worker_id))
            state = self._queue.popleft()
            if not state.future.set_running_or_notify_cancel():
                # cancelled while queued (budget refund): drop silently
                self._tasks.pop(state.task_id, None)
                continue
            state.worker_id = link.worker_id
            link.leased.add(state.task_id)
            need_evaluator = state.fingerprint not in link.fingerprints
            if need_evaluator:
                link.fingerprints.add(state.fingerprint)
            return link, state, need_evaluator
        return None

    # -- connection handling --------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, address = self._server.accept()
            except OSError:
                return  # server socket closed: shutting down
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(
                target=self._serve_connection, args=(sock, address),
                daemon=True, name="repro-remote-reader",
            ).start()

    def _serve_connection(self, sock, address) -> None:
        rfile = sock.makefile("rb")
        try:
            message = read_message(rfile)
        except RemoteProtocolError as error:
            log.warning("rejecting connection from %s: %s", address, error)
            message = None
        if message is None or message.get("type") != "register":
            _close_quietly(sock, rfile)
            return
        cores = max(1, int(message.get("cores", 1)))
        heartbeat_interval = max(0.05, self.worker_timeout / 3.0)
        with self._lock:
            if self._closing:
                register_ok = False
            else:
                register_ok = True
                worker_id = self._next_worker_id
                self._next_worker_id += 1
                link = _WorkerLink(worker_id, sock, rfile, cores=cores,
                                   pid=message.get("pid"), address=address)
                self._workers[worker_id] = link
                live = len(self._workers)
                self._membership.notify_all()
        if not register_ok:
            _close_quietly(sock, rfile)
            return
        get_registry().gauge("engine.remote_workers").set(live)
        log.info("worker %d registered: %d core(s), pid %s, from %s",
                 worker_id, cores, message.get("pid"), address)
        try:
            with link.send_lock:
                send_message(sock, {"type": "registered",
                                    "worker_id": worker_id,
                                    "heartbeat_interval": heartbeat_interval,
                                    "version": PROTOCOL_VERSION})
        except OSError:
            self._remove_worker(link, graceful=False)
            return
        self._pump()
        self._reader_loop(link)

    def _reader_loop(self, link: _WorkerLink) -> None:
        graceful = False
        while True:
            try:
                message = read_message(link.rfile)
            except RemoteProtocolError as error:
                log.warning("worker %d sent garbage, dropping it: %s",
                            link.worker_id, error)
                break
            if message is None:
                break  # EOF without goodbye: ungraceful
            with self._lock:
                link.last_seen = time.monotonic()
            kind = message.get("type")
            if kind == "heartbeat":
                continue
            if kind == "result":
                self._handle_result(link, message)
            elif kind == "error":
                self._handle_error(link, message)
            elif kind == "goodbye":
                graceful = True
                break
            else:
                log.warning("unknown message type %r from worker %d",
                            kind, link.worker_id)
        self._remove_worker(link, graceful=graceful)

    def _handle_result(self, link: _WorkerLink, message: dict) -> None:
        state = self._finish(link, message.get("task_id"))
        if state is None:
            return  # late result for a discarded/expired task
        try:
            entry = load_blob(message["entry"])
        except Exception as error:  # pickle layer: anything can surface
            log.warning("undecodable result from worker %d: %s",
                        link.worker_id, error)
            self._fail_task(state, TransientEvaluationError(
                f"worker {link.worker_id} returned an undecodable entry: "
                f"{error}"))
        else:
            try:
                state.future.set_result(entry)
            except InvalidStateError:
                log.debug("task %d already resolved", state.task_id)
        self._pump()

    def _handle_error(self, link: _WorkerLink, message: dict) -> None:
        state = self._finish(link, message.get("task_id"))
        if state is None:
            return
        name = str(message.get("error", "Exception"))
        text = str(message.get("message", ""))
        exc_type = _ERROR_TYPES.get(name)
        if exc_type is not None:
            error = exc_type(text or name)
        elif message.get("transient"):
            error = TransientEvaluationError(f"{name}: {text}")
        else:
            error = RemoteTaskError(
                f"evaluation failed on worker {link.worker_id}: "
                f"{name}: {text}")
        self._fail_task(state, error)
        self._pump()

    def _finish(self, link: _WorkerLink, task_id):
        """Release a lease and claim its task state; None when unknown."""
        with self._lock:
            link.leased.discard(task_id)
            return self._tasks.pop(task_id, None)

    # -- death -----------------------------------------------------------

    def _monitor_loop(self) -> None:
        interval = max(0.05, min(1.0, self.worker_timeout / 4.0))
        while not self._stop.wait(interval):
            now = time.monotonic()
            with self._lock:
                stale = [link for link in self._workers.values()
                         if now - link.last_seen > self.worker_timeout]
            for link in stale:
                log.warning("worker %d missed heartbeats for > %.1fs, "
                            "declaring it dead", link.worker_id,
                            self.worker_timeout)
                self._remove_worker(link, graceful=False)

    def _remove_worker(self, link: _WorkerLink, *, graceful: bool) -> None:
        """Single funnel for every departure: goodbye, EOF, heartbeat
        deadline, forced drop, coordinator close."""
        with self._lock:
            if self._workers.get(link.worker_id) is not link:
                return  # another thread already removed it
            del self._workers[link.worker_id]
            graceful = graceful or self._closing
            victims = [self._tasks.pop(task_id)
                       for task_id in sorted(link.leased)
                       if task_id in self._tasks]
            link.leased.clear()
            live = len(self._workers)
            self._membership.notify_all()
        get_registry().gauge("engine.remote_workers").set(live)
        if graceful:
            log.info("worker %d left (%d live)", link.worker_id, live)
        else:
            # one death event == one miss + one crash, whichever channel
            # noticed first (monitor deadline or reader EOF)
            get_registry().counter("engine.worker_heartbeat_misses").inc()
            get_registry().counter("engine.worker_crashes").inc()
            log.warning("worker %d died with %d task(s) in flight "
                        "(%d live)", link.worker_id, len(victims), live)
            callback = self._on_worker_death
            if callback is not None:
                callback(link.worker_id,
                         [state.fingerprint for state in victims])
        _close_quietly(link.sock, link.rfile)
        for state in victims:
            self._fail_task(state, WorkerCrashError(
                f"worker {link.worker_id} died with this task in flight"))
        self._pump()

    def _fail_task(self, state: _TaskState, error: Exception) -> None:
        try:
            state.future.set_exception(error)
        except InvalidStateError:
            log.debug("task %d already resolved", state.task_id)


def _close_quietly(sock, rfile=None) -> None:
    if rfile is not None:
        try:
            rfile.close()
        except OSError:
            log.debug("rfile close failed", exc_info=True)
    try:
        sock.close()
    except OSError:
        log.debug("socket close failed", exc_info=True)
