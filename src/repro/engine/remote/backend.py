"""The ``"remote"`` execution backend: evaluations over a worker fleet.

:class:`RemoteBackend` is the fourth :class:`ExecutionBackend`.  It owns
an in-process :class:`~repro.engine.remote.coordinator.Coordinator` that
workers (``repro worker`` daemons, possibly on other machines) register
with, and dispatches every evaluation through it.  The recovery story is
the process backend's, verbatim: each submitted evaluation is wrapped in
a :class:`_RemoteEvalFuture` that owns the task's retry/deadline state,
resolves infrastructure failures (a dead worker's
:class:`WorkerCrashError`) through the backend's
:class:`~repro.engine.faults.RetryPolicy`, quarantines poison tasks as
``failure_kind="worker_crash"`` entries, and scores blown deadlines as
``failure_kind="timeout"`` — so surviving records of a crash-and-recover
run are bit-for-bit identical to a no-fault run, exactly as on one box.

Capacity is *elastic*: ``n_workers`` is a property computed from the
live fleet (sum of advertised cores), so the engine's LPT heuristic and
the async driver's in-flight depth track workers joining and leaving
mid-search.  With no worker connected the backend reports capacity 1
and submitted tasks simply queue until one registers.

Known follow-up (documented in ROADMAP): workers are not respawned by
the coordinator — a sticky ``crash`` chaos fault can exhaust the fleet.
Operators restart workers; elastic membership folds them back in.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    Future,
    wait,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError

from repro.engine.backends import (
    ExecutionBackend,
    _trace_retry,
    _validate_eval_timeout,
)
from repro.engine.faults import (
    FAILURE_KIND_CRASH,
    FAILURE_KIND_TIMEOUT,
    TRANSIENT_ERROR_TYPES,
    EvaluationTimeoutError,
    RetryPolicy,
    failure_entry,
    strip_fault,
)
from repro.engine.remote.coordinator import Coordinator
from repro.engine.remote.protocol import format_address, parse_address
from repro.exceptions import ValidationError
from repro.telemetry.metrics import get_registry

#: default coordinator bind: loopback, ephemeral port
DEFAULT_COORDINATOR = "127.0.0.1:0"


class _RemoteEvalFuture:
    """Future for one remotely dispatched evaluation.

    The remote twin of ``_RecoveringEvalFuture``: wraps the
    coordinator's transport future and owns retry/deadline state, so
    :meth:`result` never raises on an infrastructure failure — a dead
    worker resolves to a retried attempt or a ``failure_kind`` entry.
    The deadline covers queue time plus run time, measured from
    submission.
    """

    __slots__ = ("_backend", "_evaluator", "_item", "_state", "_inner",
                 "_attempt", "_deadline", "_entry", "_user_cancelled",
                 "__weakref__")

    def __init__(self, backend, evaluator, item) -> None:
        self._backend = backend
        self._evaluator = evaluator
        self._item = item
        self._attempt = 1
        self._entry = None
        self._user_cancelled = False
        self._state = backend._coordinator.submit(
            evaluator, item, eval_timeout=backend.eval_timeout)
        self._inner = self._state.future
        self._reset_deadline()

    def _reset_deadline(self) -> None:
        timeout = self._backend.eval_timeout
        self._deadline = (None if timeout is None
                          else time.monotonic() + timeout)

    def _remaining(self) -> float | None:
        if self._deadline is None:
            return None
        return self._deadline - time.monotonic()

    def done(self) -> bool:
        if self._entry is not None or self._inner.done():
            return True
        remaining = self._remaining()
        return remaining is not None and remaining <= 0

    def cancel(self) -> bool:
        cancelled = self._inner.cancel()
        if cancelled:
            self._user_cancelled = True
            self._backend._coordinator.discard(self._state)
        return cancelled

    def cancelled(self) -> bool:
        return self._user_cancelled

    def running(self) -> bool:
        return self._entry is None and self._inner.running()

    def result(self, timeout=None):
        # ``timeout`` mirrors the Future interface; the evaluation
        # deadline (backend.eval_timeout) is what actually bounds this.
        while True:
            if self._entry is not None:
                return self._entry
            remaining = self._remaining()
            if remaining is not None and remaining <= 0:
                return self._expire()
            try:
                entry = self._inner.result(timeout=remaining)
            except FuturesTimeoutError:
                return self._expire()
            except CancelledError:
                if self._user_cancelled:
                    raise
                # resolved as cancelled by the coordinator's close path
                return self._expire()
            except EvaluationTimeoutError:
                # the worker itself reported a blown soft deadline
                get_registry().counter("engine.eval_timeouts").inc()
                self._backend.last_crash = {
                    "kind": FAILURE_KIND_TIMEOUT, "time": time.time(),
                    "fingerprint": self._evaluator.fingerprint()[:12]}
                self._entry = failure_entry(FAILURE_KIND_TIMEOUT)
                return self._entry
            except TRANSIENT_ERROR_TYPES as error:
                # a dead worker (WorkerCrashError from the coordinator)
                # or an error relayed from inside a live worker
                if self._retry_or_quarantine(error):
                    return self._entry
            else:
                self._entry = entry
                return entry

    def _expire(self) -> dict:
        """Deadline blown coordinator-side: forget the lease, score it."""
        get_registry().counter("engine.eval_timeouts").inc()
        self._backend._coordinator.discard(self._state)
        self._backend.last_crash = {
            "kind": FAILURE_KIND_TIMEOUT, "time": time.time(),
            "fingerprint": self._evaluator.fingerprint()[:12]}
        self._entry = failure_entry(FAILURE_KIND_TIMEOUT)
        return self._entry

    def _retry_or_quarantine(self, error) -> bool:
        """True when resolved (quarantined); False when resubmitted."""
        policy = self._backend.retry_policy
        if not policy.should_retry(self._attempt, error):
            get_registry().counter("engine.quarantined_tasks").inc()
            self._entry = failure_entry(FAILURE_KIND_CRASH)
            return True
        get_registry().counter("engine.retries").inc()
        _trace_retry(self._evaluator, self._attempt, type(error).__name__)
        policy.sleep(self._attempt)
        self._attempt += 1
        self._item = strip_fault(self._item)
        self._state = self._backend._coordinator.submit(
            self._evaluator, self._item,
            eval_timeout=self._backend.eval_timeout)
        self._inner = self._state.future
        self._reset_deadline()
        return False


class RemoteBackend(ExecutionBackend):
    """Dispatch evaluations to registered remote workers.

    Parameters
    ----------
    n_workers:
        Optional *cap* on the concurrency the backend reports.  Unlike
        the pooled backends this is not a pool size — live capacity is
        the fleet's advertised core total; the cap only bounds what the
        engine sees.  ``None``/``-1`` means uncapped.
    coordinator:
        ``"host:port"`` to bind the coordinator on (default loopback,
        ephemeral port).  Workers connect with
        ``repro worker --coordinator host:port``.
    worker_timeout:
        Seconds of heartbeat silence before a worker is declared dead.
    """

    name = "remote"

    def __init__(self, n_workers: int | None = None, *,
                 eval_timeout: float | None = None,
                 retry_policy: RetryPolicy | None = None,
                 coordinator: str | None = None,
                 worker_timeout: float | None = None) -> None:
        # No super().__init__: n_workers is a live property here, not a
        # fixed pool size.  The rest of the base contract is replicated.
        if n_workers in (None, -1):
            self._worker_cap = None
        else:
            n_workers = int(n_workers)
            if n_workers < 1:
                raise ValidationError(
                    f"n_workers must be at least 1, got {n_workers}")
            self._worker_cap = n_workers
        self.eval_timeout = _validate_eval_timeout(eval_timeout)
        self.retry_policy = (RetryPolicy() if retry_policy is None
                             else retry_policy)
        self.last_crash: dict | None = None
        bind = parse_address(coordinator or DEFAULT_COORDINATOR)
        self._coordinator = Coordinator(
            bind, worker_timeout=worker_timeout,
            on_worker_death=self._note_worker_death)

    # ------------------------------------------------------------ capacity
    @property
    def n_workers(self) -> int:
        """Live fleet capacity: total advertised cores, capped, >= 1.

        The floor of 1 keeps dispatch heuristics sane while the fleet is
        empty — tasks queue at the coordinator until a worker joins.
        """
        cores = self._coordinator.total_cores
        if self._worker_cap is not None:
            cores = min(cores, self._worker_cap)
        return max(1, cores)

    @property
    def coordinator_address(self) -> str:
        """The ``host:port`` workers should connect to."""
        return format_address(self._coordinator.address)

    @property
    def worker_count(self) -> int:
        """Number of live registered workers."""
        return self._coordinator.worker_count

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> bool:
        """Block until ``count`` workers registered; False on timeout."""
        return self._coordinator.wait_for_workers(count, timeout)

    def drop_worker(self, worker_id=None):
        """Forcibly disconnect a worker (the chaos ``drop_worker`` fault)."""
        return self._coordinator.drop_worker(worker_id)

    def _note_worker_death(self, worker_id, lost_fingerprints) -> None:
        fingerprint = lost_fingerprints[0][:12] if lost_fingerprints else None
        self.last_crash = {"kind": FAILURE_KIND_CRASH, "time": time.time(),
                           "fingerprint": fingerprint}

    # ------------------------------------------------------------- dispatch
    def map(self, fn, items: list) -> list:
        # Generic fan-out stays inline: only *evaluations* are
        # distributed (arbitrary callables are not worth a pickle round
        # trip, and most map() users are tiny metadata transforms).
        return [fn(item) for item in items]

    def submit(self, fn, item) -> Future:
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(fn(item))
        except BaseException as error:  # parity with Future semantics
            future.set_exception(error)
        return future

    def submit_evaluation(self, evaluator, item) -> _RemoteEvalFuture:
        return _RemoteEvalFuture(self, evaluator, item)

    def run_evaluations(self, evaluator, work: list) -> list:
        # Dispatch everything first (the fleet runs items concurrently),
        # then collect positionally — input order in, input order out.
        futures = [self.submit_evaluation(evaluator, item) for item in work]
        return [future.result() for future in futures]

    def wait_any(self, futures) -> None:
        # Same contract as the process backend: bound the wait by the
        # nearest evaluation deadline so a dead-silent fleet can never
        # block the driver past a deadline.
        pending = [future for future in futures if not future.done()]
        if not pending:
            return
        timeout = None
        inner = []
        for future in pending:
            if isinstance(future, _RemoteEvalFuture):
                remaining = future._remaining()
                if remaining is not None:
                    timeout = (remaining if timeout is None
                               else min(timeout, remaining))
                inner.append(future._inner)
            else:
                inner.append(future)
        if timeout is not None:
            timeout = max(0.0, timeout)
        wait(inner, timeout=timeout, return_when=FIRST_COMPLETED)

    def close(self) -> None:
        self._coordinator.close()

    def __repr__(self) -> str:
        return (f"RemoteBackend(coordinator={self.coordinator_address!r}, "
                f"workers={self.worker_count}, n_workers={self.n_workers})")
