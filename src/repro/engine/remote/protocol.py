"""Wire protocol of the remote execution backend: JSON lines over TCP.

The coordinator (:mod:`repro.engine.remote.coordinator`) and its workers
(:mod:`repro.engine.remote.worker`) speak newline-delimited JSON objects
over a plain TCP socket — the same zero-dependency stdlib style as the
serve layer's HTTP server, chosen so a worker daemon needs nothing but
the library itself.  Every message is one JSON object with a ``type``
field; binary payloads (the pickled evaluator snapshot, work items,
result entries) travel as base64 strings inside the JSON.

Message types, worker -> coordinator::

    register   {cores, pid, version}          first message on connect
    heartbeat  {}                             liveness, every interval
    result     {task_id, entry}               entry is a blob
    error      {task_id, error, message, transient}
    goodbye    {}                             graceful departure

and coordinator -> worker::

    registered {worker_id, heartbeat_interval, version}
    evaluator  {fingerprint, blob}            cached worker-side
    task       {task_id, fingerprint, item[, eval_timeout]}
    shutdown   {}                             drain and exit

Trust model: payloads are *pickled*, so the protocol is strictly for a
trusted cluster — the coordinator binds loopback by default, and anyone
who can reach the port can execute code, exactly like a process-pool
pipe.  Never expose a coordinator to an untrusted network.
"""

from __future__ import annotations

import base64
import json
import pickle

from repro.exceptions import ReproError, ValidationError

#: bumped on incompatible message changes; both sides advertise it
PROTOCOL_VERSION = 1

#: default bind/connect host — loopback, per the trust model above
DEFAULT_HOST = "127.0.0.1"


class RemoteProtocolError(ReproError):
    """A peer sent bytes that do not parse as a protocol message."""


def parse_address(spec, *, default_host: str = DEFAULT_HOST) -> tuple[str, int]:
    """``(host, port)`` from a ``"host:port"`` spec (``":port"``/``"port"`` ok)."""
    if isinstance(spec, (tuple, list)) and len(spec) == 2:
        host, port = spec
        return str(host) or default_host, _check_port(port, spec)
    text = str(spec).strip()
    host, sep, port = text.rpartition(":")
    if not sep:
        host, port = default_host, text
    return host or default_host, _check_port(port, spec)


def _check_port(port, spec) -> int:
    try:
        port = int(port)
    except (TypeError, ValueError):
        raise ValidationError(
            f"bad coordinator address {spec!r}: expected host:port with an "
            f"integer port"
        ) from None
    if not 0 <= port <= 65535:
        raise ValidationError(
            f"bad coordinator address {spec!r}: port must be in [0, 65535]"
        )
    return port


def format_address(address: tuple[str, int]) -> str:
    """The ``"host:port"`` spelling of an address pair."""
    return f"{address[0]}:{address[1]}"


def dump_blob(obj) -> str:
    """Pickle ``obj`` and encode it for transport inside a JSON message."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def load_blob(text: str):
    """Inverse of :func:`dump_blob`."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def send_message(sock, payload: dict) -> None:
    """Write one protocol message to ``sock`` (callers hold the send lock)."""
    line = json.dumps(payload, separators=(",", ":")) + "\n"
    sock.sendall(line.encode("utf-8"))


def read_message(stream) -> dict | None:
    """Read one message from a binary line stream; ``None`` on EOF/close.

    A socket closed from another thread (worker stop, coordinator drop)
    surfaces as OSError/ValueError from ``readline`` — reported as EOF,
    because for the reader loop it means the same thing: the peer is
    gone.  Bytes that are present but unparsable raise
    :class:`RemoteProtocolError` instead — that is a bug or a stray
    client, not a death, and must be observable.
    """
    try:
        line = stream.readline()
    except (OSError, ValueError):
        return None
    if not line:
        return None
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise RemoteProtocolError(
            f"malformed protocol line: {line[:120]!r}"
        ) from error
    if not isinstance(message, dict) or "type" not in message:
        raise RemoteProtocolError(
            f"protocol messages are JSON objects with a 'type' field, "
            f"got: {line[:120]!r}"
        )
    return message
