"""Distributed execution: the ``"remote"`` backend and its worker daemon.

Select it like any other backend — ``backend="remote"`` /
``REPRO_BACKEND=remote`` / ``--backend remote`` — then point one or more
``repro worker`` daemons at the coordinator address it binds
(``remote_coordinator`` on the context, ``REPRO_REMOTE_COORDINATOR``).
See :mod:`repro.engine.remote.protocol` for the wire format and trust
model, :mod:`repro.engine.remote.coordinator` for membership/liveness
and :mod:`repro.engine.remote.backend` for the recovery semantics.
"""

from __future__ import annotations

from repro.engine.remote.backend import DEFAULT_COORDINATOR, RemoteBackend
from repro.engine.remote.coordinator import (
    DEFAULT_WORKER_TIMEOUT,
    Coordinator,
    RemoteTaskError,
)
from repro.engine.remote.protocol import (
    RemoteProtocolError,
    format_address,
    parse_address,
)
from repro.engine.remote.worker import RemoteWorker

__all__ = [
    "Coordinator",
    "DEFAULT_COORDINATOR",
    "DEFAULT_WORKER_TIMEOUT",
    "RemoteBackend",
    "RemoteProtocolError",
    "RemoteTaskError",
    "RemoteWorker",
    "format_address",
    "parse_address",
    "start_loopback",
]


def start_loopback(size: int = 2, *, cores_each: int = 1,
                   timeout: float = 30.0, **backend_options):
    """A :class:`RemoteBackend` plus ``size`` in-thread workers.

    The test/bench harness for the remote path: workers run as daemon
    threads in this process (``crash_mode="disconnect"``), connected
    over real loopback sockets on an ephemeral port.  Returns
    ``(backend, workers)``; closing the backend shuts the workers down.
    ``backend_options`` pass through to :class:`RemoteBackend` — note
    the capacity *cap* there is also named ``n_workers``, which is why
    the fleet headcount here is ``size``.
    """
    backend = RemoteBackend(**backend_options)
    workers = []
    for _ in range(size):
        worker = RemoteWorker(backend.coordinator_address, cores=cores_each,
                              crash_mode="disconnect")
        worker.start()
        workers.append(worker)
    if not backend.wait_for_workers(size, timeout=timeout):
        backend.close()
        raise TimeoutError(
            f"only {backend.worker_count}/{size} loopback workers "
            f"registered within {timeout}s")
    return backend, workers
