"""Pluggable execution backends: serial, thread-pool and process-pool.

A backend does exactly one thing: map a function over a list of items and
return the results *in input order*.  That ordering guarantee is what lets
the rest of the library stay bit-for-bit deterministic regardless of which
backend executes the work — the engine submits tasks in a stable order and
merges results positionally.

``run_evaluations`` is the evaluation-specific entry point: it receives a
:class:`~repro.core.evaluation.PipelineEvaluator` plus ``(pipeline,
fidelity)`` work items and returns the raw cache entries.  The default
implementation closes over the evaluator (fine for threads, which share
memory); :class:`ProcessBackend` overrides it to ship the evaluator to each
worker process once via the pool initializer instead of once per task.
"""

from __future__ import annotations

import os
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.exceptions import UnknownComponentError, ValidationError


def default_worker_count() -> int:
    """Number of workers used when ``n_workers`` is not given."""
    return os.cpu_count() or 1


class ExecutionBackend:
    """Backend protocol: ordered ``map`` plus evaluation dispatch.

    Parameters
    ----------
    n_workers:
        Maximum number of concurrent workers.  ``None`` (or ``-1``) means
        one worker per CPU core.
    """

    #: registry name, e.g. ``"serial"`` or ``"process"``
    name: str = "base"

    def __init__(self, n_workers: int | None = None) -> None:
        if n_workers is None or n_workers == -1:
            n_workers = default_worker_count()
        n_workers = int(n_workers)
        if n_workers < 1:
            raise ValidationError(f"n_workers must be at least 1, got {n_workers}")
        self.n_workers = n_workers

    # ------------------------------------------------------------------ API
    def map(self, fn, items: list) -> list:
        """Apply ``fn`` to every item; results are returned in input order."""
        raise NotImplementedError

    def run_evaluations(self, evaluator, work: list) -> list:
        """Evaluate ``(pipeline, fidelity)`` work items; return cache entries."""
        return self.map(
            lambda pair: evaluator._evaluate_uncached(pair[0], pair[1]), work
        )

    def close(self) -> None:
        """Release any pooled workers (no-op for poolless backends)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_workers={self.n_workers})"


class SerialBackend(ExecutionBackend):
    """Run every task inline in the calling thread (the reference backend)."""

    name = "serial"

    def __init__(self, n_workers: int | None = None) -> None:
        super().__init__(n_workers=1)

    def map(self, fn, items: list) -> list:
        return [fn(item) for item in items]


class ThreadBackend(ExecutionBackend):
    """Dispatch tasks to a thread pool.

    Threads share the evaluator's memory, so nothing is pickled.  Workers
    only ever *read* shared state (the train/valid split); all cache writes
    happen in the calling thread after the batch completes, so no locking
    is needed.  Useful when evaluations release the GIL (numpy-heavy
    preprocessing / training) or block on I/O.
    """

    name = "thread"

    def map(self, fn, items: list) -> list:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=min(self.n_workers, len(items))) as pool:
            return list(pool.map(fn, items))


# --------------------------------------------------------------- processes
#: per-process evaluator installed by the pool initializer (fork or spawn)
_WORKER_EVALUATOR = None


def _init_evaluation_worker(evaluator) -> None:
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = evaluator


def _evaluate_in_worker(pair):
    pipeline, fidelity = pair
    return _WORKER_EVALUATOR._evaluate_uncached(pipeline, fidelity)


class ProcessBackend(ExecutionBackend):
    """Dispatch tasks to a process pool (true CPU parallelism).

    The evaluator is shipped to each worker exactly once through the pool
    initializer, and the pool is *reused* across batches of the same
    evaluator (a search submits one batch per iteration — re-forking and
    re-pickling the training data every generation would dominate the
    parallel gain).  Per-task traffic is just the ``(pipeline, fidelity)``
    pair and the returned cache entry.  The evaluator drops its engine
    reference and cache when pickled (see
    ``PipelineEvaluator.__getstate__``), so workers never recursively
    spawn pools and the snapshot stays valid for the evaluator's lifetime:
    workers only ever receive work the parent's cache has never seen.
    """

    name = "process"

    def __init__(self, n_workers: int | None = None) -> None:
        super().__init__(n_workers=n_workers)
        self._eval_pool: ProcessPoolExecutor | None = None
        self._eval_pool_owner = None  # weakref to the pool's evaluator

    def map(self, fn, items: list) -> list:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        with ProcessPoolExecutor(max_workers=min(self.n_workers, len(items))) as pool:
            return list(pool.map(fn, items))

    def _evaluation_pool(self, evaluator) -> ProcessPoolExecutor:
        owner = self._eval_pool_owner() if self._eval_pool_owner else None
        if self._eval_pool is None or owner is not evaluator:
            self.close()
            self._eval_pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                initializer=_init_evaluation_worker,
                initargs=(evaluator,),
            )
            self._eval_pool_owner = weakref.ref(evaluator)
        return self._eval_pool

    def run_evaluations(self, evaluator, work: list) -> list:
        work = list(work)
        if len(work) <= 1:
            # A single evaluation is cheaper inline than one IPC round-trip.
            return [
                evaluator._evaluate_uncached(pipeline, fidelity)
                for pipeline, fidelity in work
            ]
        pool = self._evaluation_pool(evaluator)
        return list(pool.map(_evaluate_in_worker, work))

    def close(self) -> None:
        if self._eval_pool is not None:
            self._eval_pool.shutdown()
            self._eval_pool = None
            self._eval_pool_owner = None


#: backends keyed by their registry name
BACKEND_CLASSES: dict[str, type[ExecutionBackend]] = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}

BACKEND_NAMES: tuple[str, ...] = tuple(BACKEND_CLASSES)


def make_backend(backend, *, n_workers: int | None = None) -> ExecutionBackend:
    """Resolve a backend name (or pass through an instance)."""
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend not in BACKEND_CLASSES:
        raise UnknownComponentError(
            f"Unknown execution backend {backend!r}. "
            f"Known backends: {sorted(BACKEND_CLASSES)}"
        )
    return BACKEND_CLASSES[backend](n_workers=n_workers)
