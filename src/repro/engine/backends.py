"""Pluggable execution backends: serial, thread-pool and process-pool.

A backend does two things.  The batch path — ``map`` / ``run_evaluations``
— applies a function over a list of items and returns the results *in
input order*; that ordering guarantee is what lets the rest of the library
stay bit-for-bit deterministic regardless of which backend executes the
work, because the engine submits tasks in a stable order and merges
results positionally.  The futures path — ``submit`` /
``submit_evaluation`` / ``wait_any`` — hands out one future per task so
callers (the engine's ``as_completed`` and the async search driver) can
react to *each* completion instead of waiting for a whole batch barrier.

The serial backend's futures are lazy: the work runs in the calling thread
the first time a result is requested, so completions arrive strictly in
submission order (the deterministic reference) and a future that is
cancelled before consumption costs nothing — which is what lets a budget
interruption refund never-dispatched tasks exactly.

``run_evaluations`` is the evaluation-specific entry point: it receives a
:class:`~repro.core.evaluation.PipelineEvaluator` plus ``(pipeline,
fidelity)`` work items and returns the raw cache entries.  The default
implementation closes over the evaluator (fine for threads, which share
memory); :class:`ProcessBackend` overrides it to ship the evaluator to each
worker process once via the pool initializer instead of once per task.

Evaluation dispatch is *fault tolerant* (see :mod:`repro.engine.faults`):
every path runs under the backend's :class:`~repro.engine.faults.RetryPolicy`
and optional ``eval_timeout`` deadline.  The process backend survives
worker crashes — a ``BrokenProcessPool`` discards the broken
fingerprint-keyed pool, rebuilds it, and resubmits the lost in-flight
tasks; a task that keeps killing its worker is quarantined as a
``failure_kind="worker_crash"`` entry instead of killing the search, and
a hung evaluation is detected by a watchdog and recorded as
``failure_kind="timeout"``.  The serial/thread backends apply the same
policy with soft deadline checks (they cannot interrupt in-flight work).
Recovery is observable through the ``engine.worker_crashes`` /
``engine.eval_timeouts`` / ``engine.retries`` / ``engine.quarantined_tasks``
registry counters and ``engine.retry`` trace spans.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool

from repro.engine.faults import (
    FAILURE_KIND_CRASH,
    FAILURE_KIND_TIMEOUT,
    TRANSIENT_ERROR_TYPES,
    RetryPolicy,
    WorkerCrashError,
    apply_fault_in_worker,
    apply_fault_inline,
    failure_entry,
    strip_fault,
    unwrap_work_item,
)
from repro.exceptions import UnknownComponentError, ValidationError
from repro.telemetry.metrics import get_registry


def default_worker_count() -> int:
    """Number of workers used when ``n_workers`` is not given."""
    return os.cpu_count() or 1


def _validate_eval_timeout(eval_timeout):
    if eval_timeout is None:
        return None
    eval_timeout = float(eval_timeout)
    if eval_timeout <= 0:
        raise ValidationError(
            f"eval_timeout must be a positive number of seconds, "
            f"got {eval_timeout!r}"
        )
    return eval_timeout


def _trace_retry(evaluator, attempt: int, error_name: str) -> None:
    """Emit an ``engine.retry`` span when the evaluator is traced."""
    tracer = getattr(evaluator, "tracer", None)
    if tracer is not None:
        tracer.emit("engine.retry", ts=time.time(), dur=0.0,
                    attempt=attempt, error=error_name)


def _kill_pool(pool) -> None:
    """Tear down a broken or stalled process pool without joining it.

    ``shutdown`` alone would *join* the workers, and a hung worker never
    exits — so terminate the processes first.  ``_processes`` is a
    private executor attribute; when absent (already-reaped pool, test
    double) the plain shutdown still drops the queue.
    """
    for process in list((getattr(pool, "_processes", None) or {}).values()):
        process.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


class SerialFuture:
    """Lazy future returned by :meth:`SerialBackend.submit`.

    The wrapped call runs in the consumer's thread the first time
    :meth:`run` (or :meth:`result`) is invoked, never at submission.  A
    batch of submitted-but-unconsumed serial futures therefore costs
    nothing, completes strictly in the order the consumer asks, and can be
    cancelled right up to the moment its result is first requested —
    mirroring ``concurrent.futures.Future`` closely enough that the engine
    treats all backends' futures uniformly.
    """

    _PENDING, _DONE, _ERROR, _CANCELLED = range(4)

    def __init__(self, fn, item) -> None:
        self._fn = fn
        self._item = item
        self._state = self._PENDING
        self._outcome = None

    def run(self) -> None:
        """Execute the work now unless it already ran or was cancelled."""
        if self._state != self._PENDING:
            return
        try:
            self._outcome = self._fn(self._item)
            self._state = self._DONE
        except BaseException as error:  # re-raised from result(), like a Future
            self._outcome = error
            self._state = self._ERROR

    def result(self, timeout=None):
        if timeout is not None:
            # Lazy inline execution has nothing to wait on: the work runs
            # in *this* thread, right now, when the result is requested.
            # Pretending to honor a timeout (as this method once did by
            # ignoring it) would let callers believe they were protected
            # from a hang they are actually executing themselves.
            raise ValidationError(
                "SerialFuture.result() cannot honor a timeout: the work "
                "runs lazily in the calling thread at the moment the "
                "result is requested; call result() without a timeout "
                "(use ExecutionContext.eval_timeout for deadlines)"
            )
        if self._state == self._CANCELLED:
            raise CancelledError()
        self.run()
        if self._state == self._ERROR:
            raise self._outcome
        return self._outcome

    def done(self) -> bool:
        return self._state != self._PENDING

    def cancel(self) -> bool:
        if self._state == self._PENDING:
            self._state = self._CANCELLED
        return self._state == self._CANCELLED

    def cancelled(self) -> bool:
        return self._state == self._CANCELLED

    def running(self) -> bool:
        return False


class ExecutionBackend:
    """Backend protocol: ordered ``map`` plus evaluation dispatch.

    Parameters
    ----------
    n_workers:
        Maximum number of concurrent workers.  ``None`` (or ``-1``) means
        one worker per CPU core.
    eval_timeout:
        Optional per-evaluation deadline in seconds.  The process backend
        enforces it with a watchdog (a hung worker is killed and the task
        recorded as ``failure_kind="timeout"``); the serial and thread
        backends, which cannot interrupt in-flight work, apply it as a
        soft deadline — the evaluation runs to completion but is *scored*
        as timed out, so results match what the watchdog records.
    retry_policy:
        :class:`~repro.engine.faults.RetryPolicy` governing transient
        failures (worker crashes, injected chaos errors).  Defaults to
        ``RetryPolicy()``.
    """

    #: registry name, e.g. ``"serial"`` or ``"process"``
    name: str = "base"

    #: True when submitted futures complete lazily in submission order (the
    #: serial backend): ``as_completed`` consumers then iterate futures in
    #: the order they were submitted, which is the deterministic reference
    ordered_completion: bool = False

    def __init__(self, n_workers: int | None = None, *,
                 eval_timeout: float | None = None,
                 retry_policy: RetryPolicy | None = None) -> None:
        if n_workers is None or n_workers == -1:
            n_workers = default_worker_count()
        n_workers = int(n_workers)
        if n_workers < 1:
            raise ValidationError(f"n_workers must be at least 1, got {n_workers}")
        self.n_workers = n_workers
        self.eval_timeout = _validate_eval_timeout(eval_timeout)
        self.retry_policy = RetryPolicy() if retry_policy is None else retry_policy
        #: ``{"kind", "time", "fingerprint"}`` of the most recent pool
        #: loss, or ``None``; surfaced by ``repro serve``'s ``/healthz``
        self.last_crash: dict | None = None

    # ------------------------------------------------------------------ API
    def map(self, fn, items: list) -> list:
        """Apply ``fn`` to every item; results are returned in input order."""
        raise NotImplementedError

    def run_evaluations(self, evaluator, work: list) -> list:
        """Evaluate ``(pipeline, fidelity)`` work items; return cache entries.

        Work items may also be :class:`~repro.engine.faults.FaultInjection`
        wrappers (attached by the chaos harness); every implementation
        unwraps them through the guarded envelope.
        """
        return self.map(
            lambda item: self._guarded_evaluation(evaluator, item), work
        )

    def _guarded_evaluation(self, evaluator, item) -> dict:
        """Evaluate one work item under the retry policy and soft deadline.

        Transient failures (see :data:`~repro.engine.faults.TRANSIENT_ERROR_TYPES`)
        are retried with backoff; a task that keeps failing is quarantined
        as a ``worker_crash`` failure entry.  The loop is bounded by
        ``retry_policy.max_attempts`` (every iteration either returns or
        consumes one attempt).
        """
        policy = self.retry_policy
        attempt = 1
        while True:
            pair, fault = unwrap_work_item(item)
            start = time.monotonic()
            try:
                if fault is not None:
                    apply_fault_inline(fault)
                entry = evaluator._evaluate_uncached(pair[0], pair[1])
            except TRANSIENT_ERROR_TYPES as error:
                if isinstance(error, WorkerCrashError):
                    get_registry().counter("engine.worker_crashes").inc()
                    # Crash observed without a pool involved (serial/thread
                    # or the single-item inline path): still surfaced to
                    # /healthz, same shape as a pool loss.
                    self.last_crash = {"kind": FAILURE_KIND_CRASH,
                                       "time": time.time(),
                                       "fingerprint":
                                           evaluator.fingerprint()[:12]}
                if not policy.should_retry(attempt, error):
                    get_registry().counter("engine.quarantined_tasks").inc()
                    return failure_entry(FAILURE_KIND_CRASH)
                get_registry().counter("engine.retries").inc()
                _trace_retry(evaluator, attempt, type(error).__name__)
                policy.sleep(attempt)
                attempt += 1
                item = strip_fault(item)
                continue
            if (self.eval_timeout is not None
                    and time.monotonic() - start > self.eval_timeout):
                # Soft deadline: the work already ran to completion in this
                # thread, but it is scored exactly as the process watchdog
                # would have scored it — a deterministic timeout record.
                get_registry().counter("engine.eval_timeouts").inc()
                self.last_crash = {"kind": FAILURE_KIND_TIMEOUT,
                                   "time": time.time(),
                                   "fingerprint":
                                       evaluator.fingerprint()[:12]}
                return failure_entry(FAILURE_KIND_TIMEOUT)
            return entry

    # -------------------------------------------------------------- futures
    def submit(self, fn, item):
        """Start ``fn(item)`` and return a future for its result.

        With a process backend ``fn`` must be a picklable module-level
        function (the same constraint as :meth:`map`).
        """
        raise NotImplementedError

    def submit_evaluation(self, evaluator, item):
        """Submit one ``(pipeline, fidelity)`` evaluation; return a future."""
        return self.submit(
            lambda work: self._guarded_evaluation(evaluator, work), item
        )

    def wait_any(self, futures) -> None:
        """Block until at least one of ``futures`` is done (or all are)."""
        pending = [future for future in futures if not future.done()]
        if pending:
            wait(pending, return_when=FIRST_COMPLETED)

    def close(self) -> None:
        """Release any pooled workers (no-op for poolless backends)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_workers={self.n_workers})"


class SerialBackend(ExecutionBackend):
    """Run every task inline in the calling thread (the reference backend)."""

    name = "serial"
    ordered_completion = True

    def __init__(self, n_workers: int | None = None, **options) -> None:
        if n_workers is not None and int(n_workers) != 1:
            # Historically an explicit worker count was silently ignored
            # here, so a context asking for serial+parallel quietly ran
            # everything on one worker.  Misconfiguration fails loudly now.
            raise ValidationError(
                f"the serial backend runs exactly one worker; "
                f"n_workers={n_workers!r} asks for parallelism — pick the "
                f"'thread' or 'process' backend instead"
            )
        super().__init__(n_workers=1, **options)

    def map(self, fn, items: list) -> list:
        return [fn(item) for item in items]

    def submit(self, fn, item) -> SerialFuture:
        return SerialFuture(fn, item)

    def wait_any(self, futures) -> None:
        # Lazy futures never complete on their own: "waiting" means running
        # the earliest-submitted pending one right here, which is exactly
        # the serial execution order.
        for future in futures:
            if future.done():
                return
        if futures:
            futures[0].run()


class ThreadBackend(ExecutionBackend):
    """Dispatch tasks to a thread pool.

    Threads share the evaluator's memory, so nothing is pickled.  Workers
    read shared state (the train/valid split) and the memoization-cache
    writes happen in the calling thread after the batch completes, so those
    need no locking.  The one piece of shared state workers *do* mutate is
    the evaluator's prefix-transform cache (when enabled), which carries
    its own internal lock — all workers then reuse one pool of fitted
    prefixes.  Useful when evaluations release the GIL (numpy-heavy
    preprocessing / training) or block on I/O.
    """

    name = "thread"

    def __init__(self, n_workers: int | None = None, **options) -> None:
        super().__init__(n_workers=n_workers, **options)
        self._lock = threading.Lock()
        self._submit_pool: ThreadPoolExecutor | None = None

    def map(self, fn, items: list) -> list:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=min(self.n_workers, len(items))) as pool:
            return list(pool.map(fn, items))

    def submit(self, fn, item):
        # Unlike map's per-batch pools, submissions share one long-lived
        # pool: futures of different batches must be able to run
        # concurrently, and the async driver submits continuously.  The
        # lazy creation is lock-guarded — two sessions racing on a shared
        # engine would otherwise each build a pool and leak one.
        with self._lock:
            if self._submit_pool is None:
                self._submit_pool = ThreadPoolExecutor(
                    max_workers=self.n_workers
                )
            pool = self._submit_pool
        return pool.submit(fn, item)

    def close(self) -> None:
        with self._lock:
            pool, self._submit_pool = self._submit_pool, None
        if pool is not None:
            # Joining worker threads can block; never do it under the lock.
            pool.shutdown(wait=True, cancel_futures=True)


# --------------------------------------------------------------- processes
#: per-process evaluator installed by the pool initializer (fork or spawn)
_WORKER_EVALUATOR = None


def _init_evaluation_worker(evaluator) -> None:
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = evaluator


def _evaluate_in_worker(item):
    pair, fault = unwrap_work_item(item)
    if fault is not None:
        # Chaos faults are applied *inside* the worker: a "crash" really
        # kills this process (the parent sees BrokenProcessPool), a
        # "delay" really hangs it (the parent's watchdog fires).
        apply_fault_in_worker(fault)
    pipeline, fidelity = pair
    cache = _WORKER_EVALUATOR.prefix_cache
    if cache is None:
        return _WORKER_EVALUATOR._evaluate_uncached(pipeline, fidelity)
    # The worker's prefix cache is private to this process: its counters
    # would otherwise never reach the parent (prefix_hits reading 0 under
    # the process backend despite real reuse).  Pool workers run one task
    # at a time, so a before/after snapshot brackets exactly this
    # evaluation; the delta rides back on a copy of the entry (the
    # original may be aliased by the worker's own caches) and is stripped
    # by ``PipelineEvaluator.absorb_worker_counters`` before the entry is
    # stored anywhere.
    before = cache.counters()
    entry = dict(_WORKER_EVALUATOR._evaluate_uncached(pipeline, fidelity))
    delta = cache.counters_since(before)
    if delta:
        from repro.core.evaluation import METRICS_DELTA_KEY

        entry[METRICS_DELTA_KEY] = {
            f"prefix.{name}": value for name, value in delta.items()
        }
    return entry


class _RecoveringEvalFuture:
    """Future for one submitted evaluation that survives pool crashes.

    Wraps the real pool future and owns the task's retry/deadline state.
    :meth:`result` never raises on an *infrastructure* failure — a crashed
    or hung evaluation resolves to a ``failure_kind`` entry instead — so
    the engine's ``resolve_task`` path needs no fault-specific cases.  The
    deadline covers queue time plus run time, measured from submission.
    """

    __slots__ = ("_backend", "_evaluator", "_item", "_pool", "_inner",
                 "_attempt", "_deadline", "_entry", "_user_cancelled",
                 "__weakref__")

    def __init__(self, backend, evaluator, item) -> None:
        self._backend = backend
        self._evaluator = evaluator
        self._item = item
        self._attempt = 1
        self._entry = None
        self._user_cancelled = False
        self._pool, self._inner = backend._submit_item(evaluator, item)
        self._reset_deadline()

    def _reset_deadline(self) -> None:
        timeout = self._backend.eval_timeout
        self._deadline = (None if timeout is None
                          else time.monotonic() + timeout)

    def _remaining(self) -> float | None:
        if self._deadline is None:
            return None
        return self._deadline - time.monotonic()

    def done(self) -> bool:
        if self._entry is not None or self._inner.done():
            return True
        remaining = self._remaining()
        return remaining is not None and remaining <= 0

    def cancel(self) -> bool:
        cancelled = self._inner.cancel()
        if cancelled:
            # Remember a *caller's* cancellation: a CancelledError from a
            # pool that was torn down under us must be retried, but a
            # legitimately cancelled task must not silently re-run.
            self._user_cancelled = True
        return cancelled

    def cancelled(self) -> bool:
        return self._user_cancelled

    def running(self) -> bool:
        return self._entry is None and self._inner.running()

    def result(self, timeout=None):
        # ``timeout`` mirrors the Future interface; the evaluation deadline
        # (backend.eval_timeout) is what actually bounds this call.
        while True:
            if self._entry is not None:
                return self._entry
            remaining = self._remaining()
            if remaining is not None and remaining <= 0:
                return self._expire()
            try:
                entry = self._inner.result(timeout=remaining)
            except FuturesTimeoutError:
                return self._expire()
            except CancelledError:
                if self._user_cancelled:
                    raise
                # The pool was torn down under this future (a sibling's
                # crash or timeout discard) — a crash casualty, not a
                # caller's cancellation.
                if self._retry_or_quarantine(
                        WorkerCrashError("evaluation pool was torn down "
                                         "with this task in flight")):
                    return self._entry
            except BrokenProcessPool as error:
                self._backend._note_broken(self._evaluator, self._pool)
                if self._retry_or_quarantine(error):
                    return self._entry
            except TRANSIENT_ERROR_TYPES as error:
                # Raised *inside* the worker; the pool itself is intact.
                if self._retry_or_quarantine(error):
                    return self._entry
            else:
                self._entry = entry
                return entry

    def _expire(self) -> dict:
        """Deadline blown: kill the pool, resolve as a timeout record."""
        get_registry().counter("engine.eval_timeouts").inc()
        self._backend._discard_pool(self._evaluator, self._pool,
                                    kind=FAILURE_KIND_TIMEOUT)
        self._entry = failure_entry(FAILURE_KIND_TIMEOUT)
        return self._entry

    def _retry_or_quarantine(self, error) -> bool:
        """True when resolved (quarantined); False when resubmitted."""
        policy = self._backend.retry_policy
        if not policy.should_retry(self._attempt, error):
            get_registry().counter("engine.quarantined_tasks").inc()
            self._entry = failure_entry(FAILURE_KIND_CRASH)
            return True
        get_registry().counter("engine.retries").inc()
        _trace_retry(self._evaluator, self._attempt, type(error).__name__)
        policy.sleep(self._attempt)
        self._attempt += 1
        self._item = strip_fault(self._item)
        self._pool, self._inner = self._backend._submit_item(
            self._evaluator, self._item
        )
        self._reset_deadline()
        return False


class ProcessBackend(ExecutionBackend):
    """Dispatch tasks to a process pool (true CPU parallelism).

    The evaluator is shipped to each worker exactly once through the pool
    initializer, and pools are *reused* across batches: they are keyed by
    the evaluator's :meth:`~repro.core.evaluation.PipelineEvaluator.fingerprint`
    in a small LRU (``max_eval_pools``), so several sessions alternating
    on one shared backend each keep their warm pool instead of re-forking
    and re-pickling the training data every batch (the one-pool-latest-owner
    scheme this replaced did exactly that the moment two searches shared an
    engine).  Per-task traffic is just the ``(pipeline, fidelity)``
    pair and the returned cache entry.  The evaluator drops its engine
    reference and cache when pickled (see
    ``PipelineEvaluator.__getstate__``), so workers never recursively
    spawn pools and the snapshot stays valid for its fingerprint's
    lifetime: workers only ever receive work the parent's cache has never
    seen, and two evaluators with equal fingerprints are bit-for-bit
    interchangeable by the fingerprint contract.
    When the evaluator enables prefix-transform reuse, each worker rebuilds
    its own :class:`~repro.core.prefixcache.PrefixTransformCache` on
    unpickling; because the pool (and with it the per-process evaluator
    snapshot) persists across batches, those caches keep accumulating and
    reusing fitted prefixes for the whole search, not just one batch.

    A worker death does not kill the search: the broken pool is discarded
    and rebuilt, lost in-flight tasks are resubmitted under the retry
    policy, and a task that keeps crashing its worker is quarantined as a
    ``worker_crash`` failure entry.  Batch dispatch attributes crashes by
    running the round after a crash in one-task isolation, so only the
    poison task is ever charged — co-pending innocents always survive,
    keeping recovered runs bit-for-bit repeatable.  With ``eval_timeout`` set, a hung
    evaluation is detected (no completion within the deadline), its pool
    is killed and rebuilt, and the task resolves as a ``timeout`` entry —
    queued innocents from the same pool are resubmitted without being
    charged an attempt.
    """

    name = "process"

    #: evaluation pools kept warm at once; the least-recently-used pool
    #: beyond this is shut down (its worker processes reaped) on demand
    max_eval_pools = 4

    def __init__(self, n_workers: int | None = None, *,
                 max_eval_pools: int | None = None, **options) -> None:
        super().__init__(n_workers=n_workers, **options)
        if max_eval_pools is not None:
            max_eval_pools = int(max_eval_pools)
            if max_eval_pools < 1:
                raise ValidationError(
                    f"max_eval_pools must be at least 1, got {max_eval_pools}"
                )
            self.max_eval_pools = max_eval_pools
        self._lock = threading.Lock()
        #: fingerprint -> initializer-seeded pool, most recently used last
        self._eval_pools: "OrderedDict[str, ProcessPoolExecutor]" = OrderedDict()
        self._submit_pool: ProcessPoolExecutor | None = None

    def map(self, fn, items: list) -> list:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        with ProcessPoolExecutor(max_workers=min(self.n_workers, len(items))) as pool:
            return list(pool.map(fn, items))

    def submit(self, fn, item):
        with self._lock:
            if self._submit_pool is None:
                self._submit_pool = ProcessPoolExecutor(
                    max_workers=self.n_workers
                )
            pool = self._submit_pool
        return pool.submit(fn, item)

    def submit_evaluation(self, evaluator, item):
        # Reuse the initializer-seeded evaluation pool so the evaluator is
        # pickled once per pool, not once per submitted task; the wrapper
        # owns crash recovery and the deadline for this one task.
        return _RecoveringEvalFuture(self, evaluator, item)

    # --------------------------------------------------- pool bookkeeping
    def _evaluation_pool(self, evaluator) -> ProcessPoolExecutor:
        """The warm pool for ``evaluator``'s fingerprint (LRU, bounded)."""
        key = evaluator.fingerprint()
        evicted = None
        with self._lock:
            pool = self._eval_pools.get(key)
            if pool is not None:
                self._eval_pools.move_to_end(key)
            else:
                pool = ProcessPoolExecutor(
                    max_workers=self.n_workers,
                    initializer=_init_evaluation_worker,
                    initargs=(evaluator,),
                )
                self._eval_pools[key] = pool
                if len(self._eval_pools) > self.max_eval_pools:
                    _, evicted = self._eval_pools.popitem(last=False)
        if evicted is not None:
            # Shut the evicted pool down outside the lock: joining worker
            # processes can take a while and must not block other sessions
            # fetching their own pools.
            evicted.shutdown(wait=True, cancel_futures=True)
        return pool

    def _discard_pool(self, evaluator, pool, *, kind: str) -> bool:
        """Drop ``pool`` from the LRU (if still installed) and kill it.

        Many observers can report the same dead pool — every in-flight
        future raises ``BrokenProcessPool`` at once — so the removal is
        compare-and-delete under the lock: exactly one caller per pool
        instance gets ``True``, which is what keeps crash *events* (not
        crash observers) countable.
        """
        key = evaluator.fingerprint()
        with self._lock:
            evicted = self._eval_pools.get(key) is pool
            if evicted:
                del self._eval_pools[key]
                self.last_crash = {"kind": kind, "time": time.time(),
                                   "fingerprint": key[:12]}
        if evicted:
            _kill_pool(pool)
        return evicted

    def _note_broken(self, evaluator, pool) -> None:
        """Record one worker-crash event for a broken pool."""
        if self._discard_pool(evaluator, pool, kind=FAILURE_KIND_CRASH):
            get_registry().counter("engine.worker_crashes").inc()

    def _submit_item(self, evaluator, item):
        """Submit one item, rebuilding the fingerprint pool if it is broken.

        Returns ``(pool, future)``.  A pool that keeps breaking faster
        than it can accept work raises :class:`WorkerCrashError` — under
        ``repro serve`` that fails only the owning session.
        """
        attempt = 1
        while True:
            pool = self._evaluation_pool(evaluator)
            try:
                return pool, pool.submit(_evaluate_in_worker, item)
            except BrokenProcessPool as error:
                self._note_broken(evaluator, pool)
                if attempt >= self.retry_policy.max_attempts:
                    raise WorkerCrashError(
                        f"evaluation pool for fingerprint "
                        f"{evaluator.fingerprint()[:12]!r} kept breaking "
                        f"and could not be rebuilt"
                    ) from error
                attempt += 1

    # ----------------------------------------------------------- batch path
    def run_evaluations(self, evaluator, work: list) -> list:
        work = list(work)
        if len(work) <= 1:
            # A single evaluation is cheaper inline than one IPC round-trip
            # — still routed through the guarded envelope so chaos faults
            # and the soft deadline apply identically.
            return [self._guarded_evaluation(evaluator, item) for item in work]
        return self._run_recovering(evaluator, work)

    def _run_recovering(self, evaluator, work: list) -> list:
        """Ordered batch evaluation that survives crashes and hangs.

        Tasks are dispatched in rounds.  A clean round resolves every
        submitted future; a watchdog round resolves only the hung tasks as
        timeouts (queued innocents carry over uncharged); a *crashed*
        round — the pool broke — cannot tell which task killed the worker,
        so nobody is charged an attempt.  Instead the next round runs in
        **isolation**: one task at a time, in dispatch order, until a
        crash is attributed to the single in-flight task (which is then
        charged, retried with backoff, and eventually quarantined) or the
        round completes cleanly and parallel dispatch resumes.  Innocent
        tasks are therefore never quarantined by a co-tenant poison task,
        which keeps the surviving records of a crash-and-recover run
        identical across repeats of the same fault plan.

        The loop terminates: every round either resolves at least one
        task, or charges the isolated culprit one of its bounded
        attempts; unattributed crashes are always followed by an
        isolation round, and the shared backoff grows with the crash
        streak.
        """
        results: list = [None] * len(work)
        pending: dict[int, object] = dict(enumerate(work))
        attempts = {index: 1 for index in pending}
        policy = self.retry_policy
        isolate = False
        crash_streak = 0
        while pending:
            pool = self._evaluation_pool(evaluator)
            batch = sorted(pending.items())
            if isolate:
                batch = batch[:1]
            futures: dict = {}
            broke_at_submit = False
            try:
                for index, item in batch:
                    futures[pool.submit(_evaluate_in_worker, item)] = index
            except BrokenProcessPool:
                self._note_broken(evaluator, pool)
                broke_at_submit = True
            if not broke_at_submit:
                if self._collect_round(evaluator, pool, futures, pending,
                                       results, attempts):
                    isolate = False
                    crash_streak = 0
                    continue
            crash_streak += 1
            if isolate:
                # Exactly one task was in flight: the crash is its.
                index = batch[0][0]
                if not policy.should_retry(attempts[index]):
                    results[index] = failure_entry(FAILURE_KIND_CRASH)
                    get_registry().counter("engine.quarantined_tasks").inc()
                    del pending[index]
                    isolate = False
                else:
                    get_registry().counter("engine.retries").inc()
                    _trace_retry(evaluator, attempts[index],
                                 "BrokenProcessPool")
                    policy.sleep(attempts[index])
                    attempts[index] += 1
                    pending[index] = strip_fault(pending[index])
            else:
                # Unattributed crash: the round consumed one attempt of
                # every in-flight item (strip spent one-shot faults), but
                # nobody can fairly be charged — isolate the culprit
                # instead.  One shared backoff per crash, not per task:
                # the whole pool died at once.
                for index in sorted(pending):
                    get_registry().counter("engine.retries").inc()
                    _trace_retry(evaluator, attempts[index],
                                 "BrokenProcessPool")
                    pending[index] = strip_fault(pending[index])
                isolate = True
                policy.sleep(min(crash_streak, policy.max_attempts))
        return results

    def _collect_round(self, evaluator, pool, futures, pending, results,
                       attempts) -> bool:
        """Drain one round's futures; ``False`` means the pool broke.

        ``futures`` maps in-flight future -> work index.  With an
        ``eval_timeout``, the watchdog window restarts after every
        completion: a worker is declared hung once *nothing* finishes for
        a full deadline while it is running.
        """
        policy = self.retry_policy
        while futures:
            done, _ = wait(list(futures), timeout=self.eval_timeout,
                           return_when=FIRST_COMPLETED)
            if not done:
                victims = [future for future in futures if future.running()]
                if not victims:
                    # Nothing running and nothing finishing: the pool lost
                    # its workers without marking itself broken yet.
                    self._note_broken(evaluator, pool)
                    return False
                for future in victims:
                    index = futures.pop(future)
                    results[index] = failure_entry(FAILURE_KIND_TIMEOUT)
                    get_registry().counter("engine.eval_timeouts").inc()
                    del pending[index]
                # A hung worker cannot be cancelled — kill its pool.  Tasks
                # still queued behind it are innocent: they stay pending
                # for the next round without an attempt charge.
                self._discard_pool(evaluator, pool, kind=FAILURE_KIND_TIMEOUT)
                return True
            broken = False
            for future in done:
                index = futures.pop(future)
                try:
                    entry = future.result()
                except (BrokenProcessPool, CancelledError):
                    # The pool died under this future; leave its task
                    # pending — the caller strips spent faults and
                    # isolates the culprit before resubmitting.
                    broken = True
                except TRANSIENT_ERROR_TYPES as error:
                    # Raised inside the worker — the pool is intact, so
                    # retry (or quarantine) just this task.
                    if not policy.should_retry(attempts[index], error):
                        results[index] = failure_entry(FAILURE_KIND_CRASH)
                        get_registry().counter("engine.quarantined_tasks").inc()
                        del pending[index]
                        continue
                    get_registry().counter("engine.retries").inc()
                    _trace_retry(evaluator, attempts[index],
                                 type(error).__name__)
                    policy.sleep(attempts[index])
                    attempts[index] += 1
                    pending[index] = strip_fault(pending[index])
                    try:
                        futures[pool.submit(_evaluate_in_worker,
                                            pending[index])] = index
                    except BrokenProcessPool:
                        broken = True
                else:
                    results[index] = entry
                    del pending[index]
            if broken:
                self._note_broken(evaluator, pool)
                return False
        return True

    def wait_any(self, futures) -> None:
        # Unwrap the recovery wrappers and bound the wait by the nearest
        # evaluation deadline, so a hung worker can never block the driver:
        # when the deadline passes with nothing done, the expired wrapper
        # reports done() and resolves to its timeout entry on result().
        pending = [future for future in futures if not future.done()]
        if not pending:
            return
        timeout = None
        inner = []
        for future in pending:
            if isinstance(future, _RecoveringEvalFuture):
                remaining = future._remaining()
                if remaining is not None:
                    timeout = (remaining if timeout is None
                               else min(timeout, remaining))
                inner.append(future._inner)
            else:
                inner.append(future)
        if timeout is not None:
            timeout = max(0.0, timeout)
        wait(inner, timeout=timeout, return_when=FIRST_COMPLETED)

    def close(self) -> None:
        # cancel_futures drops queued-but-unstarted work so shutdown joins
        # the workers promptly instead of draining a dead search's backlog;
        # wait=True then reaps every worker process (no orphans), even when
        # a budget interrupted the owning search mid-flight.
        with self._lock:
            pools = list(self._eval_pools.values())
            self._eval_pools = OrderedDict()
            submit_pool, self._submit_pool = self._submit_pool, None
        for pool in pools:
            pool.shutdown(wait=True, cancel_futures=True)
        if submit_pool is not None:
            submit_pool.shutdown(wait=True, cancel_futures=True)


#: backends keyed by their registry name; "remote" lives in
#: :mod:`repro.engine.remote` and is resolved lazily by make_backend
#: (that package imports this module, so eager registration would be a
#: circular import)
BACKEND_CLASSES: dict[str, type[ExecutionBackend]] = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}

BACKEND_NAMES: tuple[str, ...] = tuple(BACKEND_CLASSES) + ("remote",)


def make_backend(backend, *, n_workers: int | None = None,
                 eval_timeout: float | None = None,
                 retry_policy: RetryPolicy | None = None,
                 remote_coordinator: str | None = None,
                 worker_timeout: float | None = None) -> ExecutionBackend:
    """Resolve a backend name (or pass through an instance).

    On an instance pass-through, ``eval_timeout`` / ``retry_policy`` are
    applied only when given explicitly, so a pre-configured backend keeps
    its settings.  ``remote_coordinator`` / ``worker_timeout`` configure
    the ``"remote"`` backend and are rejected for any other name —
    silently ignoring them would hide a misconfigured deployment.
    """
    if isinstance(backend, ExecutionBackend):
        if eval_timeout is not None:
            backend.eval_timeout = _validate_eval_timeout(eval_timeout)
        if retry_policy is not None:
            backend.retry_policy = retry_policy
        return backend
    if backend == "remote":
        from repro.engine.remote import RemoteBackend

        return RemoteBackend(n_workers=n_workers, eval_timeout=eval_timeout,
                             retry_policy=retry_policy,
                             coordinator=remote_coordinator,
                             worker_timeout=worker_timeout)
    if remote_coordinator is not None or worker_timeout is not None:
        raise ValidationError(
            f"remote_coordinator/worker_timeout only apply to the "
            f"'remote' backend, not {backend!r}"
        )
    if backend not in BACKEND_CLASSES:
        raise UnknownComponentError(
            f"Unknown execution backend {backend!r}. "
            f"Known backends: {sorted(BACKEND_NAMES)}"
        )
    return BACKEND_CLASSES[backend](n_workers=n_workers,
                                    eval_timeout=eval_timeout,
                                    retry_policy=retry_policy)
