"""Pluggable execution backends: serial, thread-pool and process-pool.

A backend does two things.  The batch path — ``map`` / ``run_evaluations``
— applies a function over a list of items and returns the results *in
input order*; that ordering guarantee is what lets the rest of the library
stay bit-for-bit deterministic regardless of which backend executes the
work, because the engine submits tasks in a stable order and merges
results positionally.  The futures path — ``submit`` /
``submit_evaluation`` / ``wait_any`` — hands out one future per task so
callers (the engine's ``as_completed`` and the async search driver) can
react to *each* completion instead of waiting for a whole batch barrier.

The serial backend's futures are lazy: the work runs in the calling thread
the first time a result is requested, so completions arrive strictly in
submission order (the deterministic reference) and a future that is
cancelled before consumption costs nothing — which is what lets a budget
interruption refund never-dispatched tasks exactly.

``run_evaluations`` is the evaluation-specific entry point: it receives a
:class:`~repro.core.evaluation.PipelineEvaluator` plus ``(pipeline,
fidelity)`` work items and returns the raw cache entries.  The default
implementation closes over the evaluator (fine for threads, which share
memory); :class:`ProcessBackend` overrides it to ship the evaluator to each
worker process once via the pool initializer instead of once per task.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)

from repro.exceptions import UnknownComponentError, ValidationError


def default_worker_count() -> int:
    """Number of workers used when ``n_workers`` is not given."""
    return os.cpu_count() or 1


class SerialFuture:
    """Lazy future returned by :meth:`SerialBackend.submit`.

    The wrapped call runs in the consumer's thread the first time
    :meth:`run` (or :meth:`result`) is invoked, never at submission.  A
    batch of submitted-but-unconsumed serial futures therefore costs
    nothing, completes strictly in the order the consumer asks, and can be
    cancelled right up to the moment its result is first requested —
    mirroring ``concurrent.futures.Future`` closely enough that the engine
    treats all backends' futures uniformly.
    """

    _PENDING, _DONE, _ERROR, _CANCELLED = range(4)

    def __init__(self, fn, item) -> None:
        self._fn = fn
        self._item = item
        self._state = self._PENDING
        self._outcome = None

    def run(self) -> None:
        """Execute the work now unless it already ran or was cancelled."""
        if self._state != self._PENDING:
            return
        try:
            self._outcome = self._fn(self._item)
            self._state = self._DONE
        except BaseException as error:  # re-raised from result(), like a Future
            self._outcome = error
            self._state = self._ERROR

    def result(self, timeout=None):
        if self._state == self._CANCELLED:
            raise CancelledError()
        self.run()
        if self._state == self._ERROR:
            raise self._outcome
        return self._outcome

    def done(self) -> bool:
        return self._state != self._PENDING

    def cancel(self) -> bool:
        if self._state == self._PENDING:
            self._state = self._CANCELLED
        return self._state == self._CANCELLED

    def cancelled(self) -> bool:
        return self._state == self._CANCELLED

    def running(self) -> bool:
        return False


class ExecutionBackend:
    """Backend protocol: ordered ``map`` plus evaluation dispatch.

    Parameters
    ----------
    n_workers:
        Maximum number of concurrent workers.  ``None`` (or ``-1``) means
        one worker per CPU core.
    """

    #: registry name, e.g. ``"serial"`` or ``"process"``
    name: str = "base"

    #: True when submitted futures complete lazily in submission order (the
    #: serial backend): ``as_completed`` consumers then iterate futures in
    #: the order they were submitted, which is the deterministic reference
    ordered_completion: bool = False

    def __init__(self, n_workers: int | None = None) -> None:
        if n_workers is None or n_workers == -1:
            n_workers = default_worker_count()
        n_workers = int(n_workers)
        if n_workers < 1:
            raise ValidationError(f"n_workers must be at least 1, got {n_workers}")
        self.n_workers = n_workers

    # ------------------------------------------------------------------ API
    def map(self, fn, items: list) -> list:
        """Apply ``fn`` to every item; results are returned in input order."""
        raise NotImplementedError

    def run_evaluations(self, evaluator, work: list) -> list:
        """Evaluate ``(pipeline, fidelity)`` work items; return cache entries."""
        return self.map(
            lambda pair: evaluator._evaluate_uncached(pair[0], pair[1]), work
        )

    # -------------------------------------------------------------- futures
    def submit(self, fn, item):
        """Start ``fn(item)`` and return a future for its result.

        With a process backend ``fn`` must be a picklable module-level
        function (the same constraint as :meth:`map`).
        """
        raise NotImplementedError

    def submit_evaluation(self, evaluator, pair):
        """Submit one ``(pipeline, fidelity)`` evaluation; return a future."""
        return self.submit(
            lambda work: evaluator._evaluate_uncached(work[0], work[1]), pair
        )

    def wait_any(self, futures) -> None:
        """Block until at least one of ``futures`` is done (or all are)."""
        pending = [future for future in futures if not future.done()]
        if pending:
            wait(pending, return_when=FIRST_COMPLETED)

    def close(self) -> None:
        """Release any pooled workers (no-op for poolless backends)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_workers={self.n_workers})"


class SerialBackend(ExecutionBackend):
    """Run every task inline in the calling thread (the reference backend)."""

    name = "serial"
    ordered_completion = True

    def __init__(self, n_workers: int | None = None) -> None:
        if n_workers is not None and int(n_workers) != 1:
            # Historically an explicit worker count was silently ignored
            # here, so a context asking for serial+parallel quietly ran
            # everything on one worker.  Misconfiguration fails loudly now.
            raise ValidationError(
                f"the serial backend runs exactly one worker; "
                f"n_workers={n_workers!r} asks for parallelism — pick the "
                f"'thread' or 'process' backend instead"
            )
        super().__init__(n_workers=1)

    def map(self, fn, items: list) -> list:
        return [fn(item) for item in items]

    def submit(self, fn, item) -> SerialFuture:
        return SerialFuture(fn, item)

    def wait_any(self, futures) -> None:
        # Lazy futures never complete on their own: "waiting" means running
        # the earliest-submitted pending one right here, which is exactly
        # the serial execution order.
        for future in futures:
            if future.done():
                return
        if futures:
            futures[0].run()


class ThreadBackend(ExecutionBackend):
    """Dispatch tasks to a thread pool.

    Threads share the evaluator's memory, so nothing is pickled.  Workers
    read shared state (the train/valid split) and the memoization-cache
    writes happen in the calling thread after the batch completes, so those
    need no locking.  The one piece of shared state workers *do* mutate is
    the evaluator's prefix-transform cache (when enabled), which carries
    its own internal lock — all workers then reuse one pool of fitted
    prefixes.  Useful when evaluations release the GIL (numpy-heavy
    preprocessing / training) or block on I/O.
    """

    name = "thread"

    def __init__(self, n_workers: int | None = None) -> None:
        super().__init__(n_workers=n_workers)
        self._submit_pool: ThreadPoolExecutor | None = None

    def map(self, fn, items: list) -> list:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=min(self.n_workers, len(items))) as pool:
            return list(pool.map(fn, items))

    def submit(self, fn, item):
        # Unlike map's per-batch pools, submissions share one long-lived
        # pool: futures of different batches must be able to run
        # concurrently, and the async driver submits continuously.
        if self._submit_pool is None:
            self._submit_pool = ThreadPoolExecutor(max_workers=self.n_workers)
        return self._submit_pool.submit(fn, item)

    def close(self) -> None:
        if self._submit_pool is not None:
            self._submit_pool.shutdown(wait=True, cancel_futures=True)
            self._submit_pool = None


# --------------------------------------------------------------- processes
#: per-process evaluator installed by the pool initializer (fork or spawn)
_WORKER_EVALUATOR = None


def _init_evaluation_worker(evaluator) -> None:
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = evaluator


def _evaluate_in_worker(pair):
    pipeline, fidelity = pair
    cache = _WORKER_EVALUATOR.prefix_cache
    if cache is None:
        return _WORKER_EVALUATOR._evaluate_uncached(pipeline, fidelity)
    # The worker's prefix cache is private to this process: its counters
    # would otherwise never reach the parent (prefix_hits reading 0 under
    # the process backend despite real reuse).  Pool workers run one task
    # at a time, so a before/after snapshot brackets exactly this
    # evaluation; the delta rides back on a copy of the entry (the
    # original may be aliased by the worker's own caches) and is stripped
    # by ``PipelineEvaluator.absorb_worker_counters`` before the entry is
    # stored anywhere.
    before = cache.counters()
    entry = dict(_WORKER_EVALUATOR._evaluate_uncached(pipeline, fidelity))
    delta = cache.counters_since(before)
    if delta:
        from repro.core.evaluation import METRICS_DELTA_KEY

        entry[METRICS_DELTA_KEY] = {
            f"prefix.{name}": value for name, value in delta.items()
        }
    return entry


class ProcessBackend(ExecutionBackend):
    """Dispatch tasks to a process pool (true CPU parallelism).

    The evaluator is shipped to each worker exactly once through the pool
    initializer, and pools are *reused* across batches: they are keyed by
    the evaluator's :meth:`~repro.core.evaluation.PipelineEvaluator.fingerprint`
    in a small LRU (``max_eval_pools``), so several sessions alternating
    on one shared backend each keep their warm pool instead of re-forking
    and re-pickling the training data every batch (the one-pool-latest-owner
    scheme this replaced did exactly that the moment two searches shared an
    engine).  Per-task traffic is just the ``(pipeline, fidelity)``
    pair and the returned cache entry.  The evaluator drops its engine
    reference and cache when pickled (see
    ``PipelineEvaluator.__getstate__``), so workers never recursively
    spawn pools and the snapshot stays valid for its fingerprint's
    lifetime: workers only ever receive work the parent's cache has never
    seen, and two evaluators with equal fingerprints are bit-for-bit
    interchangeable by the fingerprint contract.
    When the evaluator enables prefix-transform reuse, each worker rebuilds
    its own :class:`~repro.core.prefixcache.PrefixTransformCache` on
    unpickling; because the pool (and with it the per-process evaluator
    snapshot) persists across batches, those caches keep accumulating and
    reusing fitted prefixes for the whole search, not just one batch.
    """

    name = "process"

    #: evaluation pools kept warm at once; the least-recently-used pool
    #: beyond this is shut down (its worker processes reaped) on demand
    max_eval_pools = 4

    def __init__(self, n_workers: int | None = None, *,
                 max_eval_pools: int | None = None) -> None:
        super().__init__(n_workers=n_workers)
        if max_eval_pools is not None:
            max_eval_pools = int(max_eval_pools)
            if max_eval_pools < 1:
                raise ValidationError(
                    f"max_eval_pools must be at least 1, got {max_eval_pools}"
                )
            self.max_eval_pools = max_eval_pools
        self._lock = threading.Lock()
        #: fingerprint -> initializer-seeded pool, most recently used last
        self._eval_pools: "OrderedDict[str, ProcessPoolExecutor]" = OrderedDict()
        self._submit_pool: ProcessPoolExecutor | None = None

    def map(self, fn, items: list) -> list:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        with ProcessPoolExecutor(max_workers=min(self.n_workers, len(items))) as pool:
            return list(pool.map(fn, items))

    def submit(self, fn, item):
        with self._lock:
            if self._submit_pool is None:
                self._submit_pool = ProcessPoolExecutor(
                    max_workers=self.n_workers
                )
            pool = self._submit_pool
        return pool.submit(fn, item)

    def submit_evaluation(self, evaluator, pair):
        # Reuse the initializer-seeded evaluation pool so the evaluator is
        # pickled once per pool, not once per submitted task.
        return self._evaluation_pool(evaluator).submit(_evaluate_in_worker, pair)

    def _evaluation_pool(self, evaluator) -> ProcessPoolExecutor:
        """The warm pool for ``evaluator``'s fingerprint (LRU, bounded)."""
        key = evaluator.fingerprint()
        evicted = None
        with self._lock:
            pool = self._eval_pools.get(key)
            if pool is not None:
                self._eval_pools.move_to_end(key)
            else:
                pool = ProcessPoolExecutor(
                    max_workers=self.n_workers,
                    initializer=_init_evaluation_worker,
                    initargs=(evaluator,),
                )
                self._eval_pools[key] = pool
                if len(self._eval_pools) > self.max_eval_pools:
                    _, evicted = self._eval_pools.popitem(last=False)
        if evicted is not None:
            # Shut the evicted pool down outside the lock: joining worker
            # processes can take a while and must not block other sessions
            # fetching their own pools.
            evicted.shutdown(wait=True, cancel_futures=True)
        return pool

    def run_evaluations(self, evaluator, work: list) -> list:
        work = list(work)
        if len(work) <= 1:
            # A single evaluation is cheaper inline than one IPC round-trip.
            return [
                evaluator._evaluate_uncached(pipeline, fidelity)
                for pipeline, fidelity in work
            ]
        pool = self._evaluation_pool(evaluator)
        return list(pool.map(_evaluate_in_worker, work))

    def close(self) -> None:
        # cancel_futures drops queued-but-unstarted work so shutdown joins
        # the workers promptly instead of draining a dead search's backlog;
        # wait=True then reaps every worker process (no orphans), even when
        # a budget interrupted the owning search mid-flight.
        with self._lock:
            pools = list(self._eval_pools.values())
            self._eval_pools = OrderedDict()
            submit_pool, self._submit_pool = self._submit_pool, None
        for pool in pools:
            pool.shutdown(wait=True, cancel_futures=True)
        if submit_pool is not None:
            submit_pool.shutdown(wait=True, cancel_futures=True)


#: backends keyed by their registry name
BACKEND_CLASSES: dict[str, type[ExecutionBackend]] = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}

BACKEND_NAMES: tuple[str, ...] = tuple(BACKEND_CLASSES)


def make_backend(backend, *, n_workers: int | None = None) -> ExecutionBackend:
    """Resolve a backend name (or pass through an instance)."""
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend not in BACKEND_CLASSES:
        raise UnknownComponentError(
            f"Unknown execution backend {backend!r}. "
            f"Known backends: {sorted(BACKEND_CLASSES)}"
        )
    return BACKEND_CLASSES[backend](n_workers=n_workers)
