"""Deterministic fault injection: :class:`FaultPlan` + :class:`ChaosBackend`.

The chaos harness exists so every recovery path in
:mod:`repro.engine.backends` is *reproducibly* testable: a
:class:`FaultPlan` schedules faults at specific task indices (worker
kills, raised transient errors, hangs), and a :class:`ChaosBackend` wraps
any real backend and attaches those faults to the matching work items as
they are dispatched.  Task indices count evaluations in dispatch order,
which the engine keeps deterministic (stable submission order, LPT sort
on a deterministic key) — so two runs of the same plan hit the same
pipelines with the same faults, and a crash-and-recover run produces
bit-for-bit the same surviving records as a no-fault run (non-sticky
faults fire once; the retry runs clean).

Wired through :class:`~repro.core.context.ExecutionContext` via the
``chaos`` field / ``REPRO_CHAOS`` env var using a compact spec grammar::

    crash@1,error@4,delay@6:30,crash@8!

``kind@index``, with ``:seconds`` for delay duration and a trailing ``!``
marking the fault sticky (it follows the task through every retry, which
is how quarantine is exercised).

``drop_worker@index`` is the membership fault for the remote backend:
when dispatch reaches that index, a live worker is forcibly
disconnected (lowest worker id, so the victim is deterministic) and the
task itself ships clean — replaying a machine loss mid-search.
"""

from __future__ import annotations

import threading
from typing import Iterator, Mapping

import numpy as np

from repro.engine.backends import ExecutionBackend
from repro.engine.faults import FaultInjection, InjectedFault
from repro.exceptions import ValidationError


class FaultPlan:
    """An immutable schedule mapping task indices to injected faults."""

    __slots__ = ("_faults",)

    def __init__(self, faults: Mapping[int, InjectedFault] | None = None) -> None:
        plan: dict[int, InjectedFault] = {}
        for index, fault in dict(faults or {}).items():
            index = int(index)
            if index < 0:
                raise ValidationError(
                    f"fault plan indices must be >= 0, got {index}"
                )
            if not isinstance(fault, InjectedFault):
                raise ValidationError(
                    f"fault plan values must be InjectedFault, "
                    f"got {type(fault).__name__}"
                )
            plan[index] = fault
        self._faults = plan

    def fault_at(self, index: int) -> InjectedFault | None:
        """The fault planned for task ``index``, or ``None``."""
        return self._faults.get(index)

    def __len__(self) -> int:
        return len(self._faults)

    def __iter__(self) -> Iterator[tuple[int, InjectedFault]]:
        return iter(sorted(self._faults.items()))

    def counts(self) -> dict[str, int]:
        """Planned faults per kind, e.g. ``{"crash": 2, "delay": 1}``."""
        totals: dict[str, int] = {}
        for fault in self._faults.values():
            totals[fault.kind] = totals.get(fault.kind, 0) + 1
        return totals

    def to_spec(self) -> str:
        """Compact string form; round-trips through :meth:`from_spec`."""
        parts = []
        for index, fault in self:
            part = f"{fault.kind}@{index}"
            if fault.kind == "delay":
                part += f":{fault.delay:g}"
            if fault.sticky:
                part += "!"
            parts.append(part)
        return ",".join(parts)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse ``"crash@1,error@4,delay@6:30,crash@8!"`` (see module doc)."""
        faults: dict[int, InjectedFault] = {}
        for raw in str(spec).split(","):
            token = raw.strip()
            if not token:
                continue
            sticky = token.endswith("!")
            if sticky:
                token = token[:-1]
            kind, _, position = token.partition("@")
            if not position:
                raise ValidationError(
                    f"bad fault spec {raw.strip()!r}: expected "
                    f"kind@index[:seconds][!]"
                )
            where, _, seconds = position.partition(":")
            try:
                index = int(where)
            except ValueError:
                raise ValidationError(
                    f"bad fault index in {raw.strip()!r}: {where!r} is not "
                    f"an integer"
                ) from None
            if seconds and kind != "delay":
                raise ValidationError(
                    f"bad fault spec {raw.strip()!r}: only delay faults "
                    f"take a :seconds duration"
                )
            if kind == "delay" and not seconds:
                raise ValidationError(
                    f"bad fault spec {raw.strip()!r}: delay faults need a "
                    f"duration, e.g. delay@{index}:30"
                )
            try:
                delay = float(seconds) if seconds else 0.0
            except ValueError:
                raise ValidationError(
                    f"bad delay duration in {raw.strip()!r}: {seconds!r} is "
                    f"not a number"
                ) from None
            if index in faults:
                raise ValidationError(
                    f"fault plan schedules task {index} twice"
                )
            faults[index] = InjectedFault(kind=kind, delay=delay,
                                          sticky=sticky)
        return cls(faults)

    @classmethod
    def random(cls, seed: int, n_tasks: int, *, crash_rate: float = 0.0,
               error_rate: float = 0.0, delay_rate: float = 0.0,
               delay: float = 30.0, sticky: bool = False) -> "FaultPlan":
        """A seeded random plan over ``n_tasks`` dispatch indices.

        Each index independently draws one uniform variate from
        ``np.random.default_rng(seed)`` and maps it to crash / error /
        delay bands — same seed, same plan, always.
        """
        total = crash_rate + error_rate + delay_rate
        if total > 1.0:
            raise ValidationError(
                f"fault rates must sum to at most 1.0, got {total}"
            )
        rng = np.random.default_rng(seed)
        faults: dict[int, InjectedFault] = {}
        for index in range(int(n_tasks)):
            draw = float(rng.random())
            if draw < crash_rate:
                faults[index] = InjectedFault("crash", sticky=sticky)
            elif draw < crash_rate + error_rate:
                faults[index] = InjectedFault("error", sticky=sticky)
            elif draw < total:
                faults[index] = InjectedFault("delay", delay=delay,
                                              sticky=sticky)
        return cls(faults)

    def __repr__(self) -> str:
        return f"FaultPlan({self.to_spec()!r})"


class ChaosBackend(ExecutionBackend):
    """Wrap a real backend and inject a :class:`FaultPlan` into its work.

    Pure interposition: every evaluation dispatched through this wrapper
    is assigned the next task index (thread-safe counter, dispatch
    order), and indices the plan names get their work item wrapped in a
    :class:`~repro.engine.faults.FaultInjection` before delegation.  The
    *inner* backend's guarded envelope / recovery machinery then applies
    the fault and survives it — recovery resubmissions happen inside the
    inner backend and never consume plan indices.  Deliberately does not
    call ``ExecutionBackend.__init__``: it owns no workers and no
    settings of its own; ``n_workers``, ``eval_timeout``,
    ``retry_policy`` and ``last_crash`` all delegate to the wrapped
    backend.
    """

    name = "chaos"

    def __init__(self, inner: ExecutionBackend, plan: FaultPlan | str) -> None:
        if isinstance(inner, ChaosBackend):
            raise ValidationError("chaos backends do not nest")
        if not isinstance(inner, ExecutionBackend):
            raise ValidationError(
                f"ChaosBackend wraps an ExecutionBackend, "
                f"got {type(inner).__name__}"
            )
        if isinstance(plan, str):
            plan = FaultPlan.from_spec(plan)
        self.inner = inner
        self.plan = plan
        self._lock = threading.Lock()
        self._dispatched = 0

    # ---------------------------------------------------------- delegation
    @property
    def n_workers(self) -> int:
        return self.inner.n_workers

    @property
    def ordered_completion(self) -> bool:
        return self.inner.ordered_completion

    @property
    def last_crash(self) -> dict | None:
        return self.inner.last_crash

    @property
    def eval_timeout(self) -> float | None:
        return self.inner.eval_timeout

    @eval_timeout.setter
    def eval_timeout(self, value) -> None:
        self.inner.eval_timeout = value

    @property
    def retry_policy(self):
        return self.inner.retry_policy

    @retry_policy.setter
    def retry_policy(self, value) -> None:
        self.inner.retry_policy = value

    @property
    def dispatched(self) -> int:
        """Evaluations dispatched so far (= next task index)."""
        with self._lock:
            return self._dispatched

    # ------------------------------------------------------------ injection
    def _next_index(self) -> int:
        with self._lock:
            index = self._dispatched
            self._dispatched += 1
        return index

    def _wrap(self, item):
        fault = self.plan.fault_at(self._next_index())
        if fault is None:
            return item
        if fault.kind == "drop_worker":
            # A membership fault: disconnect a live worker *now*, at this
            # deterministic dispatch index, and ship the item clean — the
            # inner backend's heartbeat/crash machinery owns the fallout.
            drop = getattr(self.inner, "drop_worker", None)
            if drop is None:
                raise ValidationError(
                    f"drop_worker faults need a backend with worker "
                    f"membership (the 'remote' backend); "
                    f"{type(self.inner).__name__} has none"
                )
            drop()
            return item
        return FaultInjection(item, fault)

    # ----------------------------------------------------------------- API
    def map(self, fn, items: list) -> list:
        return self.inner.map(fn, items)

    def run_evaluations(self, evaluator, work: list) -> list:
        return self.inner.run_evaluations(
            evaluator, [self._wrap(item) for item in work]
        )

    def submit(self, fn, item):
        return self.inner.submit(fn, item)

    def submit_evaluation(self, evaluator, item):
        return self.inner.submit_evaluation(evaluator, self._wrap(item))

    def wait_any(self, futures) -> None:
        self.inner.wait_any(futures)

    def close(self) -> None:
        self.inner.close()

    def __repr__(self) -> str:
        return f"ChaosBackend({self.inner!r}, plan={self.plan!r})"
