"""The execution engine: batch evaluation with pluggable backends.

:class:`ExecutionEngine` sits between callers that produce batches of
independent :class:`~repro.engine.tasks.EvalTask` objects (the evaluator's
``evaluate_many``, the search framework's batched proposal loop, the
experiment runner's grid fan-out) and an
:class:`~repro.engine.backends.ExecutionBackend` that actually executes
them.  For every batch it

1. answers cached tasks straight from the evaluator's memoization cache,
2. deduplicates the remaining tasks by cache key so each unique
   ``(pipeline spec, fidelity)`` is evaluated exactly once,
3. dispatches the unique work to the backend in a stable order,
4. merges the results back into the evaluator's cache — both the
   in-memory LRU and, when the evaluator has a ``cache_dir``, the
   persistent cross-run cache (one batched append per shard), and
5. returns trial records in the original task order.

Determinism: tasks are dispatched and merged in submission order, and the
evaluator derives every low-fidelity subsample seed from the task itself
(seed, pipeline spec, fidelity) rather than from a shared RNG, so the
serial, thread and process backends produce bit-for-bit identical results.
"""

from __future__ import annotations

from repro.core.result import TrialRecord
from repro.engine.backends import ExecutionBackend, make_backend
from repro.engine.tasks import EvalTask


class ExecutionEngine:
    """Dispatch batches of evaluation tasks to a pluggable backend.

    Parameters
    ----------
    backend:
        Backend name (``"serial"``, ``"thread"``, ``"process"``) or an
        :class:`~repro.engine.backends.ExecutionBackend` instance.
    n_workers:
        Worker count for named backends; ``None`` or ``-1`` uses one
        worker per CPU core.
    """

    def __init__(self, backend: str | ExecutionBackend = "serial", *,
                 n_workers: int | None = None) -> None:
        self.backend = make_backend(backend, n_workers=n_workers)

    @property
    def n_workers(self) -> int:
        return self.backend.n_workers

    # ------------------------------------------------------------- generic
    def map(self, fn, items) -> list:
        """Map ``fn`` over ``items`` on the backend, preserving input order.

        Used for coarse-grained fan-out (e.g. whole experiment-grid cells);
        with a process backend ``fn`` must be a picklable module-level
        function.
        """
        return self.backend.map(fn, list(items))

    # ---------------------------------------------------------- evaluation
    def run(self, evaluator, tasks) -> list[TrialRecord]:
        """Evaluate a batch of tasks and return records in task order.

        Cached tasks never reach the backend; duplicate uncached tasks
        within the batch are evaluated once and fanned back out (matching
        what the evaluator's cache would have done serially).  When the
        evaluator's cache is disabled every task is executed individually,
        mirroring serial semantics.
        """
        tasks = [task if isinstance(task, EvalTask) else EvalTask(task)
                 for task in tasks]
        records: list[TrialRecord | None] = [None] * len(tasks)

        # Partition into cache hits and groups of identical pending work.
        pending: dict = {}
        for index, task in enumerate(tasks):
            key = evaluator.cache_key(task.pipeline, task.fidelity)
            if evaluator.cache_enabled and key in pending:
                # A duplicate of work already queued in this batch: it will
                # be served by that evaluation's entry, which serially would
                # have been a cache hit — count it as one.
                pending[key].append(index)
                evaluator.cache_hits += 1
                continue
            entry = evaluator.cache_lookup(key)
            if entry is not None:
                records[index] = evaluator.record_from_entry(task, entry)
            elif evaluator.cache_enabled:
                pending[key] = [index]
            else:
                # No cache: no dedup either — every task runs, like serial.
                pending[(key, index)] = [index]

        if pending:
            groups = list(pending.values())
            work = [
                (tasks[group[0]].pipeline, tasks[group[0]].fidelity)
                for group in groups
            ]
            entries = self.backend.run_evaluations(evaluator, work)
            merged = []
            for group, entry in zip(groups, entries):
                first = tasks[group[0]]
                merged.append(
                    (evaluator.cache_key(first.pipeline, first.fidelity), entry)
                )
                evaluator.n_evaluations += 1
                for index in group:
                    records[index] = evaluator.record_from_entry(tasks[index], entry)
            # One merge-back for the whole batch: results computed by
            # thread/process workers land in the evaluator's LRU and — when
            # a cache_dir is set — in the persistent cross-run cache, one
            # append per touched shard instead of one write per task.
            evaluator.cache_store_batch(merged)

        return records

    def close(self) -> None:
        """Release pooled workers held by the backend (safe to call twice).

        Backends also release their pools at interpreter exit, so calling
        this is only needed to free workers eagerly mid-process.
        """
        self.backend.close()

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ExecutionEngine(backend={self.backend!r})"


def resolve_backend_name(n_jobs: int | None = None,
                         backend: str | None = None) -> str:
    """The single defaulting rule for CLI-style ``n_jobs``/``backend`` options.

    An unset backend (``None``) resolves to ``"process"`` when ``n_jobs``
    asks for parallelism, because pipeline evaluation is CPU-bound, and to
    ``"serial"`` otherwise.  An explicitly chosen backend — including
    ``"serial"`` — is returned unchanged.
    """
    if backend is not None:
        return backend
    return "process" if n_jobs not in (None, 1) else "serial"


def resolve_engine(n_jobs: int | None = None,
                   backend: str | ExecutionBackend | None = None
                   ) -> ExecutionEngine | None:
    """Build an engine from CLI-style ``n_jobs`` / ``backend`` options.

    Returns ``None`` (meaning: plain serial evaluation, no engine overhead)
    when the options resolve to single-worker serial execution (see
    :func:`resolve_backend_name`).  ``n_jobs=-1`` means one worker per CPU
    core.
    """
    if isinstance(backend, ExecutionBackend):
        return ExecutionEngine(backend)
    name = resolve_backend_name(n_jobs, backend)
    if name == "serial":
        return None
    n_workers = None if n_jobs in (None, -1) else n_jobs
    return ExecutionEngine(name, n_workers=n_workers)
